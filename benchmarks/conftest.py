"""Benchmark-harness fixtures.

Each ``benchmarks/test_fig*.py`` regenerates one paper figure's data
series and prints it (run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables). Population size is controlled by environment
variables so CI stays fast while a full regeneration remains one command:

* ``REPRO_BENCH_PROGRAMS`` — number of programs (default 16; the full
  population is used when set to 0).
* ``REPRO_BENCH_SUITES`` — comma-separated suite filter.

The shared ``Runner`` caches traces/profiles/plans across figures, so the
suite cost is dominated by distinct timing runs, as in the paper.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import Runner
from repro.workloads import all_benchmarks


def _population():
    suites = os.environ.get("REPRO_BENCH_SUITES")
    suite_list = suites.split(",") if suites else None
    benches = all_benchmarks(suites=suite_list)
    limit = int(os.environ.get("REPRO_BENCH_PROGRAMS", "16"))
    if limit > 0:
        # An even cross-section: interleave suites rather than truncating
        # alphabetically.
        by_suite: dict = {}
        for bench in benches:
            by_suite.setdefault(bench.suite, []).append(bench)
        picked = []
        while len(picked) < limit and any(by_suite.values()):
            for suite in sorted(by_suite):
                if by_suite[suite] and len(picked) < limit:
                    picked.append(by_suite[suite].pop(0))
        benches = picked
    return benches


@pytest.fixture(scope="session")
def population():
    return _population()


@pytest.fixture(scope="session")
def runner():
    return Runner()


def run_once(benchmark, fn):
    """Time an experiment exactly once (experiments are minutes-scale)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
