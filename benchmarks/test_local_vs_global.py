"""Local vs global slack — the §4.3 "think globally, act locally" debate.

Slack-Profile driven by *global* slack profiles versus the paper's local
slack. The paper's argument: global slack is more accurate for one
mini-graph but assumes a fixed critical path — selecting many mini-graphs
shifts the path and invalidates the numbers, so (without re-profiling
after every pick) local slack is the more robust driver of multi-mini-graph
selection. Shape target: global-slack selection is more permissive
(coverage ≥ local) but does *not* outperform local selection on average.
"""

from repro.minigraph import SlackProfileSelector
from repro.pipeline import full_config, reduced_config

from benchmarks.conftest import run_once


def test_local_vs_global_slack(benchmark, runner, population):
    reduced = reduced_config()

    def run():
        rows = []
        for label, use_global in (("local", False), ("global", True)):
            perf = cov = 0.0
            for bench in population:
                base = runner.baseline(bench, full_config()).ipc
                result = runner.run_selector(
                    bench, SlackProfileSelector(), reduced,
                    global_slack=use_global)
                perf += result.ipc / base
                cov += result.coverage
            n = len(population)
            rows.append((label, perf / n, cov / n))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'slack kind':>11s} {'rel perf':>9s} {'coverage':>9s}")
    for label, perf, cov in rows:
        print(f"{label:>11s} {perf:9.3f} {cov:9.1%}")

    (_, perf_local, cov_local), (_, perf_global, cov_global) = rows
    # Global slack only widens slack estimates: it admits at least as many
    # mini-graphs...
    assert cov_global >= cov_local - 0.01
    # ...but the extra admissions do not buy performance on average — the
    # non-decomposability the paper describes.
    assert perf_local >= perf_global - 0.02
