"""FIG3 — serialization-blind selection (paper Figure 3).

Struct-All vs Struct-None on the reduced machine (top graph) and the
fully-provisioned machine (bottom graph). Shape targets: the two S-curves
*cross* on the reduced machine (coverage wins on the right, serialization
on the left); Struct-None never drops below the no-mini-graph line;
Struct-All degrades some programs even on the full machine.
"""

from repro.harness.experiments import fig3
from repro.harness.scurve import summarize

from benchmarks.conftest import run_once


def test_fig3_naive_selectors(benchmark, runner, population):
    result = run_once(benchmark, lambda: fig3(runner, population))
    print()
    for group, curves in result.groups.items():
        print(f"--- {group} ---")
        print(summarize(curves))
    for note in result.notes:
        print(note)

    reduced_group = "performance on reduced (rel. full baseline)"
    curves = {c.label: c for c in result.groups[reduced_group]}
    no_mg = curves["no-mini-graphs"]
    struct_all = curves["struct-all"]
    struct_none = curves["struct-none"]

    # Both selectors improve the average over no mini-graphs.
    assert struct_all.mean > no_mg.mean
    assert struct_none.mean > no_mg.mean

    # Struct-None is consistent: (almost) no program falls below its no-MG
    # line. Shape-safe candidates can still serialize *internally* (a tree
    # whose later constituent is independent of the earlier ones), so a
    # small dip on isolated programs is possible; pathologies are not.
    none_by_program = struct_none.by_program
    dips = 0
    for program, value in none_by_program.items():
        assert value >= no_mg.by_program[program] * 0.95, program
        if value < no_mg.by_program[program] * 0.99:
            dips += 1
    assert dips <= max(1, len(none_by_program) // 12)

    # Struct-All admits pathologies: its worst program is far below
    # Struct-None's worst.
    assert struct_all.minimum < struct_none.minimum

    # Coverage: Struct-All clearly exceeds Struct-None (paper: 38% vs 20%).
    cov = {c.label: c for c in result.groups["coverage"]}
    assert cov["struct-all"].mean > 1.25 * cov["struct-none"].mean

    # On the full machine serialization is exposed: Struct-All loses to
    # Struct-None on average there.
    full_group = "performance on full (rel. full baseline)"
    full_curves = {c.label: c for c in result.groups[full_group]}
    assert full_curves["struct-none"].mean >= \
        full_curves["struct-all"].mean - 0.01
