"""FIG7 — isolating the model components (paper Figure 7).

Top: Slack-Profile vs its Delay-only and SIAL ablations. Bottom:
Slack-Dynamic vs the idealized (no outlining penalty) variants. Shape
targets: explicit delay accounting beats the SIAL operand-arrival
heuristic; removing the outlining penalty recovers most of
Slack-Dynamic's gap; full models are at least as good as their
consumer-blind variants.
"""

from repro.harness.experiments import fig7
from repro.harness.scurve import summarize

from benchmarks.conftest import run_once


def test_fig7_model_breakdown(benchmark, runner, population):
    result = run_once(benchmark, lambda: fig7(runner, population))
    print()
    for group, curves in result.groups.items():
        print(f"--- {group} ---")
        print(summarize(curves))

    profile = {c.label: c for c in
               result.groups["slack-profile breakdown (reduced)"]}
    dynamic = {c.label: c for c in
               result.groups["slack-dynamic breakdown (reduced)"]}

    # Delay accounting (rules #1-#3) provides the bulk of the benefit over
    # the serialization-blind Struct-All.
    assert profile["slack-profile-delay"].mean >= \
        profile["struct-none"].mean - 0.03
    # The full model (rule #4: consumer absorption) is at least as good as
    # delay-only.
    assert profile["slack-profile"].mean >= \
        profile["slack-profile-delay"].mean - 0.01
    # Explicit delay accounting is preferred to the SIAL heuristic (§5.2).
    assert profile["slack-profile"].mean >= \
        profile["slack-profile-sial"].mean - 0.01

    # Removing the outlining penalty helps Slack-Dynamic (§5.3).
    assert dynamic["ideal-slack-dynamic"].mean >= \
        dynamic["slack-dynamic"].mean - 0.005
    # Full dynamic model at least matches its SIAL ablation.
    assert dynamic["ideal-slack-dynamic"].mean >= \
        dynamic["ideal-slack-dynamic-sial"].mean - 0.02
