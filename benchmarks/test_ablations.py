"""Ablation benches for the design choices called out in DESIGN.md.

These sweep the mini-graph support parameters of Table 1 around their
paper values: MGT template budget, maximum mini-graph size, the third
register input (§2 relaxes the original two-input limit), the per-cycle
mini-graph issue restriction, and Slack-Dynamic's hysteresis threshold.
"""

import pytest

from repro.harness import Runner
from repro.minigraph import SlackProfileSelector, StructAll
from repro.pipeline import full_config, reduced_config

from benchmarks.conftest import run_once

ABLATION_PROGRAMS = ["adpcm", "bzip2", "crc32", "drr", "epicfilt",
                     "jpegdct", "sha", "synth01", "synth05", "synth09"]


def _mean_rel(runner, programs, config, selector=None, budget=None,
              max_size=None, **dynamic_kwargs):
    local = runner
    if budget is not None or max_size is not None:
        local = Runner(budget=budget or 512, max_mg_size=max_size or 4)
    total = 0.0
    cov = 0.0
    for name in programs:
        base = local.baseline(name, full_config()).ipc
        if selector is None:
            run = local.run_slack_dynamic(name, config, **dynamic_kwargs)
        else:
            run = local.run_selector(name, selector, config)
        total += run.ipc / base
        cov += run.coverage
    n = len(programs)
    return total / n, cov / n


def test_mgt_budget_sweep(benchmark, runner):
    """Coverage (and performance) saturate well below 512 templates for
    these small programs, but must be monotone in the budget."""
    reduced = reduced_config()

    def run():
        rows = []
        for budget in (1, 2, 4, 8, 32, 512):
            perf, cov = _mean_rel(runner, ABLATION_PROGRAMS, reduced,
                                  selector=StructAll(), budget=budget)
            rows.append((budget, perf, cov))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'budget':>7s} {'rel perf':>9s} {'coverage':>9s}")
    for budget, perf, cov in rows:
        print(f"{budget:7d} {perf:9.3f} {cov:9.1%}")
    coverages = [cov for _, _, cov in rows]
    assert all(b <= a + 1e-9 for b, a in zip(coverages, coverages[1:]))
    assert coverages[-1] > coverages[0]


def test_max_size_sweep(benchmark, runner):
    """Mini-graphs up to 4 instructions (Table 1) vs 2 and 3."""
    reduced = reduced_config()

    def run():
        rows = []
        for size in (2, 3, 4):
            perf, cov = _mean_rel(runner, ABLATION_PROGRAMS, reduced,
                                  selector=StructAll(), max_size=size)
            rows.append((size, perf, cov))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'max size':>9s} {'rel perf':>9s} {'coverage':>9s}")
    for size, perf, cov in rows:
        print(f"{size:9d} {perf:9.3f} {cov:9.1%}")
    # Larger aggregates embed strictly more instructions.
    assert rows[0][2] < rows[2][2]


def test_third_register_input(benchmark, runner):
    """§2: supporting a third external input boosts coverage relative to
    the original two-input mini-graphs."""
    reduced = reduced_config()

    def run():
        rows = []
        for max_inputs in (2, 3):
            local = Runner()
            cov = 0.0
            perf = 0.0
            for name in ABLATION_PROGRAMS:
                program = local._bench(name).program("train")
                trace = local.trace(name)
                from repro.minigraph import enumerate_candidates, make_plan
                from repro.minigraph.transform import fold_trace
                from repro.pipeline.core import OoOCore
                candidates = enumerate_candidates(
                    program, max_ext_inputs=max_inputs)
                plan = make_plan(program, trace.dynamic_count_of(),
                                 StructAll(), candidates=candidates)
                stats = OoOCore(reduced, fold_trace(trace, plan),
                                warm_caches=True).run()
                base = local.baseline(name, full_config()).ipc
                cov += stats.coverage
                perf += stats.ipc / base
            n = len(ABLATION_PROGRAMS)
            rows.append((max_inputs, perf / n, cov / n))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'ext inputs':>11s} {'rel perf':>9s} {'coverage':>9s}")
    for inputs, perf, cov in rows:
        print(f"{inputs:11d} {perf:9.3f} {cov:9.1%}")
    assert rows[1][2] >= rows[0][2]  # 3 inputs never reduce coverage


def test_mg_issue_restriction(benchmark, runner):
    """Table 1 limits issue to 2 mini-graphs/cycle; sweep 1..3."""
    def run():
        rows = []
        for mg_issue in (1, 2, 3):
            config = reduced_config().scaled(
                name=f"reduced-mg{mg_issue}", mg_max_issue=mg_issue,
                mg_alu_pipelines=max(2, mg_issue))
            perf, cov = _mean_rel(runner, ABLATION_PROGRAMS, config,
                                  selector=StructAll())
            rows.append((mg_issue, perf, cov))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'mg/cycle':>9s} {'rel perf':>9s} {'coverage':>9s}")
    for mg_issue, perf, cov in rows:
        print(f"{mg_issue:9d} {perf:9.3f} {cov:9.1%}")
    # More mini-graph issue bandwidth never hurts on average.
    assert rows[2][1] >= rows[0][1] - 0.01


def test_hysteresis_threshold_sweep(benchmark, runner):
    """Slack-Dynamic's disable threshold: rash disabling (low threshold)
    pays outlining penalties; high thresholds tolerate serialization."""
    reduced = reduced_config()

    def run():
        rows = []
        for threshold in (1, 4, 16):
            perf, cov = _mean_rel(runner, ABLATION_PROGRAMS, reduced,
                                  threshold=threshold)
            rows.append((threshold, perf, cov))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'threshold':>10s} {'rel perf':>9s} {'coverage':>9s}")
    for threshold, perf, cov in rows:
        print(f"{threshold:10d} {perf:9.3f} {cov:9.1%}")
    # Coverage retained grows with the threshold.
    assert rows[0][2] <= rows[2][2] + 1e-9


def test_measured_latencies_extension(benchmark, runner):
    """Future-work extension (§5.1 mcf footnote): rule #2 with profiled
    cache-aware latencies. On this population it must never be worse than
    the optimistic model on average, and it can only shrink coverage."""
    reduced = reduced_config()
    programs = ABLATION_PROGRAMS + ["mcf", "gzip"]

    def run():
        rows = []
        for measured in (False, True):
            selector = SlackProfileSelector(measured_latencies=measured)
            perf, cov = _mean_rel(runner, programs, reduced,
                                  selector=selector)
            rows.append((selector.name, perf, cov))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'model':>24s} {'rel perf':>9s} {'coverage':>9s}")
    for name, perf, cov in rows:
        print(f"{name:>24s} {perf:9.3f} {cov:9.1%}")
    (_, perf_nominal, cov_nominal), (_, perf_measured, cov_measured) = rows
    assert cov_measured <= cov_nominal + 1e-9
    assert perf_measured >= perf_nominal - 0.01


def test_mgt_capacity_sweep(benchmark, runner):
    """Finite-MGT sensitivity: templates evicted from a small MGT must be
    re-filled from their outlined bodies at fetch (an L2-latency event)."""
    def run():
        rows = []
        for entries in (2, 8, 32, 512):
            config = reduced_config().scaled(name=f"mgt{entries}",
                                             mgt_entries=entries)
            perf, cov = _mean_rel(runner, ABLATION_PROGRAMS, config,
                                  selector=StructAll())
            rows.append((entries, perf, cov))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'MGT entries':>12s} {'rel perf':>9s} {'coverage':>9s}")
    for entries, perf, cov in rows:
        print(f"{entries:12d} {perf:9.3f} {cov:9.1%}")
    # A full-size MGT is never slower than a tiny one.
    assert rows[-1][1] >= rows[0][1] - 0.005


def test_code_motion_coverage(benchmark, runner):
    """The in-block scheduling pass (minigraph.schedule) de-interleaves
    dataflow chains; measure its effect on coverage and performance."""
    from repro.isa.interp import execute as _execute
    from repro.minigraph import fold_trace, make_plan
    from repro.minigraph.schedule import reschedule
    from repro.pipeline.core import OoOCore

    reduced = reduced_config()

    def run():
        rows = []
        for moved in (False, True):
            cov = perf = 0.0
            for name in ABLATION_PROGRAMS:
                program = runner._bench(name).program("train")
                if moved:
                    program = reschedule(program)
                trace = _execute(program)
                plan = make_plan(program, trace.dynamic_count_of(),
                                 StructAll())
                stats = OoOCore(reduced, fold_trace(trace, plan),
                                warm_caches=True).run()
                base = runner.baseline(name, full_config()).ipc
                cov += stats.coverage
                perf += stats.ipc / base
            n = len(ABLATION_PROGRAMS)
            rows.append(("scheduled" if moved else "original",
                         perf / n, cov / n))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'binary':>10s} {'rel perf':>9s} {'coverage':>9s}")
    for label, perf, cov in rows:
        print(f"{label:>10s} {perf:9.3f} {cov:9.1%}")
    # Code motion must not lose coverage on average.
    assert rows[1][2] >= rows[0][2] - 0.02
