"""Benchmark package."""
