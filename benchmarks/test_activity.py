"""Activity amplification table — the "fewer resources" evidence.

Not a paper figure, but the paper's core premise (§1): mini-graphs
amplify bandwidth and capacity "throughout the pipeline". This bench
quantifies it: per committed original instruction, how many
fetch/rename/issue/commit events and register-file operations each
selector's mini-graphs eliminate on the reduced machine.
"""

from repro.minigraph import SlackProfileSelector, StructAll
from repro.pipeline import reduced_config

from benchmarks.conftest import run_once


def test_activity_amplification(benchmark, runner, population):
    reduced = reduced_config()

    def run():
        events = ("fetch_slots", "rename_ops", "phys_allocations",
                  "iq_insertions", "regfile_reads", "regfile_writes",
                  "commit_slots")
        totals = {"none": dict.fromkeys(events, 0.0),
                  "struct-all": dict.fromkeys(events, 0.0),
                  "slack-profile": dict.fromkeys(events, 0.0)}
        occupancy = dict.fromkeys(totals, 0.0)
        coverage = dict.fromkeys(totals, 0.0)
        for bench in population:
            base = runner.baseline(bench, reduced)
            runs = {
                "none": base,
                "struct-all": runner.run_selector(
                    bench, StructAll(), reduced).stats,
                "slack-profile": runner.run_selector(
                    bench, SlackProfileSelector(), reduced).stats,
            }
            for label, stats in runs.items():
                per = stats.activity.per_instruction(
                    stats.original_committed)
                for event in events:
                    totals[label][event] += per[event]
                occupancy[label] += stats.activity.avg_iq_occupancy
                coverage[label] += stats.coverage
        n = len(population)
        for label in totals:
            for event in totals[label]:
                totals[label][event] /= n
            occupancy[label] /= n
            coverage[label] /= n
        return totals, occupancy, coverage

    totals, occupancy, coverage = run_once(benchmark, run)
    print()
    print(f"{'event/inst':>18s} {'no-MG':>8s} {'struct-all':>11s} "
          f"{'slack-profile':>14s}")
    for event in totals["none"]:
        print(f"{event:>18s} {totals['none'][event]:8.3f} "
              f"{totals['struct-all'][event]:11.3f} "
              f"{totals['slack-profile'][event]:14.3f}")
    print(f"{'avg IQ occupancy':>18s} {occupancy['none']:8.2f} "
          f"{occupancy['struct-all']:11.2f} "
          f"{occupancy['slack-profile']:14.2f}")
    print(f"{'coverage':>18s} {coverage['none']:8.1%} "
          f"{coverage['struct-all']:11.1%} "
          f"{coverage['slack-profile']:14.1%}")

    # Every book-keeping event shrinks under mini-graphs.
    for label in ("struct-all", "slack-profile"):
        for event in ("fetch_slots", "rename_ops", "phys_allocations",
                      "iq_insertions", "commit_slots", "regfile_writes"):
            assert totals[label][event] < totals["none"][event], \
                (label, event)
    # Note: average IQ *occupancy* can rise even as insertions fall —
    # handles wait for all of their external inputs (serialization), so
    # per-entry residency grows. The capacity amplification claim is about
    # entries consumed per instruction, which the assertion above covers.
    print(f"\n(IQ entries/inst fall "
          f"{1 - totals['struct-all']['iq_insertions']:.0%} under "
          f"struct-all; residency effects keep occupancy at "
          f"{occupancy['struct-all']:.2f} vs {occupancy['none']:.2f})")
