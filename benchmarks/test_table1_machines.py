"""TAB1 — machine-configuration characterization (paper Table 1).

Table 1 is a configuration table, not a results table; this bench
characterizes the simulated machines so the reduction's cost is visible:
baseline IPC per configuration over the population, plus the §3.1 sizing
claim (the baseline sits at the performance "knee": growing the IQ and
register file further buys almost nothing).
"""

from repro.pipeline import full_config, reduced_config

from benchmarks.conftest import run_once


def test_table1_machine_characterization(benchmark, runner, population):
    full = full_config()
    reduced = reduced_config()
    # The paper's knee check: 40 IQ entries / 164 regs gains only ~1.5%.
    enlarged = full.scaled(name="enlarged", issue_queue=40, phys_regs=164)

    def run():
        rows = []
        for bench in population:
            ipc_full = runner.baseline(bench, full).ipc
            ipc_reduced = runner.baseline(bench, reduced).ipc
            ipc_large = runner.baseline(bench, enlarged).ipc
            rows.append((bench.name, ipc_full, ipc_reduced, ipc_large))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'program':>14s} {'full':>7s} {'reduced':>8s} {'enlarged':>9s} "
          f"{'red/full':>9s}")
    for name, ipc_full, ipc_reduced, ipc_large in rows:
        print(f"{name:>14s} {ipc_full:7.3f} {ipc_reduced:8.3f} "
              f"{ipc_large:9.3f} {ipc_reduced / ipc_full:9.3f}")

    mean_loss = sum(r[2] / r[1] for r in rows) / len(rows)
    mean_knee = sum(r[3] / r[1] for r in rows) / len(rows)
    print(f"\nreduced/full mean: {mean_loss:.3f} (paper: 0.82)")
    print(f"enlarged/full mean: {mean_knee:.3f} (paper: ~1.015)")

    assert mean_loss < 0.95          # the reduction costs real performance
    assert 0.98 < mean_knee < 1.06   # the baseline sits near the knee
