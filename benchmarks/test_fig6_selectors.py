"""FIG6 — serialization-aware selection (paper Figure 6) + §3.2/§5.1
coverage numbers.

All five selectors on the reduced machine (top), the full machine
(middle), and their coverage (bottom). Shape targets: Slack-Profile is
the best selector on both machines; Struct-Bounded behaves like a
shifted Struct-All; coverage ordering is
none ≤ bounded ≤ slack-profile ≤ all, with slack-dynamic near bounded.
"""

from repro.harness.experiments import fig6
from repro.harness.scurve import summarize

from benchmarks.conftest import run_once


def test_fig6_selectors(benchmark, runner, population):
    result = run_once(benchmark, lambda: fig6(runner, population))
    print()
    for group, curves in result.groups.items():
        print(f"--- {group} ---")
        print(summarize(curves))

    reduced = {c.label: c for c in
               result.groups["performance on reduced (rel. full baseline)"]}
    full = {c.label: c for c in
            result.groups["performance on full (rel. full baseline)"]}
    coverage = {c.label: c for c in result.groups["coverage"]}

    # Slack-Profile leads every other selector on both machines (mean).
    for other in ("struct-all", "struct-none", "struct-bounded",
                  "slack-dynamic"):
        assert reduced["slack-profile"].mean >= reduced[other].mean - 0.015
        assert full["slack-profile"].mean >= full[other].mean - 0.015

    # Struct-Bounded admits fewer pathologies than Struct-All: the paper
    # counts 12 vs 29 degraded programs on the full machine (§5.1); assert
    # the *count* of clearly degraded programs does not grow. (Bounded harm
    # is still harm — the worst single program may differ.)
    all_degraded = full["struct-all"].fraction_below(0.99)
    bounded_degraded = full["struct-bounded"].fraction_below(0.99)
    print(f"\ndegraded on full machine: struct-all {all_degraded:.0%}, "
          f"struct-bounded {bounded_degraded:.0%}")
    assert bounded_degraded <= all_degraded + 0.10

    # Coverage ordering (paper: 38 / 20 / 30 / 34 / 30 %).
    assert coverage["struct-all"].mean >= coverage["slack-profile"].mean - 0.02
    assert coverage["slack-profile"].mean >= coverage["struct-none"].mean
    assert coverage["struct-bounded"].mean >= coverage["struct-none"].mean
    assert coverage["struct-all"].mean >= coverage["struct-bounded"].mean
    print("\ncoverage means: " + "  ".join(
        f"{name}={curve.mean:.1%}" for name, curve in coverage.items()))
