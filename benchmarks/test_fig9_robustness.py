"""FIG9 — robustness of slack profiles (paper Figure 9).

Top: profiles cross-trained on a 2-way machine, an 8-way machine, and a
quarter-size data-memory machine, applied on the reduced machine.
Bottom: profiles cross-trained on the ``ref`` input, applied to ``train``
runs. Shape target: cross-trained means stay within a few percent of the
self-trained mean (the paper reports <2% absolute for inputs).
"""

from repro.harness.experiments import fig9_inputs, fig9_machines
from repro.harness.scurve import summarize

from benchmarks.conftest import run_once


def test_fig9_machine_robustness(benchmark, runner, population):
    # The paper's top graph uses MediaBench + CommBench programs.
    media_comm = [b for b in population if b.suite in ("media", "comm")] \
        or population[:6]
    result = run_once(benchmark, lambda: fig9_machines(runner, media_comm))
    print()
    for group, curves in result.groups.items():
        print(f"--- {group} ---")
        print(summarize(curves))
    for note in result.notes:
        print(note)

    curves = next(iter(result.groups.values()))
    self_curve = next(c for c in curves if c.label.startswith("self"))
    for curve in curves:
        assert abs(curve.mean - self_curve.mean) < 0.05, curve.label


def test_fig9_input_robustness(benchmark, runner, population):
    # The paper's bottom graph uses SPECint + MiBench programs.
    spec_embedded = [b for b in population
                     if b.suite in ("spec", "embedded")] or population[:6]
    result = run_once(benchmark, lambda: fig9_inputs(runner, spec_embedded))
    print()
    for group, curves in result.groups.items():
        print(f"--- {group} ---")
        print(summarize(curves))
    for note in result.notes:
        print(note)

    curves = next(iter(result.groups.values()))
    self_curve, cross_curve = curves
    assert abs(cross_curve.mean - self_curve.mean) < 0.04
