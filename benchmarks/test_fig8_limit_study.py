"""FIG8 — exhaustive limit study on the ADPCM coder (paper Figure 8).

All 2^10 subsets of the 10 most frequent non-overlapping candidates are
evaluated on the reduced machine; each selector's choice is placed on the
coverage/performance scatter. Shape targets: Struct-All occupies the
right-most (max coverage) point; Struct-None is the least-coverage
selector; the slack-based selectors land near the exhaustive best's
performance.

Set ``REPRO_BENCH_FIG8_FULL=1`` for the complete 1024-subset sweep
(default sweeps 256 subsets).
"""

import os

from repro.analysis import run_limit_study
from repro.harness.plot import plot_scatter

from benchmarks.conftest import run_once


def test_fig8_limit_study(benchmark, runner):
    cap = None if os.environ.get("REPRO_BENCH_FIG8_FULL") else 256
    result = run_once(benchmark,
                      lambda: run_limit_study(runner, subset_cap=cap))
    print()
    print(result.render())
    print()
    print(plot_scatter(
        [(p.coverage, p.relative_ipc) for p in result.points],
        highlights={name: (pt.coverage, pt.relative_ipc)
                    for name, pt in result.selector_points.items()},
        title="Figure 8 (terminal rendering)",
        xlabel="coverage", ylabel="relative performance"))

    points = result.selector_points
    struct_all = points["struct-all"]
    struct_none = points["struct-none"]

    # Struct-All includes all 10 candidates: right-most point.
    assert struct_all.mask == (1 << 10) - 1
    for point in points.values():
        assert point.coverage <= struct_all.coverage + 1e-9

    # Struct-None has the lowest coverage among the static selectors.
    for name in ("struct-all", "struct-bounded", "slack-profile"):
        assert struct_none.coverage <= points[name].coverage + 1e-9

    # The slack selectors reach within a few percent of the best subset
    # found by the (possibly truncated) exhaustive sweep.
    best = result.best
    assert points["slack-profile"].relative_ipc >= best.relative_ipc - 0.06

    # The empty set reproduces the no-mini-graph baseline.
    assert result.empty_set.coverage == 0.0
