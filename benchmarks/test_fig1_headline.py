"""FIG1 — the headline S-curve (paper Figure 1).

Slack-Profile mini-graphs on the reduced machine vs the two naive
selectors, relative to the fully-provisioned baseline. Shape targets:
Slack-Profile's curve dominates both naive selectors and its mean sits
at or above 1.0 (the paper reports +2%).
"""

from repro.harness.experiments import fig1
from repro.harness.plot import plot_scurves
from repro.harness.scurve import render_scurves

from benchmarks.conftest import run_once


def test_fig1_headline(benchmark, runner, population):
    result = run_once(benchmark, lambda: fig1(runner, population))
    print()
    group = "performance on reduced (rel. full baseline)"
    print(render_scurves(result.groups[group], title=result.name))
    print()
    print(plot_scurves(result.groups[group],
                       title="Figure 1 (terminal rendering)",
                       reference=1.0))
    for note in result.notes:
        print(note)

    curves = {c.label: c for c in result.groups[group]}
    no_mg = curves["no-mini-graphs"]
    slack = curves["slack-profile"]
    # The reduced machine alone loses performance; Slack-Profile recovers
    # (nearly) all of it on average and dominates the naive selectors.
    assert no_mg.mean < 0.95
    assert slack.mean >= curves["struct-all"].mean - 0.02
    assert slack.mean >= curves["struct-none"].mean - 0.02
    assert slack.mean >= no_mg.mean + 0.05
