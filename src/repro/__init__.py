"""repro — serialization-aware mini-graphs (MICRO 2006 reproduction).

A from-scratch Python implementation of mini-graph processing on a
cycle-level out-of-order superscalar simulator, with the five mini-graph
selection algorithms of Bracy & Roth, *Serialization-Aware Mini-Graphs:
Performance with Fewer Resources* (MICRO 2006), and harnesses regenerating
every figure of the paper's evaluation.

Quickstart::

    from repro import isa, pipeline, minigraph
    from repro.harness import run_program
"""

__version__ = "1.0.0"

from . import isa, minigraph, pipeline  # noqa: F401

__all__ = ["isa", "minigraph", "pipeline", "__version__"]
