"""The tuning loop: plan → evaluate (warm) → journal → prune → report.

:func:`run_tune` glues the subsystem together. The search space is
enumerated once; the strategy picks the trial population (and, for
successive halving, the trace-length rung schedule); every evaluation
batch goes through the :class:`~repro.tune.evaluate.Evaluator` (DAG
scheduler + artifact store, so overlap is warm); each finished trial is
journaled to the :class:`~repro.tune.ledger.TuneLedger` before the next
one runs; completed trials replay from the ledger without touching the
simulator at all. The final-rung results reduce to a Pareto frontier.

Determinism contract (tested): same space, strategy, seed, and trace
budget → the same trials in the same order, the same objectives, and
the same frontier — on a warm store or ledger, with zero recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..harness.runner import DEFAULT_MAX_INSTS
from .evaluate import Evaluator, TrialEval
from .ledger import TuneLedger
from .pareto import OBJECTIVES, pareto_front
from .report import render_table
from .space import SearchSpace, Trial
from .strategies import (
    STRATEGIES, halving_rungs, plan_grid, plan_random, survivors,
)


@dataclass
class TuneStats:
    """Counters for one search (exported as ``tune.*`` metrics)."""

    space_trials: int = 0          # enumerated by the space
    planned_trials: int = 0        # selected by the strategy
    evaluations: int = 0           # (trial, rung) evaluations run now
    resumed: int = 0               # (trial, rung) replayed from ledger
    rungs: int = 0                 # rung count (1 for grid/random)
    frontier_size: int = 0
    dominated: int = 0
    store_hits: int = 0            # artifact-store hits during the search
    store_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"space_trials": self.space_trials,
                "planned_trials": self.planned_trials,
                "evaluations": self.evaluations,
                "resumed": self.resumed,
                "rungs": self.rungs,
                "frontier_size": self.frontier_size,
                "dominated": self.dominated,
                "store_hits": self.store_hits,
                "store_misses": self.store_misses}


@dataclass
class TuneResult:
    """Everything a finished search produced."""

    space: SearchSpace
    strategy: str
    evals: List[TrialEval]             # final-rung results, planned order
    frontier: List[TrialEval]
    dominated: List[TrialEval]
    stats: TuneStats
    ledger_path: Optional[str] = None

    def render(self) -> str:
        lines = [render_table(self.evals, self.frontier)]
        s = self.stats
        lines.append(
            f"tune: {s.planned_trials}/{s.space_trials} trials planned, "
            f"{s.evaluations} evaluated, {s.resumed} resumed from ledger, "
            f"{s.rungs} rung(s)")
        return "\n".join(lines)


def _runner_doc(budget: int, max_insts: int) -> Dict[str, Any]:
    """Runner parameters a ledger pins (objective-shaping knobs only)."""
    return {"budget": budget, "max_insts": max_insts}


def run_tune(space: SearchSpace,
             strategy: str = "grid",
             trials: Optional[int] = None,
             seed: int = 0,
             store=None,
             budget: int = 512,
             jobs: int = 1,
             threads: int = 0,
             max_insts: int = DEFAULT_MAX_INSTS,
             halving_eta: int = 2,
             halving_min_insts: int = 50_000,
             ledger_path=None,
             resume: bool = False,
             log: Optional[Callable[[str], None]] = None) -> TuneResult:
    """Run one search over ``space``; see the module doc for the shape.

    ``trials`` caps the planned population (mandatory for ``random``,
    an optional truncation for the others). ``ledger_path`` enables the
    journal; with ``resume`` an existing compatible ledger's completed
    trials are skipped outright.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} "
                         f"(choose from {', '.join(STRATEGIES)})")
    say = log if log is not None else (lambda _line: None)
    all_trials = space.enumerate()
    if strategy == "random":
        planned = plan_random(all_trials, seed,
                              trials if trials is not None
                              else len(all_trials))
    else:
        planned = plan_grid(all_trials)
        if trials is not None:
            planned = planned[:max(1, trials)]
    stats = TuneStats(space_trials=len(all_trials),
                      planned_trials=len(planned))

    evaluator = Evaluator(store=store, budget=budget, jobs=jobs,
                          threads=threads)
    ledger: Optional[TuneLedger] = None
    completed: Dict[Tuple[str, int], TrialEval] = {}
    if ledger_path is not None:
        from ..exec.store import code_version
        ledger, completed = TuneLedger.open(
            ledger_path, space.digest(), code_version(),
            _runner_doc(budget, max_insts), resume=resume)
        if completed:
            say(f"tune: ledger replays {len(completed)} completed "
                "evaluation(s)")

    store_obj = store
    hits0 = store_obj.stats.hits if store_obj is not None else 0
    misses0 = store_obj.stats.misses if store_obj is not None else 0

    def evaluate_rung(population: List[Trial],
                      rung: int) -> Dict[str, TrialEval]:
        """Ledger-aware batch evaluation at one trace length."""
        pending = [t for t in population
                   if (t.trial_id, rung) not in completed]
        stats.resumed += len(population) - len(pending)
        if pending:
            say(f"tune: evaluating {len(pending)} trial(s) at "
                f"max_insts={rung} "
                f"({len(population) - len(pending)} from ledger)")
        fresh = evaluator.evaluate(pending, space.benchmarks,
                                   space.input_name, rung)
        stats.evaluations += len(fresh)
        for trial in pending:            # planned order, journaled as done
            entry = fresh[trial.trial_id]
            completed[(trial.trial_id, rung)] = entry
            if ledger is not None:
                ledger.record(entry)
        return {t.trial_id: completed[(t.trial_id, rung)]
                for t in population}

    try:
        if strategy == "halving":
            rungs = halving_rungs(max_insts, eta=halving_eta,
                                  min_insts=halving_min_insts)
            stats.rungs = len(rungs)
            population = planned
            for rung in rungs[:-1]:
                results = evaluate_rung(population, rung)
                ranked = sorted(
                    population,
                    key=lambda t: (-results[t.trial_id].ipc_norm,
                                   t.trial_id))
                population = survivors(ranked, halving_eta)
                say(f"tune: rung max_insts={rung} promotes "
                    f"{len(population)} trial(s)")
            final = evaluate_rung(population, rungs[-1])
            evals = [final[t.trial_id] for t in planned
                     if t.trial_id in final]
        else:
            stats.rungs = 1
            final = evaluate_rung(planned, max_insts)
            evals = [final[t.trial_id] for t in planned]
    finally:
        if ledger is not None:
            ledger.close()

    frontier, dominated = pareto_front(evals, OBJECTIVES)
    stats.frontier_size = len(frontier)
    stats.dominated = len(dominated)
    if store_obj is not None:
        stats.store_hits = store_obj.stats.hits - hits0
        stats.store_misses = store_obj.stats.misses - misses0
    return TuneResult(space=space, strategy=strategy, evals=evals,
                      frontier=frontier, dominated=dominated, stats=stats,
                      ledger_path=str(ledger_path)
                      if ledger_path is not None else None)
