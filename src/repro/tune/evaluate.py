"""Trial evaluation through the DAG scheduler and artifact store.

A batch of trials expands to grid :class:`~repro.exec.grid.Point`\\ s —
one selector timing run per (trial, benchmark) plus the per-config
baselines every relative-IPC number normalizes against — and goes
through :func:`repro.exec.grid.run_points` exactly like ``repro
experiments``: ``--jobs N`` fans out worker processes over a persistent
store, ``--jobs threads:N`` keeps the run in-process and turns each
scheduler wave into one batched native kernel call. Afterwards the
(serial) reduction replays the same calls through the Runner and finds
every artifact already present, so objectives come from full
:class:`~repro.harness.runner.SelectorRun` objects at warm-hit cost.

Repeated or overlapping trials — across batches, strategies, rungs with
the same trace length, or whole re-runs — hit the store rather than the
simulator; that is what makes exhaustive search affordable and
``--resume`` exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..exec.grid import baseline_point, run_points, selector_point
from ..harness.runner import Runner
from ..pipeline.config import config_by_name
from .space import Trial

#: Objective direction summary (see :mod:`repro.tune.pareto`):
#: coverage and relative IPC are maximized, read-port demand minimized.


@dataclass(frozen=True)
class TrialEval:
    """Objectives for one trial at one trace length (``rung``)."""

    trial_id: str
    selector: Dict[str, Any]
    display_name: str
    config: str
    rung: int                       # max_insts this evaluation ran at
    coverage: float                 # mean dynamic coverage across benches
    ipc_norm: float                 # mean IPC relative to same-config baseline
    read_ports: float               # mean freq-weighted ext-input demand
    per_bench: List[Dict[str, Any]] = field(default_factory=list)

    def to_doc(self) -> Dict[str, Any]:
        return {"trial": self.trial_id, "selector": self.selector,
                "display_name": self.display_name, "config": self.config,
                "rung": self.rung, "coverage": self.coverage,
                "ipc_norm": self.ipc_norm, "read_ports": self.read_ports,
                "per_bench": self.per_bench}

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "TrialEval":
        return cls(trial_id=doc["trial"], selector=doc["selector"],
                   display_name=doc["display_name"], config=doc["config"],
                   rung=int(doc["rung"]), coverage=float(doc["coverage"]),
                   ipc_norm=float(doc["ipc_norm"]),
                   read_ports=float(doc["read_ports"]),
                   per_bench=list(doc.get("per_bench", [])))


def plan_read_ports(plan) -> float:
    """Frequency-weighted mean read-port demand of a plan's sites.

    Each selected site reads ``len(candidate.ext_inputs)`` external
    registers through PRF read ports at dispatch; weighting by profiled
    site frequency makes this the *dynamic* port pressure the plan puts
    on a read-port-reduction scheme. Plans that select nothing demand
    nothing.
    """
    total = sum(site.frequency for site in plan.sites)
    if not total:
        return 0.0
    weighted = sum(len(site.candidate.ext_inputs) * site.frequency
                   for site in plan.sites)
    return weighted / total


class Evaluator:
    """Evaluates trial batches against one artifact store."""

    def __init__(self, store=None, budget: int = 512,
                 jobs: int = 1, threads: int = 0,
                 log: Optional[Any] = None):
        self.store = store
        self.budget = budget
        self.jobs = jobs
        self.threads = threads
        self.log = log

    def runner_for(self, max_insts: int) -> Runner:
        """A Runner at one trace length, over the shared store."""
        kwargs = {"budget": self.budget, "max_insts": max_insts}
        if self.store is not None:
            kwargs["store"] = self.store
        return Runner(**kwargs)

    def evaluate(self, trials: Sequence[Trial],
                 benchmarks: Sequence[str], input_name: str,
                 max_insts: int) -> Dict[str, TrialEval]:
        """Evaluate ``trials`` at ``max_insts``; returns by trial id.

        One ``run_points`` call covers the whole batch, so the DAG
        scheduler deduplicates shared traces/candidates/profiles across
        trials and the batched dispatcher packs every ready timing node
        of a wave into one native call.
        """
        if not trials:
            return {}
        runner = self.runner_for(max_insts)
        points = []
        for config in dict.fromkeys(trial.config for trial in trials):
            points.extend(baseline_point(bench, config, input_name)
                          for bench in benchmarks)
        for trial in trials:
            points.extend(
                selector_point(bench, trial.selector_spec, trial.config,
                               input_name)
                for bench in benchmarks)
        run_points(runner, points, jobs=self.jobs, threads=self.threads,
                   raise_on_failure=True)
        results: Dict[str, TrialEval] = {}
        for trial in trials:
            results[trial.trial_id] = self._reduce(
                runner, trial, benchmarks, input_name, max_insts)
        return results

    def _reduce(self, runner: Runner, trial: Trial,
                benchmarks: Sequence[str], input_name: str,
                max_insts: int) -> TrialEval:
        """Replay one trial through the warm store into objectives."""
        from ..exec.tasks import selector_from_spec
        config = config_by_name(trial.config)
        per_bench: List[Dict[str, Any]] = []
        coverages: List[float] = []
        ratios: List[float] = []
        ports: List[float] = []
        for bench in benchmarks:
            selector = selector_from_spec(trial.selector_spec)
            base = runner.baseline(bench, config, input_name)
            run = runner.run_selector(bench, selector, config,
                                      input_name=input_name)
            ratio = run.ipc / base.ipc if base.ipc else 0.0
            demand = plan_read_ports(run.plan)
            per_bench.append({"bench": bench, "ipc": run.ipc,
                              "baseline_ipc": base.ipc,
                              "ipc_norm": ratio,
                              "coverage": run.coverage,
                              "read_ports": demand,
                              "templates": run.plan.n_templates})
            coverages.append(run.coverage)
            ratios.append(ratio)
            ports.append(demand)
        n = len(benchmarks)
        return TrialEval(
            trial_id=trial.trial_id, selector=trial.selector_spec,
            display_name=trial.display_name, config=trial.config,
            rung=max_insts,
            coverage=sum(coverages) / n, ipc_norm=sum(ratios) / n,
            read_ports=sum(ports) / n, per_bench=per_bench)
