"""Pareto reduction: dominated-point pruning over trial objectives.

The tuner's result is not one winner but a frontier: the set of trials
no other trial beats on *every* objective. Objectives carry a sense —
coverage and relative IPC are maximized, read-port demand is minimized
— and a trial dominates another when it is at least as good everywhere
and strictly better somewhere. The frontier is exactly the undominated
set, so by construction it can contain no dominated point (the property
the test suite checks directly).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: ``(attribute, sense)`` pairs over :class:`~repro.tune.evaluate.TrialEval`.
OBJECTIVES: Tuple[Tuple[str, str], ...] = (
    ("coverage", "max"),
    ("ipc_norm", "max"),
    ("read_ports", "min"),
)


def _vector(entry, objectives) -> Tuple[float, ...]:
    """Objective values oriented so that *larger is always better*."""
    values = []
    for name, sense in objectives:
        value = getattr(entry, name) if hasattr(entry, name) \
            else entry[name]
        values.append(value if sense == "max" else -value)
    return tuple(values)


def dominates(a, b, objectives: Sequence[Tuple[str, str]] = OBJECTIVES
              ) -> bool:
    """Whether ``a`` Pareto-dominates ``b``."""
    va, vb = _vector(a, objectives), _vector(b, objectives)
    return all(x >= y for x, y in zip(va, vb)) and va != vb


def pareto_front(entries: Sequence,
                 objectives: Sequence[Tuple[str, str]] = OBJECTIVES
                 ) -> Tuple[List, List]:
    """Split entries into ``(frontier, dominated)``.

    Entries with identical objective vectors all stay on the frontier
    (they are genuinely interchangeable, and dropping one would make
    the output depend on input order). Both lists preserve input order.
    """
    frontier, dominated = [], []
    for entry in entries:
        if any(dominates(other, entry, objectives)
               for other in entries if other is not entry):
            dominated.append(entry)
        else:
            frontier.append(entry)
    return frontier, dominated


def crowding_order(frontier: Sequence,
                   objectives: Sequence[Tuple[str, str]] = OBJECTIVES
                   ) -> List:
    """Frontier sorted for reporting: best relative IPC first.

    Ties broken by coverage, then read-port demand, then trial id, so
    tables are stable across runs and platforms.
    """
    def key(entry):
        vec = _vector(entry, objectives)
        names = [name for name, _ in objectives]
        ipc = vec[names.index("ipc_norm")] if "ipc_norm" in names else 0.0
        return (-ipc, tuple(-v for v in vec),
                getattr(entry, "trial_id", ""))
    return sorted(frontier, key=key)


def frontier_docs(frontier: Sequence) -> List[Dict]:
    """JSON documents for a frontier (reports, committed artifacts)."""
    return [entry.to_doc() for entry in crowding_order(frontier)]
