"""Tuning ledger: a JSONL journal of completed trials.

Same discipline as the run ledger (:mod:`repro.dist.ledger`): one
header line pinning the search space (content digest), the runner
parameters that shape objectives, and the code-version salt; then one
line per completed trial evaluation, appended and flushed as each one
finishes. ``repro tune --resume`` replays the file and schedules only
trials with no journaled result at their trace length — a SIGKILL
mid-search costs at most the one in-flight trial, and re-running a
finished search schedules nothing.

Replay is defensive: a torn tail line (the interrupted final write) is
ignored, duplicate records are idempotent (last wins), and a header
whose space digest or salt disagrees with the current invocation is
refused — results computed by different code or for a different space
must never silently leak into a frontier.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, IO, Optional, Tuple

from .evaluate import TrialEval

TUNE_LEDGER_VERSION = 1


class TuneLedgerError(RuntimeError):
    """Unusable tuning ledger: bad header, version skew, or a
    space/salt mismatch against the resuming invocation."""


class TuneLedger:
    """Append-only journal of trial evaluations for one search."""

    def __init__(self, path: os.PathLike, header: Dict[str, Any],
                 handle: IO[str]):
        self.path = Path(path)
        self.header = header
        self._handle = handle

    @staticmethod
    def _header(space_digest: str, salt: str,
                runner: Dict[str, Any]) -> Dict[str, Any]:
        return {"type": "tune", "version": TUNE_LEDGER_VERSION,
                "created": time.time(), "space": space_digest,
                "salt": salt, "runner": dict(runner)}

    @classmethod
    def create(cls, path: os.PathLike, space_digest: str, salt: str,
               runner: Dict[str, Any]) -> "TuneLedger":
        """Start a fresh ledger (truncating any previous file)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "w", encoding="utf-8")
        ledger = cls(path, cls._header(space_digest, salt, runner), handle)
        ledger._append(ledger.header)
        return ledger

    @classmethod
    def resume(cls, path: os.PathLike, space_digest: str, salt: str,
               runner: Dict[str, Any]
               ) -> Tuple["TuneLedger", Dict[Tuple[str, int], TrialEval]]:
        """Reopen ``path`` and replay completed trials.

        Returns ``(ledger, completed)`` where ``completed`` maps
        ``(trial_id, rung)`` to its journaled evaluation. Raises
        :class:`TuneLedgerError` when the file's header pins a
        different space, salt, or runner parameter set — those results
        are not comparable and must not be reused.
        """
        try:
            lines = Path(path).read_text(encoding="utf-8").splitlines()
        except OSError as error:
            raise TuneLedgerError(
                f"cannot read tuning ledger {path}: {error}") from error
        header: Optional[Dict[str, Any]] = None
        completed: Dict[Tuple[str, int], TrialEval] = {}
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue        # torn tail from a killed writer
            if not isinstance(record, dict):
                continue
            if record.get("type") == "tune":
                if record.get("version") != TUNE_LEDGER_VERSION:
                    raise TuneLedgerError(
                        f"tuning ledger version {record.get('version')!r} "
                        f"!= {TUNE_LEDGER_VERSION} (start a fresh ledger)")
                header = record
            elif record.get("type") == "trial":
                try:
                    entry = TrialEval.from_doc(record)
                except (KeyError, TypeError, ValueError):
                    continue    # torn or foreign record
                completed[(entry.trial_id, entry.rung)] = entry
        if header is None:
            raise TuneLedgerError(
                f"{path} has no tune header — not a tuning ledger")
        for field, ours in (("space", space_digest), ("salt", salt),
                            ("runner", dict(runner))):
            if header.get(field) != ours:
                raise TuneLedgerError(
                    f"tuning ledger {path} was written for a different "
                    f"{field} ({header.get(field)!r} != {ours!r}); "
                    "start a fresh ledger")
        handle = open(path, "a", encoding="utf-8")
        return cls(path, header, handle), completed

    @classmethod
    def open(cls, path: os.PathLike, space_digest: str, salt: str,
             runner: Dict[str, Any], resume: bool
             ) -> Tuple["TuneLedger", Dict[Tuple[str, int], TrialEval]]:
        """``resume`` semantics of ``repro tune``: reuse when asked and
        the file exists, otherwise start fresh."""
        if resume and Path(path).exists():
            return cls.resume(path, space_digest, salt, runner)
        return cls.create(path, space_digest, salt, runner), {}

    # -- journaling -----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def record(self, entry: TrialEval) -> None:
        """Journal one completed trial evaluation."""
        self._append({"type": "trial", "t": time.time(), **entry.to_doc()})

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "TuneLedger":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
