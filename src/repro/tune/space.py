"""Declarative search spaces over selectors × machine configurations.

A space is a JSON-friendly document with three axes::

    {
      "benchmarks": ["crc32", "dijkstra"],
      "input": "train",
      "selectors": [
        {"kind": "struct-all"},
        {"kind": "read-port",
         "port_budget": [0, 1, 2], "pressure_weight": [1.0, 3.0]}
      ],
      "configs": ["full", "reduced"],
      "config_grid": {"base": "reduced", "width": [2, 3]}
    }

Selector entries name a registered family (``kind``) and, optionally,
per-hyperparameter value lists; the entry expands to the cartesian
product of its lists (scalars are singleton lists). ``configs`` lists
configuration spec strings accepted by
:func:`repro.pipeline.config.config_by_name` — named configs or
``base@knob=value`` override specs. ``config_grid`` is a convenience
that expands a knob grid over a named base into override specs.

The same document loads from JSON (always) or TOML (Python ≥ 3.11,
where :mod:`tomllib` exists) via :meth:`SearchSpace.from_file`, or is
assembled from CLI flags via :meth:`SearchSpace.from_cli` with
per-family default grids (:data:`DEFAULT_SELECTOR_GRIDS`).

Enumeration order is deterministic — selectors in listed order, each
grid expanded with hyperparameters in sorted-name order and values in
listed order, crossed with configs in listed order — so a trial list is
a pure function of the space and :meth:`SearchSpace.digest` can pin a
ledger to it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..minigraph.selectors import SELECTOR_FAMILIES, selector_from_spec
from ..pipeline.config import config_by_name

#: Hyperparameter grids used when a CLI flag (or a spec entry with no
#: explicit grid) names a searchable family bare. Knob-free families
#: expand to their single default selector.
DEFAULT_SELECTOR_GRIDS: Dict[str, Dict[str, List[Any]]] = {
    "read-port": {"port_budget": [0, 1, 2], "pressure_weight": [1.0, 3.0]},
    "slack-profile": {"variant": ["full", "delay", "sial"]},
}

DEFAULT_BENCHMARKS = ("crc32", "dijkstra", "mcf")


def _canonical(doc: Any) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Trial:
    """One point of the search space: a selector spec on a config."""

    selector: Tuple[Tuple[str, Any], ...]   # frozen Selector.spec() items
    config: str                             # config spec string

    @property
    def selector_spec(self) -> Dict[str, Any]:
        return {key: value for key, value in self.selector}

    @property
    def trial_id(self) -> str:
        """Content id: stable across processes, orders, and sessions."""
        doc = {"selector": self.selector_spec, "config": self.config}
        return hashlib.sha256(_canonical(doc).encode()).hexdigest()[:16]

    @property
    def display_name(self) -> str:
        return selector_from_spec(self.selector_spec).display_name

    def to_doc(self) -> Dict[str, Any]:
        return {"selector": self.selector_spec, "config": self.config}


def _freeze_spec(spec: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(spec.items()))


def _expand_selector_entry(entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """One spec-file selector entry → concrete selector spec dicts."""
    entry = dict(entry)
    kind = entry.pop("kind", None)
    if kind not in SELECTOR_FAMILIES:
        known = ", ".join(sorted(SELECTOR_FAMILIES))
        raise ValueError(f"unknown selector kind {kind!r} in search space "
                         f"(choose from {known})")
    if not entry:
        entry = dict(DEFAULT_SELECTOR_GRIDS.get(kind, {}))
    names = sorted(entry)
    grids = [entry[name] if isinstance(entry[name], list)
             else [entry[name]] for name in names]
    specs = []
    for values in product(*grids):
        spec = {"kind": kind, **dict(zip(names, values))}
        selector_from_spec(spec)   # raises on bad hyperparameters
        specs.append(spec)
    return specs


def _expand_config_grid(grid: Dict[str, Any]) -> List[str]:
    """``{"base": name, knob: [values]}`` → override spec strings."""
    grid = dict(grid)
    base = grid.pop("base", "reduced")
    if not grid:
        return [base]
    names = sorted(grid)
    lists = [grid[name] if isinstance(grid[name], list) else [grid[name]]
             for name in names]
    specs = []
    for values in product(*lists):
        overrides = ",".join(f"{name}={value}"
                             for name, value in zip(names, values))
        specs.append(f"{base}@{overrides}")
    return specs


@dataclass(frozen=True)
class SearchSpace:
    """A validated, enumerable selector × config search space."""

    selectors: Tuple[Tuple[Tuple[str, Any], ...], ...]  # frozen spec items
    configs: Tuple[str, ...]
    benchmarks: Tuple[str, ...] = DEFAULT_BENCHMARKS
    input_name: str = "train"

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "SearchSpace":
        """Validate and normalize a space document (see module doc)."""
        if not isinstance(doc, dict):
            raise ValueError("search space must be a JSON/TOML object")
        unknown = set(doc) - {"selectors", "configs", "config_grid",
                              "benchmarks", "input"}
        if unknown:
            raise ValueError("unknown search-space field(s): "
                             + ", ".join(sorted(unknown)))
        entries = doc.get("selectors") or [{"kind": "struct-all"}]
        specs: List[Dict[str, Any]] = []
        for entry in entries:
            if isinstance(entry, str):
                entry = {"kind": entry}
            specs.extend(_expand_selector_entry(entry))
        configs = [str(c) for c in (doc.get("configs") or [])]
        if doc.get("config_grid"):
            configs.extend(_expand_config_grid(doc["config_grid"]))
        if not configs:
            configs = ["reduced"]
        for config in configs:
            config_by_name(config)   # raises on bad spec strings
        benchmarks = tuple(doc.get("benchmarks") or DEFAULT_BENCHMARKS)
        if not benchmarks:
            raise ValueError("search space lists no benchmarks")
        # Dedup either axis, preserving first-seen order.
        frozen = list(dict.fromkeys(_freeze_spec(s) for s in specs))
        configs = list(dict.fromkeys(configs))
        return cls(selectors=tuple(frozen), configs=tuple(configs),
                   benchmarks=benchmarks,
                   input_name=str(doc.get("input", "train")))

    @classmethod
    def from_file(cls, path) -> "SearchSpace":
        """Load a space from ``.json`` or ``.toml``."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError:
                raise ValueError(
                    f"cannot load {path}: TOML spaces need Python >= 3.11 "
                    "(tomllib); use the JSON form instead") from None
            try:
                doc = tomllib.loads(text)
            except tomllib.TOMLDecodeError as error:
                raise ValueError(f"bad TOML in {path}: {error}") from None
        else:
            try:
                doc = json.loads(text)
            except json.JSONDecodeError as error:
                raise ValueError(f"bad JSON in {path}: {error}") from None
        return cls.from_doc(doc)

    @classmethod
    def from_cli(cls, selectors: Sequence[str], configs: Sequence[str],
                 benchmarks: Optional[Sequence[str]] = None,
                 input_name: str = "train") -> "SearchSpace":
        """Assemble a space from flag values with the default grids."""
        return cls.from_doc({
            "selectors": [{"kind": kind} for kind in selectors],
            "configs": list(configs),
            "benchmarks": list(benchmarks or DEFAULT_BENCHMARKS),
            "input": input_name,
        })

    def to_doc(self) -> Dict[str, Any]:
        return {"selectors": [dict(items) for items in self.selectors],
                "configs": list(self.configs),
                "benchmarks": list(self.benchmarks),
                "input": self.input_name}

    def digest(self) -> str:
        """Content digest pinning ledgers to one exact space."""
        return hashlib.sha256(_canonical(self.to_doc()).encode()) \
            .hexdigest()[:16]

    def enumerate(self) -> List[Trial]:
        """All trials, deterministically ordered and deduplicated."""
        trials = [Trial(selector=spec, config=config)
                  for spec in self.selectors for config in self.configs]
        seen: Dict[str, Trial] = {}
        for trial in trials:
            seen.setdefault(trial.trial_id, trial)
        return list(seen.values())

    def __len__(self) -> int:
        return len(self.enumerate())
