"""Tuning reports: frontier tables, PNG scatter, committed artifacts.

Three renderings of one result:

* :func:`render_table` — the terminal report: every final-rung trial
  with its objectives, frontier members marked ``*`` and listed first.
* :func:`tune_doc` / :func:`write_doc` — the ``benchmarks/``-style JSON
  artifact (schema-versioned, diffable, committed for the seed space).
* :func:`write_plot` — optional coverage-vs-IPC PNG via
  :func:`repro.harness.plot.save_scatter_png` (matplotlib-gated, like
  every other plot in the harness; text tables need no dependency).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .evaluate import TrialEval
from .pareto import OBJECTIVES, crowding_order
from .space import SearchSpace

TUNE_SCHEMA_VERSION = 1


def render_table(evals: Sequence[TrialEval],
                 frontier: Sequence[TrialEval]) -> str:
    """Fixed-width report: frontier first (marked ``*``), then the rest."""
    front_ids = {entry.trial_id for entry in frontier}
    ordered = crowding_order(frontier) + [
        entry for entry in sorted(evals, key=lambda e: (-e.ipc_norm,
                                                        e.trial_id))
        if entry.trial_id not in front_ids]
    name_w = max([len(e.display_name) for e in ordered] + [8])
    conf_w = max([len(e.config) for e in ordered] + [6])
    lines = [f"{'':2s}{'selector':<{name_w}s}  {'config':<{conf_w}s}  "
             f"{'coverage':>8s}  {'ipc_norm':>8s}  {'rd_ports':>8s}"]
    for entry in ordered:
        mark = "* " if entry.trial_id in front_ids else "  "
        lines.append(f"{mark}{entry.display_name:<{name_w}s}  "
                     f"{entry.config:<{conf_w}s}  "
                     f"{entry.coverage:>8.3f}  {entry.ipc_norm:>8.3f}  "
                     f"{entry.read_ports:>8.3f}")
    lines.append(f"frontier: {len(frontier)} of {len(evals)} trials "
                 "(* = Pareto-optimal; coverage/ipc_norm max, "
                 "rd_ports min)")
    return "\n".join(lines)


def tune_doc(space: SearchSpace, evals: Sequence[TrialEval],
             frontier: Sequence[TrialEval],
             stats: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The schema-versioned JSON document for a finished search."""
    front_ids = {entry.trial_id for entry in frontier}
    return {
        "schema_version": TUNE_SCHEMA_VERSION,
        "space": space.to_doc(),
        "space_digest": space.digest(),
        "objectives": [list(pair) for pair in OBJECTIVES],
        "trials": [dict(entry.to_doc(),
                        frontier=entry.trial_id in front_ids)
                   for entry in sorted(evals,
                                       key=lambda e: e.trial_id)],
        "frontier": [entry.trial_id
                     for entry in crowding_order(frontier)],
        "stats": dict(stats or {}),
    }


def write_doc(path, doc: Dict[str, Any]) -> str:
    """Write the artifact with a trailing newline (diff-friendly)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return str(path)


def load_doc(path) -> Dict[str, Any]:
    """Read an artifact back, checking the schema version."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema_version") != TUNE_SCHEMA_VERSION:
        raise ValueError(
            f"tune artifact {path} has schema "
            f"{doc.get('schema_version')!r}, expected "
            f"{TUNE_SCHEMA_VERSION}")
    return doc


def write_plot(path, evals: Sequence[TrialEval],
               frontier: Sequence[TrialEval]) -> str:
    """Coverage-vs-relative-IPC scatter; frontier points labelled.

    Raises ``ValueError`` when matplotlib is absent — callers surface
    it as the CLI's one-line error, and the text table still printed.
    """
    from ..harness.plot import save_scatter_png
    front_ids = {entry.trial_id for entry in frontier}
    cloud = [(entry.coverage, entry.ipc_norm) for entry in evals
             if entry.trial_id not in front_ids]
    highlights = {f"{entry.display_name} @ {entry.config}":
                  (entry.coverage, entry.ipc_norm)
                  for entry in crowding_order(frontier)}
    return str(save_scatter_png(
        cloud, path, highlights=highlights,
        title="tune: coverage vs relative IPC (frontier labelled)",
        xlabel="dynamic coverage", ylabel="IPC / baseline IPC"))


def summarize(evals: Sequence[TrialEval]) -> List[str]:
    """One-line-per-trial progress summaries for logs."""
    return [f"{entry.display_name} @ {entry.config}: "
            f"cov {entry.coverage:.3f}, ipc {entry.ipc_norm:.3f}, "
            f"ports {entry.read_ports:.3f}" for entry in evals]
