"""Search strategies: which trials run, in what order, at what length.

Three strategies, all deterministic functions of (space, seed):

* ``grid`` — exhaustive: every enumerated trial, in enumeration order.
* ``random`` — a seeded sample without replacement; ``n`` caps the
  trial count (a larger ``n`` keeps the smaller sample as its prefix,
  so raising ``--trials`` only *adds* work on a warm store).
* ``halving`` — successive halving: all trials start on a short trace
  (a fraction of ``max_insts``); each rung promotes the top ``1/eta``
  by relative IPC to a longer trace until the survivors get the full
  evaluation. Cheap rungs prune the space before expensive ones.

Strategies only *plan*; the tuner owns evaluation and ledger replay.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .space import Trial

STRATEGIES = ("grid", "random", "halving")


def plan_grid(trials: Sequence[Trial]) -> List[Trial]:
    """Exhaustive search: everything, in enumeration order."""
    return list(trials)


def plan_random(trials: Sequence[Trial], seed: int,
                n: int) -> List[Trial]:
    """Seeded sample of ``n`` trials without replacement.

    The sample is *incremental in n*: a shuffled order is drawn once
    from the seed and ``n`` takes its prefix, so ``--trials 4`` and
    ``--trials 8`` on the same seed agree on the first four.
    """
    if n < 1:
        raise ValueError(f"random strategy needs trials >= 1, got {n}")
    order = sorted(trials, key=lambda t: t.trial_id)
    random.Random(seed).shuffle(order)
    return order[:min(n, len(order))]


def halving_rungs(max_insts: int, eta: int = 2,
                  min_insts: int = 50_000) -> List[int]:
    """Geometric ``max_insts`` schedule ending at the full budget.

    ``[max_insts / eta^k, ..., max_insts / eta, max_insts]`` with the
    first rung clamped to ``min_insts`` — short traces are only worth
    scheduling while they stay meaningfully cheaper than the full one.
    """
    if eta < 2:
        raise ValueError(f"halving eta must be >= 2, got {eta}")
    rungs = [max_insts]
    while rungs[0] // eta >= max(1, min_insts):
        rungs.insert(0, rungs[0] // eta)
    return rungs


def survivors(ranked: Sequence[Trial], eta: int) -> List[Trial]:
    """The top ``ceil(n / eta)`` of an already-ranked rung population."""
    keep = max(1, -(-len(ranked) // eta))
    return list(ranked[:keep])
