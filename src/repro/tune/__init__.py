"""Design-space autotuner: selectors × machine configs → Pareto frontiers.

The paper evaluates five hand-chosen selectors at a handful of machine
configurations. This package searches that space instead: a declarative
:class:`~repro.tune.space.SearchSpace` (selector families × their
hyperparameters × MachineConfig knobs) is enumerated into trials, a
:mod:`~repro.tune.strategies` strategy decides which trials run (and at
what trace length), the :mod:`~repro.tune.evaluate` evaluator routes
every trial through the existing DAG scheduler + artifact store (so
overlapping trials are warm hits), a JSONL
:class:`~repro.tune.ledger.TuneLedger` makes ``repro tune --resume``
skip completed trials, and :mod:`~repro.tune.pareto` reduces the results
to a coverage-vs-IPC-vs-read-port Pareto frontier.

Everything is deterministic: same space + same seed → same trials, same
frontier, and (through the content-addressed store) zero recomputation
on an identical re-run.
"""

from .ledger import TuneLedger
from .pareto import OBJECTIVES, pareto_front
from .space import SearchSpace, Trial
from .tuner import TuneResult, TuneStats, run_tune

__all__ = [
    "OBJECTIVES", "SearchSpace", "Trial", "TuneLedger", "TuneResult",
    "TuneStats", "pareto_front", "run_tune",
]
