"""Prefetchers (off by default — the Table 1 machines have none).

Two classic designs for what-if studies around the paper's configuration:

* :class:`NextLinePrefetcher` — on an I$ miss, fill the sequential next
  line as well (front-end streaming).
* :class:`StridePrefetcher` — a PC-indexed reference-prediction table for
  data loads: once a load PC repeats a stride twice, the next line ahead
  is filled.

Enable via ``MachineConfig.scaled(il1_next_line_prefetch=True)`` /
``dl1_stride_prefetch=True``. Prefetch fills are modelled as free
bandwidth (they insert lines without charging latency) — optimistic, but
the interesting effect here is cache-behaviour interaction with
mini-graph selection, not memory-bus contention.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class NextLinePrefetcher:
    """Sequential next-line instruction prefetch."""

    def __init__(self):
        self.issued = 0

    def on_miss(self, line: int) -> int:
        """The line to prefetch after a demand miss on ``line``."""
        self.issued += 1
        return line + 1


class StridePrefetcher:
    """PC-indexed stride predictor (reference prediction table)."""

    def __init__(self, entries: int = 256, confidence: int = 2):
        self._mask = entries - 1
        if entries & self._mask:
            raise ValueError("stride table size must be a power of two")
        self._table: Dict[int, Tuple[int, int, int]] = {}
        self.confidence = confidence
        self.issued = 0

    def observe(self, pc: int, addr: int) -> Optional[int]:
        """Record a load; returns a word address to prefetch, or None."""
        index = pc & self._mask
        entry = self._table.get(index)
        if entry is None:
            self._table[index] = (addr, 0, 0)
            return None
        last, stride, conf = entry
        new_stride = addr - last
        if new_stride == stride and stride != 0:
            conf = min(conf + 1, 3)
        else:
            conf = 0
        self._table[index] = (addr, new_stride, conf)
        if conf >= self.confidence:
            self.issued += 1
            return addr + new_stride
        return None
