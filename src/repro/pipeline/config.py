"""Machine configurations (Table 1 of the paper).

Two primary configurations are modelled:

* :func:`full_config` — the fully-provisioned baseline: 4-way
  fetch/issue/commit, 30-entry issue queue, 144 physical registers.
* :func:`reduced_config` — 3-way fetch/issue/commit, 20-entry issue queue,
  120 physical registers, and narrower issue ports.

The robustness study (Figure 9) additionally uses :func:`cross_2way_config`,
:func:`cross_8way_config` and :func:`cross_dmem4_config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int

    @property
    def n_sets(self) -> int:
        n = self.size_bytes // (self.assoc * self.line_bytes)
        if n <= 0 or n & (n - 1):
            raise ValueError("cache sets must be a positive power of two")
        return n


@dataclass(frozen=True)
class MachineConfig:
    """Complete parameterization of the simulated processor."""

    name: str

    # Widths (fetch = issue = commit width, per Table 1)
    width: int = 4

    # Issue queue / registers / window
    issue_queue: int = 30
    phys_regs: int = 144
    rob: int = 128
    load_queue: int = 48
    store_queue: int = 32

    # Per-class issue ports: simple int, complex, load, store
    ports_simple: int = 4
    ports_complex: int = 1
    ports_load: int = 2
    ports_store: int = 1

    # Pipeline depth (13 stages: 1 predict, 3 I$, 1 decode, 2 rename,
    # 1 schedule, 2 regread, 1 execute, 1 regwrite, 1 commit)
    stages_front: int = 7      # predict + I$ + decode + rename (fetch→rename)
    stages_regread: int = 2    # schedule→execute distance (drives resolve)
    stages_to_commit: int = 2  # regwrite + commit

    # Memory system
    il1: CacheConfig = field(default_factory=lambda: CacheConfig(
        32 * 1024, 2, 32, 3))
    dl1: CacheConfig = field(default_factory=lambda: CacheConfig(
        32 * 1024, 2, 32, 3))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        1024 * 1024, 4, 64, 12))
    mem_latency: int = 200

    # Branch prediction
    bimodal_bits: int = 12      # 4K-entry bimodal
    gshare_bits: int = 12       # 4K-entry gshare
    chooser_bits: int = 12      # 4K-entry chooser (24Kb total as in Table 1)
    btb_entries: int = 2048
    btb_assoc: int = 4
    ras_entries: int = 32

    # Memory dependence prediction
    store_sets: int = 1024

    # Store-to-load forwarding latency
    forward_latency: int = 2

    # Prefetchers (not present on the Table 1 machines; what-if knobs)
    il1_next_line_prefetch: bool = False
    dl1_stride_prefetch: bool = False

    # Mini-graph support
    mg_max_issue: int = 2        # ≤2 mini-graphs issued per cycle
    mg_max_mem_issue: int = 1    # of which ≤1 contains a memory op
    mg_alu_pipelines: int = 2    # number of ALU pipelines
    mg_alu_pipeline_depth: int = 4
    mgt_entries: int = 512

    def scaled(self, **overrides) -> "MachineConfig":
        """A copy with the given fields overridden."""
        return replace(self, **overrides)

    def summary(self) -> Dict[str, int]:
        """Key sizing knobs, for reports."""
        return {
            "width": self.width,
            "issue_queue": self.issue_queue,
            "phys_regs": self.phys_regs,
            "rob": self.rob,
            "ports_simple": self.ports_simple,
            "ports_load": self.ports_load,
        }


def full_config() -> MachineConfig:
    """Fully-provisioned baseline processor (Table 1)."""
    return MachineConfig(name="full")


def reduced_config() -> MachineConfig:
    """Reduced processor: 3-way, 20-entry IQ, 120 registers (Table 1)."""
    return MachineConfig(
        name="reduced", width=3, issue_queue=20, phys_regs=120,
        ports_simple=3, ports_complex=1, ports_load=1, ports_store=1)


def cross_2way_config() -> MachineConfig:
    """Further-reduced 2-way machine used for profile cross-training."""
    return MachineConfig(
        name="cross-2way", width=2, issue_queue=14, phys_regs=100,
        ports_simple=2, ports_complex=1, ports_load=1, ports_store=1)


def cross_8way_config() -> MachineConfig:
    """8-way machine used for profile cross-training."""
    return MachineConfig(
        name="cross-8way", width=8, issue_queue=60, phys_regs=224,
        ports_simple=8, ports_complex=2, ports_load=4, ports_store=2)


def cross_dmem4_config() -> MachineConfig:
    """Reduced machine with quarter-size data memory hierarchy (8KB D$, 256KB L2)."""
    base = reduced_config()
    return base.scaled(
        name="cross-dmem4",
        dl1=CacheConfig(8 * 1024, 2, 32, 3),
        l2=CacheConfig(256 * 1024, 4, 64, 12))


NAMED_CONFIGS = {
    "full": full_config,
    "reduced": reduced_config,
    "cross-2way": cross_2way_config,
    "cross-8way": cross_8way_config,
    "cross-dmem4": cross_dmem4_config,
}


#: Scalar knobs an override spec may set (``name@knob=value,...``).
#: Cache geometries are deliberately excluded: they are structured
#: objects with power-of-two constraints, not flat scalars.
_OVERRIDE_FIELDS = {
    f.name: f.type for f in MachineConfig.__dataclass_fields__.values()
    if f.name != "name" and f.type in ("int", "bool", int, bool)
}


def _coerce_override(name: str, text: str):
    """Parse one ``knob=value`` right-hand side to the field's type."""
    kind = _OVERRIDE_FIELDS[name]
    if kind in ("bool", bool):
        lowered = text.strip().lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ValueError(f"bad value {text!r} for boolean knob {name!r}")
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"bad value {text!r} for integer knob {name!r}") from None


def config_by_name(name: str) -> MachineConfig:
    """Resolve a configuration spec string to a :class:`MachineConfig`.

    Accepts the named paper configurations (``full``, ``reduced``, ...)
    and *override specs* of the form ``base@knob=value,knob=value`` —
    e.g. ``reduced@width=2,phys_regs=100`` — applying scalar overrides
    to a named base via :meth:`MachineConfig.scaled`. The resulting
    config's ``name`` is the full spec string, so override configs
    survive any round-trip that serializes configs by name (grid
    points, worker processes, ledgers) and never alias a named config
    in store keys.

    The autotuner (:mod:`repro.tune`) leans on this to search
    MachineConfig knobs without inventing a second wire format.
    """
    base_name, sep, overrides_text = name.partition("@")
    try:
        base = NAMED_CONFIGS[base_name]()
    except KeyError:
        raise ValueError(
            f"unknown machine configuration {base_name!r}") from None
    if not sep:
        return base
    overrides = {}
    for item in overrides_text.split(","):
        knob, eq, text = item.partition("=")
        knob = knob.strip()
        if not eq or not knob:
            raise ValueError(
                f"bad config override {item!r} in {name!r} "
                "(expected knob=value)")
        if knob not in _OVERRIDE_FIELDS:
            raise ValueError(
                f"unknown config knob {knob!r} in {name!r} (choose from "
                f"{', '.join(sorted(_OVERRIDE_FIELDS))})")
        overrides[knob] = _coerce_override(knob, text)
    if not overrides:
        raise ValueError(f"empty config override list in {name!r}")
    return base.scaled(name=name, **overrides)
