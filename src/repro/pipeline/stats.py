"""Run statistics produced by the timing core."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .activity import ActivityCounters


@dataclass
class RunStats:
    """Counters for one timing-simulation run.

    ``original_committed`` counts instructions of the *original* (singleton)
    program: a committed mini-graph handle contributes its constituent count.
    IPC and coverage are defined over this denominator so that amplification
    shows up as performance rather than as instruction-count deflation.
    """

    config_name: str = ""
    program_name: str = ""
    cycles: int = 0
    #: Simulated cycles the event-driven core proved dead and jumped over
    #: (a host-efficiency diagnostic; always included in ``cycles``).
    cycles_skipped: int = 0

    # Instruction accounting
    original_committed: int = 0     # singleton-equivalent instructions
    handles_committed: int = 0      # mini-graph handles
    embedded_committed: int = 0     # instructions inside committed handles
    outline_jumps_committed: int = 0  # overhead jumps of disabled mini-graphs
    slots_committed: int = 0        # pipeline slots consumed at commit

    # Front end
    fetch_cycles_blocked: int = 0
    icache_stall_cycles: int = 0

    # Branches
    cond_branches: int = 0
    cond_mispredicts: int = 0
    indirect_branches: int = 0
    indirect_mispredicts: int = 0

    # Memory
    loads_issued: int = 0
    store_forwards: int = 0
    ordering_violations: int = 0
    replays: int = 0

    # Mini-graphs
    mg_serialized_instances: int = 0    # issued exactly when a serializing
                                        # input arrived last
    mg_consumer_delays: int = 0         # serialization propagated to consumer
    mg_disabled_instances: int = 0      # instances executed in outlined form
    mgt_misses: int = 0                 # MGT template (re)fills at fetch

    # Cache behaviour
    cache_stats: Dict[str, int] = field(default_factory=dict)

    # Structure-activity accounting (see repro.pipeline.activity)
    activity: Optional[ActivityCounters] = None

    @property
    def ipc(self) -> float:
        """Original-program instructions committed per cycle."""
        return self.original_committed / self.cycles if self.cycles else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of original instructions embedded in mini-graph handles."""
        if not self.original_committed:
            return 0.0
        return self.embedded_committed / self.original_committed

    @property
    def cond_mispredict_rate(self) -> float:
        if not self.cond_branches:
            return 0.0
        return self.cond_mispredicts / self.cond_branches

    def summary(self) -> str:
        """One-line run summary for logs."""
        return (f"{self.program_name}@{self.config_name}: "
                f"cycles={self.cycles} insts={self.original_committed} "
                f"ipc={self.ipc:.3f} coverage={self.coverage:.1%} "
                f"mispred={self.cond_mispredict_rate:.1%}")
