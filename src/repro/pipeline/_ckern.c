/* Compiled fast path for the event-driven timing core.
 *
 * This is a statement-for-statement port of the hot loop in
 * ``repro/pipeline/core.py`` for runs with no policy and no tracer
 * (every ``repro bench`` point and all memoized timing runs).
 * Tap-capable observers (SlackCollector, AttributionCollector) run here
 * too: ``repro_run_tap`` appends fixed-width [(ix<<4)|tag, a, b] event
 * triples to a caller-supplied buffer, and the collectors rebuild their
 * profiles post-hoc from the log — bit-identical to the in-loop path.
 * The Python implementation remains the behavioural reference: results
 * must be bit-identical, and ``tests/pipeline/test_ckern.py`` plus the
 * golden-stats gate and ``tests/pipeline/test_event_tap.py`` hold both
 * paths to the same numbers.
 *
 * Built on demand by ``repro/pipeline/ckern.py`` with the system C
 * compiler; when no compiler is available the Python path runs instead.
 *
 * Conventions:
 *  - all trace columns are int64 (PackedTrace array('q')) except the
 *    kind/taken flag columns (array('b'));
 *  - addresses, PCs and cycles are non-negative, so C `/` and `%` agree
 *    with Python floor division;
 *  - "None" is the sentinel -1 (or INT64_MIN where -1 is a real value).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define BIG (((int64_t)1) << 60)
#define ABSENT INT64_MIN

/* Port classes (match core.py). */
#define PORT_SIMPLE 0
#define PORT_COMPLEX 1
#define PORT_LOAD 2
#define PORT_STORE 3
#define PORT_NONE 4

/* Opclasses (match isa/opcodes.py). */
#define OC_SIMPLE 0
#define OC_COMPLEX 1
#define OC_LOAD 2
#define OC_STORE 3
#define OC_BRANCH 4
#define OC_JUMP 5
#define OC_NOP 6
#define OC_HALT 7

static const int8_t CLASS_TO_PORT[8] = {
    PORT_SIMPLE, PORT_COMPLEX, PORT_LOAD, PORT_STORE,
    PORT_SIMPLE, PORT_SIMPLE, PORT_NONE, PORT_NONE,
};

/* ----- configuration (flat int64 array; indices match ckern.py) ----- */
enum {
    CFG_WIDTH, CFG_ISSUE_QUEUE, CFG_RENAME_POOL, CFG_ROB,
    CFG_LOAD_QUEUE, CFG_STORE_QUEUE,
    CFG_PORTS_SIMPLE, CFG_PORTS_COMPLEX, CFG_PORTS_LOAD, CFG_PORTS_STORE,
    CFG_FRONT_DELAY, CFG_REGREAD, CFG_TO_COMMIT,
    CFG_IL1_SETS, CFG_IL1_ASSOC, CFG_IL1_LINE, CFG_IL1_LAT,
    CFG_DL1_SETS, CFG_DL1_ASSOC, CFG_DL1_LINE, CFG_DL1_LAT,
    CFG_L2_SETS, CFG_L2_ASSOC, CFG_L2_LINE, CFG_L2_LAT,
    CFG_MEM_LATENCY,
    CFG_ITLB_SETS, CFG_ITLB_ASSOC, CFG_DTLB_SETS, CFG_DTLB_ASSOC,
    CFG_TLB_MISS_PENALTY,
    CFG_BIM_MASK, CFG_GSH_MASK, CFG_CHO_MASK,
    CFG_BTB_SETS, CFG_BTB_ASSOC, CFG_RAS_ENTRIES,
    CFG_SS_MASK, CFG_FORWARD_LATENCY,
    CFG_IL1_NLP, CFG_DL1_STRIDE, CFG_STRIDE_MASK, CFG_STRIDE_CONF,
    CFG_MG_MAX_ISSUE, CFG_MG_MAX_MEM_ISSUE, CFG_MG_ALU_PIPES,
    CFG_MGT_ENTRIES, CFG_MGT_FILL_LATENCY,
    CFG_FETCH_BUFFER_CAP, CFG_WARM, CFG_OP_JAL, CFG_OP_JR,
    CFG_COUNT
};

/* ----- outputs (flat int64 array; indices match ckern.py) ----- */
enum {
    OUT_CYCLES, OUT_CYCLES_SKIPPED,
    OUT_ORIGINAL_COMMITTED, OUT_HANDLES_COMMITTED, OUT_EMBEDDED_COMMITTED,
    OUT_SLOTS_COMMITTED,
    OUT_FETCH_CYCLES_BLOCKED, OUT_ICACHE_STALL_CYCLES,
    OUT_COND_PRED, OUT_COND_MISPRED, OUT_IND_PRED, OUT_IND_MISPRED,
    OUT_LOADS_ISSUED, OUT_STORE_FORWARDS, OUT_ORDERING_VIOLATIONS,
    OUT_REPLAYS,
    OUT_MG_SERIALIZED, OUT_MG_CONSUMER_DELAYS, OUT_MGT_MISSES,
    OUT_IL1_ACC, OUT_IL1_MISS, OUT_DL1_ACC, OUT_DL1_MISS,
    OUT_L2_ACC, OUT_L2_MISS,
    OUT_ITLB_ACC, OUT_ITLB_MISS, OUT_DTLB_ACC, OUT_DTLB_MISS,
    OUT_IL1_PF_ISSUED, OUT_DL1_PF_ISSUED, OUT_SS_VIOLATIONS,
    OUT_ACT_FETCH_SLOTS, OUT_ACT_RENAME_OPS, OUT_ACT_MAP_READS,
    OUT_ACT_PHYS_ALLOCS, OUT_ACT_IQ_INSERTIONS,
    OUT_ACT_IQ_OCCUPANCY, OUT_ACT_WINDOW_OCCUPANCY,
    OUT_ACT_SELECT_SLOTS, OUT_ACT_RF_READS, OUT_ACT_RF_WRITES,
    OUT_ACT_COMMIT_SLOTS, OUT_ACT_CYCLES,
    OUT_DEAD_CYCLE, OUT_DEAD_IX, OUT_DEAD_WINDOW,
    OUT_COUNT
};

/* Return codes of repro_run. */
#define RC_OK 0
#define RC_BUDGET 1
#define RC_NO_COMMIT 2
#define RC_NOMEM 3

/* Event-tap tags (opt-in packed event log; see ckern.py / docs).
 * Each event is three int64 words: (ix << 4) | tag, a, b. The tap is a
 * pure addition: no simulated state depends on it, and with a NULL
 * buffer every emission site compiles down to an untaken branch. */
#define TAP_ISSUE 1     /* a = issue cycle, b = out_actual_ready (raw) */
#define TAP_CONSUME 2   /* ix = producer; a = cycle - ready; b = consumer ix */
#define TAP_REDIRECT 3  /* a = resolve_cycle */
#define TAP_HANDLE 4    /* a = serialized | sial<<1, b = last - first_ready */
#define TAP_CDELAY 5    /* ix = serialized producer handle */
#define TAP_VALUE 6     /* singleton issue (tap_flags & TAPF_GLOBAL only):
                           a = value-ready (reg value, else store resolve,
                           else complete), b = complete_cycle */

/* tap_flags bits (repro_run_tap / BatchPoint.tap_flags). */
#define TAPF_GLOBAL 1   /* emit TAP_VALUE records for the global-slack DP */

/* Python's collector treats out_actual_ready >= 1<<50 as "no register
 * value" (a store) and falls back to the store resolve cycle. */
#define BIGT (((int64_t)1) << 50)

typedef struct {
    const int64_t *pc, *op, *opclass, *latency, *rd, *addr, *next_pc;
    const int64_t *srcs, *srcs_start;
    const int8_t *kind, *taken;
    int64_t n;
    /* mini-graph handle columns (see ckern.py marshalling) */
    const int64_t *hidx;                 /* n entries, -1 for singletons */
    const int64_t *h_tpl, *h_nominal, *h_outix, *h_flags;
    const int64_t *h_mem_pc, *h_site, *h_coff, *h_cnt;
    const int64_t *c_opclass, *c_latency, *c_addr, *c_rd;
    const int64_t *site_consumer_ix;     /* n_sites x 32 */
    int64_t n_handles, n_sites;
} CTrace;

#define MAXP 8  /* max producers per uop (deduped sources; checked in py) */

typedef struct {
    int64_t ix, age, pc, addr, rd;
    int64_t store_pc, load_pc;
    int64_t ready_at;
    int64_t out_pred_ready, out_actual_ready;
    int64_t complete_cycle, resolve_cycle, store_resolve_cycle;
    int64_t forwarded_from;              /* ABSENT = None */
    int32_t prod[MAXP];
    int32_t nprod;
    int32_t pending;
    int32_t prev_writer;                 /* uop idx or -1 */
    int32_t reg_waiters, st_waiters;     /* edge-list heads, -1 = empty */
    int32_t sub;
    int8_t kind, is_load, is_store, writes, port;
    int8_t issued, squashed, mg_serialized;
} Uop;

typedef struct { int32_t waiter, next; } Edge;

typedef struct {
    int64_t *ent;       /* sets*assoc entries, MRU-first per set */
    int32_t *cnt;       /* per-set fill count */
    int64_t sets, assoc, line, lat;
    int64_t acc, miss;
} Cache;

typedef struct {
    int64_t *page;      /* sets*assoc */
    int32_t *cnt;
    int64_t sets, assoc, penalty;
    int64_t acc, miss;
} Tlb;

typedef struct {
    const int64_t *cfg;
    const CTrace *T;
    int64_t *out;

    /* uop pool */
    Uop *pool;
    int64_t pool_len, pool_cap;
    Edge *edges;
    int64_t edges_len, edges_cap;

    /* fetch */
    int64_t fetch_ix;
    int32_t *fb_uop;        /* ring-free: simple shifting deque is fine */
    int64_t *fb_cycle;
    int64_t fb_head, fb_len, fb_cap;
    int64_t fetch_resume;
    int64_t fetch_block_ix; /* -1 = None */
    int32_t fetch_block_sub;

    /* window / queues (uop indices) */
    int32_t *window; int64_t win_head, win_len, win_cap;
    int32_t *iq, *iq_scratch; int64_t iq_len;
    int32_t *lq; int64_t lq_len;
    int32_t *sq; int64_t sq_len;
    int32_t *resolves, *res_scratch; int64_t res_len, res_cap;
    int64_t iq_min_ready;
    int64_t phys_used;
    int32_t reg_map[32];
    int64_t *alu_pipe_free; int64_t n_pipes;

    /* MGT LRU over dense template ids */
    int64_t *mgt; int64_t mgt_len, mgt_cap;

    /* memory hierarchy */
    Cache il1, dl1, l2;
    Tlb itlb, dtlb;
    /* stride prefetcher */
    int64_t *pf_last, *pf_stride;
    int8_t *pf_conf, *pf_valid;

    /* branch prediction */
    int8_t *bimodal, *gshare, *chooser;
    int64_t history;
    int64_t *btb_tag, *btb_target; int32_t *btb_cnt;
    int64_t *ras; int64_t ras_len;

    /* store sets */
    int64_t *ssit;
    int64_t *lfst; int64_t lfst_cap;
    int64_t ss_next_id;

    /* opt-in event tap: caller-owned fixed-capacity buffer. On overflow
     * emission stops (tap_ovf set) and the caller retries or falls back
     * to the Python observer loop; the simulation itself is unaffected. */
    int64_t *tap;
    int64_t tap_cap, tap_len;
    int64_t tap_flags;
    int tap_on, tap_ovf;

    int64_t cycle;
} Sim;

/* ------------------------------------------------------------------ */
/* small dynamic-array helpers                                         */
/* ------------------------------------------------------------------ */

static int grow_pool(Sim *S) {
    if (S->pool_len < S->pool_cap) return 0;
    int64_t cap = S->pool_cap * 2;
    Uop *p = (Uop *)realloc(S->pool, (size_t)cap * sizeof(Uop));
    if (!p) return -1;
    S->pool = p; S->pool_cap = cap;
    return 0;
}

static int grow_edges(Sim *S) {
    if (S->edges_len < S->edges_cap) return 0;
    int64_t cap = S->edges_cap * 2;
    Edge *e = (Edge *)realloc(S->edges, (size_t)cap * sizeof(Edge));
    if (!e) return -1;
    S->edges = e; S->edges_cap = cap;
    return 0;
}

static int grow_resolves(Sim *S) {
    if (S->res_len < S->res_cap) return 0;
    int64_t cap = S->res_cap * 2;
    int32_t *a = (int32_t *)realloc(S->resolves, (size_t)cap * 4);
    int32_t *b = (int32_t *)realloc(S->res_scratch, (size_t)cap * 4);
    if (!a || !b) { if (a) S->resolves = a; if (b) S->res_scratch = b; return -1; }
    S->resolves = a; S->res_scratch = b; S->res_cap = cap;
    return 0;
}

/* ------------------------------------------------------------------ */
/* event tap                                                           */
/* ------------------------------------------------------------------ */

/* Append one event; returns its word offset (for later patching) or -1
 * when the tap is off / just overflowed. */
static int64_t tap3(Sim *S, int64_t w0, int64_t a, int64_t b) {
    int64_t at = S->tap_len;
    if (at + 3 > S->tap_cap) {
        S->tap_ovf = 1;
        S->tap_on = 0;
        return -1;
    }
    S->tap[at] = w0;
    S->tap[at + 1] = a;
    S->tap[at + 2] = b;
    S->tap_len = at + 3;
    return at;
}

/* SlackCollector.on_consume's notion of a producer's ready time. */
static int64_t tap_ready_of(const Uop *p) {
    return p->out_actual_ready < BIGT ? p->out_actual_ready
                                      : p->store_resolve_cycle;
}

/* ------------------------------------------------------------------ */
/* caches / TLB (true-LRU, MRU-first arrays; mirrors caches.py)        */
/* ------------------------------------------------------------------ */

static int64_t cache_access(Cache *c, int64_t byte_addr) {
    int64_t line = byte_addr / c->line;
    int64_t s = line % c->sets;
    int64_t *ent = c->ent + s * c->assoc;
    int32_t n = ((int32_t *)c->cnt)[s];
    c->acc++;
    for (int32_t i = 0; i < n; i++) {
        if (ent[i] == line) {           /* hit: move to front */
            for (int32_t j = i; j > 0; j--) ent[j] = ent[j - 1];
            ent[0] = line;
            return 1;
        }
    }
    c->miss++;                          /* miss: insert MRU, evict LRU */
    int32_t m = n < (int32_t)c->assoc ? n + 1 : (int32_t)c->assoc;
    for (int32_t j = m - 1; j > 0; j--) ent[j] = ent[j - 1];
    ent[0] = line;
    c->cnt[s] = m;
    return 0;
}

static void cache_fill(Cache *c, int64_t byte_addr) {
    int64_t line = byte_addr / c->line;
    int64_t s = line % c->sets;
    int64_t *ent = c->ent + s * c->assoc;
    int32_t n = c->cnt[s];
    for (int32_t i = 0; i < n; i++)
        if (ent[i] == line) return;     /* resident: no LRU touch */
    int32_t m = n < (int32_t)c->assoc ? n + 1 : (int32_t)c->assoc;
    for (int32_t j = m - 1; j > 0; j--) ent[j] = ent[j - 1];
    ent[0] = line;
    c->cnt[s] = m;
}

static int64_t tlb_access(Tlb *t, int64_t byte_addr) {
    int64_t page = byte_addr >> 12;     /* PAGE_BYTES = 4096 */
    int64_t s = page % t->sets;
    int64_t *ent = t->page + s * t->assoc;
    int32_t n = t->cnt[s];
    t->acc++;
    for (int32_t i = 0; i < n; i++) {
        if (ent[i] == page) {
            for (int32_t j = i; j > 0; j--) ent[j] = ent[j - 1];
            ent[0] = page;
            return 0;
        }
    }
    t->miss++;
    int32_t m = n < (int32_t)t->assoc ? n + 1 : (int32_t)t->assoc;
    for (int32_t j = m - 1; j > 0; j--) ent[j] = ent[j - 1];
    ent[0] = page;
    t->cnt[s] = m;
    return t->penalty;
}

static int64_t miss_latency(Sim *S, int64_t byte_addr) {
    if (cache_access(&S->l2, byte_addr)) return S->l2.lat;
    return S->l2.lat + S->cfg[CFG_MEM_LATENCY];
}

static int64_t fetch_latency(Sim *S, int64_t pc) {
    int64_t byte_addr = pc * 4;
    int64_t lat = S->il1.lat + tlb_access(&S->itlb, byte_addr);
    if (!cache_access(&S->il1, byte_addr)) {
        lat += miss_latency(S, byte_addr);
        if (S->cfg[CFG_IL1_NLP]) {
            S->out[OUT_IL1_PF_ISSUED]++;
            int64_t next_addr = (byte_addr / S->il1.line + 1) * S->il1.line;
            cache_fill(&S->il1, next_addr);
            cache_fill(&S->l2, next_addr);
        }
    }
    return lat;
}

static int64_t load_latency_mem(Sim *S, int64_t word_addr, int64_t pc) {
    int64_t byte_addr = word_addr * 8;
    int64_t lat = S->dl1.lat + tlb_access(&S->dtlb, byte_addr);
    if (!cache_access(&S->dl1, byte_addr))
        lat += miss_latency(S, byte_addr);
    if (S->cfg[CFG_DL1_STRIDE] && pc >= 0) {
        int64_t ix = pc & S->cfg[CFG_STRIDE_MASK];
        if (!S->pf_valid[ix]) {
            S->pf_valid[ix] = 1;
            S->pf_last[ix] = word_addr;
            S->pf_stride[ix] = 0;
            S->pf_conf[ix] = 0;
        } else {
            int64_t new_stride = word_addr - S->pf_last[ix];
            int8_t conf;
            if (new_stride == S->pf_stride[ix] && S->pf_stride[ix] != 0)
                conf = S->pf_conf[ix] < 3 ? S->pf_conf[ix] + 1 : 3;
            else
                conf = 0;
            S->pf_last[ix] = word_addr;
            S->pf_stride[ix] = new_stride;
            S->pf_conf[ix] = conf;
            if (conf >= (int8_t)S->cfg[CFG_STRIDE_CONF]) {
                S->out[OUT_DL1_PF_ISSUED]++;
                int64_t target = (word_addr + new_stride) * 8;
                cache_fill(&S->dl1, target);
                cache_fill(&S->l2, target);
            }
        }
    }
    return lat;
}

static void store_touch(Sim *S, int64_t word_addr) {
    int64_t byte_addr = word_addr * 8;
    tlb_access(&S->dtlb, byte_addr);
    if (!cache_access(&S->dl1, byte_addr))
        miss_latency(S, byte_addr);
}

/* ------------------------------------------------------------------ */
/* branch prediction (mirrors branch.py)                               */
/* ------------------------------------------------------------------ */

static int64_t btb_lookup(Sim *S, int64_t pc) {
    int64_t s = pc % S->cfg[CFG_BTB_SETS];
    int64_t assoc = S->cfg[CFG_BTB_ASSOC];
    int64_t *tag = S->btb_tag + s * assoc;
    int64_t *tgt = S->btb_target + s * assoc;
    int32_t n = S->btb_cnt[s];
    for (int32_t i = 0; i < n; i++) {
        if (tag[i] == pc) {
            int64_t target = tgt[i];
            for (int32_t j = i; j > 0; j--) {
                tag[j] = tag[j - 1];
                tgt[j] = tgt[j - 1];
            }
            tag[0] = pc; tgt[0] = target;
            return target;
        }
    }
    return -1;
}

static void btb_update(Sim *S, int64_t pc, int64_t target) {
    int64_t s = pc % S->cfg[CFG_BTB_SETS];
    int64_t assoc = S->cfg[CFG_BTB_ASSOC];
    int64_t *tag = S->btb_tag + s * assoc;
    int64_t *tgt = S->btb_target + s * assoc;
    int32_t n = S->btb_cnt[s];
    int32_t found = -1;
    for (int32_t i = 0; i < n; i++)
        if (tag[i] == pc) { found = i; break; }
    if (found >= 0) {
        for (int32_t j = found; j < n - 1; j++) {
            tag[j] = tag[j + 1];
            tgt[j] = tgt[j + 1];
        }
        n--;
    }
    int32_t m = n < (int32_t)assoc ? n + 1 : (int32_t)assoc;
    for (int32_t j = m - 1; j > 0; j--) {
        tag[j] = tag[j - 1];
        tgt[j] = tgt[j - 1];
    }
    tag[0] = pc; tgt[0] = target;
    S->btb_cnt[s] = m;
}

static void ras_push(Sim *S, int64_t return_pc) {
    if (S->ras_len == S->cfg[CFG_RAS_ENTRIES]) {
        /* overflow discards the oldest entry */
        memmove(S->ras, S->ras + 1, (size_t)(S->ras_len - 1) * 8);
        S->ras_len--;
    }
    S->ras[S->ras_len++] = return_pc;
}

static int64_t ras_pop(Sim *S) {
    return S->ras_len ? S->ras[--S->ras_len] : -1;
}

static int predict_cond(Sim *S, int64_t pc, int taken, int64_t target) {
    S->out[OUT_COND_PRED]++;
    int64_t bim_ix = pc & S->cfg[CFG_BIM_MASK];
    int64_t gsh_ix = (pc ^ S->history) & S->cfg[CFG_GSH_MASK];
    int64_t cho_ix = pc & S->cfg[CFG_CHO_MASK];
    int bim = S->bimodal[bim_ix] >= 2;
    int gsh = S->gshare[gsh_ix] >= 2;
    int predicted = (S->chooser[cho_ix] >= 2) ? gsh : bim;
    /* train */
    int bim_correct = bim == taken;
    int gsh_correct = gsh == taken;
    if (gsh_correct != bim_correct) {
        int8_t c = S->chooser[cho_ix];
        S->chooser[cho_ix] = gsh_correct ? (c < 3 ? c + 1 : 3)
                                         : (c > 0 ? c - 1 : 0);
    }
    int8_t b = S->bimodal[bim_ix];
    S->bimodal[bim_ix] = taken ? (b < 3 ? b + 1 : 3) : (b > 0 ? b - 1 : 0);
    int8_t g = S->gshare[gsh_ix];
    S->gshare[gsh_ix] = taken ? (g < 3 ? g + 1 : 3) : (g > 0 ? g - 1 : 0);
    S->history = ((S->history << 1) | (taken ? 1 : 0)) & S->cfg[CFG_GSH_MASK];
    int correct = predicted == taken;
    if (correct && taken)
        correct = btb_lookup(S, pc) == target;
    btb_update(S, pc, target);
    if (!correct) S->out[OUT_COND_MISPRED]++;
    return correct;
}

static int predict_jump(Sim *S, int64_t pc, int is_call, int is_return,
                        int64_t target) {
    S->out[OUT_IND_PRED]++;
    int correct;
    if (is_return) {
        correct = ras_pop(S) == target;
    } else {
        correct = btb_lookup(S, pc) == target;
        btb_update(S, pc, target);
        if (is_call) ras_push(S, pc + 1);
    }
    if (!correct) S->out[OUT_IND_MISPRED]++;
    return correct;
}

/* ------------------------------------------------------------------ */
/* store sets (mirrors storesets.py)                                   */
/* ------------------------------------------------------------------ */

static int ss_grow(Sim *S, int64_t want) {
    if (want < S->lfst_cap) return 0;
    int64_t cap = S->lfst_cap * 2;
    while (cap <= want) cap *= 2;
    int64_t *p = (int64_t *)realloc(S->lfst, (size_t)cap * 8);
    if (!p) return -1;
    for (int64_t i = S->lfst_cap; i < cap; i++) p[i] = ABSENT;
    S->lfst = p; S->lfst_cap = cap;
    return 0;
}

static int64_t ss_rename_store(Sim *S, int64_t pc, int64_t seq) {
    int64_t set_id = S->ssit[pc & S->cfg[CFG_SS_MASK]];
    if (set_id < 0) return ABSENT;
    int64_t previous = S->lfst[set_id];
    S->lfst[set_id] = seq;
    return previous;
}

static int64_t ss_producer_store_for(Sim *S, int64_t pc) {
    int64_t set_id = S->ssit[pc & S->cfg[CFG_SS_MASK]];
    if (set_id < 0) return ABSENT;
    return S->lfst[set_id];
}

static void ss_retire_store(Sim *S, int64_t pc, int64_t seq) {
    int64_t set_id = S->ssit[pc & S->cfg[CFG_SS_MASK]];
    if (set_id >= 0 && S->lfst[set_id] == seq)
        S->lfst[set_id] = ABSENT;
}

static int ss_train_violation(Sim *S, int64_t load_pc, int64_t store_pc) {
    S->out[OUT_SS_VIOLATIONS]++;
    int64_t load_ix = load_pc & S->cfg[CFG_SS_MASK];
    int64_t store_ix = store_pc & S->cfg[CFG_SS_MASK];
    int64_t load_id = S->ssit[load_ix];
    int64_t store_id = S->ssit[store_ix];
    if (load_id < 0 && store_id < 0) {
        int64_t new_id = S->ss_next_id++;
        if (ss_grow(S, new_id)) return -1;
        S->ssit[load_ix] = new_id;
        S->ssit[store_ix] = new_id;
    } else if (load_id < 0) {
        S->ssit[load_ix] = store_id;
    } else if (store_id < 0) {
        S->ssit[store_ix] = load_id;
    } else {
        int64_t winner = load_id < store_id ? load_id : store_id;
        S->ssit[load_ix] = winner;
        S->ssit[store_ix] = winner;
    }
    return 0;
}

static void ss_flush(Sim *S) {
    for (int64_t i = 0; i < S->ss_next_id; i++) S->lfst[i] = ABSENT;
}

/* ------------------------------------------------------------------ */
/* MGT (LRU over dense template ids; mirrors _mgt_access)              */
/* ------------------------------------------------------------------ */

static int mgt_access(Sim *S, int64_t tpl) {
    for (int64_t i = 0; i < S->mgt_len; i++) {
        if (S->mgt[i] == tpl) {
            memmove(S->mgt + 1, S->mgt, (size_t)i * 8);
            S->mgt[0] = tpl;
            return 1;
        }
    }
    S->out[OUT_MGT_MISSES]++;
    int64_t m = S->mgt_len < S->mgt_cap ? S->mgt_len + 1 : S->mgt_cap;
    memmove(S->mgt + 1, S->mgt, (size_t)(m - 1) * 8);
    S->mgt[0] = tpl;
    S->mgt_len = m;
    return 0;
}

/* ------------------------------------------------------------------ */
/* uop construction (mirrors Uop.__init__)                             */
/* ------------------------------------------------------------------ */

static int64_t new_uop(Sim *S, int64_t ix) {
    if (grow_pool(S)) return -1;
    const CTrace *T = S->T;
    Uop *u = &S->pool[S->pool_len];
    int64_t uix = S->pool_len++;
    u->ix = ix;
    u->sub = -1;
    u->age = ix << 8;                   /* (ix << 8) | (sub + 1), sub=-1 */
    u->pc = T->pc[ix];
    u->addr = T->addr[ix];
    u->rd = T->rd[ix];
    u->ready_at = 0;
    u->out_pred_ready = BIG;
    u->out_actual_ready = BIG;
    u->complete_cycle = BIG;
    u->resolve_cycle = BIG;
    u->store_resolve_cycle = BIG;
    u->forwarded_from = ABSENT;
    u->nprod = 0;
    u->pending = 0;
    u->prev_writer = -1;
    u->reg_waiters = -1;
    u->st_waiters = -1;
    u->kind = T->kind[ix];
    u->issued = 0;
    u->squashed = 0;
    u->mg_serialized = 0;
    u->writes = T->rd[ix] >= 0;
    if (u->kind == 1) {
        int64_t hi = T->hidx[ix];
        int64_t flags = T->h_flags[hi];
        u->is_load = (flags >> 1) & 1;
        u->is_store = (flags >> 2) & 1;
        u->port = PORT_NONE;
        u->store_pc = u->is_store ? T->h_mem_pc[hi] : -1;
        u->load_pc = u->is_load ? T->h_mem_pc[hi] : -1;
    } else {
        int64_t cls = T->opclass[ix];
        u->is_load = cls == OC_LOAD;
        u->is_store = cls == OC_STORE;
        u->port = CLASS_TO_PORT[cls];
        u->store_pc = u->is_store ? u->pc : -1;
        u->load_pc = u->is_load ? u->pc : -1;
    }
    return uix;
}

/* ------------------------------------------------------------------ */
/* load latency with store-to-load forwarding (mirrors _load_latency)  */
/* ------------------------------------------------------------------ */

static int64_t load_latency(Sim *S, int64_t uix, int64_t addr, int64_t when,
                            int64_t pc) {
    Uop *pool = S->pool;
    Uop *u = &pool[uix];
    int64_t age = u->age;
    int64_t best = -1;
    for (int64_t i = 0; i < S->sq_len; i++) {
        Uop *st = &pool[S->sq[i]];
        if (st->age >= age || st->addr != addr) continue;
        if (st->store_resolve_cycle <= when) {
            if (best < 0 || st->age > pool[S->sq[best]].age) best = i;
        }
    }
    if (best >= 0) {
        Uop *st = &pool[S->sq[best]];
        u->forwarded_from = st->age;
        S->out[OUT_STORE_FORWARDS]++;
        if (S->tap_on)
            tap3(S, (st->ix << 4) | TAP_CONSUME, when - tap_ready_of(st),
                 u->ix);
        return S->cfg[CFG_FORWARD_LATENCY];
    }
    return load_latency_mem(S, addr, pc);
}

static void maybe_unblock_fetch(Sim *S, Uop *u) {
    if (S->fetch_block_ix == u->ix && S->fetch_block_sub == u->sub) {
        S->fetch_block_ix = -1;
        S->fetch_resume = u->resolve_cycle + 1;
        if (S->tap_on)
            tap3(S, (u->ix << 4) | TAP_REDIRECT, u->resolve_cycle, 0);
    }
}

/* ------------------------------------------------------------------ */
/* fetch (mirrors _fetch_stage; no policy => no expansions)            */
/* ------------------------------------------------------------------ */

static int fetch_stage(Sim *S) {
    const CTrace *T = S->T;
    int64_t cycle = S->cycle;
    int64_t width = S->cfg[CFG_WIDTH];
    int64_t cap = S->fb_cap;
    int64_t il1_lat = S->il1.lat;
    int64_t line_bytes = S->il1.line;
    int64_t fetched = 0;
    int64_t line = -1;
    while (fetched < width && S->fb_len < cap) {
        int64_t ix = S->fetch_ix;
        if (ix >= T->n) break;
        int is_mg = T->kind[ix] == 1;
        int64_t pc = T->pc[ix];
        int64_t rec_line = pc * 4 / line_bytes;
        if (line < 0) {
            int64_t lat = fetch_latency(S, pc);
            int64_t extra = lat - il1_lat;
            if (extra > 0) {
                S->fetch_resume = cycle + extra;
                S->out[OUT_ICACHE_STALL_CYCLES] += extra;
                S->out[OUT_ACT_FETCH_SLOTS] += fetched;
                return 0;
            }
            line = rec_line;
        } else if (rec_line != line) {
            break;
        }
        if (is_mg && !mgt_access(S, T->h_tpl[T->hidx[ix]])) {
            S->fetch_resume = cycle + S->cfg[CFG_MGT_FILL_LATENCY];
            break;
        }
        S->fetch_ix++;
        int64_t uix = new_uop(S, ix);
        if (uix < 0) return -1;
        int64_t slot = (S->fb_head + S->fb_len) % S->fb_cap;
        S->fb_uop[slot] = (int32_t)uix;
        S->fb_cycle[slot] = cycle;
        S->fb_len++;
        fetched++;

        int taken, correct;
        if (is_mg) {
            if (!(T->h_flags[T->hidx[ix]] & 1)) continue;  /* no branch */
            taken = T->taken[ix];
            correct = predict_cond(S, pc, taken, T->next_pc[ix]);
        } else {
            int64_t cls = T->opclass[ix];
            if (cls == OC_BRANCH) {
                taken = T->taken[ix];
                correct = predict_cond(S, pc, taken, T->next_pc[ix]);
            } else if (cls == OC_JUMP) {
                taken = 1;
                correct = predict_jump(S, pc,
                                       T->op[ix] == S->cfg[CFG_OP_JAL],
                                       T->op[ix] == S->cfg[CFG_OP_JR],
                                       T->next_pc[ix]);
            } else {
                continue;
            }
        }
        if (!correct) {
            S->fetch_block_ix = S->pool[uix].ix;
            S->fetch_block_sub = S->pool[uix].sub;
            break;
        }
        if (taken) break;               /* predicted-taken ends the group */
    }
    S->out[OUT_ACT_FETCH_SLOTS] += fetched;
    return 0;
}

/* ------------------------------------------------------------------ */
/* rename (mirrors _rename_stage)                                      */
/* ------------------------------------------------------------------ */

static int find_store(Sim *S, int64_t age) {
    for (int64_t i = 0; i < S->sq_len; i++)
        if (S->pool[S->sq[i]].age == age) return (int)S->sq[i];
    return -1;
}

static int rename_stage(Sim *S, int *worked) {
    const CTrace *T = S->T;
    const int64_t *cfg = S->cfg;
    int64_t cycle = S->cycle;
    int64_t width = cfg[CFG_WIDTH];
    int64_t front_delay = cfg[CFG_FRONT_DELAY];
    int64_t min_ready = S->iq_min_ready;
    int64_t renamed = 0, map_reads = 0, phys_allocs = 0;
    while (renamed < width && S->fb_len) {
        int64_t uix = S->fb_uop[S->fb_head];
        int64_t fetch_cycle = S->fb_cycle[S->fb_head];
        Uop *u = &S->pool[uix];
        if (fetch_cycle + front_delay > cycle) break;
        if (S->iq_len >= cfg[CFG_ISSUE_QUEUE] ||
            S->win_len >= cfg[CFG_ROB]) break;
        if (u->writes && S->phys_used >= cfg[CFG_RENAME_POOL]) break;
        if (u->is_load && S->lq_len >= cfg[CFG_LOAD_QUEUE]) break;
        if (u->is_store && S->sq_len >= cfg[CFG_STORE_QUEUE]) break;
        S->fb_head = (S->fb_head + 1) % S->fb_cap;
        S->fb_len--;

        int64_t ready_at = 0;
        int32_t pending = 0;
        int64_t s0 = T->srcs_start[u->ix];
        int64_t s1 = T->srcs_start[u->ix + 1];
        for (int64_t j = s0; j < s1; j++) {
            int64_t src = T->srcs[j];
            if (src == 0) continue;
            int dup = 0;                /* dedupe repeated sources */
            for (int64_t k = s0; k < j; k++)
                if (T->srcs[k] == src) { dup = 1; break; }
            if (dup) continue;
            map_reads++;
            int32_t pidx = S->reg_map[src];
            if (pidx < 0) continue;
            Uop *p = &S->pool[pidx];
            u->prod[u->nprod++] = pidx;
            if (p->issued) {
                if (p->out_pred_ready > ready_at)
                    ready_at = p->out_pred_ready;
            } else {
                pending++;
                if (grow_edges(S)) return -1;
                Edge *e = &S->edges[S->edges_len];
                e->waiter = (int32_t)uix;
                e->next = p->reg_waiters;
                p->reg_waiters = (int32_t)S->edges_len++;
            }
        }
        if (u->writes) {
            phys_allocs++;
            u->prev_writer = S->reg_map[u->rd];
            S->reg_map[u->rd] = (int32_t)uix;
            S->phys_used++;
        }
        if (u->is_load) {
            S->lq[S->lq_len++] = (int32_t)uix;
            int64_t prev_age = ss_producer_store_for(S, u->load_pc);
            if (prev_age != ABSENT) {
                int sidx = find_store(S, prev_age);
                if (sidx >= 0) {
                    Uop *st = &S->pool[sidx];
                    if (st->issued) {
                        if (st->store_resolve_cycle > ready_at)
                            ready_at = st->store_resolve_cycle;
                    } else {
                        pending++;
                        if (grow_edges(S)) return -1;
                        Edge *e = &S->edges[S->edges_len];
                        e->waiter = (int32_t)uix;
                        e->next = st->st_waiters;
                        st->st_waiters = (int32_t)S->edges_len++;
                    }
                }
            }
        }
        if (u->is_store) {
            S->sq[S->sq_len++] = (int32_t)uix;
            int64_t prev_age = ss_rename_store(S, u->store_pc, u->age);
            if (prev_age != ABSENT) {
                int sidx = find_store(S, prev_age);
                if (sidx >= 0) {
                    Uop *st = &S->pool[sidx];
                    if (st->issued) {
                        if (st->store_resolve_cycle > ready_at)
                            ready_at = st->store_resolve_cycle;
                    } else {
                        pending++;
                        if (grow_edges(S)) return -1;
                        Edge *e = &S->edges[S->edges_len];
                        e->waiter = (int32_t)uix;
                        e->next = st->st_waiters;
                        st->st_waiters = (int32_t)S->edges_len++;
                    }
                }
            }
        }
        u->ready_at = ready_at;
        u->pending = pending;
        if (!pending && ready_at < min_ready) min_ready = ready_at;
        S->window[(S->win_head + S->win_len) % S->win_cap] = (int32_t)uix;
        S->win_len++;
        S->iq[S->iq_len++] = (int32_t)uix;
        renamed++;
    }
    if (renamed) {
        S->iq_min_ready = min_ready;
        S->out[OUT_ACT_RENAME_OPS] += renamed;
        S->out[OUT_ACT_IQ_INSERTIONS] += renamed;
        S->out[OUT_ACT_MAP_READS] += map_reads;
        S->out[OUT_ACT_PHYS_ALLOCS] += phys_allocs;
        *worked = 1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* issue / execute (mirrors _issue_stage and _execute_handle)          */
/* ------------------------------------------------------------------ */

static int execute_handle(Sim *S, int64_t uix, int64_t pipe) {
    const CTrace *T = S->T;
    int64_t cycle = S->cycle;
    Uop *u = &S->pool[uix];
    u->issued = 1;
    int64_t ix = u->ix;
    int64_t hi = T->hidx[ix];
    /* ISSUE opens this instance's event window; b (out_actual_ready) is
     * patched below once the serial-execution sweep has computed it. */
    int64_t tap_at = -1;
    if (S->tap_on)
        tap_at = tap3(S, (ix << 4) | TAP_ISSUE, cycle, BIG);
    S->out[OUT_ACT_RF_READS] += T->srcs_start[ix + 1] - T->srcs_start[ix];
    if (u->writes) S->out[OUT_ACT_RF_WRITES]++;
    int64_t regread = S->cfg[CFG_REGREAD];
    int64_t start = cycle;
    int64_t out_ready = cycle;
    int64_t coff = T->h_coff[hi];
    int64_t cnt = T->h_cnt[hi];
    int64_t outix = T->h_outix[hi];
    for (int64_t k = 0; k < cnt; k++) {
        int64_t cls = T->c_opclass[coff + k];
        int64_t lat;
        if (cls == OC_LOAD) {
            lat = load_latency(S, uix, T->c_addr[coff + k], start,
                               u->load_pc);
            u = &S->pool[uix];          /* pool may not move, but be safe */
            S->out[OUT_LOADS_ISSUED]++;
        } else if (cls == OC_STORE) {
            lat = 1;
            u->store_resolve_cycle = start + regread;
            if (grow_resolves(S)) return -1;
            S->resolves[S->res_len++] = (int32_t)uix;
        } else if (cls == OC_BRANCH) {
            lat = T->c_latency[coff + k];
            u->resolve_cycle = start + lat + regread;
            maybe_unblock_fetch(S, u);
        } else {
            lat = T->c_latency[coff + k];
        }
        if (k == outix) out_ready = start + lat;
        start += lat;                   /* rule #2: strictly serial */
    }
    int64_t total = start - cycle;
    u->complete_cycle = cycle + regread + total;
    if (u->writes) {
        u->out_actual_ready = out_ready;
        u->out_pred_ready = cycle + T->h_nominal[hi];
    }
    if ((T->h_flags[hi] & 1) && u->resolve_cycle == BIG)
        u->resolve_cycle = u->complete_cycle;
    S->alu_pipe_free[pipe] = cycle + 1 + (total - cnt);
    if (tap_at >= 0) S->tap[tap_at + 2] = u->out_actual_ready;

    /* Slack-Dynamic serialization detection (stats only; policy None). */
    int64_t last_arrival = 0;
    int64_t last_consumer_ix = 0;
    const int64_t *ctab = T->site_consumer_ix + T->h_site[hi] * 32;
    for (int32_t i = 0; i < u->nprod; i++) {
        Uop *p = &S->pool[u->prod[i]];
        int64_t arrival = p->out_actual_ready;
        if (arrival >= last_arrival) {
            last_arrival = arrival;
            int64_t reg = p->rd;
            last_consumer_ix = (reg >= 0 && reg < 32) ? ctab[reg] : 0;
        }
    }
    int sial = u->nprod > 0 && last_consumer_ix > 0;
    int serialized = sial && cycle == last_arrival;
    u->mg_serialized = serialized;
    if (serialized) S->out[OUT_MG_SERIALIZED]++;

    if (S->tap_on) {
        /* AttributionCollector.on_handle_issue: the first constituent's
         * singleton issue estimate is the max arrival over external
         * inputs with consumer index 0 (see _execute_handle in core.py). */
        int64_t first_ready = 0;
        for (int32_t i = 0; i < u->nprod; i++) {
            Uop *p = &S->pool[u->prod[i]];
            int64_t reg = p->rd;
            if (((reg >= 0 && reg < 32) ? ctab[reg] : 0) == 0) {
                int64_t arrival = p->out_actual_ready;
                if (arrival > first_ready) first_ready = arrival;
            }
        }
        tap3(S, (ix << 4) | TAP_HANDLE,
             (int64_t)serialized | ((int64_t)sial << 1),
             last_arrival - first_ready);
    }

    /* _notify_consumption (collector None): consumer-delay detection */
    int64_t na = -1;
    Uop *last = NULL;
    for (int32_t i = 0; i < u->nprod; i++) {
        Uop *p = &S->pool[u->prod[i]];
        if (S->tap_on)
            tap3(S, (p->ix << 4) | TAP_CONSUME, cycle - tap_ready_of(p), ix);
        if (p->out_actual_ready > na) {
            na = p->out_actual_ready;
            last = p;
        }
    }
    if (last && last->kind == 1 && last->mg_serialized && cycle == na) {
        S->out[OUT_MG_CONSUMER_DELAYS]++;
        if (S->tap_on)
            tap3(S, (last->ix << 4) | TAP_CDELAY, 0, 0);
    }
    return 0;
}

static int issue_stage(Sim *S, int *worked) {
    const CTrace *T = S->T;
    const int64_t *cfg = S->cfg;
    int64_t cycle = S->cycle;
    int64_t counts[5] = {0, 0, 0, 0, 0};
    int64_t ports[5];
    ports[0] = cfg[CFG_PORTS_SIMPLE];
    ports[1] = cfg[CFG_PORTS_COMPLEX];
    ports[2] = cfg[CFG_PORTS_LOAD];
    ports[3] = cfg[CFG_PORTS_STORE];
    ports[4] = cfg[CFG_WIDTH];
    int64_t mg_max_issue = cfg[CFG_MG_MAX_ISSUE];
    int64_t mg_max_mem_issue = cfg[CFG_MG_MAX_MEM_ISSUE];
    int64_t regread = cfg[CFG_REGREAD];
    int64_t dl1_lat = S->dl1.lat;
    int64_t width = cfg[CFG_WIDTH];
    int64_t total = 0, mg_issued = 0, mg_mem_issued = 0;
    int64_t loads_issued = 0, replays = 0, rf_reads = 0, rf_writes = 0;
    int32_t *kept = S->iq_scratch;
    int64_t kept_len = 0;
    int64_t next_ready = BIG;
    int64_t iq_len = S->iq_len;
    for (int64_t i = 0; i < iq_len; i++) {
        int32_t uix = S->iq[i];
        Uop *u = &S->pool[uix];
        if (total >= width) {
            memcpy(kept + kept_len, S->iq + i, (size_t)(iq_len - i) * 4);
            kept_len += iq_len - i;
            next_ready = cycle;
            break;
        }
        if (u->pending) { kept[kept_len++] = uix; continue; }
        int64_t t = u->ready_at;
        if (t > cycle) {
            kept[kept_len++] = uix;
            if (t < next_ready) next_ready = t;
            continue;
        }
        int is_handle = u->kind == 1;
        int64_t pipe = -1;
        if (is_handle) {
            if (mg_issued >= mg_max_issue) {
                kept[kept_len++] = uix;
                if (mg_issued == 0) next_ready = cycle;
                continue;
            }
            if ((u->is_load || u->is_store) &&
                mg_mem_issued >= mg_max_mem_issue) {
                kept[kept_len++] = uix;
                if (mg_mem_issued == 0) next_ready = cycle;
                continue;
            }
            for (int64_t p = 0; p < S->n_pipes; p++)
                if (S->alu_pipe_free[p] <= cycle) { pipe = p; break; }
            if (pipe < 0) {
                kept[kept_len++] = uix;
                if (S->n_pipes) {
                    int64_t m = S->alu_pipe_free[0];
                    for (int64_t p = 1; p < S->n_pipes; p++)
                        if (S->alu_pipe_free[p] < m)
                            m = S->alu_pipe_free[p];
                    if (m < next_ready) next_ready = m;
                } else {
                    next_ready = cycle;
                }
                continue;
            }
        } else {
            int8_t port = u->port;
            if (port != PORT_NONE && counts[port] >= ports[port]) {
                kept[kept_len++] = uix;
                if (counts[port] == 0) next_ready = cycle;
                continue;
            }
        }
        /* actual-readiness check (speculative wakeup verification) */
        int64_t actual = 0;
        Uop *last = NULL;
        for (int32_t p = 0; p < u->nprod; p++) {
            Uop *pr = &S->pool[u->prod[p]];
            if (pr->out_actual_ready > actual) {
                actual = pr->out_actual_ready;
                last = pr;
            }
        }
        if (actual > cycle) {           /* replay */
            u->ready_at = actual;
            replays++;
            total++;
            kept[kept_len++] = uix;
            continue;
        }
        total++;
        if (is_handle) {
            mg_issued++;
            if (u->is_load || u->is_store) mg_mem_issued++;
            if (execute_handle(S, uix, pipe)) return -1;
            u = &S->pool[uix];
        } else {
            counts[u->port]++;
            u->issued = 1;
            int64_t ix = u->ix;
            int64_t tap_at = -1;
            if (S->tap_on)
                tap_at = tap3(S, (ix << 4) | TAP_ISSUE, cycle, BIG);
            rf_reads += T->srcs_start[ix + 1] - T->srcs_start[ix];
            if (u->writes) rf_writes++;
            if (u->is_load) {
                int64_t lat = load_latency(S, uix, u->addr, cycle, u->pc);
                u->out_pred_ready = cycle + dl1_lat;
                u->out_actual_ready = cycle + lat;
                u->complete_cycle = cycle + regread + lat;
                loads_issued++;
            } else if (u->is_store) {
                u->store_resolve_cycle = cycle + regread;
                u->complete_cycle = cycle + regread;
                if (grow_resolves(S)) return -1;
                S->resolves[S->res_len++] = uix;
            } else {
                int64_t cls = T->opclass[ix];
                if (cls == OC_BRANCH || cls == OC_JUMP) {
                    int64_t resolve = cycle + T->latency[ix] + regread;
                    u->resolve_cycle = resolve;
                    u->complete_cycle = resolve;
                    if (u->rd >= 0) {   /* jal writes the return address */
                        u->out_pred_ready = cycle + T->latency[ix];
                        u->out_actual_ready = cycle + T->latency[ix];
                    }
                    if (S->fetch_block_ix >= 0) maybe_unblock_fetch(S, u);
                } else {
                    int64_t lat = T->latency[ix];
                    u->out_pred_ready = cycle + lat;
                    u->out_actual_ready = cycle + lat;
                    u->complete_cycle = cycle + regread + lat;
                }
            }
            if (tap_at >= 0) S->tap[tap_at + 2] = u->out_actual_ready;
            if (S->tap_on && (S->tap_flags & TAPF_GLOBAL)) {
                /* Global-slack DP input: the committed instance's
                 * 3-level value-ready time and completion time
                 * (GlobalSlackCollector._value_ready / end_time). All
                 * three fields are final at issue for singletons. */
                int64_t vr = u->out_actual_ready;
                if (vr >= BIGT) vr = u->store_resolve_cycle;
                if (vr >= BIGT) vr = u->complete_cycle;
                tap3(S, (ix << 4) | TAP_VALUE, vr, u->complete_cycle);
            }
            if (S->tap_on) {
                for (int32_t p = 0; p < u->nprod; p++) {
                    Uop *pr = &S->pool[u->prod[p]];
                    tap3(S, (pr->ix << 4) | TAP_CONSUME,
                         cycle - tap_ready_of(pr), ix);
                }
            }
            /* consumer-delay detection (inline _notify_consumption) */
            if (last && last->kind == 1 && last->mg_serialized &&
                cycle == actual) {
                S->out[OUT_MG_CONSUMER_DELAYS]++;
                if (S->tap_on)
                    tap3(S, (last->ix << 4) | TAP_CDELAY, 0, 0);
            }
        }
        /* push-based wakeup: walk registered waiters */
        int32_t e = u->reg_waiters;
        if (e >= 0) {
            int64_t tw = u->out_pred_ready;
            while (e >= 0) {
                Uop *w = &S->pool[S->edges[e].waiter];
                w->pending--;
                if (tw > w->ready_at) w->ready_at = tw;
                e = S->edges[e].next;
            }
        }
        if (u->is_store) {
            e = u->st_waiters;
            if (e >= 0) {
                int64_t tw = u->store_resolve_cycle;
                while (e >= 0) {
                    Uop *w = &S->pool[S->edges[e].waiter];
                    w->pending--;
                    if (tw > w->ready_at) w->ready_at = tw;
                    e = S->edges[e].next;
                }
            }
        }
    }
    if (total) next_ready = cycle;
    /* swap iq and scratch */
    int32_t *tmp = S->iq;
    S->iq = kept;
    S->iq_scratch = tmp;
    S->iq_len = kept_len;
    S->iq_min_ready = next_ready;
    if (total) {
        S->out[OUT_ACT_SELECT_SLOTS] += total;
        S->out[OUT_ACT_RF_READS] += rf_reads;
        S->out[OUT_ACT_RF_WRITES] += rf_writes;
        S->out[OUT_LOADS_ISSUED] += loads_issued;
        S->out[OUT_REPLAYS] += replays;
        *worked = 1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* writeback / violations / flush (mirrors core.py)                    */
/* ------------------------------------------------------------------ */

static void flush_restart(Sim *S, Uop *victim) {
    int64_t restart_ix = victim->ix;
    /* squash youngest-first so the rename map rewinds correctly */
    while (S->win_len) {
        int64_t slot = (S->win_head + S->win_len - 1) % S->win_cap;
        Uop *u = &S->pool[S->window[slot]];
        if (u->ix < restart_ix) break;
        S->win_len--;
        u->squashed = 1;
        if (u->writes) {
            S->phys_used--;
            if (S->reg_map[u->rd] == S->window[slot])
                S->reg_map[u->rd] = u->prev_writer;
        }
    }
    for (int64_t i = 0; i < S->fb_len; i++) {
        int64_t slot = (S->fb_head + i) % S->fb_cap;
        S->pool[S->fb_uop[slot]].squashed = 1;
    }
    S->fb_len = 0;
    S->fb_head = 0;
    int64_t m = 0;
    for (int64_t i = 0; i < S->iq_len; i++)
        if (!S->pool[S->iq[i]].squashed) S->iq[m++] = S->iq[i];
    S->iq_len = m;
    S->iq_min_ready = 0;
    m = 0;
    for (int64_t i = 0; i < S->lq_len; i++)
        if (!S->pool[S->lq[i]].squashed) S->lq[m++] = S->lq[i];
    S->lq_len = m;
    m = 0;
    for (int64_t i = 0; i < S->sq_len; i++)
        if (!S->pool[S->sq[i]].squashed) S->sq[m++] = S->sq[i];
    S->sq_len = m;
    m = 0;
    for (int64_t i = 0; i < S->res_len; i++)
        if (!S->pool[S->resolves[i]].squashed)
            S->resolves[m++] = S->resolves[i];
    S->res_len = m;
    ss_flush(S);
    S->fetch_ix = restart_ix;
    S->fetch_block_ix = -1;
    S->fetch_resume = S->cycle + 1;
}

static int check_violation(Sim *S, int64_t six) {
    Uop *st = &S->pool[six];
    if (st->squashed) return 0;
    int64_t victim = -1;
    for (int64_t i = 0; i < S->lq_len; i++) {
        Uop *ld = &S->pool[S->lq[i]];
        if (ld->age <= st->age || !ld->issued) continue;
        if (ld->addr != st->addr) continue;
        if (ld->forwarded_from != ABSENT &&
            ld->forwarded_from >= st->age) continue;
        if (victim < 0 || ld->age < S->pool[victim].age)
            victim = S->lq[i];
    }
    if (victim < 0) return 0;
    S->out[OUT_ORDERING_VIOLATIONS]++;
    if (ss_train_violation(S, S->pool[victim].load_pc, st->store_pc))
        return -1;
    if (S->tap_on)
        tap3(S, (st->ix << 4) | TAP_CONSUME,
             S->cycle - tap_ready_of(st), S->pool[victim].ix);
    flush_restart(S, &S->pool[victim]);
    return 0;
}

static int writeback_stage(Sim *S, int *worked) {
    int64_t cycle = S->cycle;
    int any = 0;
    for (int64_t i = 0; i < S->res_len; i++) {
        if (S->pool[S->resolves[i]].store_resolve_cycle <= cycle) {
            any = 1;
            break;
        }
    }
    if (!any) return 0;
    int64_t pending_len = 0, resolved_len = 0;
    for (int64_t i = 0; i < S->res_len; i++) {
        int32_t six = S->resolves[i];
        Uop *st = &S->pool[six];
        if (st->squashed) continue;
        if (st->store_resolve_cycle <= cycle)
            S->res_scratch[resolved_len++] = six;
        else
            S->resolves[pending_len++] = six;
    }
    S->res_len = pending_len;
    for (int64_t i = 0; i < resolved_len; i++)
        if (check_violation(S, S->res_scratch[i])) return -1;
    *worked = 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* commit (mirrors _commit_stage)                                      */
/* ------------------------------------------------------------------ */

static void commit_stage(Sim *S) {
    const CTrace *T = S->T;
    int64_t cycle = S->cycle;
    int64_t to_commit = S->cfg[CFG_TO_COMMIT];
    int64_t width = S->cfg[CFG_WIDTH];
    int64_t committed = 0, original = 0, embedded = 0, handles = 0;
    while (committed < width && S->win_len) {
        int32_t uix = S->window[S->win_head];
        Uop *u = &S->pool[uix];
        if (u->complete_cycle + to_commit > cycle) break;
        S->win_head = (S->win_head + 1) % S->win_cap;
        S->win_len--;
        committed++;
        if (u->kind == 1) {
            int64_t n = T->h_cnt[T->hidx[u->ix]];
            original += n;
            embedded += n;
            handles++;
        } else {
            original++;                 /* no outlined jumps: policy None */
        }
        if (u->writes) {
            S->phys_used--;
            u->prev_writer = -1;
        }
        if (u->is_store) {
            store_touch(S, u->addr);
            ss_retire_store(S, u->store_pc, u->age);
            for (int64_t i = 0; i < S->sq_len; i++) {
                if (S->sq[i] == uix) {
                    memmove(S->sq + i, S->sq + i + 1,
                            (size_t)(S->sq_len - i - 1) * 4);
                    S->sq_len--;
                    break;
                }
            }
        }
        if (u->is_load) {
            for (int64_t i = 0; i < S->lq_len; i++) {
                if (S->lq[i] == uix) {
                    memmove(S->lq + i, S->lq + i + 1,
                            (size_t)(S->lq_len - i - 1) * 4);
                    S->lq_len--;
                    break;
                }
            }
        }
    }
    S->out[OUT_SLOTS_COMMITTED] += committed;
    S->out[OUT_ORIGINAL_COMMITTED] += original;
    S->out[OUT_EMBEDDED_COMMITTED] += embedded;
    S->out[OUT_HANDLES_COMMITTED] += handles;
    S->out[OUT_ACT_COMMIT_SLOTS] += committed;
}

/* ------------------------------------------------------------------ */
/* warm-up (mirrors _warm)                                             */
/* ------------------------------------------------------------------ */

static void warm(Sim *S) {
    const CTrace *T = S->T;
    for (int64_t ix = 0; ix < T->n; ix++) {
        fetch_latency(S, T->pc[ix]);
        if (T->kind[ix] == 1) {
            int64_t hi = T->hidx[ix];
            int64_t coff = T->h_coff[hi];
            int64_t cnt = T->h_cnt[hi];
            for (int64_t k = 0; k < cnt; k++)
                if (T->c_addr[coff + k] >= 0)
                    load_latency_mem(S, T->c_addr[coff + k], -1);
        } else if (T->addr[ix] >= 0) {
            load_latency_mem(S, T->addr[ix], -1);
        }
    }
    for (int64_t ix = 0; ix < T->n; ix++)
        if (T->kind[ix] == 1)
            mgt_access(S, T->h_tpl[T->hidx[ix]]);
    S->out[OUT_MGT_MISSES] = 0;
    S->il1.acc = S->il1.miss = 0;
    S->dl1.acc = S->dl1.miss = 0;
    S->l2.acc = S->l2.miss = 0;
}

/* ------------------------------------------------------------------ */
/* next-event horizon (mirrors _next_event)                            */
/* ------------------------------------------------------------------ */

static int64_t next_event(Sim *S, int64_t cycle) {
    int64_t horizon = BIG;
    if (S->win_len) {
        int64_t t = S->pool[S->window[S->win_head]].complete_cycle +
                    S->cfg[CFG_TO_COMMIT];
        if (t < horizon) horizon = t;
    }
    for (int64_t i = 0; i < S->res_len; i++) {
        int64_t t = S->pool[S->resolves[i]].store_resolve_cycle;
        if (t < horizon) horizon = t;
    }
    if (S->iq_len) {
        int64_t t = S->iq_min_ready;
        if (t <= cycle) t = cycle + 1;
        if (t < horizon) horizon = t;
    }
    if (S->fb_len) {
        int64_t t = S->fb_cycle[S->fb_head] + S->cfg[CFG_FRONT_DELAY];
        if (cycle < t && t < horizon) horizon = t;
    }
    if (S->fetch_block_ix < 0 && S->fb_len < S->fb_cap &&
        S->fetch_ix < S->T->n) {
        int64_t t = S->fetch_resume;
        if (cycle < t && t < horizon) horizon = t;
    }
    return horizon;
}

/* ------------------------------------------------------------------ */
/* setup / teardown / main loop                                        */
/* ------------------------------------------------------------------ */

static void *zalloc(size_t n) { return calloc(1, n); }

static int cache_init(Cache *c, int64_t sets, int64_t assoc, int64_t line,
                      int64_t lat) {
    c->sets = sets; c->assoc = assoc; c->line = line; c->lat = lat;
    c->acc = c->miss = 0;
    c->ent = (int64_t *)zalloc((size_t)(sets * assoc) * 8);
    c->cnt = (int32_t *)zalloc((size_t)sets * 4);
    return (c->ent && c->cnt) ? 0 : -1;
}

static int tlb_init(Tlb *t, int64_t sets, int64_t assoc, int64_t penalty) {
    t->sets = sets; t->assoc = assoc; t->penalty = penalty;
    t->acc = t->miss = 0;
    t->page = (int64_t *)zalloc((size_t)(sets * assoc) * 8);
    t->cnt = (int32_t *)zalloc((size_t)sets * 4);
    return (t->page && t->cnt) ? 0 : -1;
}

static void sim_free(Sim *S) {
    free(S->pool); free(S->edges);
    free(S->fb_uop); free(S->fb_cycle);
    free(S->window); free(S->iq); free(S->iq_scratch);
    free(S->lq); free(S->sq); free(S->resolves); free(S->res_scratch);
    free(S->alu_pipe_free); free(S->mgt);
    free(S->il1.ent); free(S->il1.cnt);
    free(S->dl1.ent); free(S->dl1.cnt);
    free(S->l2.ent); free(S->l2.cnt);
    free(S->itlb.page); free(S->itlb.cnt);
    free(S->dtlb.page); free(S->dtlb.cnt);
    free(S->pf_last); free(S->pf_stride); free(S->pf_conf);
    free(S->pf_valid);
    free(S->bimodal); free(S->gshare); free(S->chooser);
    free(S->btb_tag); free(S->btb_target); free(S->btb_cnt);
    free(S->ras); free(S->ssit); free(S->lfst);
}

static int64_t run_core(const int64_t *cfg, const CTrace *T, int64_t *out,
                        int64_t max_cycles, int64_t *tap_buf,
                        int64_t tap_cap, int64_t *tap_meta,
                        int64_t tap_flags) {
    Sim sim;
    Sim *S = &sim;
    memset(S, 0, sizeof(Sim));
    S->cfg = cfg;
    S->T = T;
    S->out = out;
    S->tap = tap_buf;
    S->tap_cap = tap_cap;
    S->tap_flags = tap_flags;
    S->tap_on = tap_buf != NULL && tap_cap > 0;
    memset(out, 0, OUT_COUNT * 8);

    int64_t n = T->n;
    S->pool_cap = (n > 64 ? n : 64) + 64;
    S->pool = (Uop *)malloc((size_t)S->pool_cap * sizeof(Uop));
    S->edges_cap = 4 * S->pool_cap;
    S->edges = (Edge *)malloc((size_t)S->edges_cap * sizeof(Edge));
    S->fb_cap = cfg[CFG_FETCH_BUFFER_CAP];
    S->fb_uop = (int32_t *)malloc((size_t)S->fb_cap * 4);
    S->fb_cycle = (int64_t *)malloc((size_t)S->fb_cap * 8);
    S->win_cap = cfg[CFG_ROB] + 1;
    S->window = (int32_t *)malloc((size_t)S->win_cap * 4);
    S->iq = (int32_t *)malloc((size_t)(cfg[CFG_ISSUE_QUEUE] + 1) * 4);
    S->iq_scratch = (int32_t *)malloc((size_t)(cfg[CFG_ISSUE_QUEUE] + 1) * 4);
    S->lq = (int32_t *)malloc((size_t)(cfg[CFG_LOAD_QUEUE] + 1) * 4);
    S->sq = (int32_t *)malloc((size_t)(cfg[CFG_STORE_QUEUE] + 1) * 4);
    S->res_cap = 64;
    S->resolves = (int32_t *)malloc((size_t)S->res_cap * 4);
    S->res_scratch = (int32_t *)malloc((size_t)S->res_cap * 4);
    S->n_pipes = cfg[CFG_MG_ALU_PIPES];
    S->alu_pipe_free = (int64_t *)zalloc((size_t)(S->n_pipes + 1) * 8);
    S->mgt_cap = cfg[CFG_MGT_ENTRIES];
    S->mgt = (int64_t *)malloc((size_t)(S->mgt_cap + 1) * 8);
    for (int i = 0; i < 32; i++) S->reg_map[i] = -1;
    S->fetch_block_ix = -1;
    S->fetch_block_sub = 0;

    int fail = !S->pool || !S->edges || !S->fb_uop || !S->fb_cycle ||
               !S->window || !S->iq || !S->iq_scratch || !S->lq || !S->sq ||
               !S->resolves || !S->res_scratch || !S->alu_pipe_free ||
               !S->mgt;
    if (cache_init(&S->il1, cfg[CFG_IL1_SETS], cfg[CFG_IL1_ASSOC],
                   cfg[CFG_IL1_LINE], cfg[CFG_IL1_LAT])) fail = 1;
    if (cache_init(&S->dl1, cfg[CFG_DL1_SETS], cfg[CFG_DL1_ASSOC],
                   cfg[CFG_DL1_LINE], cfg[CFG_DL1_LAT])) fail = 1;
    if (cache_init(&S->l2, cfg[CFG_L2_SETS], cfg[CFG_L2_ASSOC],
                   cfg[CFG_L2_LINE], cfg[CFG_L2_LAT])) fail = 1;
    if (tlb_init(&S->itlb, cfg[CFG_ITLB_SETS], cfg[CFG_ITLB_ASSOC],
                 cfg[CFG_TLB_MISS_PENALTY])) fail = 1;
    if (tlb_init(&S->dtlb, cfg[CFG_DTLB_SETS], cfg[CFG_DTLB_ASSOC],
                 cfg[CFG_TLB_MISS_PENALTY])) fail = 1;
    int64_t pf_n = cfg[CFG_STRIDE_MASK] + 1;
    S->pf_last = (int64_t *)zalloc((size_t)pf_n * 8);
    S->pf_stride = (int64_t *)zalloc((size_t)pf_n * 8);
    S->pf_conf = (int8_t *)zalloc((size_t)pf_n);
    S->pf_valid = (int8_t *)zalloc((size_t)pf_n);
    int64_t bim_n = cfg[CFG_BIM_MASK] + 1;
    int64_t gsh_n = cfg[CFG_GSH_MASK] + 1;
    int64_t cho_n = cfg[CFG_CHO_MASK] + 1;
    S->bimodal = (int8_t *)malloc((size_t)bim_n);
    S->gshare = (int8_t *)malloc((size_t)gsh_n);
    S->chooser = (int8_t *)malloc((size_t)cho_n);
    int64_t btb_n = cfg[CFG_BTB_SETS] * cfg[CFG_BTB_ASSOC];
    S->btb_tag = (int64_t *)zalloc((size_t)btb_n * 8);
    S->btb_target = (int64_t *)zalloc((size_t)btb_n * 8);
    S->btb_cnt = (int32_t *)zalloc((size_t)cfg[CFG_BTB_SETS] * 4);
    S->ras = (int64_t *)malloc((size_t)(cfg[CFG_RAS_ENTRIES] + 1) * 8);
    int64_t ss_n = cfg[CFG_SS_MASK] + 1;
    S->ssit = (int64_t *)malloc((size_t)ss_n * 8);
    S->lfst_cap = 64;
    S->lfst = (int64_t *)malloc((size_t)S->lfst_cap * 8);
    if (!S->pf_last || !S->pf_stride || !S->pf_conf || !S->pf_valid ||
        !S->bimodal || !S->gshare || !S->chooser || !S->btb_tag ||
        !S->btb_target || !S->btb_cnt || !S->ras || !S->ssit || !S->lfst)
        fail = 1;
    if (fail) { sim_free(S); return RC_NOMEM; }
    memset(S->bimodal, 2, (size_t)bim_n);
    memset(S->gshare, 2, (size_t)gsh_n);
    memset(S->chooser, 2, (size_t)cho_n);
    for (int64_t i = 0; i < ss_n; i++) S->ssit[i] = -1;
    for (int64_t i = 0; i < S->lfst_cap; i++) S->lfst[i] = ABSENT;

    if (cfg[CFG_WARM]) warm(S);

    int64_t cycle = 0;
    int64_t last_progress = 0, last_committed = 0;
    int64_t iq_occupancy = 0, window_occupancy = 0, cycles_seen = 0;
    int64_t front_delay = cfg[CFG_FRONT_DELAY];
    int64_t to_commit = cfg[CFG_TO_COMMIT];
    int64_t rc = RC_OK;

    for (;;) {
        if (S->fetch_ix >= n && !S->fb_len && !S->win_len) break;
        cycle++;
        S->cycle = cycle;
        if (cycle > max_cycles) { rc = RC_BUDGET; break; }
        int worked = 0;
        if (S->win_len &&
            S->pool[S->window[S->win_head]].complete_cycle + to_commit <=
                cycle) {
            commit_stage(S);
            worked = 1;
        }
        if (S->res_len) {
            if (writeback_stage(S, &worked)) { rc = RC_NOMEM; break; }
        }
        if (S->iq_len && S->iq_min_ready <= cycle) {
            if (issue_stage(S, &worked)) { rc = RC_NOMEM; break; }
        }
        if (S->fb_len && S->fb_cycle[S->fb_head] + front_delay <= cycle) {
            if (rename_stage(S, &worked)) { rc = RC_NOMEM; break; }
        }
        if (S->fetch_block_ix >= 0) {
            out[OUT_FETCH_CYCLES_BLOCKED]++;
        } else if (cycle >= S->fetch_resume && S->fb_len < S->fb_cap &&
                   S->fetch_ix < n) {
            if (fetch_stage(S)) { rc = RC_NOMEM; break; }
            worked = 1;
        }
        iq_occupancy += S->iq_len;
        window_occupancy += S->win_len;
        cycles_seen++;
        if (out[OUT_ORIGINAL_COMMITTED] != last_committed) {
            last_committed = out[OUT_ORIGINAL_COMMITTED];
            last_progress = cycle;
        } else if (cycle - last_progress > 1000000) {
            rc = RC_NO_COMMIT;
            break;
        }
        if (worked) continue;
        /* quiet cycle: jump the clock to the next event */
        int64_t target = next_event(S, cycle) - 1;
        int64_t dead = last_progress + 1000001;
        if (target >= dead) {
            if (dead > max_cycles) {
                cycle = max_cycles + 1;
                S->cycle = cycle;
                rc = RC_BUDGET;
            } else {
                cycle = dead;
                S->cycle = cycle;
                rc = RC_NO_COMMIT;
            }
            break;
        }
        if (target > max_cycles) {
            cycle = max_cycles + 1;
            S->cycle = cycle;
            rc = RC_BUDGET;
            break;
        }
        int64_t skipped = target - cycle;
        if (skipped > 0) {
            if (S->fetch_block_ix >= 0)
                out[OUT_FETCH_CYCLES_BLOCKED] += skipped;
            iq_occupancy += skipped * S->iq_len;
            window_occupancy += skipped * S->win_len;
            cycles_seen += skipped;
            out[OUT_CYCLES_SKIPPED] += skipped;
            cycle = target;
            S->cycle = cycle;
        }
    }

    out[OUT_CYCLES] = S->cycle;
    out[OUT_ACT_IQ_OCCUPANCY] = iq_occupancy;
    out[OUT_ACT_WINDOW_OCCUPANCY] = window_occupancy;
    out[OUT_ACT_CYCLES] = cycles_seen;
    out[OUT_IL1_ACC] = S->il1.acc;
    out[OUT_IL1_MISS] = S->il1.miss;
    out[OUT_DL1_ACC] = S->dl1.acc;
    out[OUT_DL1_MISS] = S->dl1.miss;
    out[OUT_L2_ACC] = S->l2.acc;
    out[OUT_L2_MISS] = S->l2.miss;
    out[OUT_ITLB_ACC] = S->itlb.acc;
    out[OUT_ITLB_MISS] = S->itlb.miss;
    out[OUT_DTLB_ACC] = S->dtlb.acc;
    out[OUT_DTLB_MISS] = S->dtlb.miss;
    out[OUT_DEAD_CYCLE] = S->cycle;
    out[OUT_DEAD_IX] = S->fetch_ix;
    out[OUT_DEAD_WINDOW] = S->win_len;
    if (tap_meta) {
        tap_meta[0] = S->tap_len;
        tap_meta[1] = S->tap_ovf;
    }
    sim_free(S);
    return rc;
}

int64_t repro_run(const int64_t *cfg, const CTrace *T, int64_t *out,
                  int64_t max_cycles) {
    return run_core(cfg, T, out, max_cycles, NULL, 0, NULL, 0);
}

/* Same simulation with the event tap armed. ``tap_meta[0]`` receives the
 * number of int64 words written, ``tap_meta[1]`` the overflow flag; on
 * overflow the log is truncated but the simulated results are still
 * exact (emission just stops). ``tap_flags`` selects optional record
 * families (TAPF_GLOBAL -> TAP_VALUE). */
int64_t repro_run_tap(const int64_t *cfg, const CTrace *T, int64_t *out,
                      int64_t max_cycles, int64_t *tap_buf,
                      int64_t tap_cap, int64_t *tap_meta,
                      int64_t tap_flags) {
    return run_core(cfg, T, out, max_cycles, tap_buf, tap_cap, tap_meta,
                    tap_flags);
}

/* ------------------------------------------------------------------ */
/* batched dispatch: N independent points per native call              */
/* ------------------------------------------------------------------ */

/* One (config, trace, result, tap) descriptor. ``run_core`` is fully
 * self-contained (it allocates and frees its own Sim, touches no
 * globals, and reads the CTrace columns read-only), so points are
 * embarrassingly parallel: one marshalled trace may be shared by many
 * points, and ctypes releases the GIL for the whole call. Mirrors
 * ckern._CBatchPoint field for field. */
typedef struct {
    const int64_t *cfg;
    const CTrace *trace;
    int64_t *out;
    int64_t max_cycles;
    int64_t *tap;
    int64_t tap_cap;
    int64_t tap_flags;
    int64_t status;      /* out: RC_* for this point */
    int64_t tap_len;     /* out: valid tap words */
    int64_t tap_ovf;     /* out: tap overflow flag */
} BatchPoint;

typedef struct {
    BatchPoint *pts;
    int64_t n;
    volatile int64_t next;  /* atomic work cursor */
} BatchQueue;

static void batch_drain(BatchQueue *q) {
    for (;;) {
        int64_t i = __sync_fetch_and_add(&q->next, 1);
        if (i >= q->n) break;
        BatchPoint *p = &q->pts[i];
        int64_t meta[2] = {0, 0};
        p->status = run_core(p->cfg, p->trace, p->out, p->max_cycles,
                             p->tap, p->tap_cap, meta, p->tap_flags);
        p->tap_len = meta[0];
        p->tap_ovf = meta[1];
    }
}

#ifdef REPRO_THREADS
#include <pthread.h>

#define BATCH_MAX_THREADS 64

static void *batch_worker(void *arg) {
    batch_drain((BatchQueue *)arg);
    return NULL;
}
#endif

/* Run every point; each gets its own status/tap metadata so a bad point
 * (budget, deadlock, tap overflow, allocation failure) degrades only
 * itself. Returns the number of worker threads actually used (>= 1):
 * builds without pthread support, thread-creation failure, and
 * ``threads <= 1`` all degrade to the serial in-call loop. */
int64_t repro_run_batch(BatchPoint *pts, int64_t n, int64_t threads) {
    BatchQueue q;
    q.pts = pts;
    q.n = n;
    q.next = 0;
    if (n <= 0) return 1;
#ifdef REPRO_THREADS
    if (threads > n) threads = n;
    if (threads > BATCH_MAX_THREADS) threads = BATCH_MAX_THREADS;
    if (threads > 1) {
        pthread_t tids[BATCH_MAX_THREADS];
        int64_t spawned = 0;
        for (int64_t t = 0; t < threads - 1; t++) {
            if (pthread_create(&tids[spawned], NULL, batch_worker, &q))
                break;
            spawned++;
        }
        batch_drain(&q);
        for (int64_t t = 0; t < spawned; t++)
            pthread_join(tids[t], NULL);
        return spawned + 1;
    }
#else
    (void)threads;
#endif
    batch_drain(&q);
    return 1;
}

/* First pass of the slack-profile decode: fold the O(events) log into
 * per-static-record cells so the Python side only walks the O(n)
 * committed prefix. Exactly mirrors the reference loop in
 * SlackCollector.ingest_ckern_tap — CONSUME takes the min sample into
 * the producer's open cell, ISSUE re-opens the cell (squash orphaning)
 * and records issue/ready cycles, REDIRECT zeroes the cell. The
 * ``none`` sentinel (1<<62) matches the Python decoder. */
void repro_tap_fold(const int64_t *events, int64_t n_words,
                    int64_t *cells, int64_t *issue_cycle,
                    int64_t *out_ready) {
    for (int64_t i = 0; i + 2 < n_words; i += 3) {
        int64_t w0 = events[i];
        int64_t tag = w0 & 15;
        int64_t ix = w0 >> 4;
        if (tag == TAP_CONSUME) {
            int64_t a = events[i + 1];
            if (a < cells[ix]) cells[ix] = a;
        } else if (tag == TAP_ISSUE) {
            cells[ix] = ((int64_t)1) << 62;
            issue_cycle[ix] = events[i + 1];
            out_ready[ix] = events[i + 2];
        } else if (tag == TAP_REDIRECT) {
            cells[ix] = 0;
        }
        /* HANDLE / CDELAY belong to the attribution decode. */
    }
}

/* ------------------------------------------------------------------ */
/* plan-construction kernels: profile build, candidate enumeration,   */
/* delay-model scoring, global-slack fold                             */
/* ------------------------------------------------------------------ */
/* Statement-for-statement ports of the plan-side hot paths in
 * minigraph/slack.py, minigraph/candidates.py (+ dataflow.py /
 * serialization.py), minigraph/delay_model.py and
 * analysis/global_slack.py. The Python implementations remain the
 * behavioural reference; results must be bit-identical (integer sums
 * everywhere a sum is taken, and doubles only where the Python code
 * holds a float, combined in the same operation order). */

/* Return codes of the plan kernels (beyond RC_OK/RC_NOMEM). */
#define RC_UNSUPPORTED 4   /* shape outside packed bounds: Python path */

#define PLAN_MAX_SRC 4     /* src positions per singleton (ISA max 3) */
#define PLAN_NONE62 (((int64_t)1) << 62)
#define PLAN_BIG50 (((int64_t)1) << 50)

/* Build the whole slack profile from one run's packed event log: the
 * repro_tap_fold first pass plus the committed-prefix aggregation loop
 * of SlackCollector.ingest_ckern_tap, in one call. Aggregates are
 * int64 sums per static pc (stride PLAN_MAX_SRC for the per-position
 * source columns); ``order`` receives static pcs in first-commit order
 * (the _acc dict's insertion order, so profile() iterates entries
 * identically). ``meta[0]`` = number of distinct pcs, ``meta[1]`` =
 * final anchor. ``min_slack`` must be pre-filled with ``slack_cap``. */
int64_t repro_profile_build(
        const int64_t *events, int64_t n_words, int64_t n_committed,
        const int8_t *kind, const int64_t *pc, const int64_t *rd,
        const int64_t *srcs, const int64_t *srcs_start, int64_t n,
        const int8_t *is_leader, int64_t n_static,
        int64_t anchor0, int64_t slack_cap,
        int64_t *count, int64_t *issue_sum,
        int64_t *src_sum, int64_t *src_count, int64_t *n_src,
        int64_t *out_sum, int64_t *out_count,
        int64_t *slack_sum, int64_t *min_slack,
        int64_t *order, int64_t *meta) {
    if (n <= 0 || n_committed > n) return RC_UNSUPPORTED;
    int64_t *cells = (int64_t *)malloc((size_t)n * 8);
    int64_t *issue_cycle = (int64_t *)calloc((size_t)n, 8);
    int64_t *out_ready = (int64_t *)malloc((size_t)n * 8);
    if (!cells || !issue_cycle || !out_ready) {
        free(cells); free(issue_cycle); free(out_ready);
        return RC_NOMEM;
    }
    for (int64_t i = 0; i < n; i++) {
        cells[i] = PLAN_NONE62;
        out_ready[i] = BIG;
    }
    repro_tap_fold(events, n_words, cells, issue_cycle, out_ready);

    int64_t last_writer[32];
    for (int k = 0; k < 32; k++) last_writer[k] = -1;
    int64_t anchor = anchor0;
    int64_t n_order = 0;
    for (int64_t ix = 0; ix < n_committed; ix++) {
        int64_t r = rd[ix];
        if (kind[ix]) {
            /* Committed handles update the architectural last-writer
             * map but are profiled by the attribution decode. */
            if (r >= 0) last_writer[r] = ix;
            continue;
        }
        int64_t p = pc[ix];
        int64_t s0 = srcs_start[ix];
        int64_t s1 = srcs_start[ix + 1];
        if (p < 0 || p >= n_static || s1 - s0 > PLAN_MAX_SRC) {
            free(cells); free(issue_cycle); free(out_ready);
            return RC_UNSUPPORTED;
        }
        if (count[p] == 0) {
            n_src[p] = s1 - s0;
            order[n_order++] = p;
        }
        if (is_leader[p]) anchor = issue_cycle[ix];
        count[p] += 1;
        issue_sum[p] += issue_cycle[ix] - anchor;
        for (int64_t position = 0; position < s1 - s0; position++) {
            int64_t src = srcs[s0 + position];
            if (src == 0) continue;
            int64_t writer = last_writer[src];
            if (writer < 0) continue;
            int64_t ready = out_ready[writer];
            if (ready < PLAN_BIG50) {
                src_sum[p * PLAN_MAX_SRC + position] += ready - anchor;
                src_count[p * PLAN_MAX_SRC + position] += 1;
            }
        }
        if (r >= 0) {
            out_sum[p] += out_ready[ix] - anchor;
            out_count[p] += 1;
            last_writer[r] = ix;
        }
        /* on_finish, inline: clamp this instance's slack sample. */
        int64_t sample = cells[ix];
        if (sample == PLAN_NONE62) sample = slack_cap;
        else if (sample < 0) sample = 0;
        else if (sample > slack_cap) sample = slack_cap;
        slack_sum[p] += sample;
        if (sample < min_slack[p]) min_slack[p] = sample;
    }
    meta[0] = n_order;
    meta[1] = anchor;
    free(cells); free(issue_cycle); free(out_ready);
    return RC_OK;
}

/* Candidate packing formats (decoded by candidates.py, must match):
 *   ext:   bits 0-1 count (<= 3); entry k at bits 2+9k:
 *          reg (5 bits) | consumer_offset << 5 (2) | position << 7 (2)
 *   out:   -1 for no live register output, else (reg << 2) | producer
 *   edges: bits 0-2 count (<= 6); entry k at bits 3+4k:
 *          (producer_offset << 2) | consumer_offset, sorted ascending
 *   ser:   0 = NONE, 1 = BOUNDED, 2 = UNBOUNDED                      */

/* The enumeration loop of candidates.enumerate_candidates over static
 * listing columns: per basic block, every window [start, end) of
 * aggregable instructions with <= 1 memory op, <= max_ext external
 * inputs (window extension stops once exceeded: inputs only grow),
 * <= 1 live register output, and any control transfer last. The
 * interface/edge/classification analyses mirror dataflow.py and
 * serialization.py exactly. ``rd_eff`` is the destination register for
 * writes_reg instructions, else -1; ``srcs3`` is 3-wide with -1 tail
 * padding; ``live_mask`` is the per-instruction live-out register
 * bitmask. Requires max_size <= 4 and max_ext <= 3 (the packed-format
 * bounds; the Python caller falls back otherwise). Returns the number
 * of candidates, or -(RC_*) on failure. */
int64_t repro_enumerate_candidates(
        const int64_t *opclass, const int64_t *rd_eff,
        const int64_t *srcs3, const int64_t *live_mask, int64_t n_static,
        const int64_t *block_start, const int64_t *block_end,
        int64_t n_blocks, int64_t max_size, int64_t max_ext,
        int64_t *c_start, int64_t *c_end, int64_t *c_ext, int64_t *c_out,
        int64_t *c_edges, int64_t *c_ser, int64_t cap) {
    if (max_size < 2 || max_size > 4 || max_ext < 0 || max_ext > 3)
        return -RC_UNSUPPORTED;
    int64_t n_cand = 0;
    for (int64_t bi = 0; bi < n_blocks; bi++) {
        int64_t bs = block_start[bi];
        int64_t be = block_end[bi];
        for (int64_t start = bs; start < be - 1; start++) {
            int64_t max_end = be < start + max_size ? be
                                                    : start + max_size;
            int64_t mem_ops = 0;
            for (int64_t end = start + 1; end <= max_end; end++) {
                int64_t cls = opclass[end - 1];
                if (cls != OC_SIMPLE && cls != OC_LOAD &&
                    cls != OC_STORE && cls != OC_BRANCH)
                    break;
                if (cls == OC_LOAD || cls == OC_STORE) {
                    mem_ops += 1;
                    if (mem_ops > 1) break;
                }
                int64_t size = end - start;
                if (size >= 2) {
                    /* group_interface: external inputs in first-use
                     * order, live outputs by producer offset. */
                    uint32_t defined_mask = 0, seen_ext = 0;
                    int64_t defined_off[32];
                    int64_t ext_reg[12], ext_off[12], ext_pos[12];
                    int64_t n_ext = 0;
                    for (int64_t off = 0; off < size; off++) {
                        const int64_t *s3 = srcs3 + (start + off) * 3;
                        for (int64_t posn = 0; posn < 3; posn++) {
                            int64_t src = s3[posn];
                            if (src < 0) break;   /* tail padding */
                            if (src == 0 ||
                                ((defined_mask >> src) & 1))
                                continue;
                            if (!((seen_ext >> src) & 1)) {
                                seen_ext |= (uint32_t)1 << src;
                                ext_reg[n_ext] = src;
                                ext_off[n_ext] = off;
                                ext_pos[n_ext] = posn;
                                n_ext++;
                            }
                        }
                        int64_t r = rd_eff[start + off];
                        if (r >= 0) {
                            defined_mask |= (uint32_t)1 << r;
                            defined_off[r] = off;
                        }
                    }
                    if (n_ext > max_ext) break;
                    uint32_t outm = defined_mask &
                                    (uint32_t)live_mask[end - 1];
                    int64_t n_out = 0, out_reg = -1, out_off = -1;
                    for (int64_t r = 1; r < 32; r++) {
                        if ((outm >> r) & 1) {
                            n_out++;
                            out_reg = r;
                            out_off = defined_off[r];
                        }
                    }
                    if (n_out <= 1) {
                        /* internal_edges: dedup'd (producer, consumer)
                         * pairs; producer always earlier, so the
                         * a-major scan emits them sorted. */
                        uint32_t lw_mask = 0;
                        int64_t lw_off[32];
                        uint16_t edge_mask = 0;
                        for (int64_t off = 0; off < size; off++) {
                            const int64_t *s3 = srcs3 +
                                                (start + off) * 3;
                            for (int64_t posn = 0; posn < 3; posn++) {
                                int64_t src = s3[posn];
                                if (src < 0) break;
                                if ((lw_mask >> src) & 1)
                                    edge_mask |= (uint16_t)1
                                        << (lw_off[src] * 4 + off);
                            }
                            int64_t r = rd_eff[start + off];
                            if (r >= 0) {
                                lw_mask |= (uint32_t)1 << r;
                                lw_off[r] = off;
                            }
                        }
                        int64_t epack = 0, n_edges = 0;
                        uint8_t uadj[4] = {0, 0, 0, 0};
                        uint8_t dadj[4] = {0, 0, 0, 0};
                        for (int64_t a = 0; a < size; a++) {
                            for (int64_t b = 0; b < size; b++) {
                                if (!((edge_mask >> (a * 4 + b)) & 1))
                                    continue;
                                epack |= (int64_t)((a << 2) | b)
                                    << (3 + 4 * n_edges);
                                n_edges++;
                                uadj[a] |= (uint8_t)(1 << b);
                                uadj[b] |= (uint8_t)(1 << a);
                                dadj[a] |= (uint8_t)(1 << b);
                            }
                        }
                        epack |= n_edges;
                        /* classify (serialization.py): */
                        int serial = 0;
                        for (int64_t k = 0; k < n_ext; k++)
                            if (ext_off[k] > 0) { serial = 1; break; }
                        int64_t ser;
                        if (!serial) {
                            ser = 0;                     /* NONE */
                        } else if (n_out == 0) {
                            ser = 1;                     /* BOUNDED */
                        } else {
                            /* weak connectivity from node 0 */
                            uint8_t reach = 1;
                            for (int64_t it = 0; it < size; it++)
                                for (int64_t i = 0; i < size; i++)
                                    if ((reach >> i) & 1)
                                        reach |= uadj[i];
                            uint8_t all = (uint8_t)((1 << size) - 1);
                            if (reach != all) {
                                ser = 2;                 /* UNBOUNDED */
                            } else {
                                /* directed transitive closure */
                                uint8_t dreach[4];
                                for (int64_t i = 0; i < size; i++)
                                    dreach[i] = dadj[i];
                                for (int64_t it = 0; it < size; it++)
                                    for (int64_t i = 0; i < size; i++)
                                        for (int64_t j = 0; j < size;
                                             j++)
                                            if ((dreach[i] >> j) & 1)
                                                dreach[i] |= dreach[j];
                                ser = 1;                 /* BOUNDED */
                                for (int64_t k = 0; k < n_ext; k++) {
                                    int64_t cons = ext_off[k];
                                    if (cons == 0) continue;
                                    if (cons != out_off &&
                                        !((dreach[cons] >> out_off)
                                          & 1)) {
                                        ser = 2;         /* UNBOUNDED */
                                        break;
                                    }
                                }
                            }
                        }
                        if (n_cand >= cap) return -RC_NOMEM;
                        c_start[n_cand] = start;
                        c_end[n_cand] = end;
                        int64_t xpack = n_ext;
                        for (int64_t k = 0; k < n_ext; k++)
                            xpack |= (ext_reg[k] | (ext_off[k] << 5) |
                                      (ext_pos[k] << 7))
                                << (2 + 9 * k);
                        c_ext[n_cand] = xpack;
                        c_out[n_cand] = n_out
                            ? ((out_reg << 2) | out_off) : -1;
                        c_edges[n_cand] = epack;
                        c_ser[n_cand] = ser;
                        n_cand++;
                    }
                }
                if (cls == OC_BRANCH) break;   /* transfer must be last */
            }
        }
    }
    return n_cand;
}

/* Delay-model rules #1-#4 (delay_model.assess) for a whole candidate
 * set against a packed profile, one verdict bitmask per candidate:
 * bit 0 profiled (profile covers the window), bit 1 degrades (rule #4),
 * bit 2 degrades on any output delay, bit 3 SIAL. Profile columns are
 * doubles (the exact division results Python holds); absent src-ready
 * values are -inf, exactly the _NEG_INF substitution in assess(). All
 * float arithmetic replicates the Python operation order. */
int64_t repro_score_candidates(
        int64_t n_cand, const int64_t *c_start, const int64_t *c_end,
        const int64_t *c_ext, const int64_t *c_out,
        const int64_t *opclass, const int64_t *latency, int64_t n_static,
        const int8_t *p_present, const double *p_rel_issue,
        const double *p_src_ready, const double *p_slack,
        const double *p_out_ready, const int8_t *p_has_out,
        int64_t measured, double tolerance, int64_t *verdict) {
    for (int64_t i = 0; i < n_cand; i++) {
        int64_t start = c_start[i];
        int64_t end = c_end[i];
        int64_t size = end - start;
        if (size < 1 || size > 4 || start < 0 || end > n_static) {
            verdict[i] = 0;   /* outside the profile: unprofiled */
            continue;
        }
        int covered = 1;
        for (int64_t k = 0; k < size; k++)
            if (!p_present[start + k]) { covered = 0; break; }
        if (!covered) {
            verdict[i] = 0;
            continue;
        }
        double lat[4];
        for (int64_t k = 0; k < size; k++)
            lat[k] = (double)latency[start + k];
        if (measured) {
            for (int64_t k = 0; k < size; k++) {
                if (p_has_out[start + k]) {
                    double observed = p_out_ready[start + k] -
                                      p_rel_issue[start + k];
                    if (observed > lat[k]) lat[k] = observed;
                }
            }
        }
        /* Rule #1: the handle waits for every external input. */
        int64_t xpack = c_ext[i];
        int64_t n_ext = xpack & 3;
        double ready_vals[3], ser_ready[3];
        int64_t n_ready = 0, n_ser = 0;
        for (int64_t k = 0; k < n_ext; k++) {
            int64_t entry = (xpack >> (2 + 9 * k)) & 0x1ff;
            int64_t cons = (entry >> 5) & 3;
            int64_t posn = (entry >> 7) & 3;
            double rv = p_src_ready[(start + cons) * PLAN_MAX_SRC
                                    + posn];
            ready_vals[n_ready++] = rv;
            if (cons > 0) ser_ready[n_ser++] = rv;
        }
        double issue0 = p_rel_issue[start];
        if (n_ready) {
            double m = ready_vals[0];
            for (int64_t k = 1; k < n_ready; k++)
                if (ready_vals[k] > m) m = ready_vals[k];
            if (m > issue0) issue0 = m;
        }
        /* Rule #2: strictly serial internal execution. */
        double issue_mg[4];
        issue_mg[0] = issue0;
        for (int64_t k = 1; k < size; k++)
            issue_mg[k] = issue_mg[k - 1] + lat[k - 1];
        /* Rule #3: per-constituent induced delay. */
        double delays[4];
        for (int64_t k = 0; k < size; k++)
            delays[k] = issue_mg[k] - p_rel_issue[start + k];
        /* Rule #4: register output plus any store or branch. */
        int64_t out_idx[5];
        int64_t n_outi = 0;
        if (c_out[i] >= 0) out_idx[n_outi++] = c_out[i] & 3;
        for (int64_t off = 0; off < size; off++) {
            int64_t cls = opclass[start + off];
            if (cls == OC_STORE || cls == OC_BRANCH) {
                int dup = 0;
                for (int64_t j = 0; j < n_outi; j++)
                    if (out_idx[j] == off) { dup = 1; break; }
                if (!dup) out_idx[n_outi++] = off;
            }
        }
        int64_t degrades = 0;
        for (int64_t j = 0; j < n_outi; j++) {
            int64_t idx = out_idx[j];
            if (delays[idx] > p_slack[start + idx] + tolerance) {
                degrades = 1;
                break;
            }
        }
        int64_t delay_only = 0;
        for (int64_t j = 0; j < n_outi; j++)
            if (delays[out_idx[j]] > tolerance) { delay_only = 1; break; }
        /* SIAL: the last-arriving mg-input feeds a non-first
         * constituent and arrives after constituent 0 could issue. */
        int64_t sial = 0;
        if (n_ser && n_ready) {
            double last = ready_vals[0];
            for (int64_t k = 1; k < n_ready; k++)
                if (ready_vals[k] > last) last = ready_vals[k];
            if (last > p_rel_issue[start]) {
                double ms = ser_ready[0];
                for (int64_t k = 1; k < n_ser; k++)
                    if (ser_ready[k] > ms) ms = ser_ready[k];
                if (ms >= last) sial = 1;
            }
        }
        verdict[i] = 1 | (degrades << 1) | (delay_only << 2) |
                     (sial << 3);
    }
    return RC_OK;
}

/* The global-slack event decode and backward DP of
 * GlobalSlackCollector (ingest_ckern_tap's second pass plus
 * _global_profile_from_tap), aggregated per static pc. ``sums`` and
 * ``counts`` must be zeroed and ``mins`` pre-filled with
 * (double)slack_cap. Returns the number of committed singletons
 * (0 -> empty profile), or -RC_NOMEM. Doubles combine in exactly the
 * Python operation order, so the aggregates are bit-identical. */
int64_t repro_global_fold(
        const int64_t *events, int64_t n_words, int64_t n_committed,
        const int8_t *kind, const int64_t *pc, int64_t n,
        int64_t slack_cap, double *sums, double *mins, int64_t *counts) {
    if (n <= 0 || n_committed > n) return 0;
    int64_t *cur = (int64_t *)calloc((size_t)n, 8);
    int64_t *genf = (int64_t *)malloc((size_t)n * 8);
    int64_t *redir = (int64_t *)malloc((size_t)n * 8);
    int64_t *vready = (int64_t *)calloc((size_t)n, 8);
    int64_t *comp = (int64_t *)calloc((size_t)n, 8);
    int64_t *scnt = (int64_t *)calloc((size_t)n, 8);
    int64_t *soff = (int64_t *)malloc(((size_t)n + 1) * 8);
    double *G = (double *)malloc((size_t)n * sizeof(double));
    int8_t *hasG = (int8_t *)calloc((size_t)n, 1);
    int64_t *s_val = NULL, *s_cix = NULL, *s_cgen = NULL, *fill = NULL;
    int64_t rc = -RC_NOMEM;
    if (!cur || !genf || !redir || !vready || !comp || !scnt || !soff ||
        !G || !hasG)
        goto done;
    for (int64_t i = 0; i < n; i++) redir[i] = -1;

    /* Pass 1: generation counts, last TAP_VALUE, last redirect gen. */
    for (int64_t i = 0; i + 2 < n_words; i += 3) {
        int64_t w0 = events[i];
        int64_t tag = w0 & 15;
        int64_t ix = w0 >> 4;
        if (tag == TAP_ISSUE) cur[ix] += 1;
        else if (tag == TAP_VALUE) {
            vready[ix] = events[i + 1];
            comp[ix] = events[i + 2];
        } else if (tag == TAP_REDIRECT) redir[ix] = cur[ix];
    }
    memcpy(genf, cur, (size_t)n * 8);

    /* Pass 2: count consume samples attached to the final (committed)
     * instance of each committed singleton — the only keys the DP
     * queries; samples against squashed instances are orphaned exactly
     * as stale id() keys were. */
    memset(cur, 0, (size_t)n * 8);
    for (int64_t i = 0; i + 2 < n_words; i += 3) {
        int64_t w0 = events[i];
        int64_t tag = w0 & 15;
        int64_t ix = w0 >> 4;
        if (tag == TAP_ISSUE) cur[ix] += 1;
        else if (tag == TAP_CONSUME) {
            if (ix < n_committed && !kind[ix] && cur[ix] == genf[ix])
                scnt[ix] += 1;
        }
    }
    soff[0] = 0;
    for (int64_t i = 0; i < n; i++) soff[i + 1] = soff[i] + scnt[i];
    int64_t total = soff[n];
    s_val = (int64_t *)malloc((size_t)(total ? total : 1) * 8);
    s_cix = (int64_t *)malloc((size_t)(total ? total : 1) * 8);
    s_cgen = (int64_t *)malloc((size_t)(total ? total : 1) * 8);
    fill = (int64_t *)calloc((size_t)n, 8);
    if (!s_val || !s_cix || !s_cgen || !fill) goto done;

    /* Pass 3: record (consumer ix, consumer gen, sample) per kept
     * consume, in event order (the Python append order). */
    memset(cur, 0, (size_t)n * 8);
    for (int64_t i = 0; i + 2 < n_words; i += 3) {
        int64_t w0 = events[i];
        int64_t tag = w0 & 15;
        int64_t ix = w0 >> 4;
        if (tag == TAP_ISSUE) cur[ix] += 1;
        else if (tag == TAP_CONSUME) {
            if (ix < n_committed && !kind[ix] && cur[ix] == genf[ix]) {
                int64_t slot = soff[ix] + fill[ix]++;
                int64_t b = events[i + 2];
                s_val[slot] = events[i + 1];
                s_cix[slot] = b;
                s_cgen[slot] = cur[b];
            }
        }
    }

    /* end_time = max completion over committed singletons. */
    int64_t end_time = 0;
    int64_t n_sing = 0;
    for (int64_t ix = 0; ix < n_committed; ix++) {
        if (kind[ix]) continue;
        if (n_sing == 0 || comp[ix] > end_time) end_time = comp[ix];
        n_sing++;
    }
    if (n_sing == 0) { rc = 0; goto done; }

    /* Backward DP, youngest-first (consumers are always younger). */
    double cap_f = (double)slack_cap;
    for (int64_t ix = n_committed - 1; ix >= 0; ix--) {
        if (kind[ix]) continue;
        double g;
        if (redir[ix] == genf[ix]) {
            g = 0.0;
        } else if (scnt[ix] == 0) {
            g = (double)(end_time - vready[ix]);
        } else {
            g = 0.0;
            int first = 1;
            for (int64_t slot = soff[ix]; slot < soff[ix] + scnt[ix];
                 slot++) {
                int64_t cix = s_cix[slot];
                double gc = cap_f;
                if (cix < n_committed && !kind[cix] && hasG[cix] &&
                    s_cgen[slot] == genf[cix])
                    gc = G[cix];
                double v = (double)s_val[slot] + gc;
                if (first || v < g) { g = v; first = 0; }
            }
        }
        if (g < 0.0) g = 0.0;   /* max(0.0, g) */
        G[ix] = g;
        hasG[ix] = 1;
    }

    /* Aggregate per pc, ascending (the Python loop's float-add order). */
    for (int64_t ix = 0; ix < n_committed; ix++) {
        if (kind[ix]) continue;
        double g = G[ix];
        if (g > cap_f) g = cap_f;   /* min(G, cap) */
        int64_t p = pc[ix];
        sums[p] += g;
        if (g < mins[p]) mins[p] = g;
        counts[p] += 1;
    }
    rc = n_sing;

done:
    free(cur); free(genf); free(redir); free(vready); free(comp);
    free(scnt); free(soff); free(G); free(hasG);
    free(s_val); free(s_cix); free(s_cgen); free(fill);
    return rc;
}
