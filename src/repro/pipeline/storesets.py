"""StoreSets memory-dependence predictor (Chrysos & Emer style).

Loads are scheduled aggressively (Table 1): a load may issue before older
stores with unresolved addresses *unless* the predictor says it depends on
one. When aggressive scheduling turns out wrong (an older store to the same
address executes after the load issued), the pipeline is flushed and the
offending load/store pair is trained into a common store set.

The implementation keeps the two classic tables:

* SSIT — store-set ID table, indexed by instruction PC;
* LFST — last fetched store table, indexed by store-set ID, tracking the
  most recent in-flight store of the set.

The timing core consults :meth:`producer_store_for` at load rename time and
calls :meth:`train_violation` when ordering violations are detected.
"""

from __future__ import annotations

from typing import Dict, Optional


class StoreSets:
    """Store-set memory dependence predictor."""

    INVALID = -1

    def __init__(self, n_sets: int = 1024):
        self._mask = n_sets - 1
        if n_sets & self._mask:
            raise ValueError("store-set table size must be a power of two")
        self._ssit = [self.INVALID] * n_sets
        self._next_id = 0
        # store-set id -> sequence number of last renamed store in the set
        self._lfst: Dict[int, int] = {}
        self.violations = 0

    def _index(self, pc: int) -> int:
        return pc & self._mask

    # -- rename-time interface ------------------------------------------------

    def rename_store(self, pc: int, seq: int) -> Optional[int]:
        """Record an in-flight store; returns the store it must follow, if any.

        Stores within one set execute in order (the classic LFST chaining),
        which the timing core enforces as a dependence.
        """
        set_id = self._ssit[self._index(pc)]
        if set_id == self.INVALID:
            return None
        previous = self._lfst.get(set_id)
        self._lfst[set_id] = seq
        return previous

    def producer_store_for(self, pc: int) -> Optional[int]:
        """Sequence number of the in-flight store a load must wait for."""
        set_id = self._ssit[self._index(pc)]
        if set_id == self.INVALID:
            return None
        return self._lfst.get(set_id)

    def retire_store(self, pc: int, seq: int) -> None:
        """Clear the LFST entry when the tracked store leaves the window."""
        set_id = self._ssit[self._index(pc)]
        if set_id != self.INVALID and self._lfst.get(set_id) == seq:
            del self._lfst[set_id]

    # -- violation training ----------------------------------------------------

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Merge the violating load and store into a common store set."""
        self.violations += 1
        load_ix = self._index(load_pc)
        store_ix = self._index(store_pc)
        load_id = self._ssit[load_ix]
        store_id = self._ssit[store_ix]
        if load_id == self.INVALID and store_id == self.INVALID:
            new_id = self._next_id
            self._next_id += 1
            self._ssit[load_ix] = new_id
            self._ssit[store_ix] = new_id
        elif load_id == self.INVALID:
            self._ssit[load_ix] = store_id
        elif store_id == self.INVALID:
            self._ssit[store_ix] = load_id
        else:
            # Both assigned: merge into the smaller ID (declawed version of
            # the paper's "merge into one set" rule).
            winner = min(load_id, store_id)
            self._ssit[load_ix] = winner
            self._ssit[store_ix] = winner

    def flush(self) -> None:
        """Pipeline flush: no stores remain in flight."""
        self._lfst.clear()
