"""Cycle-level out-of-order superscalar timing model.

The core replays a dynamic trace (see :mod:`repro.isa.interp`) against the
Table 1 machine model: a 13-stage pipeline with branch prediction, I$/D$/L2
hierarchy, register renaming against a bounded physical register pool, an
issue queue with per-class issue ports and speculative wakeup (cache-miss
replays), load/store queues with store-to-load forwarding, StoreSets-style
aggressive load scheduling with flush-and-restart on ordering violations,
and in-order commit.

Mini-graph handles (trace records with ``kind == 1``) occupy a single slot
in every book-keeping structure. At issue, the Mini-Graph Table drives
their constituents through an ALU pipeline in strict series (rule #2 of the
paper); the handle cannot issue until *all* of its external register inputs
are ready (rule #1 — external serialization). A
:class:`~repro.minigraph.dynamic.MiniGraphPolicy` may disable templates at
run time, in which case subsequent instances are fetched in outlined form
(two extra jumps around the constituent singletons).

Host performance
----------------
The main loop is *event-driven*: stages only run on cycles where their
entry condition can hold (window head old enough to commit, a store
pending resolution, an issue-queue entry predicted ready, a fetch-buffer
entry old enough to rename), wakeup is push-based (producers decrement
their consumers' ``pending`` counts at issue instead of consumers polling
every cycle), and when a cycle provably does nothing the clock jumps
straight to the next-event horizon — the earliest commit, store-resolve,
wakeup, or fetch-resume cycle. The per-uop paths are deliberately inlined
and branch-lean (flat ``PackedTrace`` columns, memoized classification,
batched counter flushes): this loop is the throughput bottleneck of every
experiment in the repository, and ``repro bench`` regression-gates it.

Simulated results are bit-identical to the naive one-cycle-at-a-time
model (see ``tests/pipeline/test_cycle_skip.py`` and the golden-stats
gate); only host time changes. ``docs/performance.md`` documents the
skipping invariants.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from ..isa import opcodes as oc
from ..isa.interp import PackedTrace
from . import ckern
from .activity import ActivityCounters
from .branch import BranchUnit
from .caches import INST_BYTES, MemoryHierarchy
from .config import MachineConfig
from .stats import RunStats
from .storesets import StoreSets

_BIG = 1 << 60

# Port classes used by the select stage.
_PORT_SIMPLE = 0
_PORT_COMPLEX = 1
_PORT_LOAD = 2
_PORT_STORE = 3
_PORT_NONE = 4  # nops / halts consume width only

# Indexed by opclass (OC_SIMPLE..OC_HALT); handles never consult it.
_CLASS_TO_PORT = (
    _PORT_SIMPLE,   # OC_SIMPLE
    _PORT_COMPLEX,  # OC_COMPLEX
    _PORT_LOAD,     # OC_LOAD
    _PORT_STORE,    # OC_STORE
    _PORT_SIMPLE,   # OC_BRANCH
    _PORT_SIMPLE,   # OC_JUMP
    _PORT_NONE,     # OC_NOP
    _PORT_NONE,     # OC_HALT
)

_OC_LOAD = oc.OC_LOAD
_OC_STORE = oc.OC_STORE
_OC_BRANCH = oc.OC_BRANCH
_OC_JUMP = oc.OC_JUMP


class SimulationDeadlock(RuntimeError):
    """The core stopped making forward progress (a model bug)."""


class Uop(object):
    """One in-flight instruction (or mini-graph handle).

    Wakeup is push-based: ``pending`` counts unissued producers (and
    unissued stores this uop must order after); ``ready_at`` folds in the
    predicted-ready times of everything already issued. When a producer
    issues it walks its ``reg_waiters`` (stores: ``st_waiters``),
    decrementing ``pending`` and raising ``ready_at`` — so select
    eligibility is the O(1) test ``pending == 0 and ready_at <= cycle``.

    Fields that usually keep their initial value are class-level defaults
    rather than per-instance writes: a ``Uop`` is built on every fetch
    slot, so its constructor is one of the hottest paths in the model.
    """

    # -- defaults (overridden per instance only when they change) ------
    producers: tuple = ()           # Uops feeding this uop's sources
    reg_waiters = None              # consumers registered before we issued
    st_waiters = None               # loads/stores ordered after this store
    prev_writer: Optional["Uop"] = None
    pending = 0
    ready_at = 0
    issued = False
    issue_cycle = -1
    out_pred_ready = _BIG
    out_actual_ready = _BIG
    complete_cycle = _BIG
    resolve_cycle = _BIG
    store_resolve_cycle = _BIG
    committed = False
    squashed = False
    forwarded_from: Optional[int] = None
    mg_serialized = False
    expansion_jump = False

    def __init__(self, rec, ix: int, sub: int):
        self.rec = rec
        self.ix = ix
        self.sub = sub
        self.age = (ix << 8) | (sub + 1)
        kind = rec.kind
        self.kind = kind
        self.pc = rec.pc
        if kind == 1:
            tpl = rec.template
            self.is_load = tpl.has_load
            self.is_store = tpl.has_store
            self.addr = rec.addr
            self.writes = rec.rd >= 0
            self.port = _PORT_NONE  # handles use MG issue slots + pipelines
            self.store_pc = rec.site.mem_pc if tpl.has_store else -1
            self.load_pc = rec.site.mem_pc if tpl.has_load else -1
        else:
            cls = rec.opclass
            self.is_load = cls == _OC_LOAD
            self.is_store = cls == _OC_STORE
            self.addr = rec.addr
            self.writes = rec.rd >= 0
            self.port = _CLASS_TO_PORT[cls]
            self.store_pc = rec.pc if cls == _OC_STORE else -1
            self.load_pc = rec.pc if cls == _OC_LOAD else -1


class _ExpandedRecord(object):
    """A singleton record synthesized when a disabled mini-graph is fetched
    in outlined form (or inline for the 'ideal' penalty-free variant)."""

    __slots__ = ("pc", "op", "opclass", "latency", "rd", "srcs", "addr",
                 "taken", "next_pc")
    kind = 0

    def __init__(self, pc, op, opclass, latency, rd, srcs, addr, taken,
                 next_pc):
        self.pc = pc
        self.op = op
        self.opclass = opclass
        self.latency = latency
        self.rd = rd
        self.srcs = srcs
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc


class OoOCore:
    """Trace-driven cycle-level core.

    Parameters
    ----------
    config:
        The machine configuration (Table 1 point).
    records:
        Dynamic trace — singleton records and mini-graph handle records.
        A plain sequence or a :class:`~repro.isa.interp.PackedTrace`
        (plain sequences are packed on construction; pass
        ``trace.packed()`` / ``fold_trace(...)`` to share the packing).
    policy:
        Optional run-time mini-graph policy (Slack-Dynamic). ``None`` keeps
        every mini-graph enabled.
    collector:
        Optional slack-profile collector receiving dataflow timing
        events. Collectors advertising ``supports_ckern_tap`` keep the
        run eligible for the compiled kernel: the kernel logs packed
        events and the collector rebuilds its profile post-hoc,
        bit-identical to the in-loop observer.
    attribution:
        Optional :class:`~repro.obs.attribution.AttributionCollector`
        receiving per-handle issue events (observed serialization delay).
        Read-only with respect to the simulated schedule; supports the
        event tap, so attaching it no longer forces the Python loop.
    """

    def __init__(self, config: MachineConfig, records,
                 policy=None, collector=None, warm_caches: bool = False,
                 tracer=None, attribution=None):
        self.config = config
        packed = PackedTrace.from_records(records)
        self.records = packed
        self._objs = packed.objs
        self._kinds = packed.kind
        self._n_records = packed.n
        self._warm_caches = warm_caches
        self.policy = policy
        self.collector = collector
        self.tracer = tracer
        self.attribution = attribution
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config)
        self.storesets = StoreSets(config.store_sets)
        self.stats = RunStats(config_name=config.name)
        self.activity = ActivityCounters()
        self.stats.activity = self.activity

        self._cycle = 0
        self._front_delay = config.stages_front - 1
        self._regread = config.stages_regread
        self._to_commit = config.stages_to_commit
        self._rename_pool = max(config.phys_regs - 64, 8)
        self._width = config.width
        self._il1_line_bytes = self.hierarchy.il1.line_bytes

        # Fetch state
        self._fetch_ix = 0
        self._pending: deque = deque()  # expansion of a disabled mini-graph
        self._pending_ix = -1
        self._pending_sub = 0
        self._fetch_buffer: deque = deque()  # (uop, fetch_cycle)
        # Decouples fetch from rename: must cover the front-end depth
        # at full width or it throttles fetch artificially.
        self._fetch_buffer_cap = (config.stages_front + 2) * config.width
        self._fetch_resume = 0
        self._fetch_block: Optional[Tuple[int, int]] = None

        # Window state
        self._window: deque = deque()
        self._iq: List[Uop] = []
        # Earliest cycle any issue-queue entry might issue. Maintained
        # conservatively low (never above the true minimum): the select
        # stage is skipped entirely while ``cycle < _iq_min_ready``.
        self._iq_min_ready = 0
        self._phys_used = 0
        self._lq: List[Uop] = []
        self._sq: List[Uop] = []
        self._reg_map: List[Optional[Uop]] = [None] * 32
        self._store_resolves: List[Uop] = []
        self._alu_pipe_free = [0] * config.mg_alu_pipelines

        # Mini-Graph Table residency (LRU over template ids). Templates
        # are written by the I$ fill path (Figure 2c); a fetch of a handle
        # whose template was evicted stalls while the fill unit re-reads
        # the outlined body (an L2-latency event).
        self._mgt: List[int] = []
        self._mgt_capacity = config.mgt_entries
        self._mgt_fill_latency = config.l2.latency

        self._ports = (config.ports_simple, config.ports_complex,
                       config.ports_load, config.ports_store, config.width)

        # Compiled fast path: eligible when nothing *steers* the run from
        # the inside (no policy) and every attached observer either is
        # absent or can rebuild its state post-hoc from the kernel's
        # packed event tap (``supports_ckern_tap``) — slack profiling and
        # attribution runs included. Tracers render per-cycle pipeline
        # occupancy and still force the Python loop. The Python loop
        # below remains the behavioural reference and the fallback (no
        # compiler, REPRO_PURE_PY=1, a kernel bound exceeded, or an event
        # buffer overflowing its retry).
        self._ctrace = None
        self._want_tap = False
        self._tap_flags = 0
        if policy is None and tracer is None and packed.n \
                and self._tap_capable(collector) \
                and self._tap_capable(attribution) and ckern.available():
            self._ctrace = ckern.marshal_shared(packed)
            self._want_tap = collector is not None or attribution is not None
            # Observers advertise opt-in event families (e.g. TAP_VALUE
            # for the global-slack DP) beyond the base catalogue.
            self._tap_flags = (getattr(collector, "ckern_tap_flags", 0) |
                               getattr(attribution, "ckern_tap_flags", 0))

    @staticmethod
    def _tap_capable(observer) -> bool:
        return observer is None or getattr(observer, "supports_ckern_tap",
                                           False)

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _expand_disabled(self, rec) -> None:
        """Queue the outlined (or ideal inline) form of a disabled handle."""
        outlined = self.policy.outlining_penalty
        base = rec.site.outlined_pc
        items = []
        n = len(rec.constituents)
        if outlined:
            items.append(_ExpandedRecord(
                rec.pc, oc.JMP, oc.OC_JUMP, 1, -1, (), -1, True, base))
        for k, c in enumerate(rec.constituents):
            pc = base + k if outlined else rec.pc
            if c.opclass == _OC_BRANCH:
                # Taken: jump straight to the handle's successor path;
                # not-taken: fall through (to the back-jump if outlined).
                next_pc = rec.next_pc if c.taken else pc + 1
                items.append(_ExpandedRecord(
                    pc, c.op, c.opclass, c.latency, c.rd, c.srcs, -1,
                    c.taken, next_pc))
            else:
                items.append(_ExpandedRecord(
                    pc, c.op, c.opclass, c.latency, c.rd, c.srcs, c.addr,
                    False, pc + 1))
        if outlined:
            items.append(_ExpandedRecord(
                base + n, oc.JMP, oc.OC_JUMP, 1, -1, (), -1, True,
                rec.pc + 1))
        self._pending.extend(items)
        self._pending_ix = self._fetch_ix

    def _mgt_access(self, template_id: int) -> bool:
        """LRU-touch the MGT entry; returns hit?"""
        mgt = self._mgt
        try:
            mgt.remove(template_id)
        except ValueError:
            self.stats.mgt_misses += 1
            mgt.insert(0, template_id)
            if len(mgt) > self._mgt_capacity:
                mgt.pop()
            return False
        mgt.insert(0, template_id)
        return True

    def _fetch_stage(self) -> None:
        # The main loop only calls fetch on cycles where it can act:
        # not branch-blocked, past _fetch_resume, buffer space available,
        # and records (or a pending expansion) left to fetch.
        cycle = self._cycle
        hierarchy = self.hierarchy
        branch_unit = self.branch_unit
        tracer = self.tracer
        policy = self.policy
        objs = self._objs
        kinds = self._kinds
        n = self._n_records
        width = self._width
        cap = self._fetch_buffer_cap
        buf = self._fetch_buffer
        pending = self._pending
        il1_latency = hierarchy.il1.latency
        line_bytes = self._il1_line_bytes
        fetched = 0
        line = -1
        while fetched < width and len(buf) < cap:
            # Peek the next record, expanding disabled mini-graphs.
            if pending:
                rec = pending[0]
                ix = self._pending_ix
                is_sub = True
                is_mg = False
            else:
                ix = self._fetch_ix
                if ix >= n:
                    break
                rec = objs[ix]
                is_sub = False
                is_mg = kinds[ix] == 1
                if is_mg and policy is not None \
                        and not policy.enabled(rec.site):
                    self._expand_disabled(rec)
                    self.stats.mg_disabled_instances += 1
                    rec = pending[0]
                    is_sub = True
                    is_mg = False
            pc = rec.pc
            rec_line = pc * INST_BYTES // line_bytes
            if line < 0:
                latency = hierarchy.fetch_latency(pc)
                extra = latency - il1_latency
                if extra > 0:
                    self._fetch_resume = cycle + extra
                    self.stats.icache_stall_cycles += extra
                    self.activity.fetch_slots += fetched
                    return
                line = rec_line
            elif rec_line != line:
                break
            if is_mg and not self._mgt_access(rec.template.id):
                # Template fill: the handle's body must be read from its
                # outlined location and written into the MGT.
                self._fetch_resume = cycle + self._mgt_fill_latency
                break
            # Consume the record just peeked.
            if is_sub:
                pending.popleft()
                sub = self._pending_sub
                self._pending_sub += 1
                if not pending:
                    self._fetch_ix += 1
                    self._pending_sub = 0
            else:
                self._fetch_ix += 1
                sub = -1
            uop = Uop(rec, ix, sub)
            buf.append((uop, cycle))
            fetched += 1
            if tracer is not None:
                tracer.on_fetch(uop, cycle)

            # Control-transfer prediction at fetch.
            if is_mg:
                if not rec.template.has_branch:
                    continue
                taken = rec.taken
                correct = branch_unit.predict_and_train(
                    pc, True, False, False, taken, rec.next_pc)
            else:
                cls = rec.opclass
                if cls == _OC_BRANCH:
                    taken = rec.taken
                    correct = branch_unit.predict_and_train(
                        pc, True, False, False, taken, rec.next_pc)
                elif cls == _OC_JUMP:
                    if is_sub:
                        uop.expansion_jump = True
                    taken = True
                    correct = branch_unit.predict_and_train(
                        pc, False, rec.op == oc.JAL, rec.op == oc.JR,
                        True, rec.next_pc)
                else:
                    continue

            if not correct:
                self._fetch_block = (uop.ix, uop.sub)
                break
            if taken:
                break  # predicted-taken transfers end the fetch group
        self.activity.fetch_slots += fetched

    # ------------------------------------------------------------------
    # Rename
    # ------------------------------------------------------------------

    def _rename_stage(self) -> bool:
        cycle = self._cycle
        config = self.config
        tracer = self.tracer
        storesets = self.storesets
        buf = self._fetch_buffer
        iq = self._iq
        window = self._window
        lq = self._lq
        sq = self._sq
        reg_map = self._reg_map
        width = self._width
        front_delay = self._front_delay
        iq_cap = config.issue_queue
        rob_cap = config.rob
        lq_cap = config.load_queue
        sq_cap = config.store_queue
        pool = self._rename_pool
        min_ready = self._iq_min_ready
        renamed = 0
        map_reads = 0
        phys_allocs = 0
        while renamed < width and buf:
            uop, fetch_cycle = buf[0]
            if fetch_cycle + front_delay > cycle:
                break
            if len(iq) >= iq_cap or len(window) >= rob_cap:
                break
            writes = uop.writes
            if writes and self._phys_used >= pool:
                break
            is_load = uop.is_load
            if is_load and len(lq) >= lq_cap:
                break
            is_store = uop.is_store
            if is_store and len(sq) >= sq_cap:
                break
            buf.popleft()

            # -- rename: map sources, allocate, queue (inlined hot path)
            ready_at = 0
            pending = 0
            srcs = uop.rec.srcs
            if srcs:
                producers = None
                for i, src in enumerate(srcs):
                    # tuple.index dedupes repeated sources without a set
                    if src == 0 or srcs.index(src) != i:
                        continue
                    map_reads += 1
                    producer = reg_map[src]
                    if producer is None:
                        continue
                    if producers is None:
                        producers = [producer]
                    else:
                        producers.append(producer)
                    if producer.issued:
                        t = producer.out_pred_ready
                        if t > ready_at:
                            ready_at = t
                    else:
                        pending += 1
                        waiters = producer.reg_waiters
                        if waiters is None:
                            producer.reg_waiters = [uop]
                        else:
                            waiters.append(uop)
                if producers is not None:
                    uop.producers = producers
            if writes:
                phys_allocs += 1
                rd = uop.rec.rd
                uop.prev_writer = reg_map[rd]
                reg_map[rd] = uop
                self._phys_used += 1
            if is_load:
                lq.append(uop)
                prev_age = storesets.producer_store_for(uop.load_pc)
                if prev_age is not None:
                    store = self._find_store(prev_age)
                    if store is not None:
                        if store.issued:
                            t = store.store_resolve_cycle
                            if t > ready_at:
                                ready_at = t
                        else:
                            pending += 1
                            waiters = store.st_waiters
                            if waiters is None:
                                store.st_waiters = [uop]
                            else:
                                waiters.append(uop)
            if is_store:
                sq.append(uop)
                prev_age = storesets.rename_store(uop.store_pc, uop.age)
                if prev_age is not None:
                    store = self._find_store(prev_age)
                    if store is not None:
                        if store.issued:
                            t = store.store_resolve_cycle
                            if t > ready_at:
                                ready_at = t
                        else:
                            pending += 1
                            waiters = store.st_waiters
                            if waiters is None:
                                store.st_waiters = [uop]
                            else:
                                waiters.append(uop)
            if ready_at:
                uop.ready_at = ready_at
            if pending:
                uop.pending = pending
            elif ready_at < min_ready:
                min_ready = ready_at
            window.append(uop)
            iq.append(uop)
            renamed += 1
            if tracer is not None:
                tracer.on_rename(uop, cycle)
        if renamed:
            self._iq_min_ready = min_ready
            activity = self.activity
            activity.rename_ops += renamed
            activity.iq_insertions += renamed
            activity.rename_map_reads += map_reads
            activity.phys_allocations += phys_allocs
            return True
        return False

    def _find_store(self, age: int) -> Optional[Uop]:
        for store in self._sq:
            if store.age == age:
                return store
        return None

    # ------------------------------------------------------------------
    # Select / execute
    # ------------------------------------------------------------------

    def _actual_ready(self, uop: Uop) -> int:
        ready = 0
        for producer in uop.producers:
            if producer.out_actual_ready > ready:
                ready = producer.out_actual_ready
        return ready

    def _issue_stage(self) -> bool:
        cycle = self._cycle
        counts = [0, 0, 0, 0, 0]
        ports = self._ports
        config = self.config
        stats = self.stats
        collector = self.collector
        mg_max_issue = config.mg_max_issue
        mg_max_mem_issue = config.mg_max_mem_issue
        regread = self._regread
        dl1_latency = self.hierarchy.dl1.latency
        store_resolves = self._store_resolves
        total = 0
        width = self._width
        mg_issued = 0
        mg_mem_issued = 0
        loads_issued = 0
        replays = 0
        rf_reads = 0
        rf_writes = 0
        kept: List[Uop] = []
        kept_append = kept.append
        iq = self._iq
        # Earliest cycle a kept entry could become issueable, assuming no
        # further issues: the next wakeup event. Any issue this cycle
        # forces a rescan next cycle (resources freed, waiters woken).
        next_ready = _BIG
        for i, uop in enumerate(iq):
            if total >= width:
                kept.extend(iq[i:])
                next_ready = cycle
                break
            if uop.pending:
                kept_append(uop)
                continue
            t = uop.ready_at
            if t > cycle:
                kept_append(uop)
                if t < next_ready:
                    next_ready = t
                continue
            is_handle = uop.kind == 1
            if is_handle:
                if mg_issued >= mg_max_issue:
                    kept_append(uop)
                    if mg_issued == 0:  # mg_max_issue == 0: never issueable
                        next_ready = cycle
                    continue
                if (uop.is_load or uop.is_store) and \
                        mg_mem_issued >= mg_max_mem_issue:
                    kept_append(uop)
                    if mg_mem_issued == 0:
                        next_ready = cycle
                    continue
                pipe = self._free_pipe(cycle)
                if pipe < 0:
                    kept_append(uop)
                    pipe_free = self._alu_pipe_free
                    if pipe_free:
                        t = min(pipe_free)
                        if t < next_ready:
                            next_ready = t
                    else:
                        next_ready = cycle
                    continue
            else:
                port = uop.port
                if port != _PORT_NONE and counts[port] >= ports[port]:
                    kept_append(uop)
                    if counts[port] == 0:  # zero ports: never issueable
                        next_ready = cycle
                    continue
            # Wakeup used *predicted* latencies; check the actual ones
            # (and remember the latest-arriving producer for the
            # consumer-delay heuristic below).
            actual = 0
            last = None
            for producer in uop.producers:
                a = producer.out_actual_ready
                if a > actual:
                    actual = a
                    last = producer
            if actual > cycle:
                # Speculative wakeup was wrong (producer load missed):
                # the select slot is wasted and the uop replays later.
                uop.ready_at = actual
                replays += 1
                total += 1
                kept_append(uop)
                continue
            # Issue!
            total += 1
            if is_handle:
                mg_issued += 1
                if uop.is_load or uop.is_store:
                    mg_mem_issued += 1
                self._execute_handle(uop, pipe)
            else:
                counts[uop.port] += 1
                # -- singleton execute (inlined hot path) --
                uop.issued = True
                uop.issue_cycle = cycle
                rec = uop.rec
                rf_reads += len(rec.srcs)
                if uop.writes:
                    rf_writes += 1
                if uop.is_load:
                    latency = self._load_latency(uop, rec.addr, cycle,
                                                 rec.pc)
                    uop.out_pred_ready = cycle + dl1_latency
                    uop.out_actual_ready = cycle + latency
                    uop.complete_cycle = cycle + regread + latency
                    loads_issued += 1
                elif uop.is_store:
                    uop.store_resolve_cycle = cycle + regread
                    uop.complete_cycle = cycle + regread
                    store_resolves.append(uop)
                else:
                    cls = rec.opclass
                    if cls == _OC_BRANCH or cls == _OC_JUMP:
                        resolve = cycle + rec.latency + regread
                        uop.resolve_cycle = resolve
                        uop.complete_cycle = resolve
                        if rec.rd >= 0:  # jal writes the return address
                            uop.out_pred_ready = uop.out_actual_ready = \
                                cycle + rec.latency
                        if self._fetch_block is not None:
                            self._maybe_unblock_fetch(uop)
                    else:
                        latency = rec.latency
                        uop.out_pred_ready = uop.out_actual_ready = \
                            cycle + latency
                        uop.complete_cycle = cycle + regread + latency
                if collector is not None:
                    self._notify_consumption(uop)
                elif last is not None and last.kind == 1 \
                        and last.mg_serialized and cycle == actual:
                    # Consumer-delay detection (the slow-path equivalent
                    # lives in _notify_consumption).
                    stats.mg_consumer_delays += 1
                    if self.policy is not None:
                        self.policy.on_consumer_delay(last.rec.site)
                    if self.attribution is not None:
                        self.attribution.on_consumer_delay(last.rec.site)
            # Push-based wakeup: fold this uop's now-known timings into
            # every waiter registered at rename.
            waiters = uop.reg_waiters
            if waiters:
                t = uop.out_pred_ready
                for waiter in waiters:
                    waiter.pending -= 1
                    if t > waiter.ready_at:
                        waiter.ready_at = t
            if uop.is_store:
                waiters = uop.st_waiters
                if waiters:
                    t = uop.store_resolve_cycle
                    for waiter in waiters:
                        waiter.pending -= 1
                        if t > waiter.ready_at:
                            waiter.ready_at = t
        if total:
            next_ready = cycle
        self._iq = kept
        self._iq_min_ready = next_ready
        if total:
            self.activity.select_slots += total
            self.activity.regfile_reads += rf_reads
            self.activity.regfile_writes += rf_writes
            stats.loads_issued += loads_issued
            stats.replays += replays
            return True
        return False

    def _free_pipe(self, cycle: int) -> int:
        for i, free_at in enumerate(self._alu_pipe_free):
            if free_at <= cycle:
                return i
        return -1

    def _execute_singleton(self, uop: Uop) -> None:
        """Reference implementation of singleton issue.

        The issue stage inlines this logic for speed; this method is kept
        for documentation and as the behavioural spec the inline copy must
        match (the golden-stats gate holds both to the same results).
        """
        cycle = self._cycle
        uop.issued = True
        uop.issue_cycle = cycle
        rec = uop.rec
        activity = self.activity
        activity.regfile_reads += len(rec.srcs)
        if uop.writes:
            activity.regfile_writes += 1
        regread = self._regread
        if uop.is_load:
            latency = self._load_latency(uop, rec.addr, cycle, rec.pc)
            uop.out_pred_ready = cycle + self.hierarchy.dl1.latency
            uop.out_actual_ready = cycle + latency
            uop.complete_cycle = cycle + regread + latency
            self.stats.loads_issued += 1
        elif uop.is_store:
            uop.store_resolve_cycle = cycle + regread
            uop.complete_cycle = cycle + regread
            self._store_resolves.append(uop)
        else:
            cls = rec.opclass
            if cls == _OC_BRANCH or cls == _OC_JUMP:
                resolve = cycle + rec.latency + regread
                uop.resolve_cycle = resolve
                uop.complete_cycle = resolve
                if rec.rd >= 0:  # jal writes the return address
                    uop.out_pred_ready = uop.out_actual_ready = \
                        cycle + rec.latency
                self._maybe_unblock_fetch(uop)
            else:
                latency = rec.latency
                uop.out_pred_ready = uop.out_actual_ready = cycle + latency
                uop.complete_cycle = cycle + regread + latency
        self._notify_consumption(uop)

    def _execute_handle(self, uop: Uop, pipe: int) -> None:
        cycle = self._cycle
        uop.issued = True
        uop.issue_cycle = cycle
        rec = uop.rec
        # Only the handle's external interface touches the register file;
        # interior values live in the ALU pipeline's operand network.
        self.activity.regfile_reads += len(rec.srcs)
        if uop.writes:
            self.activity.regfile_writes += 1
        tpl = rec.template
        regread = self._regread
        start = cycle
        out_ready = cycle
        for k, constituent in enumerate(rec.constituents):
            if constituent.opclass == _OC_LOAD:
                latency = self._load_latency(uop, constituent.addr, start,
                                             uop.load_pc)
                self.stats.loads_issued += 1
            elif constituent.opclass == _OC_STORE:
                latency = 1
                uop.store_resolve_cycle = start + regread
                self._store_resolves.append(uop)
            elif constituent.opclass == _OC_BRANCH:
                latency = constituent.latency
                uop.resolve_cycle = start + latency + regread
                self._maybe_unblock_fetch(uop)
            else:
                latency = constituent.latency
            if k == tpl.out_producer_ix:
                out_ready = start + latency
            # Rule #2 (internal serialization): strictly serial execution.
            start += latency
        total = start - cycle
        uop.complete_cycle = cycle + regread + total
        if uop.writes:
            uop.out_actual_ready = out_ready
            uop.out_pred_ready = cycle + tpl.nominal_out_latency
        if tpl.has_branch and uop.resolve_cycle == _BIG:
            uop.resolve_cycle = uop.complete_cycle
        # The ALU pipeline is pipelined at 1 op/cycle; multi-cycle internal
        # operations (e.g. load misses) stall it.
        self._alu_pipe_free[pipe] = cycle + 1 + (total - len(rec.constituents))

        # Slack-Dynamic serialization detection: the handle issued exactly
        # when its last external operand arrived, and that operand feeds a
        # non-first constituent.
        last_arrival = 0
        last_consumer_ix = 0
        for producer in uop.producers:
            arrival = producer.out_actual_ready
            if arrival >= last_arrival:
                last_arrival = arrival
                reg = producer.rec.rd
                last_consumer_ix = rec.site.input_consumer_ix.get(reg, 0)
        sial = bool(uop.producers) and last_consumer_ix > 0
        serialized = sial and cycle == last_arrival
        uop.mg_serialized = serialized
        if serialized:
            self.stats.mg_serialized_instances += 1
        if self.policy is not None:
            self.policy.on_issue(rec.site, serialized, sial)
        if self.attribution is not None:
            # The first constituent's singleton issue estimate: when its
            # *own* external inputs (consumer index 0) were ready. The
            # gap to ``last_arrival`` is the observed rule-#1 delay.
            first_ready = 0
            consumer_of = rec.site.input_consumer_ix
            for producer in uop.producers:
                if consumer_of.get(producer.rec.rd, 0) == 0:
                    arrival = producer.out_actual_ready
                    if arrival > first_ready:
                        first_ready = arrival
            self.attribution.on_handle_issue(
                rec.site, cycle, first_ready, last_arrival, serialized,
                sial)
        self._notify_consumption(uop)

    def _notify_consumption(self, uop: Uop) -> None:
        """Report dataflow consumption for slack profiling and the dynamic
        policy's consumer-delay detection."""
        cycle = self._cycle
        collector = self.collector
        last: Optional[Uop] = None
        last_arrival = -1
        for producer in uop.producers:
            if collector is not None:
                collector.on_consume(producer, uop, cycle)
            if producer.out_actual_ready > last_arrival:
                last_arrival = producer.out_actual_ready
                last = producer
        if last is not None and last.kind == 1 and last.mg_serialized \
                and cycle == last_arrival:
            self.stats.mg_consumer_delays += 1
            if self.policy is not None:
                self.policy.on_consumer_delay(last.rec.site)
            if self.attribution is not None:
                self.attribution.on_consumer_delay(last.rec.site)

    def _load_latency(self, uop: Uop, addr: int, when: int,
                      pc: int = -1) -> int:
        """Data latency of a load issued at ``when``: forward or D$ access."""
        best: Optional[Uop] = None
        age = uop.age
        for store in self._sq:
            if store.age >= age or store.addr != addr:
                continue
            if store.store_resolve_cycle <= when:
                if best is None or store.age > best.age:
                    best = store
        if best is not None:
            uop.forwarded_from = best.age
            self.stats.store_forwards += 1
            if self.collector is not None:
                self.collector.on_consume(best, uop, when)
            return self.config.forward_latency
        return self.hierarchy.load_latency(addr, pc)

    def _maybe_unblock_fetch(self, uop: Uop) -> None:
        if self._fetch_block == (uop.ix, uop.sub):
            self._fetch_block = None
            self._fetch_resume = uop.resolve_cycle + 1
            if self.collector is not None:
                self.collector.on_redirect(uop, uop.resolve_cycle)

    # ------------------------------------------------------------------
    # Store resolution / memory ordering violations
    # ------------------------------------------------------------------

    def _writeback_stage(self) -> bool:
        cycle = self._cycle
        resolves = self._store_resolves
        for store in resolves:
            if store.store_resolve_cycle <= cycle:
                break
        else:
            return False
        still_pending: List[Uop] = []
        resolved: List[Uop] = []
        for store in resolves:
            if store.squashed:
                continue
            if store.store_resolve_cycle <= cycle:
                resolved.append(store)
            else:
                still_pending.append(store)
        self._store_resolves = still_pending
        for store in resolved:
            self._check_violation(store)
        return True

    def _check_violation(self, store: Uop) -> None:
        """Flush-and-restart if an already-issued younger load read stale data."""
        if store.squashed:
            return
        victim: Optional[Uop] = None
        for load in self._lq:
            if load.age <= store.age or not load.issued:
                continue
            if load.addr != store.addr:
                continue
            if load.forwarded_from is not None \
                    and load.forwarded_from >= store.age:
                continue
            if victim is None or load.age < victim.age:
                victim = load
        if victim is None:
            return
        self.stats.ordering_violations += 1
        self.storesets.train_violation(victim.load_pc, store.store_pc)
        if self.collector is not None:
            self.collector.on_consume(store, victim, self._cycle)
        self._flush_restart(victim)

    def _flush_restart(self, victim: Uop) -> None:
        """Squash ``victim`` and everything younger; refetch from its record."""
        restart_ix = victim.ix
        reg_map = self._reg_map
        # Squash youngest-first so the rename map rewinds correctly.
        squashed: List[Uop] = []
        while self._window and self._window[-1].ix >= restart_ix:
            uop = self._window.pop()
            uop.squashed = True
            squashed.append(uop)
            if self.tracer is not None:
                self.tracer.on_squash(uop, self._cycle)
            if uop.writes:
                self._phys_used -= 1
                rd = uop.rec.rd
                if reg_map[rd] is uop:
                    reg_map[rd] = uop.prev_writer
        for uop, _ in self._fetch_buffer:
            uop.squashed = True
        self._fetch_buffer.clear()
        squash_set = {id(u) for u in squashed}
        self._iq = [u for u in self._iq if id(u) not in squash_set]
        # Stale waiter links from surviving producers to squashed uops are
        # harmless (a waiter is always younger than its producer, so a
        # surviving uop's producers survive too); just rescan from now.
        self._iq_min_ready = 0
        self._lq = [u for u in self._lq if not u.squashed]
        self._sq = [u for u in self._sq if not u.squashed]
        self._store_resolves = [u for u in self._store_resolves
                                if not u.squashed]
        self.storesets.flush()
        self._pending.clear()
        self._pending_sub = 0
        self._fetch_ix = restart_ix
        self._fetch_block = None
        self._fetch_resume = self._cycle + 1

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit_stage(self) -> None:
        cycle = self._cycle
        stats = self.stats
        tracer = self.tracer
        collector = self.collector
        to_commit = self._to_commit
        committed = 0
        original = 0
        embedded = 0
        handles = 0
        outline_jumps = 0
        window = self._window
        width = self._width
        while committed < width and window:
            uop = window[0]
            if uop.complete_cycle + to_commit > cycle:
                break
            window.popleft()
            uop.committed = True
            committed += 1
            if tracer is not None:
                tracer.on_commit(uop, cycle)
            if uop.kind == 1:
                n = len(uop.rec.constituents)
                original += n
                embedded += n
                handles += 1
            elif uop.expansion_jump:
                outline_jumps += 1
            else:
                original += 1
            if uop.writes:
                self._phys_used -= 1
                # The rename-map entry survives commit so that later
                # consumers still link to this producer (the slack profiler
                # needs real ready times, and eligibility treats committed
                # producers as ready). Drop the displaced-writer chain to
                # keep retired uops from pinning the whole history.
                uop.prev_writer = None
            if uop.is_store:
                self.hierarchy.store_touch(uop.addr)
                self.storesets.retire_store(uop.store_pc, uop.age)
                self._sq.remove(uop)
            if uop.is_load:
                self._lq.remove(uop)
            if collector is not None and uop.kind == 0 \
                    and not uop.expansion_jump:
                collector.on_commit(uop)
        stats.slots_committed += committed
        stats.original_committed += original
        stats.embedded_committed += embedded
        stats.handles_committed += handles
        stats.outline_jumps_committed += outline_jumps
        self.activity.commit_slots += committed

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _warm(self) -> None:
        """Pre-touch every I-line and data address in the trace.

        Stands in for the paper's sampled-simulation warm-up: compulsory
        misses are removed while capacity and conflict behaviour remain.
        """
        hierarchy = self.hierarchy
        fetch_latency = hierarchy.fetch_latency
        load_latency = hierarchy.load_latency
        packed = self.records
        objs = self._objs
        kinds = packed.kind
        pcs = packed.pc
        addrs = packed.addr
        for ix in range(self._n_records):
            fetch_latency(pcs[ix])
            if kinds[ix] == 1:
                for constituent in objs[ix].constituents:
                    if constituent.addr >= 0:
                        load_latency(constituent.addr)
            elif addrs[ix] >= 0:
                load_latency(addrs[ix])
        for ix in range(self._n_records):
            if kinds[ix] == 1:
                self._mgt_access(objs[ix].template.id)
        self.stats.mgt_misses = 0
        hierarchy.il1.accesses = hierarchy.il1.misses = 0
        hierarchy.dl1.accesses = hierarchy.dl1.misses = 0
        hierarchy.l2.accesses = hierarchy.l2.misses = 0

    def _next_event(self, cycle: int) -> int:
        """Earliest future cycle on which any stage could act.

        Only consulted on provably-quiet cycles (no stage did work). Every
        state change is driven by one of these events:

        * the window head becoming old enough to commit (commit, and the
          ROB/physical-register/LQ/SQ space that rename waits on);
        * a pending store reaching its resolve cycle (writeback, ordering
          violations, flush);
        * an issue-queue entry's predicted wakeup (``_iq_min_ready``, which
          also covers ALU-pipe and MG-slot back-pressure, mispredicted-
          branch resolution and replays);
        * the fetch-buffer head becoming old enough to rename;
        * fetch resuming after an I$/MGT fill or branch redirect.

        Returns ``_BIG`` when no event is pending (only possible once the
        trace is drained, or on a genuine model deadlock).
        """
        horizon = _BIG
        window = self._window
        if window:
            t = window[0].complete_cycle + self._to_commit
            if t < horizon:
                horizon = t
        for store in self._store_resolves:
            t = store.store_resolve_cycle
            if t < horizon:
                horizon = t
        if self._iq:
            t = self._iq_min_ready
            if t <= cycle:
                t = cycle + 1
            if t < horizon:
                horizon = t
        buf = self._fetch_buffer
        if buf:
            t = buf[0][1] + self._front_delay
            if cycle < t < horizon:
                horizon = t
        if self._fetch_block is None and len(buf) < self._fetch_buffer_cap \
                and (self._pending or self._fetch_ix < self._n_records):
            t = self._fetch_resume
            if cycle < t < horizon:
                horizon = t
        return horizon

    def _tap_words(self) -> int:
        """Initial event-buffer capacity for this run's tap families."""
        cap = ckern.tap_capacity(self.records)
        if self._tap_flags & ckern.TAP_FLAG_GLOBAL:
            # One TAP_VALUE record per committed singleton issue.
            cap += self.records.n * ckern.TAP_WORDS
        return cap

    def kernel_batch_entry(self, max_cycles: int):
        """This run as a ``ckern.run_batch`` descriptor; None when the
        compiled path is unavailable (caller keeps per-point dispatch).

        The marshalled trace and packed config are shared, memoized
        objects — many points in one batch (a selector sweep over one
        program, a config sweep on one machine) reference the same
        arena, and the kernel reads both strictly read-only.
        """
        if self._ctrace is None:
            return None
        cfg = ckern.pack_config_cached(self.config, self._warm_caches)
        tap_words = self._tap_words() if self._want_tap else 0
        return (cfg, self._ctrace, max_cycles, tap_words, self._tap_flags)

    def apply_kernel_result(self, rc, out, events, n_words,
                            overflowed) -> Optional[RunStats]:
        """Copy back one batched point's kernel result.

        Returns the completed :class:`RunStats`; None means the caller
        must rerun the point through the ordinary per-point path — tap
        overflow (which that path retries at 4x before degrading to the
        Python loop), allocation failure, or a simulated deadlock (which
        that path reports by raising exactly as the Python loop would).
        """
        ck = ckern
        if overflowed or out is None or rc != ck.RC_OK:
            return None
        return self._apply_kernel_result(rc, out, events, n_words)

    def _run_compiled(self, max_cycles: int) -> Optional[RunStats]:
        """Run via the C kernel; None means fall back to the Python loop.

        The kernel never mutates Python state, so a fallback rerun is
        always safe. On success (or a simulated deadlock, which the
        Python loop reports by raising mid-run) every externally visible
        counter — ``stats``, ``activity``, hierarchy/TLB/prefetcher and
        branch-unit totals — is copied back so callers cannot tell which
        path ran.
        """
        ck = ckern
        cfg = ck.pack_config_cached(self.config, self._warm_caches)
        events = n_words = None
        if self._want_tap:
            # Opt-in event tap: one retry at 4x capacity (squash storms
            # can exceed the static estimate), then Python fallback.
            cap = self._tap_words()
            rc, out, events, n_words, overflow = ck.run_tap(
                cfg, self._ctrace, max_cycles, cap, self._tap_flags)
            if overflow:
                ck.counters["tap_overflow_retries"] += 1
                rc, out, events, n_words, overflow = ck.run_tap(
                    cfg, self._ctrace, max_cycles, 4 * cap, self._tap_flags)
            if overflow:
                return None
        else:
            rc, out = ck.run(cfg, self._ctrace, max_cycles)
        if rc == ck.RC_NOMEM or out is None:
            return None
        return self._apply_kernel_result(rc, out, events, n_words)

    def _apply_kernel_result(self, rc, out, events,
                             n_words) -> Optional[RunStats]:
        """Copy every externally visible counter out of one kernel run
        (shared by the per-point and batched paths; raises on simulated
        deadlocks exactly as the Python loop does mid-run)."""
        ck = ckern
        stats = self.stats
        stats.cycles_skipped = out[ck.OUT_CYCLES_SKIPPED]
        stats.original_committed = out[ck.OUT_ORIGINAL_COMMITTED]
        stats.handles_committed = out[ck.OUT_HANDLES_COMMITTED]
        stats.embedded_committed = out[ck.OUT_EMBEDDED_COMMITTED]
        stats.slots_committed = out[ck.OUT_SLOTS_COMMITTED]
        stats.fetch_cycles_blocked = out[ck.OUT_FETCH_CYCLES_BLOCKED]
        stats.icache_stall_cycles = out[ck.OUT_ICACHE_STALL_CYCLES]
        stats.loads_issued = out[ck.OUT_LOADS_ISSUED]
        stats.store_forwards = out[ck.OUT_STORE_FORWARDS]
        stats.ordering_violations = out[ck.OUT_ORDERING_VIOLATIONS]
        stats.replays = out[ck.OUT_REPLAYS]
        stats.mg_serialized_instances = out[ck.OUT_MG_SERIALIZED]
        stats.mg_consumer_delays = out[ck.OUT_MG_CONSUMER_DELAYS]
        stats.mgt_misses = out[ck.OUT_MGT_MISSES]
        branch_unit = self.branch_unit
        branch_unit.cond_predictions = out[ck.OUT_COND_PRED]
        branch_unit.cond_mispredictions = out[ck.OUT_COND_MISPRED]
        branch_unit.indirect_predictions = out[ck.OUT_IND_PRED]
        branch_unit.indirect_mispredictions = out[ck.OUT_IND_MISPRED]
        hierarchy = self.hierarchy
        hierarchy.il1.accesses = out[ck.OUT_IL1_ACC]
        hierarchy.il1.misses = out[ck.OUT_IL1_MISS]
        hierarchy.dl1.accesses = out[ck.OUT_DL1_ACC]
        hierarchy.dl1.misses = out[ck.OUT_DL1_MISS]
        hierarchy.l2.accesses = out[ck.OUT_L2_ACC]
        hierarchy.l2.misses = out[ck.OUT_L2_MISS]
        hierarchy.itlb.accesses = out[ck.OUT_ITLB_ACC]
        hierarchy.itlb.misses = out[ck.OUT_ITLB_MISS]
        hierarchy.dtlb.accesses = out[ck.OUT_DTLB_ACC]
        hierarchy.dtlb.misses = out[ck.OUT_DTLB_MISS]
        if hierarchy.il1_prefetcher is not None:
            hierarchy.il1_prefetcher.issued = out[ck.OUT_IL1_PF_ISSUED]
        if hierarchy.dl1_prefetcher is not None:
            hierarchy.dl1_prefetcher.issued = out[ck.OUT_DL1_PF_ISSUED]
        self.storesets.violations = out[ck.OUT_SS_VIOLATIONS]
        activity = self.activity
        activity.fetch_slots = out[ck.OUT_ACT_FETCH_SLOTS]
        activity.rename_ops = out[ck.OUT_ACT_RENAME_OPS]
        activity.rename_map_reads = out[ck.OUT_ACT_MAP_READS]
        activity.phys_allocations = out[ck.OUT_ACT_PHYS_ALLOCS]
        activity.iq_insertions = out[ck.OUT_ACT_IQ_INSERTIONS]
        activity.iq_occupancy = out[ck.OUT_ACT_IQ_OCCUPANCY]
        activity.window_occupancy = out[ck.OUT_ACT_WINDOW_OCCUPANCY]
        activity.select_slots = out[ck.OUT_ACT_SELECT_SLOTS]
        activity.regfile_reads = out[ck.OUT_ACT_RF_READS]
        activity.regfile_writes = out[ck.OUT_ACT_RF_WRITES]
        activity.commit_slots = out[ck.OUT_ACT_COMMIT_SLOTS]
        activity.cycles = out[ck.OUT_ACT_CYCLES]
        self._cycle = out[ck.OUT_DEAD_CYCLE]
        # Deadlocks surface exactly as in the Python loop: counters up to
        # the failure point are live, but ``stats.cycles``/``cache_stats``
        # are only set on a completed run.
        if rc == ck.RC_BUDGET:
            raise SimulationDeadlock("exceeded max cycle budget")
        if rc == ck.RC_NO_COMMIT:
            raise SimulationDeadlock(
                f"no commit for 1M cycles at cycle {out[ck.OUT_DEAD_CYCLE]} "
                f"(ix={out[ck.OUT_DEAD_IX]}, "
                f"window={out[ck.OUT_DEAD_WINDOW]})")
        stats.cycles = out[ck.OUT_CYCLES]
        stats.cond_branches = out[ck.OUT_COND_PRED]
        stats.cond_mispredicts = out[ck.OUT_COND_MISPRED]
        stats.indirect_branches = out[ck.OUT_IND_PRED]
        stats.indirect_mispredicts = out[ck.OUT_IND_MISPRED]
        stats.cache_stats = {
            "il1_misses": out[ck.OUT_IL1_MISS],
            "dl1_misses": out[ck.OUT_DL1_MISS],
            "l2_misses": out[ck.OUT_L2_MISS],
        }
        if self._want_tap:
            # Post-hoc decode: collectors rebuild the exact state the
            # Python observer loop would have left behind (including the
            # on_finish() finalization the Python path runs at the end).
            committed = out[ck.OUT_SLOTS_COMMITTED]
            if self.collector is not None:
                self.collector.ingest_ckern_tap(self.records, events,
                                                n_words, committed)
            if self.attribution is not None:
                self.attribution.ingest_ckern_tap(self.records, events,
                                                  n_words, committed)
        return stats

    def run(self, max_cycles: int = 200_000_000) -> RunStats:
        """Run the trace to completion and return statistics."""
        if self._ctrace is not None:
            result = self._run_compiled(max_cycles)
            if result is not None:
                return result
            self._ctrace = None
        stats = self.stats
        if self._warm_caches:
            self._warm()
        activity = self.activity
        window = self._window
        buf = self._fetch_buffer
        to_commit = self._to_commit
        front_delay = self._front_delay
        n_records = self._n_records
        last_progress = 0
        last_committed = 0
        cycle = self._cycle
        # Occupancy integrals are accumulated locally and flushed once;
        # skipped cycles charge the (frozen) occupancy of the quiet state.
        iq_occupancy = 0
        window_occupancy = 0
        cycles_seen = 0
        try:
            while True:
                if self._fetch_ix >= n_records and not self._pending \
                        and not buf and not window:
                    break
                cycle += 1
                self._cycle = cycle
                if cycle > max_cycles:
                    raise SimulationDeadlock("exceeded max cycle budget")
                worked = False
                if window and window[0].complete_cycle + to_commit <= cycle:
                    self._commit_stage()
                    worked = True
                if self._store_resolves and self._writeback_stage():
                    worked = True
                if self._iq and self._iq_min_ready <= cycle \
                        and self._issue_stage():
                    worked = True
                if buf and buf[0][1] + front_delay <= cycle \
                        and self._rename_stage():
                    worked = True
                if self._fetch_block is not None:
                    stats.fetch_cycles_blocked += 1
                elif cycle >= self._fetch_resume and len(buf) < \
                        self._fetch_buffer_cap and \
                        (self._pending or self._fetch_ix < n_records):
                    self._fetch_stage()
                    worked = True
                iq_occupancy += len(self._iq)
                window_occupancy += len(window)
                cycles_seen += 1
                if stats.original_committed != last_committed:
                    last_committed = stats.original_committed
                    last_progress = cycle
                elif cycle - last_progress > 1_000_000:
                    raise SimulationDeadlock(
                        f"no commit for 1M cycles at cycle {cycle} "
                        f"(ix={self._fetch_ix}, window={len(window)})")
                if worked:
                    continue
                # Quiet cycle: jump the clock to the next event, charging
                # each skipped cycle's per-cycle effects (occupancy
                # integrals, blocked-fetch accounting) in bulk.
                target = self._next_event(cycle) - 1
                dead = last_progress + 1_000_001
                if target >= dead:
                    # The stepped loop would idle through `dead` and raise.
                    if dead > max_cycles:
                        self._cycle = max_cycles + 1
                        raise SimulationDeadlock(
                            "exceeded max cycle budget")
                    self._cycle = dead
                    raise SimulationDeadlock(
                        f"no commit for 1M cycles at cycle {dead} "
                        f"(ix={self._fetch_ix}, window={len(window)})")
                if target > max_cycles:
                    self._cycle = max_cycles + 1
                    raise SimulationDeadlock("exceeded max cycle budget")
                skipped = target - cycle
                if skipped > 0:
                    if self._fetch_block is not None:
                        stats.fetch_cycles_blocked += skipped
                    iq_occupancy += skipped * len(self._iq)
                    window_occupancy += skipped * len(window)
                    cycles_seen += skipped
                    stats.cycles_skipped += skipped
                    cycle = target
                    self._cycle = target
        finally:
            activity.merge_cycles(iq_occupancy, window_occupancy,
                                  cycles_seen)
        stats.cycles = self._cycle
        stats.cond_branches = self.branch_unit.cond_predictions
        stats.cond_mispredicts = self.branch_unit.cond_mispredictions
        stats.indirect_branches = self.branch_unit.indirect_predictions
        stats.indirect_mispredicts = self.branch_unit.indirect_mispredictions
        stats.cache_stats = {
            "il1_misses": self.hierarchy.il1.misses,
            "dl1_misses": self.hierarchy.dl1.misses,
            "l2_misses": self.hierarchy.l2.misses,
        }
        if self.collector is not None:
            self.collector.on_finish()
        return stats


def simulate(config: MachineConfig, records, policy=None, collector=None,
             program_name: str = "", warm_caches: bool = True) -> RunStats:
    """Convenience wrapper: build a core, run it, label the stats."""
    core = OoOCore(config, records, policy=policy, collector=collector,
                   warm_caches=warm_caches)
    result = core.run()
    result.program_name = program_name
    return result
