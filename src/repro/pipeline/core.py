"""Cycle-level out-of-order superscalar timing model.

The core replays a dynamic trace (see :mod:`repro.isa.interp`) against the
Table 1 machine model: a 13-stage pipeline with branch prediction, I$/D$/L2
hierarchy, register renaming against a bounded physical register pool, an
issue queue with per-class issue ports and speculative wakeup (cache-miss
replays), load/store queues with store-to-load forwarding, StoreSets-style
aggressive load scheduling with flush-and-restart on ordering violations,
and in-order commit.

Mini-graph handles (trace records with ``kind == 1``) occupy a single slot
in every book-keeping structure. At issue, the Mini-Graph Table drives
their constituents through an ALU pipeline in strict series (rule #2 of the
paper); the handle cannot issue until *all* of its external register inputs
are ready (rule #1 — external serialization). A
:class:`~repro.minigraph.dynamic.MiniGraphPolicy` may disable templates at
run time, in which case subsequent instances are fetched in outlined form
(two extra jumps around the constituent singletons).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from ..isa import opcodes as oc
from .activity import ActivityCounters
from .branch import BranchUnit
from .caches import MemoryHierarchy
from .config import MachineConfig
from .stats import RunStats
from .storesets import StoreSets

_BIG = 1 << 60

# Port classes used by the select stage.
_PORT_SIMPLE = 0
_PORT_COMPLEX = 1
_PORT_LOAD = 2
_PORT_STORE = 3
_PORT_NONE = 4  # nops / halts consume width only

_CLASS_TO_PORT = {
    oc.OC_SIMPLE: _PORT_SIMPLE,
    oc.OC_COMPLEX: _PORT_COMPLEX,
    oc.OC_LOAD: _PORT_LOAD,
    oc.OC_STORE: _PORT_STORE,
    oc.OC_BRANCH: _PORT_SIMPLE,
    oc.OC_JUMP: _PORT_SIMPLE,
    oc.OC_NOP: _PORT_NONE,
    oc.OC_HALT: _PORT_NONE,
}


class SimulationDeadlock(RuntimeError):
    """The core stopped making forward progress (a model bug)."""


class Uop(object):
    """One in-flight instruction (or mini-graph handle)."""

    __slots__ = (
        "rec", "ix", "sub", "age", "kind", "pc",
        "producers", "wait_stores", "prev_writer", "min_eligible",
        "issued", "issue_cycle", "out_pred_ready", "out_actual_ready",
        "complete_cycle", "resolve_cycle", "store_resolve_cycle",
        "committed", "squashed",
        "is_load", "is_store", "addr", "forwarded_from",
        "mg_serialized", "writes", "port", "store_pc", "load_pc",
        "expansion_jump",
    )

    def __init__(self, rec, ix: int, sub: int):
        self.rec = rec
        self.ix = ix
        self.sub = sub
        self.age = (ix << 8) | (sub + 1)
        self.kind = rec.kind
        self.pc = rec.pc
        self.producers: List[Uop] = []
        self.wait_stores: List[Uop] = []
        self.prev_writer: Optional[Uop] = None
        self.min_eligible = 0
        self.issued = False
        self.issue_cycle = -1
        self.out_pred_ready = _BIG
        self.out_actual_ready = _BIG
        self.complete_cycle = _BIG
        self.resolve_cycle = _BIG
        self.store_resolve_cycle = _BIG
        self.committed = False
        self.squashed = False
        self.forwarded_from: Optional[int] = None
        self.mg_serialized = False
        self.expansion_jump = False
        if rec.kind == 1:
            tpl = rec.template
            self.is_load = tpl.has_load
            self.is_store = tpl.has_store
            self.addr = rec.addr
            self.writes = rec.rd >= 0
            self.port = _PORT_NONE  # handles use MG issue slots + pipelines
            self.store_pc = rec.site.mem_pc if tpl.has_store else -1
            self.load_pc = rec.site.mem_pc if tpl.has_load else -1
        else:
            cls = rec.opclass
            self.is_load = cls == oc.OC_LOAD
            self.is_store = cls == oc.OC_STORE
            self.addr = rec.addr
            self.writes = rec.rd >= 0
            self.port = _CLASS_TO_PORT[cls]
            self.store_pc = rec.pc if self.is_store else -1
            self.load_pc = rec.pc if self.is_load else -1


class _ExpandedRecord(object):
    """A singleton record synthesized when a disabled mini-graph is fetched
    in outlined form (or inline for the 'ideal' penalty-free variant)."""

    __slots__ = ("pc", "op", "opclass", "latency", "rd", "srcs", "addr",
                 "taken", "next_pc")
    kind = 0

    def __init__(self, pc, op, opclass, latency, rd, srcs, addr, taken,
                 next_pc):
        self.pc = pc
        self.op = op
        self.opclass = opclass
        self.latency = latency
        self.rd = rd
        self.srcs = srcs
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc


class OoOCore:
    """Trace-driven cycle-level core.

    Parameters
    ----------
    config:
        The machine configuration (Table 1 point).
    records:
        Dynamic trace — singleton records and mini-graph handle records.
    policy:
        Optional run-time mini-graph policy (Slack-Dynamic). ``None`` keeps
        every mini-graph enabled.
    collector:
        Optional slack-profile collector receiving dataflow timing events.
    """

    def __init__(self, config: MachineConfig, records,
                 policy=None, collector=None, warm_caches: bool = False,
                 tracer=None):
        self.config = config
        self.records = records
        self._warm_caches = warm_caches
        self.policy = policy
        self.collector = collector
        self.tracer = tracer
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config)
        self.storesets = StoreSets(config.store_sets)
        self.stats = RunStats(config_name=config.name)
        self.activity = ActivityCounters()
        self.stats.activity = self.activity

        self._cycle = 0
        self._front_delay = config.stages_front - 1
        self._regread = config.stages_regread
        self._to_commit = config.stages_to_commit
        self._rename_pool = max(config.phys_regs - 64, 8)

        # Fetch state
        self._fetch_ix = 0
        self._pending: deque = deque()  # expansion of a disabled mini-graph
        self._pending_ix = -1
        self._pending_sub = 0
        self._fetch_buffer: deque = deque()  # (uop, fetch_cycle)
        # Decouples fetch from rename: must cover the front-end depth
        # at full width or it throttles fetch artificially.
        self._fetch_buffer_cap = (config.stages_front + 2) * config.width
        self._fetch_resume = 0
        self._fetch_block: Optional[Tuple[int, int]] = None

        # Window state
        self._window: deque = deque()
        self._iq: List[Uop] = []
        self._phys_used = 0
        self._lq: List[Uop] = []
        self._sq: List[Uop] = []
        self._reg_map: List[Optional[Uop]] = [None] * 32
        self._store_resolves: List[Uop] = []
        self._alu_pipe_free = [0] * config.mg_alu_pipelines

        # Mini-Graph Table residency (LRU over template ids). Templates
        # are written by the I$ fill path (Figure 2c); a fetch of a handle
        # whose template was evicted stalls while the fill unit re-reads
        # the outlined body (an L2-latency event).
        self._mgt: List[int] = []
        self._mgt_capacity = config.mgt_entries
        self._mgt_fill_latency = config.l2.latency

        self._ports = (config.ports_simple, config.ports_complex,
                       config.ports_load, config.ports_store, config.width)

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _peek_fetch(self):
        """Next record to fetch, expanding disabled mini-graphs; None at end."""
        if self._pending:
            return self._pending[0], self._pending_ix, True
        if self._fetch_ix >= len(self.records):
            return None
        rec = self.records[self._fetch_ix]
        if rec.kind == 1 and self.policy is not None \
                and not self.policy.enabled(rec.site):
            self._expand_disabled(rec)
            self.stats.mg_disabled_instances += 1
            return self._pending[0], self._pending_ix, True
        return rec, self._fetch_ix, False

    def _expand_disabled(self, rec) -> None:
        """Queue the outlined (or ideal inline) form of a disabled handle."""
        outlined = self.policy.outlining_penalty
        base = rec.site.outlined_pc
        items = []
        n = len(rec.constituents)
        if outlined:
            items.append(_ExpandedRecord(
                rec.pc, oc.JMP, oc.OC_JUMP, 1, -1, (), -1, True, base))
        for k, c in enumerate(rec.constituents):
            pc = base + k if outlined else rec.pc
            if c.opclass == oc.OC_BRANCH:
                # Taken: jump straight to the handle's successor path;
                # not-taken: fall through (to the back-jump if outlined).
                next_pc = rec.next_pc if c.taken else pc + 1
                items.append(_ExpandedRecord(
                    pc, c.op, c.opclass, c.latency, c.rd, c.srcs, -1,
                    c.taken, next_pc))
            else:
                items.append(_ExpandedRecord(
                    pc, c.op, c.opclass, c.latency, c.rd, c.srcs, c.addr,
                    False, pc + 1))
        if outlined:
            items.append(_ExpandedRecord(
                base + n, oc.JMP, oc.OC_JUMP, 1, -1, (), -1, True,
                rec.pc + 1))
        self._pending.extend(items)
        self._pending_ix = self._fetch_ix

    def _consume_fetch(self) -> int:
        """Advance past the record just fetched; returns its sub index."""
        if self._pending:
            self._pending.popleft()
            sub = self._pending_sub
            self._pending_sub += 1
            if not self._pending:
                self._fetch_ix += 1
                self._pending_sub = 0
            return sub
        self._fetch_ix += 1
        return -1

    def _mgt_access(self, template_id: int) -> bool:
        """LRU-touch the MGT entry; returns hit?"""
        mgt = self._mgt
        try:
            mgt.remove(template_id)
        except ValueError:
            self.stats.mgt_misses += 1
            mgt.insert(0, template_id)
            if len(mgt) > self._mgt_capacity:
                mgt.pop()
            return False
        mgt.insert(0, template_id)
        return True

    def _fetch_stage(self) -> None:
        cycle = self._cycle
        if self._fetch_block is not None:
            self.stats.fetch_cycles_blocked += 1
            return
        if cycle < self._fetch_resume:
            return
        hierarchy = self.hierarchy
        width = self.config.width
        fetched = 0
        line = -1
        while fetched < width and len(self._fetch_buffer) < self._fetch_buffer_cap:
            item = self._peek_fetch()
            if item is None:
                break
            rec, ix, is_sub = item
            rec_line = hierarchy.ifetch_line(rec.pc)
            if line < 0:
                latency = hierarchy.fetch_latency(rec.pc)
                extra = latency - hierarchy.il1.latency
                if extra > 0:
                    self._fetch_resume = cycle + extra
                    self.stats.icache_stall_cycles += extra
                    return
                line = rec_line
            elif rec_line != line:
                break
            if rec.kind == 1 and not self._mgt_access(rec.template.id):
                # Template fill: the handle's body must be read from its
                # outlined location and written into the MGT.
                self._fetch_resume = cycle + self._mgt_fill_latency
                break
            sub = self._consume_fetch()
            uop = Uop(rec, ix, sub if is_sub else -1)
            if is_sub and rec.opclass == oc.OC_JUMP:
                uop.expansion_jump = True
            self._fetch_buffer.append((uop, cycle))
            fetched += 1
            self.activity.fetch_slots += 1
            if self.tracer is not None:
                self.tracer.on_fetch(uop, cycle)

            # Control-transfer prediction at fetch.
            taken = False
            correct = True
            if rec.kind == 1:
                tpl = rec.template
                if tpl.has_branch:
                    taken = rec.taken
                    correct = self.branch_unit.predict_and_train(
                        rec.pc, True, False, False, taken, rec.next_pc)
            elif rec.opclass == oc.OC_BRANCH:
                taken = rec.taken
                correct = self.branch_unit.predict_and_train(
                    rec.pc, True, False, False, taken, rec.next_pc)
            elif rec.opclass == oc.OC_JUMP:
                taken = True
                correct = self.branch_unit.predict_and_train(
                    rec.pc, False, rec.op == oc.JAL, rec.op == oc.JR,
                    True, rec.next_pc)
            else:
                continue

            if not correct:
                self._fetch_block = (uop.ix, uop.sub)
                break
            if taken:
                break  # predicted-taken transfers end the fetch group

    # ------------------------------------------------------------------
    # Rename
    # ------------------------------------------------------------------

    def _rename_stage(self) -> None:
        cycle = self._cycle
        config = self.config
        renamed = 0
        while renamed < config.width and self._fetch_buffer:
            uop, fetch_cycle = self._fetch_buffer[0]
            if fetch_cycle + self._front_delay > cycle:
                break
            if len(self._iq) >= config.issue_queue:
                break
            if len(self._window) >= config.rob:
                break
            if uop.writes and self._phys_used >= self._rename_pool:
                break
            if uop.is_load and len(self._lq) >= config.load_queue:
                break
            if uop.is_store and len(self._sq) >= config.store_queue:
                break
            self._fetch_buffer.popleft()
            self._rename_uop(uop)
            renamed += 1
            if self.tracer is not None:
                self.tracer.on_rename(uop, cycle)

    def _rename_uop(self, uop: Uop) -> None:
        activity = self.activity
        activity.rename_ops += 1
        activity.iq_insertions += 1
        reg_map = self._reg_map
        seen = set()
        for src in uop.rec.srcs:
            if src in seen or src == 0:
                continue
            seen.add(src)
            activity.rename_map_reads += 1
            producer = reg_map[src]
            if producer is not None:
                uop.producers.append(producer)
        if uop.writes:
            activity.phys_allocations += 1
            rd = uop.rec.rd
            uop.prev_writer = reg_map[rd]
            reg_map[rd] = uop
            self._phys_used += 1
        if uop.is_load:
            self._lq.append(uop)
            prev_age = self.storesets.producer_store_for(uop.load_pc)
            if prev_age is not None:
                store = self._find_store(prev_age)
                if store is not None:
                    uop.wait_stores.append(store)
        if uop.is_store:
            self._sq.append(uop)
            prev_age = self.storesets.rename_store(uop.store_pc, uop.age)
            if prev_age is not None:
                store = self._find_store(prev_age)
                if store is not None:
                    uop.wait_stores.append(store)
        self._window.append(uop)
        self._iq.append(uop)

    def _find_store(self, age: int) -> Optional[Uop]:
        for store in self._sq:
            if store.age == age:
                return store
        return None

    # ------------------------------------------------------------------
    # Select / execute
    # ------------------------------------------------------------------

    def _eligibility(self, uop: Uop) -> bool:
        """Wakeup check using *predicted* producer latencies."""
        cycle = self._cycle
        if uop.min_eligible > cycle:
            return False
        for producer in uop.producers:
            if not producer.issued or producer.out_pred_ready > cycle:
                return False
        for store in uop.wait_stores:
            if not store.issued or store.store_resolve_cycle > cycle:
                return False
        return True

    def _actual_ready(self, uop: Uop) -> int:
        ready = 0
        for producer in uop.producers:
            if producer.out_actual_ready > ready:
                ready = producer.out_actual_ready
        return ready

    def _issue_stage(self) -> None:
        cycle = self._cycle
        counts = [0, 0, 0, 0, 0]
        ports = self._ports
        total = 0
        width = self.config.width
        mg_issued = 0
        mg_mem_issued = 0
        kept: List[Uop] = []
        iq = self._iq
        for i, uop in enumerate(iq):
            if total >= width:
                kept.extend(iq[i:])
                break
            if not self._eligibility(uop):
                kept.append(uop)
                continue
            if uop.kind == 1:
                if mg_issued >= self.config.mg_max_issue:
                    kept.append(uop)
                    continue
                if (uop.is_load or uop.is_store) and \
                        mg_mem_issued >= self.config.mg_max_mem_issue:
                    kept.append(uop)
                    continue
                pipe = self._free_pipe(cycle)
                if pipe < 0:
                    kept.append(uop)
                    continue
            else:
                port = uop.port
                if port != _PORT_NONE and counts[port] >= ports[port]:
                    kept.append(uop)
                    continue
            actual = self._actual_ready(uop)
            if actual > cycle:
                # Speculative wakeup was wrong (producer load missed):
                # the select slot is wasted and the uop replays later.
                uop.min_eligible = actual
                self.stats.replays += 1
                total += 1
                kept.append(uop)
                continue
            # Issue!
            total += 1
            if uop.kind == 1:
                mg_issued += 1
                if uop.is_load or uop.is_store:
                    mg_mem_issued += 1
                self._execute_handle(uop, pipe)
            else:
                counts[uop.port] += 1
                self._execute_singleton(uop)
        self._iq = kept
        self.activity.select_slots += total

    def _free_pipe(self, cycle: int) -> int:
        for i, free_at in enumerate(self._alu_pipe_free):
            if free_at <= cycle:
                return i
        return -1

    def _execute_singleton(self, uop: Uop) -> None:
        cycle = self._cycle
        uop.issued = True
        uop.issue_cycle = cycle
        rec = uop.rec
        self.activity.regfile_reads += len(rec.srcs)
        if uop.writes:
            self.activity.regfile_writes += 1
        regread = self._regread
        if uop.is_load:
            latency = self._load_latency(uop, rec.addr, cycle, rec.pc)
            uop.out_pred_ready = cycle + self.hierarchy.dl1.latency
            uop.out_actual_ready = cycle + latency
            uop.complete_cycle = cycle + regread + latency
            self.stats.loads_issued += 1
        elif uop.is_store:
            uop.store_resolve_cycle = cycle + regread
            uop.complete_cycle = cycle + regread
            self._store_resolves.append(uop)
        elif rec.opclass in (oc.OC_BRANCH, oc.OC_JUMP):
            resolve = cycle + rec.latency + regread
            uop.resolve_cycle = resolve
            uop.complete_cycle = resolve
            if rec.rd >= 0:  # jal writes the return address
                uop.out_pred_ready = uop.out_actual_ready = \
                    cycle + rec.latency
            self._maybe_unblock_fetch(uop)
        else:
            latency = rec.latency
            uop.out_pred_ready = uop.out_actual_ready = cycle + latency
            uop.complete_cycle = cycle + regread + latency
        self._notify_consumption(uop)

    def _execute_handle(self, uop: Uop, pipe: int) -> None:
        cycle = self._cycle
        uop.issued = True
        uop.issue_cycle = cycle
        rec = uop.rec
        # Only the handle's external interface touches the register file;
        # interior values live in the ALU pipeline's operand network.
        self.activity.regfile_reads += len(rec.srcs)
        if uop.writes:
            self.activity.regfile_writes += 1
        tpl = rec.template
        regread = self._regread
        start = cycle
        out_ready = cycle
        for k, constituent in enumerate(rec.constituents):
            if constituent.opclass == oc.OC_LOAD:
                latency = self._load_latency(uop, constituent.addr, start,
                                             uop.load_pc)
                self.stats.loads_issued += 1
            elif constituent.opclass == oc.OC_STORE:
                latency = 1
                uop.store_resolve_cycle = start + regread
                self._store_resolves.append(uop)
            elif constituent.opclass == oc.OC_BRANCH:
                latency = constituent.latency
                uop.resolve_cycle = start + latency + regread
                self._maybe_unblock_fetch(uop)
            else:
                latency = constituent.latency
            if k == tpl.out_producer_ix:
                out_ready = start + latency
            # Rule #2 (internal serialization): strictly serial execution.
            start += latency
        total = start - cycle
        uop.complete_cycle = cycle + regread + total
        if uop.writes:
            uop.out_actual_ready = out_ready
            uop.out_pred_ready = cycle + tpl.nominal_out_latency
        if tpl.has_branch and uop.resolve_cycle == _BIG:
            uop.resolve_cycle = uop.complete_cycle
        # The ALU pipeline is pipelined at 1 op/cycle; multi-cycle internal
        # operations (e.g. load misses) stall it.
        self._alu_pipe_free[pipe] = cycle + 1 + (total - len(rec.constituents))

        # Slack-Dynamic serialization detection: the handle issued exactly
        # when its last external operand arrived, and that operand feeds a
        # non-first constituent.
        last_arrival = 0
        last_consumer_ix = 0
        for producer in uop.producers:
            arrival = producer.out_actual_ready
            if arrival >= last_arrival:
                last_arrival = arrival
                reg = producer.rec.rd
                last_consumer_ix = rec.site.input_consumer_ix.get(reg, 0)
        sial = bool(uop.producers) and last_consumer_ix > 0
        serialized = sial and cycle == last_arrival
        uop.mg_serialized = serialized
        if serialized:
            self.stats.mg_serialized_instances += 1
        if self.policy is not None:
            self.policy.on_issue(rec.site, serialized, sial)
        self._notify_consumption(uop)

    def _notify_consumption(self, uop: Uop) -> None:
        """Report dataflow consumption for slack profiling and the dynamic
        policy's consumer-delay detection."""
        cycle = self._cycle
        collector = self.collector
        last: Optional[Uop] = None
        last_arrival = -1
        for producer in uop.producers:
            if collector is not None:
                collector.on_consume(producer, uop, cycle)
            if producer.out_actual_ready > last_arrival:
                last_arrival = producer.out_actual_ready
                last = producer
        if last is not None and last.kind == 1 and last.mg_serialized \
                and cycle == last_arrival:
            self.stats.mg_consumer_delays += 1
            if self.policy is not None:
                self.policy.on_consumer_delay(last.rec.site)

    def _load_latency(self, uop: Uop, addr: int, when: int,
                      pc: int = -1) -> int:
        """Data latency of a load issued at ``when``: forward or D$ access."""
        best: Optional[Uop] = None
        for store in self._sq:
            if store.age >= uop.age or store.addr != addr:
                continue
            if store.store_resolve_cycle <= when:
                if best is None or store.age > best.age:
                    best = store
        if best is not None:
            uop.forwarded_from = best.age
            self.stats.store_forwards += 1
            if self.collector is not None:
                self.collector.on_consume(best, uop, when)
            return self.config.forward_latency
        return self.hierarchy.load_latency(addr, pc)

    def _maybe_unblock_fetch(self, uop: Uop) -> None:
        if self._fetch_block == (uop.ix, uop.sub):
            self._fetch_block = None
            self._fetch_resume = uop.resolve_cycle + 1
            if self.collector is not None:
                self.collector.on_redirect(uop, uop.resolve_cycle)

    # ------------------------------------------------------------------
    # Store resolution / memory ordering violations
    # ------------------------------------------------------------------

    def _writeback_stage(self) -> None:
        cycle = self._cycle
        if not self._store_resolves:
            return
        still_pending: List[Uop] = []
        resolved: List[Uop] = []
        for store in self._store_resolves:
            if store.squashed:
                continue
            if store.store_resolve_cycle <= cycle:
                resolved.append(store)
            else:
                still_pending.append(store)
        self._store_resolves = still_pending
        for store in resolved:
            self._check_violation(store)

    def _check_violation(self, store: Uop) -> None:
        """Flush-and-restart if an already-issued younger load read stale data."""
        if store.squashed:
            return
        victim: Optional[Uop] = None
        for load in self._lq:
            if load.age <= store.age or not load.issued:
                continue
            if load.addr != store.addr:
                continue
            if load.forwarded_from is not None \
                    and load.forwarded_from >= store.age:
                continue
            if victim is None or load.age < victim.age:
                victim = load
        if victim is None:
            return
        self.stats.ordering_violations += 1
        self.storesets.train_violation(victim.load_pc, store.store_pc)
        if self.collector is not None:
            self.collector.on_consume(store, victim, self._cycle)
        self._flush_restart(victim)

    def _flush_restart(self, victim: Uop) -> None:
        """Squash ``victim`` and everything younger; refetch from its record."""
        restart_ix = victim.ix
        reg_map = self._reg_map
        # Squash youngest-first so the rename map rewinds correctly.
        squashed: List[Uop] = []
        while self._window and self._window[-1].ix >= restart_ix:
            uop = self._window.pop()
            uop.squashed = True
            squashed.append(uop)
            if self.tracer is not None:
                self.tracer.on_squash(uop, self._cycle)
            if uop.writes:
                self._phys_used -= 1
                rd = uop.rec.rd
                if reg_map[rd] is uop:
                    reg_map[rd] = uop.prev_writer
        for uop, _ in self._fetch_buffer:
            uop.squashed = True
        self._fetch_buffer.clear()
        squash_set = {id(u) for u in squashed}
        self._iq = [u for u in self._iq if id(u) not in squash_set]
        self._lq = [u for u in self._lq if not u.squashed]
        self._sq = [u for u in self._sq if not u.squashed]
        self._store_resolves = [u for u in self._store_resolves
                                if not u.squashed]
        self.storesets.flush()
        self._pending.clear()
        self._pending_sub = 0
        self._fetch_ix = restart_ix
        self._fetch_block = None
        self._fetch_resume = self._cycle + 1

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit_stage(self) -> None:
        cycle = self._cycle
        config = self.config
        stats = self.stats
        committed = 0
        window = self._window
        while committed < config.width and window:
            uop = window[0]
            if uop.complete_cycle + self._to_commit > cycle:
                break
            window.popleft()
            uop.committed = True
            committed += 1
            stats.slots_committed += 1
            self.activity.commit_slots += 1
            if self.tracer is not None:
                self.tracer.on_commit(uop, cycle)
            if uop.kind == 1:
                n = len(uop.rec.constituents)
                stats.original_committed += n
                stats.embedded_committed += n
                stats.handles_committed += 1
            elif uop.expansion_jump:
                stats.outline_jumps_committed += 1
            else:
                stats.original_committed += 1
            if uop.writes:
                self._phys_used -= 1
                # The rename-map entry survives commit so that later
                # consumers still link to this producer (the slack profiler
                # needs real ready times, and eligibility treats committed
                # producers as ready). Drop the displaced-writer chain to
                # keep retired uops from pinning the whole history.
                uop.prev_writer = None
            if uop.is_store:
                self.hierarchy.store_touch(uop.addr)
                self.storesets.retire_store(uop.store_pc, uop.age)
                self._sq.remove(uop)
            if uop.is_load:
                self._lq.remove(uop)
            if self.collector is not None and uop.kind == 0 \
                    and not uop.expansion_jump:
                self.collector.on_commit(uop)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _warm(self) -> None:
        """Pre-touch every I-line and data address in the trace.

        Stands in for the paper's sampled-simulation warm-up: compulsory
        misses are removed while capacity and conflict behaviour remain.
        """
        hierarchy = self.hierarchy
        for rec in self.records:
            hierarchy.fetch_latency(rec.pc)
            if rec.kind == 1:
                for constituent in rec.constituents:
                    if constituent.addr >= 0:
                        hierarchy.load_latency(constituent.addr)
            elif rec.addr >= 0:
                hierarchy.load_latency(rec.addr)
        for rec in self.records:
            if rec.kind == 1:
                self._mgt_access(rec.template.id)
        self.stats.mgt_misses = 0
        hierarchy.il1.accesses = hierarchy.il1.misses = 0
        hierarchy.dl1.accesses = hierarchy.dl1.misses = 0
        hierarchy.l2.accesses = hierarchy.l2.misses = 0

    def run(self, max_cycles: int = 200_000_000) -> RunStats:
        """Run the trace to completion and return statistics."""
        stats = self.stats
        if self._warm_caches:
            self._warm()
        last_progress = 0
        last_committed = 0
        while True:
            if self._fetch_ix >= len(self.records) and not self._pending \
                    and not self._fetch_buffer and not self._window:
                break
            self._cycle += 1
            if self._cycle > max_cycles:
                raise SimulationDeadlock("exceeded max cycle budget")
            self._commit_stage()
            self._writeback_stage()
            self._issue_stage()
            self._rename_stage()
            self._fetch_stage()
            self.activity.merge_cycle(len(self._iq), len(self._window))
            if stats.original_committed != last_committed:
                last_committed = stats.original_committed
                last_progress = self._cycle
            elif self._cycle - last_progress > 1_000_000:
                raise SimulationDeadlock(
                    f"no commit for 1M cycles at cycle {self._cycle} "
                    f"(ix={self._fetch_ix}, window={len(self._window)})")
        stats.cycles = self._cycle
        stats.cond_branches = self.branch_unit.cond_predictions
        stats.cond_mispredicts = self.branch_unit.cond_mispredictions
        stats.indirect_branches = self.branch_unit.indirect_predictions
        stats.indirect_mispredicts = self.branch_unit.indirect_mispredictions
        stats.cache_stats = {
            "il1_misses": self.hierarchy.il1.misses,
            "dl1_misses": self.hierarchy.dl1.misses,
            "l2_misses": self.hierarchy.l2.misses,
        }
        if self.collector is not None:
            self.collector.on_finish()
        return stats


def simulate(config: MachineConfig, records, policy=None, collector=None,
             program_name: str = "", warm_caches: bool = True) -> RunStats:
    """Convenience wrapper: build a core, run it, label the stats."""
    core = OoOCore(config, records, policy=policy, collector=collector,
                   warm_caches=warm_caches)
    result = core.run()
    result.program_name = program_name
    return result
