"""Cache hierarchy: L1 instruction/data caches, unified L2, TLBs, memory.

Matches Table 1: 32KB 2-way 3-cycle L1s, 1MB 4-way 12-cycle L2, 200-cycle
main memory, 64-entry 4-way TLBs. Caches are set-associative with true-LRU
replacement and write-allocate stores; the model returns access *latency*
only (the functional interpreter already resolved values).

Address conventions: instruction addresses are PC indices (4 bytes per
instruction); data addresses are word indices (8 bytes per word).
"""

from __future__ import annotations

from typing import List

from .config import CacheConfig, MachineConfig
from .prefetch import NextLinePrefetcher, StridePrefetcher

INST_BYTES = 4
DATA_WORD_BYTES = 8
PAGE_BYTES = 4096
_PAGE_SHIFT = PAGE_BYTES.bit_length() - 1
TLB_MISS_PENALTY = 30


class Cache:
    """One set-associative cache level with true-LRU replacement."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.name = name
        self.latency = config.latency
        self.line_bytes = config.line_bytes
        self._n_sets = config.n_sets
        self._assoc = config.assoc
        self._sets: List[List[int]] = [[] for _ in range(self._n_sets)]
        self.accesses = 0
        self.misses = 0
        # Floor-dividing by a power of two is an arithmetic shift; the
        # line split is on every fetch/load path, so precompute it.
        lb = config.line_bytes
        self._line_shift = lb.bit_length() - 1 if lb & (lb - 1) == 0 else -1

    def line_of(self, byte_addr: int) -> int:
        """The line index holding ``byte_addr``."""
        shift = self._line_shift
        if shift >= 0:
            return byte_addr >> shift
        return byte_addr // self.line_bytes

    def probe(self, byte_addr: int) -> bool:
        """True if the line holding ``byte_addr`` is resident (no update)."""
        line = self.line_of(byte_addr)
        return line in self._sets[line % self._n_sets]

    def access(self, byte_addr: int) -> bool:
        """Access the line holding ``byte_addr``; returns hit?, updates LRU."""
        shift = self._line_shift
        if shift >= 0:
            line = byte_addr >> shift
        else:
            line = byte_addr // self.line_bytes
        entry_set = self._sets[line % self._n_sets]
        self.accesses += 1
        try:
            entry_set.remove(line)
        except ValueError:
            self.misses += 1
            entry_set.insert(0, line)
            if len(entry_set) > self._assoc:
                entry_set.pop()
            return False
        entry_set.insert(0, line)
        return True

    def fill(self, byte_addr: int) -> None:
        """Insert the line holding ``byte_addr`` without touching stats
        (prefetch fills)."""
        line = self.line_of(byte_addr)
        entry_set = self._sets[line % self._n_sets]
        if line in entry_set:
            return
        entry_set.insert(0, line)
        if len(entry_set) > self._assoc:
            entry_set.pop()

    def invalidate(self, byte_addr: int) -> None:
        """Drop the line holding ``byte_addr`` if resident."""
        line = self.line_of(byte_addr)
        entry_set = self._sets[line % self._n_sets]
        try:
            entry_set.remove(line)
        except ValueError:
            pass


class Tlb:
    """Set-associative TLB; misses add a fixed fill penalty."""

    def __init__(self, entries: int = 64, assoc: int = 4):
        self._n_sets = entries // assoc
        self._assoc = assoc
        self._sets: List[List[int]] = [[] for _ in range(self._n_sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, byte_addr: int) -> int:
        """Translation latency contribution: 0 on hit, the fill penalty on miss."""
        page = byte_addr >> _PAGE_SHIFT
        entry_set = self._sets[page % self._n_sets]
        self.accesses += 1
        try:
            entry_set.remove(page)
        except ValueError:
            self.misses += 1
            entry_set.insert(0, page)
            if len(entry_set) > self._assoc:
                entry_set.pop()
            return TLB_MISS_PENALTY
        entry_set.insert(0, page)
        return 0


class MemoryHierarchy:
    """The full hierarchy: split L1s and TLBs over a unified L2 and memory."""

    def __init__(self, config: MachineConfig):
        self.il1 = Cache(config.il1, "il1")
        self.dl1 = Cache(config.dl1, "dl1")
        self.l2 = Cache(config.l2, "l2")
        self.itlb = Tlb()
        self.dtlb = Tlb()
        self.mem_latency = config.mem_latency
        self.il1_prefetcher = NextLinePrefetcher() \
            if config.il1_next_line_prefetch else None
        self.dl1_prefetcher = StridePrefetcher() \
            if config.dl1_stride_prefetch else None

    def _miss_latency(self, byte_addr: int) -> int:
        """Latency beyond L1 for a missing line."""
        if self.l2.access(byte_addr):
            return self.l2.latency
        return self.l2.latency + self.mem_latency

    def fetch_latency(self, pc: int) -> int:
        """Latency of fetching the I$ line containing instruction ``pc``.

        Returns the L1 latency on a hit; the hit latency is pipelined into
        the front end, so the timing core treats only the *extra* cycles as
        a stall.
        """
        byte_addr = pc * INST_BYTES
        latency = self.il1.latency + self.itlb.access(byte_addr)
        if not self.il1.access(byte_addr):
            latency += self._miss_latency(byte_addr)
            if self.il1_prefetcher is not None:
                next_line = self.il1_prefetcher.on_miss(
                    self.il1.line_of(byte_addr))
                next_addr = next_line * self.il1.line_bytes
                self.il1.fill(next_addr)
                self.l2.fill(next_addr)
        return latency

    def ifetch_line(self, pc: int) -> int:
        """The I$ line index of instruction ``pc`` (fetch-group boundaries)."""
        return (pc * INST_BYTES) // self.il1.line_bytes

    def load_latency(self, word_addr: int, pc: int = -1) -> int:
        """Latency of a demand data load (``pc`` trains the prefetcher)."""
        byte_addr = word_addr * DATA_WORD_BYTES
        latency = self.dl1.latency + self.dtlb.access(byte_addr)
        if not self.dl1.access(byte_addr):
            latency += self._miss_latency(byte_addr)
        if self.dl1_prefetcher is not None and pc >= 0:
            target = self.dl1_prefetcher.observe(pc, word_addr)
            if target is not None:
                target_addr = target * DATA_WORD_BYTES
                self.dl1.fill(target_addr)
                self.l2.fill(target_addr)
        return latency

    def store_touch(self, word_addr: int) -> int:
        """Write-allocate a store; returns the fill latency (0 on L1 hit).

        Store misses do not stall commit in the model, but they do perturb
        cache state, which is what later loads observe.
        """
        byte_addr = word_addr * DATA_WORD_BYTES
        latency = self.dtlb.access(byte_addr)
        if not self.dl1.access(byte_addr):
            latency += self._miss_latency(byte_addr)
        return latency
