"""Compiled fast path for the timing core (build + marshal + run).

``_ckern.c`` is a statement-for-statement C port of the hot loop in
:mod:`repro.pipeline.core` for runs without an in-loop observer
(``policy is None and tracer is None`` — every ``repro bench`` point and
every memoized baseline run). Observed runs whose collectors support the
packed event tap (:class:`~repro.minigraph.slack.SlackCollector`,
:class:`~repro.obs.attribution.AttributionCollector`) also run here: the
kernel appends fixed-width events into a preallocated ``array('q')``
buffer and the collectors reconstruct their profiles post-hoc,
bit-identical to the Python observer path. This module

* compiles it on demand with the system C compiler (no third-party
  dependencies; the shared object is cached under the user cache dir,
  keyed by a hash of the C source, so rebuilds only happen when the
  source changes),
* flattens the trace's mini-graph handle metadata into int64 columns the
  kernel can walk (the scalar columns come straight from
  :class:`~repro.isa.interp.PackedTrace` buffers, zero-copy),
* copies the kernel's counters back into the core's ``RunStats`` /
  ``ActivityCounters`` / hierarchy objects so callers cannot tell which
  path ran.

The Python implementation remains the behavioural reference: the golden
stats gate, ``tests/pipeline/test_ckern.py`` and the lockstep fuzzer hold
both paths to bit-identical results. Set ``REPRO_PURE_PY=1`` to force the
Python path (or when no C compiler is available, it is used
automatically).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from array import array
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_SOURCE = os.path.join(_HERE, "_ckern.c")

# -- configuration slots (must match the enum in _ckern.c) -------------
(CFG_WIDTH, CFG_ISSUE_QUEUE, CFG_RENAME_POOL, CFG_ROB,
 CFG_LOAD_QUEUE, CFG_STORE_QUEUE,
 CFG_PORTS_SIMPLE, CFG_PORTS_COMPLEX, CFG_PORTS_LOAD, CFG_PORTS_STORE,
 CFG_FRONT_DELAY, CFG_REGREAD, CFG_TO_COMMIT,
 CFG_IL1_SETS, CFG_IL1_ASSOC, CFG_IL1_LINE, CFG_IL1_LAT,
 CFG_DL1_SETS, CFG_DL1_ASSOC, CFG_DL1_LINE, CFG_DL1_LAT,
 CFG_L2_SETS, CFG_L2_ASSOC, CFG_L2_LINE, CFG_L2_LAT,
 CFG_MEM_LATENCY,
 CFG_ITLB_SETS, CFG_ITLB_ASSOC, CFG_DTLB_SETS, CFG_DTLB_ASSOC,
 CFG_TLB_MISS_PENALTY,
 CFG_BIM_MASK, CFG_GSH_MASK, CFG_CHO_MASK,
 CFG_BTB_SETS, CFG_BTB_ASSOC, CFG_RAS_ENTRIES,
 CFG_SS_MASK, CFG_FORWARD_LATENCY,
 CFG_IL1_NLP, CFG_DL1_STRIDE, CFG_STRIDE_MASK, CFG_STRIDE_CONF,
 CFG_MG_MAX_ISSUE, CFG_MG_MAX_MEM_ISSUE, CFG_MG_ALU_PIPES,
 CFG_MGT_ENTRIES, CFG_MGT_FILL_LATENCY,
 CFG_FETCH_BUFFER_CAP, CFG_WARM, CFG_OP_JAL, CFG_OP_JR,
 CFG_COUNT) = range(53)

# -- output slots (must match the enum in _ckern.c) --------------------
(OUT_CYCLES, OUT_CYCLES_SKIPPED,
 OUT_ORIGINAL_COMMITTED, OUT_HANDLES_COMMITTED, OUT_EMBEDDED_COMMITTED,
 OUT_SLOTS_COMMITTED,
 OUT_FETCH_CYCLES_BLOCKED, OUT_ICACHE_STALL_CYCLES,
 OUT_COND_PRED, OUT_COND_MISPRED, OUT_IND_PRED, OUT_IND_MISPRED,
 OUT_LOADS_ISSUED, OUT_STORE_FORWARDS, OUT_ORDERING_VIOLATIONS,
 OUT_REPLAYS,
 OUT_MG_SERIALIZED, OUT_MG_CONSUMER_DELAYS, OUT_MGT_MISSES,
 OUT_IL1_ACC, OUT_IL1_MISS, OUT_DL1_ACC, OUT_DL1_MISS,
 OUT_L2_ACC, OUT_L2_MISS,
 OUT_ITLB_ACC, OUT_ITLB_MISS, OUT_DTLB_ACC, OUT_DTLB_MISS,
 OUT_IL1_PF_ISSUED, OUT_DL1_PF_ISSUED, OUT_SS_VIOLATIONS,
 OUT_ACT_FETCH_SLOTS, OUT_ACT_RENAME_OPS, OUT_ACT_MAP_READS,
 OUT_ACT_PHYS_ALLOCS, OUT_ACT_IQ_INSERTIONS,
 OUT_ACT_IQ_OCCUPANCY, OUT_ACT_WINDOW_OCCUPANCY,
 OUT_ACT_SELECT_SLOTS, OUT_ACT_RF_READS, OUT_ACT_RF_WRITES,
 OUT_ACT_COMMIT_SLOTS, OUT_ACT_CYCLES,
 OUT_DEAD_CYCLE, OUT_DEAD_IX, OUT_DEAD_WINDOW,
 OUT_COUNT) = range(48)

RC_OK = 0
RC_BUDGET = 1
RC_NO_COMMIT = 2
RC_NOMEM = 3
RC_UNSUPPORTED = 4  # plan kernels: shape outside packed bounds

#: Source positions per singleton in the packed profile columns
#: (stride of the ``src_sum``/``src_count``/``src_ready`` columns; the
#: ISA has at most 3 operands, must match PLAN_MAX_SRC in _ckern.c).
PLAN_MAX_SRC = 4

# -- event-tap tags (must match _ckern.c) ------------------------------
# Each event is three int64 words: ``(ix << 4) | tag, a, b``. See
# docs/performance.md for the full record catalogue.
TAP_ISSUE = 1      # a = issue cycle, b = out_actual_ready (raw, BIG if none)
TAP_CONSUME = 2    # ix = producer; a = cycle - ready, b = consumer ix
TAP_REDIRECT = 3   # a = resolve cycle
TAP_HANDLE = 4     # a = serialized | sial << 1, b = last - first_ready
TAP_CDELAY = 5     # ix = serialized producer handle
TAP_VALUE = 6      # singleton issue; a = value-ready, b = complete cycle
TAP_WORDS = 3      # int64 words per event
TAP_BIG = 1 << 60  # the kernel's "unset" sentinel for out_actual_ready

# tap_flags bits (must match TAPF_* in _ckern.c). Opt-in record families
# beyond the base catalogue; each costs buffer capacity, so observers
# advertise what they need via ``ckern_tap_flags``.
TAP_FLAG_GLOBAL = 1  # TAP_VALUE records for the global-slack backward DP

# The kernel bounds per-uop producer fan-in; traces beyond it (none in
# practice: ISA ops have <= 3 sources, handles a handful of external
# inputs) fall back to the Python path.
MAX_PRODUCERS = 8

_I64P = ctypes.POINTER(ctypes.c_int64)
_I8P = ctypes.POINTER(ctypes.c_int8)
_DBLP = ctypes.POINTER(ctypes.c_double)


class _CTrace(ctypes.Structure):
    """Mirror of the CTrace struct in ``_ckern.c`` (field order matters)."""

    _fields_ = [
        ("pc", _I64P), ("op", _I64P), ("opclass", _I64P),
        ("latency", _I64P), ("rd", _I64P), ("addr", _I64P),
        ("next_pc", _I64P), ("srcs", _I64P), ("srcs_start", _I64P),
        ("kind", _I8P), ("taken", _I8P),
        ("n", ctypes.c_int64),
        ("hidx", _I64P),
        ("h_tpl", _I64P), ("h_nominal", _I64P), ("h_outix", _I64P),
        ("h_flags", _I64P),
        ("h_mem_pc", _I64P), ("h_site", _I64P), ("h_coff", _I64P),
        ("h_cnt", _I64P),
        ("c_opclass", _I64P), ("c_latency", _I64P), ("c_addr", _I64P),
        ("c_rd", _I64P),
        ("site_consumer_ix", _I64P),
        ("n_handles", ctypes.c_int64), ("n_sites", ctypes.c_int64),
    ]


class _CBatchPoint(ctypes.Structure):
    """Mirror of the BatchPoint struct in ``_ckern.c``."""

    _fields_ = [
        ("cfg", _I64P),
        ("trace", ctypes.POINTER(_CTrace)),
        ("out", _I64P),
        ("max_cycles", ctypes.c_int64),
        ("tap", _I64P),
        ("tap_cap", ctypes.c_int64),
        ("tap_flags", ctypes.c_int64),
        ("status", ctypes.c_int64),
        ("tap_len", ctypes.c_int64),
        ("tap_ovf", ctypes.c_int64),
    ]


# Dispatch/fallback tallies for the batched path, harvested post-hoc by
# ``repro.obs.metrics.collect_ckern`` (pure counters: reading or
# exporting them never changes behaviour).
counters = {
    "batch_dispatches": 0,     # repro_run_batch native calls
    "batch_points": 0,         # points submitted across all batches
    "batch_fallbacks": 0,      # points degraded to the Python loop
    "batch_threads_last": 0,   # threads used by the most recent batch
    "tap_overflow_retries": 0,  # single-point 4x event-buffer retries
    # Plan-construction kernels (profile build / enumeration / scoring).
    "profiles_built_native": 0,       # repro_profile_build successes
    "candidates_enumerated_native": 0,  # candidates packed by C enumeration
    "scoring_calls": 0,               # repro_score_candidates calls
    "global_folds_native": 0,         # repro_global_fold successes
    "plan_fallbacks": 0,       # plan-kernel calls degraded to Python
}


# ---------------------------------------------------------------------
# Build
# ---------------------------------------------------------------------

_lib = None
_lib_failed = False


def _cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or \
        os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-ckern")


def _find_compiler() -> Optional[str]:
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def _build() -> Optional[str]:
    """Compile ``_ckern.c`` into a cached shared object; None on failure."""
    try:
        with open(_SOURCE, "rb") as f:
            source = f.read()
    except OSError:
        return None
    digest = hashlib.sha256(source).hexdigest()[:16]
    compiler = _find_compiler()
    if compiler is None:
        return None
    for cache_dir in (_cache_dir(),
                      os.path.join(tempfile.gettempdir(), "repro-ckern")):
        lib_path = os.path.join(cache_dir, f"ckern-{digest}.so")
        if os.path.exists(lib_path):
            return lib_path
        try:
            os.makedirs(cache_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
            os.close(fd)
            # Prefer the threaded build (repro_run_batch fans out over a
            # pthread pool); toolchains without pthreads still get the
            # full kernel with an in-call serial batch loop.
            built = False
            for extra in (["-pthread", "-DREPRO_THREADS=1"], []):
                cmd = [compiler, "-O2", "-fPIC", "-shared", *extra,
                       "-o", tmp, _SOURCE]
                proc = subprocess.run(cmd, capture_output=True, timeout=120)
                if proc.returncode == 0:
                    built = True
                    break
            if not built:
                os.unlink(tmp)
                return None
            os.replace(tmp, lib_path)  # atomic: concurrent builds race safely
            return lib_path
        except OSError:
            continue
    return None


def _load():
    global _lib, _lib_failed
    if _lib is not None or _lib_failed:
        return _lib
    lib_path = _build()
    if lib_path is None:
        _lib_failed = True
        return None
    try:
        lib = ctypes.CDLL(lib_path)
        lib.repro_run.restype = ctypes.c_int64
        lib.repro_run.argtypes = [_I64P, ctypes.POINTER(_CTrace), _I64P,
                                  ctypes.c_int64]
        lib.repro_run_tap.restype = ctypes.c_int64
        lib.repro_run_tap.argtypes = [_I64P, ctypes.POINTER(_CTrace), _I64P,
                                      ctypes.c_int64, _I64P, ctypes.c_int64,
                                      _I64P, ctypes.c_int64]
        lib.repro_run_batch.restype = ctypes.c_int64
        lib.repro_run_batch.argtypes = [ctypes.POINTER(_CBatchPoint),
                                        ctypes.c_int64, ctypes.c_int64]
        lib.repro_tap_fold.restype = None
        lib.repro_tap_fold.argtypes = [_I64P, ctypes.c_int64, _I64P, _I64P,
                                       _I64P]
        lib.repro_profile_build.restype = ctypes.c_int64
        lib.repro_profile_build.argtypes = [
            _I64P, ctypes.c_int64, ctypes.c_int64,       # event log
            _I8P, _I64P, _I64P, _I64P, _I64P,            # trace columns
            ctypes.c_int64,                              # n
            _I8P, ctypes.c_int64,                        # leaders, n_static
            ctypes.c_int64, ctypes.c_int64,              # anchor, cap
            _I64P, _I64P, _I64P, _I64P, _I64P,           # count..n_src
            _I64P, _I64P, _I64P, _I64P,                  # out/slack/min
            _I64P, _I64P]                                # order, meta
        lib.repro_enumerate_candidates.restype = ctypes.c_int64
        lib.repro_enumerate_candidates.argtypes = [
            _I64P, _I64P, _I64P, _I64P, ctypes.c_int64,  # static listing
            _I64P, _I64P, ctypes.c_int64,                # blocks
            ctypes.c_int64, ctypes.c_int64,              # max_size/ext
            _I64P, _I64P, _I64P, _I64P, _I64P, _I64P,    # candidate cols
            ctypes.c_int64]                              # cap
        lib.repro_score_candidates.restype = ctypes.c_int64
        lib.repro_score_candidates.argtypes = [
            ctypes.c_int64, _I64P, _I64P, _I64P, _I64P,  # candidates
            _I64P, _I64P, ctypes.c_int64,                # static listing
            _I8P, _DBLP, _DBLP, _DBLP, _DBLP, _I8P,      # profile columns
            ctypes.c_int64, ctypes.c_double, _I64P]      # opts, verdicts
        lib.repro_global_fold.restype = ctypes.c_int64
        lib.repro_global_fold.argtypes = [
            _I64P, ctypes.c_int64, ctypes.c_int64,       # event log
            _I8P, _I64P, ctypes.c_int64,                 # kind, pc, n
            ctypes.c_int64, _DBLP, _DBLP, _I64P]         # cap, aggregates
    except (OSError, AttributeError):
        _lib_failed = True
        return None
    _lib = lib
    return lib


def available() -> bool:
    """True when the compiled kernel can be used in this process."""
    if os.environ.get("REPRO_PURE_PY"):
        return False
    return _load() is not None


# ---------------------------------------------------------------------
# Marshalling
# ---------------------------------------------------------------------

def _col(arr, ctype):
    """A ctypes pointer over a typed array's buffer (zero-copy)."""
    if not len(arr):
        arr = array(arr.typecode, [0])
    return ((ctype * len(arr)).from_buffer(arr), arr)


class MarshalledTrace:
    """The flat column view of one PackedTrace handed to the kernel."""

    def __init__(self, struct, keepalive):
        self.struct = struct
        self._keepalive = keepalive  # buffers the struct points into


def marshal(packed) -> Optional[MarshalledTrace]:
    """Flatten ``packed`` (a PackedTrace) for the kernel; None if the
    trace exceeds a kernel bound (caller falls back to Python)."""
    n = packed.n
    srcs_start = packed.srcs_start
    max_srcs = 0
    for i in range(n):
        w = srcs_start[i + 1] - srcs_start[i]
        if w > max_srcs:
            max_srcs = w
    if max_srcs > MAX_PRODUCERS:
        return None

    hidx = array("q", [-1] * n) if n else array("q")
    h_tpl = array("q")
    h_nominal = array("q")
    h_outix = array("q")
    h_flags = array("q")
    h_mem_pc = array("q")
    h_site = array("q")
    h_coff = array("q")
    h_cnt = array("q")
    c_opclass = array("q")
    c_latency = array("q")
    c_addr = array("q")
    c_rd = array("q")
    site_ids = {}           # id(site) -> dense index
    site_tables = array("q")
    kinds = packed.kind
    objs = packed.objs
    for ix in range(n):
        if kinds[ix] != 1:
            continue
        rec = objs[ix]
        site = rec.site
        tpl = rec.template
        key = id(site)
        dense = site_ids.get(key)
        if dense is None:
            dense = len(site_ids)
            site_ids[key] = dense
            table = [0] * 32
            for reg, consumer in site.input_consumer_ix.items():
                if 0 <= reg < 32:
                    table[reg] = consumer
            site_tables.extend(table)
        hidx[ix] = len(h_tpl)
        h_tpl.append(tpl.id)
        h_nominal.append(tpl.nominal_out_latency)
        h_outix.append(tpl.out_producer_ix)
        h_flags.append((1 if tpl.has_branch else 0) |
                       (2 if tpl.has_load else 0) |
                       (4 if tpl.has_store else 0))
        h_mem_pc.append(rec.site.mem_pc)
        h_site.append(dense)
        h_coff.append(len(c_opclass))
        h_cnt.append(len(rec.constituents))
        for c in rec.constituents:
            c_opclass.append(c.opclass)
            c_latency.append(c.latency)
            c_addr.append(c.addr)
            c_rd.append(c.rd)

    keepalive = []

    def col(arr, ctype=ctypes.c_int64):
        buf, owner = _col(arr, ctype)
        keepalive.append(owner)
        keepalive.append(buf)
        return ctypes.cast(buf, ctypes.POINTER(ctype))

    struct = _CTrace(
        pc=col(packed.pc), op=col(packed.op), opclass=col(packed.opclass),
        latency=col(packed.latency), rd=col(packed.rd),
        addr=col(packed.addr), next_pc=col(packed.next_pc),
        srcs=col(packed.srcs), srcs_start=col(packed.srcs_start),
        kind=col(packed.kind, ctypes.c_int8),
        taken=col(packed.taken, ctypes.c_int8),
        n=n,
        hidx=col(hidx), h_tpl=col(h_tpl), h_nominal=col(h_nominal),
        h_outix=col(h_outix), h_flags=col(h_flags),
        h_mem_pc=col(h_mem_pc), h_site=col(h_site), h_coff=col(h_coff),
        h_cnt=col(h_cnt),
        c_opclass=col(c_opclass), c_latency=col(c_latency),
        c_addr=col(c_addr), c_rd=col(c_rd),
        site_consumer_ix=col(site_tables),
        n_handles=len(h_tpl), n_sites=len(site_ids),
    )
    return MarshalledTrace(struct, keepalive)


# Marshalled-trace arena reuse: a batch (and repeat runs over the same
# PackedTrace, e.g. a selector sweep on one program) shares one flat
# column view instead of re-marshalling per point. Keyed by trace
# identity — the strong reference makes the id stable for the lifetime
# of the entry — and bounded so long multi-program campaigns cannot pin
# every trace they ever touched.
_marshal_cache: dict = {}
_MARSHAL_CACHE_MAX = 8


def marshal_shared(packed) -> Optional[MarshalledTrace]:
    """Memoizing :func:`marshal`; safe because the kernel reads the
    columns strictly read-only (points in one batch share the arena)."""
    key = id(packed)
    hit = _marshal_cache.get(key)
    if hit is not None and hit[0] is packed:
        return hit[1]
    mtrace = marshal(packed)
    if mtrace is not None:
        if len(_marshal_cache) >= _MARSHAL_CACHE_MAX:
            _marshal_cache.clear()
        _marshal_cache[key] = (packed, mtrace)
    return mtrace


def pack_config(config, warm_caches: bool) -> array:
    """The flat int64 config block consumed by the kernel."""
    from ..isa import opcodes as oc
    from .caches import TLB_MISS_PENALTY

    cfg = array("q", [0] * CFG_COUNT)
    cfg[CFG_WIDTH] = config.width
    cfg[CFG_ISSUE_QUEUE] = config.issue_queue
    cfg[CFG_RENAME_POOL] = max(config.phys_regs - 64, 8)
    cfg[CFG_ROB] = config.rob
    cfg[CFG_LOAD_QUEUE] = config.load_queue
    cfg[CFG_STORE_QUEUE] = config.store_queue
    cfg[CFG_PORTS_SIMPLE] = config.ports_simple
    cfg[CFG_PORTS_COMPLEX] = config.ports_complex
    cfg[CFG_PORTS_LOAD] = config.ports_load
    cfg[CFG_PORTS_STORE] = config.ports_store
    cfg[CFG_FRONT_DELAY] = config.stages_front - 1
    cfg[CFG_REGREAD] = config.stages_regread
    cfg[CFG_TO_COMMIT] = config.stages_to_commit
    for slot, cc in ((CFG_IL1_SETS, config.il1), (CFG_DL1_SETS, config.dl1),
                     (CFG_L2_SETS, config.l2)):
        cfg[slot] = cc.n_sets
        cfg[slot + 1] = cc.assoc
        cfg[slot + 2] = cc.line_bytes
        cfg[slot + 3] = cc.latency
    cfg[CFG_MEM_LATENCY] = config.mem_latency
    cfg[CFG_ITLB_SETS] = 64 // 4        # Tlb() defaults in caches.py
    cfg[CFG_ITLB_ASSOC] = 4
    cfg[CFG_DTLB_SETS] = 64 // 4
    cfg[CFG_DTLB_ASSOC] = 4
    cfg[CFG_TLB_MISS_PENALTY] = TLB_MISS_PENALTY
    cfg[CFG_BIM_MASK] = (1 << config.bimodal_bits) - 1
    cfg[CFG_GSH_MASK] = (1 << config.gshare_bits) - 1
    cfg[CFG_CHO_MASK] = (1 << config.chooser_bits) - 1
    cfg[CFG_BTB_SETS] = config.btb_entries // config.btb_assoc
    cfg[CFG_BTB_ASSOC] = config.btb_assoc
    cfg[CFG_RAS_ENTRIES] = config.ras_entries
    cfg[CFG_SS_MASK] = config.store_sets - 1
    cfg[CFG_FORWARD_LATENCY] = config.forward_latency
    cfg[CFG_IL1_NLP] = 1 if config.il1_next_line_prefetch else 0
    cfg[CFG_DL1_STRIDE] = 1 if config.dl1_stride_prefetch else 0
    cfg[CFG_STRIDE_MASK] = 256 - 1      # StridePrefetcher() defaults
    cfg[CFG_STRIDE_CONF] = 2
    cfg[CFG_MG_MAX_ISSUE] = config.mg_max_issue
    cfg[CFG_MG_MAX_MEM_ISSUE] = config.mg_max_mem_issue
    cfg[CFG_MG_ALU_PIPES] = config.mg_alu_pipelines
    cfg[CFG_MGT_ENTRIES] = config.mgt_entries
    cfg[CFG_MGT_FILL_LATENCY] = config.l2.latency
    cfg[CFG_FETCH_BUFFER_CAP] = (config.stages_front + 2) * config.width
    cfg[CFG_WARM] = 1 if warm_caches else 0
    cfg[CFG_OP_JAL] = oc.JAL
    cfg[CFG_OP_JR] = oc.JR
    return cfg


@lru_cache(maxsize=64)
def pack_config_cached(config, warm_caches: bool) -> array:
    """Memoized :func:`pack_config` (MachineConfig is frozen/hashable).

    The returned block is shared: the kernel treats it as ``const`` and
    callers must never mutate it. Every timing point re-packed the same
    handful of named configs before; a batch now packs each distinct
    ``(config, warm)`` once.
    """
    return pack_config(config, warm_caches)


def run(cfg: array, mtrace: MarshalledTrace, max_cycles: int):
    """Invoke the kernel. Returns ``(rc, out)``; out is the counter block.

    The kernel never mutates Python state, so any non-zero internal
    failure (``RC_NOMEM``) leaves the core free to rerun in pure Python.
    """
    lib = _load()
    if lib is None:
        return RC_NOMEM, None
    out = array("q", [0] * OUT_COUNT)
    cfg_buf, _cfg_owner = _col(cfg, ctypes.c_int64)
    out_buf = (ctypes.c_int64 * OUT_COUNT).from_buffer(out)
    rc = lib.repro_run(
        ctypes.cast(cfg_buf, _I64P), ctypes.byref(mtrace.struct),
        ctypes.cast(out_buf, _I64P), max_cycles)
    return rc, out


def tap_capacity(packed) -> int:
    """Initial event-buffer capacity (int64 words) for ``packed``.

    A squash-free run emits at most one ISSUE plus one HANDLE per record
    and one CONSUME per (deduped) source, so ``2n + |srcs|`` events with
    a flat floor covers it; squash/replay storms beyond the slack are
    absorbed by one 4x retry before falling back to the Python loop.
    """
    return (2 * packed.n + len(packed.srcs) + 4096) * TAP_WORDS


def run_tap(cfg: array, mtrace: MarshalledTrace, max_cycles: int,
            tap_words: int, tap_flags: int = 0):
    """Invoke the kernel with the event tap armed.

    Returns ``(rc, out, events, n_words, overflowed)``. ``events`` is an
    ``array('q')`` whose first ``n_words`` entries are valid packed
    events; on overflow the log is truncated (the counters are still
    exact) and the caller either retries with a larger buffer or falls
    back to the Python observer loop. ``tap_flags`` selects opt-in
    record families (:data:`TAP_FLAG_GLOBAL` adds TAP_VALUE records).
    """
    lib = _load()
    if lib is None:
        return RC_NOMEM, None, None, 0, False
    out = array("q", [0] * OUT_COUNT)
    events = array("q", bytes(8 * tap_words))
    meta = array("q", [0, 0])
    cfg_buf, _cfg_owner = _col(cfg, ctypes.c_int64)
    out_buf = (ctypes.c_int64 * OUT_COUNT).from_buffer(out)
    tap_buf = (ctypes.c_int64 * tap_words).from_buffer(events)
    meta_buf = (ctypes.c_int64 * 2).from_buffer(meta)
    rc = lib.repro_run_tap(
        ctypes.cast(cfg_buf, _I64P), ctypes.byref(mtrace.struct),
        ctypes.cast(out_buf, _I64P), max_cycles,
        ctypes.cast(tap_buf, _I64P), tap_words,
        ctypes.cast(meta_buf, _I64P), tap_flags)
    del tap_buf, meta_buf  # release from_buffer exports before returning
    return rc, out, events, meta[0], bool(meta[1])


#: One batch descriptor: ``(cfg, mtrace, max_cycles, tap_words,
#: tap_flags)`` — ``tap_words == 0`` runs the point unobserved.
BatchEntry = Tuple[array, MarshalledTrace, int, int, int]


def run_batch(entries: Sequence[BatchEntry], threads: int
              ) -> Optional[List[tuple]]:
    """Run N points in one native, GIL-released call.

    Each entry is ``(cfg, mtrace, max_cycles, tap_words, tap_flags)``;
    marshalled traces and packed configs may (and should) be shared
    between entries — the kernel reads both strictly read-only. Returns
    a per-point list of ``(rc, out, events, n_words, overflowed)`` in
    entry order, exactly what :func:`run` / :func:`run_tap` would have
    returned point by point, or None when the library is unavailable
    (caller falls back to per-point dispatch). Failures are per-point:
    one point's budget/deadlock/overflow never poisons its batchmates.
    """
    if not available():
        return None
    lib = _load()
    n = len(entries)
    if n == 0:
        return []
    pts = (_CBatchPoint * n)()
    keepalive = []
    cells = []
    for i, (cfg, mtrace, max_cycles, tap_words, tap_flags) in \
            enumerate(entries):
        out = array("q", [0] * OUT_COUNT)
        cfg_buf, cfg_owner = _col(cfg, ctypes.c_int64)
        out_buf = (ctypes.c_int64 * OUT_COUNT).from_buffer(out)
        p = pts[i]
        p.cfg = ctypes.cast(cfg_buf, _I64P)
        p.trace = ctypes.pointer(mtrace.struct)
        p.out = ctypes.cast(out_buf, _I64P)
        p.max_cycles = max_cycles
        if tap_words > 0:
            events = array("q", bytes(8 * tap_words))
            tap_buf = (ctypes.c_int64 * tap_words).from_buffer(events)
            p.tap = ctypes.cast(tap_buf, _I64P)
            p.tap_cap = tap_words
        else:
            events = None
            tap_buf = None
            p.tap = None
            p.tap_cap = 0
        p.tap_flags = tap_flags
        keepalive.append((cfg_buf, cfg_owner, out_buf, tap_buf, mtrace))
        cells.append((out, events))
    used = lib.repro_run_batch(pts, n, max(1, threads))
    counters["batch_dispatches"] += 1
    counters["batch_points"] += n
    counters["batch_threads_last"] = int(used)
    results = []
    for i, (out, events) in enumerate(cells):
        p = pts[i]
        results.append((int(p.status), out, events, int(p.tap_len),
                        bool(p.tap_ovf)))
    del keepalive, pts  # release from_buffer exports before returning
    return results


def tap_fold(events: array, n_words: int, cells: array,
             issue_cycle: array, out_ready: array) -> bool:
    """Fold the event log into per-record decode cells, in C.

    Performs exactly the first pass of
    :meth:`~repro.minigraph.slack.SlackCollector.ingest_ckern_tap`
    (CONSUME min / ISSUE reset / REDIRECT zero) over the ``n_words``
    valid words of ``events``, mutating the three ``array('q')`` columns
    in place. Returns False when the library is unavailable (or
    ``REPRO_PURE_PY`` demands the reference loop) so callers keep the
    pure-Python fold as a fallback.
    """
    if not available():
        return False
    lib = _load()
    if lib is None:
        return False
    if n_words:
        ev_buf = (ctypes.c_int64 * len(events)).from_buffer(events)
        cell_buf = (ctypes.c_int64 * len(cells)).from_buffer(cells)
        ic_buf = (ctypes.c_int64 * len(issue_cycle)).from_buffer(issue_cycle)
        or_buf = (ctypes.c_int64 * len(out_ready)).from_buffer(out_ready)
        lib.repro_tap_fold(
            ctypes.cast(ev_buf, _I64P), n_words,
            ctypes.cast(cell_buf, _I64P), ctypes.cast(ic_buf, _I64P),
            ctypes.cast(or_buf, _I64P))
        del ev_buf, cell_buf, ic_buf, or_buf
    return True


# ---------------------------------------------------------------------
# Plan-construction kernels
# ---------------------------------------------------------------------
#
# Thin array-in/array-out wrappers over the _ckern.c plan entry points.
# Domain logic (what the columns mean, how packed triples rehydrate to
# Candidate objects) lives with the Python reference implementations in
# minigraph/slack.py, minigraph/candidates.py, minigraph/delay_model.py
# and analysis/global_slack.py; every wrapper returns None when the
# library is unavailable (or the shape exceeds the packed-format
# bounds) so those references remain the fallback path.


class PackedProfileAcc:
    """SoA accumulator columns from one native profile build.

    Dense per-static-pc ``array('q')`` columns mirroring
    ``minigraph.slack._Accumulator`` field for field (the source
    columns use stride :data:`PLAN_MAX_SRC`); ``order`` lists the
    first-commit pcs in commit order so ``profile()`` iterates entries
    exactly as the reference ``_acc`` dict would.
    """

    __slots__ = ("n_static", "count", "issue_sum", "src_sum", "src_count",
                 "n_src", "out_sum", "out_count", "slack_sum", "min_slack",
                 "order", "n_order", "anchor")


def profile_build(events: array, n_words: int, n_committed: int,
                  packed, is_leader: array, n_static: int,
                  anchor: int, slack_cap: int
                  ) -> Optional[PackedProfileAcc]:
    """One-call slack-profile build from a packed event log.

    Fuses the :func:`tap_fold` first pass with the committed-prefix
    aggregation loop of ``SlackCollector.ingest_ckern_tap``. Returns
    the packed accumulator columns, or None (library unavailable,
    ``REPRO_PURE_PY``, or unsupported shape) — the caller then runs the
    Python reference loop.
    """
    if not available():
        return None
    lib = _load()
    n = packed.n
    if n == 0 or n_committed > n or n_static <= 0:
        return None
    acc = PackedProfileAcc()
    acc.n_static = n_static
    acc.count = array("q", bytes(8 * n_static))
    acc.issue_sum = array("q", bytes(8 * n_static))
    acc.src_sum = array("q", bytes(8 * n_static * PLAN_MAX_SRC))
    acc.src_count = array("q", bytes(8 * n_static * PLAN_MAX_SRC))
    acc.n_src = array("q", bytes(8 * n_static))
    acc.out_sum = array("q", bytes(8 * n_static))
    acc.out_count = array("q", bytes(8 * n_static))
    acc.slack_sum = array("q", bytes(8 * n_static))
    acc.min_slack = array("q", [slack_cap]) * n_static
    acc.order = array("q", bytes(8 * n_static))
    meta = array("q", [0, 0])
    keep = []

    def p64(arr):
        buf, owner = _col(arr, ctypes.c_int64)
        keep.append((buf, owner))
        return ctypes.cast(buf, _I64P)

    def p8(arr):
        buf, owner = _col(arr, ctypes.c_int8)
        keep.append((buf, owner))
        return ctypes.cast(buf, _I8P)

    rc = lib.repro_profile_build(
        p64(events), n_words, n_committed,
        p8(packed.kind), p64(packed.pc), p64(packed.rd),
        p64(packed.srcs), p64(packed.srcs_start), n,
        p8(is_leader), n_static, anchor, slack_cap,
        p64(acc.count), p64(acc.issue_sum),
        p64(acc.src_sum), p64(acc.src_count), p64(acc.n_src),
        p64(acc.out_sum), p64(acc.out_count),
        p64(acc.slack_sum), p64(acc.min_slack),
        p64(acc.order), p64(meta))
    del keep
    if rc != RC_OK:
        counters["plan_fallbacks"] += 1
        return None
    acc.n_order = meta[0]
    acc.anchor = meta[1]
    counters["profiles_built_native"] += 1
    return acc


def plan_enumerate(opclass: array, rd_eff: array, srcs3: array,
                   live_mask: array, block_start: array, block_end: array,
                   max_size: int, max_ext: int) -> Optional[tuple]:
    """Native candidate enumeration over static-listing columns.

    Returns ``(n, start, end, ext, out, edges, ser)`` packed candidate
    columns (formats documented in ``_ckern.c``), or None when the
    library is unavailable or the window bounds exceed the packed
    format (``max_size > 4`` / ``max_ext > 3``) — the caller then runs
    the Python enumeration loop.
    """
    if not available() or not (2 <= max_size <= 4) or not \
            (0 <= max_ext <= 3):
        return None
    lib = _load()
    n_static = len(opclass)
    n_blocks = len(block_start)
    cap = 3 * n_static + 8
    cols = tuple(array("q", bytes(8 * cap)) for _ in range(6))
    keep = []

    def p64(arr):
        buf, owner = _col(arr, ctypes.c_int64)
        keep.append((buf, owner))
        return ctypes.cast(buf, _I64P)

    n_cand = lib.repro_enumerate_candidates(
        p64(opclass), p64(rd_eff), p64(srcs3), p64(live_mask), n_static,
        p64(block_start), p64(block_end), n_blocks, max_size, max_ext,
        p64(cols[0]), p64(cols[1]), p64(cols[2]), p64(cols[3]),
        p64(cols[4]), p64(cols[5]), cap)
    del keep
    if n_cand < 0:
        counters["plan_fallbacks"] += 1
        return None
    counters["candidates_enumerated_native"] += n_cand
    return (n_cand,) + cols


def plan_score(n_cand: int, c_start: array, c_end: array, c_ext: array,
               c_out: array, opclass: array, latency: array,
               p_present: array, p_rel_issue: array, p_src_ready: array,
               p_slack: array, p_out_ready: array, p_has_out: array,
               measured: bool, tolerance: float) -> Optional[array]:
    """Delay-model rules #1-#4 for a whole candidate set, in C.

    Returns one verdict bitmask per candidate (bit 0 profiled, bit 1
    degrades, bit 2 degrades on any output delay, bit 3 SIAL), or None
    when the library is unavailable — the caller then assesses per
    candidate through ``delay_model.assess``.
    """
    if not available() or n_cand <= 0:
        return None
    lib = _load()
    verdicts = array("q", bytes(8 * n_cand))
    keep = []

    def p64(arr):
        buf, owner = _col(arr, ctypes.c_int64)
        keep.append((buf, owner))
        return ctypes.cast(buf, _I64P)

    def p8(arr):
        buf, owner = _col(arr, ctypes.c_int8)
        keep.append((buf, owner))
        return ctypes.cast(buf, _I8P)

    def pd(arr):
        if not len(arr):
            arr = array("d", [0.0])
        buf = (ctypes.c_double * len(arr)).from_buffer(arr)
        keep.append((buf, arr))
        return ctypes.cast(buf, _DBLP)

    rc = lib.repro_score_candidates(
        n_cand, p64(c_start), p64(c_end), p64(c_ext), p64(c_out),
        p64(opclass), p64(latency), len(opclass),
        p8(p_present), pd(p_rel_issue), pd(p_src_ready), pd(p_slack),
        pd(p_out_ready), p8(p_has_out),
        1 if measured else 0, float(tolerance), p64(verdicts))
    del keep
    if rc != RC_OK:
        counters["plan_fallbacks"] += 1
        return None
    counters["scoring_calls"] += 1
    return verdicts


def global_fold(events: array, n_words: int, n_committed: int,
                packed, n_static: int, slack_cap: int) -> Optional[tuple]:
    """Global-slack event decode plus backward DP, in C.

    Returns ``(n_singletons, sums, mins, counts)`` per-static-pc
    aggregate columns (``sums``/``mins`` are ``array('d')`` holding the
    exact doubles the Python DP would), or None — the caller then runs
    the reference decode in ``analysis/global_slack.py``.
    """
    if not available():
        return None
    lib = _load()
    n = packed.n
    if n == 0 or n_committed > n or n_static <= 0:
        return None
    sums = array("d", bytes(8 * n_static))
    mins = array("d", [float(slack_cap)]) * n_static
    counts = array("q", bytes(8 * n_static))
    keep = []

    def p64(arr):
        buf, owner = _col(arr, ctypes.c_int64)
        keep.append((buf, owner))
        return ctypes.cast(buf, _I64P)

    def p8(arr):
        buf, owner = _col(arr, ctypes.c_int8)
        keep.append((buf, owner))
        return ctypes.cast(buf, _I8P)

    def pd(arr):
        buf = (ctypes.c_double * len(arr)).from_buffer(arr)
        keep.append((buf, arr))
        return ctypes.cast(buf, _DBLP)

    rc = lib.repro_global_fold(
        p64(events), n_words, n_committed,
        p8(packed.kind), p64(packed.pc), n,
        slack_cap, pd(sums), pd(mins), p64(counts))
    del keep
    if rc < 0:
        counters["plan_fallbacks"] += 1
        return None
    counters["global_folds_native"] += 1
    return int(rc), sums, mins, counts
