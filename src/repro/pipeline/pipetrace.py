"""Pipetrace: cycle-by-cycle pipeline occupancy diagrams.

The classic simulator debugging view — one row per dynamic instruction,
one column per cycle, letters marking pipeline milestones:

====  =========================================================
``F``  fetched into the front end
``.``  in flight between milestones
``R``  renamed into the window
``-``  waiting in the issue queue
``I``  issued (selected)
``=``  executing
``C``  execution complete
``T``  retired (commit)
``!``  squashed (memory-ordering flush)
====  =========================================================

Attach a :class:`PipeTracer` to the core, run, then ``render()``::

    tracer = PipeTracer()
    OoOCore(config, records, tracer=tracer).run()
    print(tracer.render(last=30))

Mini-graph handles appear as one row (their constituents execute inside
the ALU pipeline); the mnemonic shows the aggregate size.
"""

from __future__ import annotations

from typing import List, Optional

from ..isa import opcodes as oc


class _Row:
    __slots__ = ("ix", "sub", "pc", "mnemonic", "fetch", "rename",
                 "issue", "complete", "commit", "squash")

    def __init__(self, ix: int, sub: int, pc: int, mnemonic: str,
                 fetch: int):
        self.ix = ix
        self.sub = sub
        self.pc = pc
        self.mnemonic = mnemonic
        self.fetch = fetch
        self.rename = -1
        self.issue = -1
        self.complete = -1
        self.commit = -1
        self.squash = -1


def _mnemonic(rec) -> str:
    if rec.kind == 1:
        return f"mg#{rec.site.id}[{len(rec.constituents)}]"
    name = oc.op_name(rec.op)
    if rec.rd >= 0:
        return f"{name} r{rec.rd}"
    return name


class PipeTracer:
    """Collects per-uop milestones; render as a pipetrace chart."""

    def __init__(self, max_rows: int = 4096):
        self.max_rows = max_rows
        self._rows: List[_Row] = []
        self._by_uop = {}
        self.truncated = False

    # -- core hooks ---------------------------------------------------------

    def on_fetch(self, uop, cycle: int) -> None:
        """Open a row when a uop enters the front end."""
        if len(self._rows) >= self.max_rows:
            self.truncated = True
            return
        row = _Row(uop.ix, uop.sub, uop.pc, _mnemonic(uop.rec), cycle)
        self._rows.append(row)
        self._by_uop[id(uop)] = row

    def on_rename(self, uop, cycle: int) -> None:
        """Record the rename milestone."""
        row = self._by_uop.get(id(uop))
        if row is not None:
            row.rename = cycle

    def on_commit(self, uop, cycle: int) -> None:
        """Record issue/complete/commit milestones at retirement."""
        row = self._by_uop.get(id(uop))
        if row is not None:
            row.issue = uop.issue_cycle
            row.complete = uop.complete_cycle
            row.commit = cycle

    def on_squash(self, uop, cycle: int) -> None:
        """Mark a squashed uop (memory-ordering flush)."""
        row = self._by_uop.get(id(uop))
        if row is not None:
            row.squash = cycle
            if uop.issued:
                row.issue = uop.issue_cycle

    # -- rendering ------------------------------------------------------------

    def rows(self) -> List[_Row]:
        """All traced rows, in fetch order."""
        return list(self._rows)

    def render(self, first: Optional[int] = None,
               last: Optional[int] = None,
               width: int = 100) -> str:
        """The chart for rows ``[first:last]`` (defaults: first 40 rows)."""
        rows = self._rows[first or 0:last if last is not None
                          else (first or 0) + 40]
        rows = [r for r in rows if r.fetch >= 0]
        if not rows:
            return "(no rows traced)"
        start = min(r.fetch for r in rows)
        end = max(max(r.commit, r.complete, r.squash, r.fetch)
                  for r in rows)
        end = min(end, start + width - 1)
        span = end - start + 1

        lines = [f"{'ix':>5s} {'mnemonic':<14s} cycles {start}..{end}"]
        for row in rows:
            cells = [" "] * span

            def put(cycle: int, char: str) -> None:
                if cycle is not None and start <= cycle <= end:
                    cells[cycle - start] = char

            def fill(begin: int, stop: int, char: str) -> None:
                for cycle in range(max(begin, start), min(stop, end) + 1):
                    if cells[cycle - start] == " ":
                        cells[cycle - start] = char

            put(row.fetch, "F")
            if row.rename >= 0:
                fill(row.fetch + 1, row.rename - 1, ".")
                put(row.rename, "R")
            if row.issue >= 0:
                fill(row.rename + 1, row.issue - 1, "-")
                put(row.issue, "I")
            if row.complete >= 0 and row.issue >= 0:
                fill(row.issue + 1, row.complete - 1, "=")
                put(row.complete, "C")
            if row.commit >= 0:
                put(row.commit, "T")
            if row.squash >= 0:
                put(row.squash, "!")
            label = f"{row.ix:>5d} {row.mnemonic:<14s}"
            lines.append(label + "".join(cells))
        if self.truncated:
            lines.append(f"(truncated at {self.max_rows} rows)")
        return "\n".join(lines)


def pipetrace(config, records, first: Optional[int] = None,
              last: Optional[int] = None, warm_caches: bool = True) -> str:
    """One-shot convenience: run ``records`` on ``config`` and render."""
    from .core import OoOCore
    tracer = PipeTracer()
    OoOCore(config, records, warm_caches=warm_caches, tracer=tracer).run()
    return tracer.render(first=first, last=last)
