"""Cycle-level out-of-order superscalar pipeline model (Table 1 machines)."""

from .activity import ActivityCounters, amplification_report
from .branch import BranchUnit, BranchTargetBuffer, DirectionPredictor, \
    ReturnAddressStack
from .caches import Cache, MemoryHierarchy, Tlb
from .config import (
    CacheConfig, MachineConfig, NAMED_CONFIGS, config_by_name,
    cross_2way_config, cross_8way_config, cross_dmem4_config, full_config,
    reduced_config,
)
from .core import OoOCore, SimulationDeadlock, simulate
from .pipetrace import PipeTracer, pipetrace
from .prefetch import NextLinePrefetcher, StridePrefetcher
from .stats import RunStats
from .storesets import StoreSets

__all__ = [
    "ActivityCounters",
    "BranchTargetBuffer",
    "BranchUnit",
    "Cache",
    "CacheConfig",
    "DirectionPredictor",
    "MachineConfig",
    "MemoryHierarchy",
    "NAMED_CONFIGS",
    "NextLinePrefetcher",
    "OoOCore",
    "PipeTracer",
    "ReturnAddressStack",
    "RunStats",
    "SimulationDeadlock",
    "StoreSets",
    "StridePrefetcher",
    "Tlb",
    "amplification_report",
    "config_by_name",
    "cross_2way_config",
    "cross_8way_config",
    "cross_dmem4_config",
    "full_config",
    "pipetrace",
    "reduced_config",
    "simulate",
]
