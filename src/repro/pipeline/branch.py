"""Branch prediction: hybrid bimodal/gshare direction predictor, BTB, RAS.

Matches the Table 1 configuration: a 24Kb hybrid bimodal/gshare direction
predictor (three 4K-entry 2-bit tables: bimodal, gshare, chooser), a
2K-entry 4-way associative BTB for indirect-target prediction, and a
32-entry return address stack.

PCs in the repro ISA are instruction indices; the predictors hash them
directly (there are no low alignment bits to strip).
"""

from __future__ import annotations

from typing import List

from .config import MachineConfig


class DirectionPredictor:
    """Hybrid bimodal/gshare conditional-branch direction predictor."""

    def __init__(self, config: MachineConfig):
        self._bim_mask = (1 << config.bimodal_bits) - 1
        self._gsh_mask = (1 << config.gshare_bits) - 1
        self._cho_mask = (1 << config.chooser_bits) - 1
        self._bimodal: List[int] = [2] * (self._bim_mask + 1)
        self._gshare: List[int] = [2] * (self._gsh_mask + 1)
        self._chooser: List[int] = [2] * (self._cho_mask + 1)
        self._history = 0

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        bim = self._bimodal[pc & self._bim_mask] >= 2
        gsh = self._gshare[(pc ^ self._history) & self._gsh_mask] >= 2
        use_gshare = self._chooser[pc & self._cho_mask] >= 2
        return gsh if use_gshare else bim

    def update(self, pc: int, taken: bool) -> None:
        """Train all tables with the resolved outcome and shift history."""
        bim_ix = pc & self._bim_mask
        gsh_ix = (pc ^ self._history) & self._gsh_mask
        cho_ix = pc & self._cho_mask
        bim_correct = (self._bimodal[bim_ix] >= 2) == taken
        gsh_correct = (self._gshare[gsh_ix] >= 2) == taken
        if gsh_correct != bim_correct:
            counter = self._chooser[cho_ix]
            self._chooser[cho_ix] = (min(counter + 1, 3) if gsh_correct
                                     else max(counter - 1, 0))
        for table, ix in ((self._bimodal, bim_ix), (self._gshare, gsh_ix)):
            counter = table[ix]
            table[ix] = min(counter + 1, 3) if taken else max(counter - 1, 0)
        self._history = ((self._history << 1) | int(taken)) & self._gsh_mask


class BranchTargetBuffer:
    """Set-associative BTB with true-LRU replacement."""

    def __init__(self, config: MachineConfig):
        self._n_sets = config.btb_entries // config.btb_assoc
        self._assoc = config.btb_assoc
        # Each set is an ordered list of (tag, target); front = MRU.
        self._sets: List[List[tuple]] = [[] for _ in range(self._n_sets)]

    def lookup(self, pc: int) -> int:
        """Predicted target for ``pc``, or ``-1`` on a BTB miss."""
        entry_set = self._sets[pc % self._n_sets]
        for i, (tag, target) in enumerate(entry_set):
            if tag == pc:
                if i:
                    entry_set.insert(0, entry_set.pop(i))
                return target
        return -1

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for ``pc``."""
        entry_set = self._sets[pc % self._n_sets]
        for i, (tag, _) in enumerate(entry_set):
            if tag == pc:
                entry_set.pop(i)
                break
        entry_set.insert(0, (pc, target))
        if len(entry_set) > self._assoc:
            entry_set.pop()


class ReturnAddressStack:
    """Bounded return address stack (overflow discards the oldest entry)."""

    def __init__(self, config: MachineConfig):
        self._capacity = config.ras_entries
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        """Record a call's return address."""
        self._stack.append(return_pc)
        if len(self._stack) > self._capacity:
            self._stack.pop(0)

    def pop(self) -> int:
        """Predicted return target, or ``-1`` if the stack is empty."""
        return self._stack.pop() if self._stack else -1


class BranchUnit:
    """Front-end branch prediction state, queried by the timing core.

    The timing core is trace-driven: it knows each control transfer's
    actual outcome and asks this unit whether the front-end would have
    predicted it. ``predict_and_train`` returns ``True`` when the
    prediction matches reality (no redirect) and trains all structures.
    """

    def __init__(self, config: MachineConfig):
        self.direction = DirectionPredictor(config)
        self.btb = BranchTargetBuffer(config)
        self.ras = ReturnAddressStack(config)
        self.cond_predictions = 0
        self.cond_mispredictions = 0
        self.indirect_predictions = 0
        self.indirect_mispredictions = 0

    def predict_and_train(self, pc: int, is_cond: bool, is_call: bool,
                          is_return: bool, taken: bool,
                          target: int) -> bool:
        """Predict the control transfer at ``pc`` and train; True = correct."""
        if is_cond:
            self.cond_predictions += 1
            predicted_taken = self.direction.predict(pc)
            self.direction.update(pc, taken)
            correct = predicted_taken == taken
            if correct and taken:
                # Direction right; the target of a direct branch still
                # needs a BTB hit to redirect fetch without penalty.
                correct = self.btb.lookup(pc) == target
            self.btb.update(pc, target)
            if not correct:
                self.cond_mispredictions += 1
            return correct
        if is_return:
            self.indirect_predictions += 1
            correct = self.ras.pop() == target
            if not correct:
                self.indirect_mispredictions += 1
            return correct
        # Direct jump or call: predicted via BTB at fetch.
        self.indirect_predictions += 1
        correct = self.btb.lookup(pc) == target
        self.btb.update(pc, target)
        if is_call:
            self.ras.push(pc + 1)
        if not correct:
            self.indirect_mispredictions += 1
        return correct
