"""Pipeline activity accounting: the "fewer resources" evidence.

Mini-graphs are a complexity-effectiveness technique: the claim is not
only IPC but that book-keeping *work* shrinks — fewer fetch/rename/commit
slots, fewer issue-queue entries occupied, fewer physical-register
allocations and register-file ports exercised per program instruction.
This module counts those events in the timing core so the amplification
can be reported directly (see ``benchmarks/test_activity.py``).

All counters are per-run totals; :meth:`ActivityCounters.per_instruction`
normalizes by committed original instructions for cross-run comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ActivityCounters:
    """Structure-activity event counts for one timing run."""

    fetch_slots: int = 0          # instructions/handles entering the pipe
    rename_ops: int = 0           # rename-stage slot uses
    rename_map_reads: int = 0     # source-operand map lookups
    phys_allocations: int = 0     # physical registers allocated
    iq_insertions: int = 0        # issue-queue writes
    iq_occupancy: int = 0         # sum of |IQ| over cycles
    window_occupancy: int = 0     # sum of ROB occupancy over cycles
    select_slots: int = 0         # issue-stage slot uses (incl. replays)
    regfile_reads: int = 0        # operand reads at issue
    regfile_writes: int = 0       # value writebacks
    commit_slots: int = 0         # commit-stage slot uses
    cycles: int = 0

    def merge_cycle(self, iq_len: int, window_len: int) -> None:
        """Accumulate one cycle's IQ and ROB occupancy."""
        self.iq_occupancy += iq_len
        self.window_occupancy += window_len
        self.cycles += 1

    def merge_cycles(self, iq_occupancy: int, window_occupancy: int,
                     cycles: int) -> None:
        """Accumulate occupancy sums for a block of ``cycles`` at once.

        The timing core batches its per-cycle occupancy bookkeeping (and
        charges skipped idle cycles at their frozen occupancy) and flushes
        it here; the resulting totals are identical to calling
        :meth:`merge_cycle` once per cycle.
        """
        self.iq_occupancy += iq_occupancy
        self.window_occupancy += window_occupancy
        self.cycles += cycles

    @property
    def avg_iq_occupancy(self) -> float:
        return self.iq_occupancy / self.cycles if self.cycles else 0.0

    @property
    def avg_window_occupancy(self) -> float:
        return self.window_occupancy / self.cycles if self.cycles else 0.0

    def per_instruction(self, original_committed: int) -> Dict[str, float]:
        """Events per committed *original* instruction."""
        if not original_committed:
            return {}
        n = original_committed
        return {
            "fetch_slots": self.fetch_slots / n,
            "rename_ops": self.rename_ops / n,
            "rename_map_reads": self.rename_map_reads / n,
            "phys_allocations": self.phys_allocations / n,
            "iq_insertions": self.iq_insertions / n,
            "select_slots": self.select_slots / n,
            "regfile_reads": self.regfile_reads / n,
            "regfile_writes": self.regfile_writes / n,
            "commit_slots": self.commit_slots / n,
        }

    def render(self, original_committed: int) -> str:
        """Text table of per-instruction events and occupancies."""
        rows = self.per_instruction(original_committed)
        lines = [f"{'event':>20s} {'per instruction':>16s}"]
        for name, value in rows.items():
            lines.append(f"{name:>20s} {value:16.3f}")
        lines.append(f"{'avg IQ occupancy':>20s} "
                     f"{self.avg_iq_occupancy:16.2f}")
        lines.append(f"{'avg ROB occupancy':>20s} "
                     f"{self.avg_window_occupancy:16.2f}")
        return "\n".join(lines)


def amplification_report(no_mg: "ActivityCounters", with_mg:
                         "ActivityCounters", committed: int) -> str:
    """Side-by-side activity comparison (same program, same machine)."""
    base = no_mg.per_instruction(committed)
    mg = with_mg.per_instruction(committed)
    lines = [f"{'event':>20s} {'no-MG':>9s} {'mini-graphs':>12s} "
             f"{'reduction':>10s}"]
    for name in base:
        reduction = 1 - (mg[name] / base[name]) if base[name] else 0.0
        lines.append(f"{name:>20s} {base[name]:9.3f} {mg[name]:12.3f} "
                     f"{reduction:10.1%}")
    lines.append(f"{'avg IQ occupancy':>20s} {no_mg.avg_iq_occupancy:9.2f} "
                 f"{with_mg.avg_iq_occupancy:12.2f} "
                 f"{1 - with_mg.avg_iq_occupancy / no_mg.avg_iq_occupancy if no_mg.avg_iq_occupancy else 0:10.1%}")
    return "\n".join(lines)
