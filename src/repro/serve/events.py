"""Per-job progress events, in the batch telemetry wire format.

A job's event stream is exactly the shape of a ``--telemetry`` file
(:mod:`repro.obs.telemetry`): one run-manifest line followed by Chrome
trace-event lines — instant events for lifecycle transitions and
scheduler node events, one closing complete span for the job itself.
``repro telemetry`` and :func:`~repro.obs.telemetry.validate_telemetry`
accept a captured stream unchanged, so server-side and batch traces are
inspected with the same tooling (see ``docs/serving.md``).

Appends may come from worker threads (the scheduler's ``on_event``
fires inside the job's execution thread); waiting consumers live on the
asyncio event loop. :class:`JobEventLog` bridges the two: appends are
plain list appends (atomic under the GIL) plus a
``call_soon_threadsafe`` wakeup, and readers re-check after every wake,
so no notification can be lost.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, AsyncIterator, Dict, List, Optional


class JobEventLog:
    """An append-only, streamable telemetry log for one job.

    ``max_events`` bounds the retained window: when an append would
    exceed it, the oldest events are dropped and the window's base
    offset advances, so a pathological job (a million-node DAG, a chatty
    fuzz run) cannot grow the server without bound. Indexing stays
    **absolute** — ``stream(from_index)`` keeps meaning the same event
    before and after truncation, which is what lets a disconnected
    client resume with ``?from=N``. A resume below the window's base
    yields one ``events-truncated`` marker (``args.next`` = the first
    index still retained) before the surviving events.
    """

    def __init__(self, manifest: Dict[str, Any],
                 loop: Optional[asyncio.AbstractEventLoop] = None,
                 max_events: Optional[int] = None):
        self.manifest = manifest
        self.events: List[Dict[str, Any]] = []
        self.closed = False
        self.max_events = max_events
        self.truncated = 0        # total events dropped from the front
        self._base = 0            # absolute index of events[0]
        self._epoch = time.perf_counter()
        self._loop = loop
        self._waiters: List[asyncio.Event] = []
        #: Optional callback fired with the drop count on each
        #: truncation (the server aggregates ``events_truncated``).
        self.on_truncate = None

    @property
    def end(self) -> int:
        """One past the absolute index of the newest event."""
        return self._base + len(self.events)

    def _now_us(self) -> int:
        return int((time.perf_counter() - self._epoch) * 1e6)

    def _notify(self) -> None:
        for waiter in self._waiters:
            waiter.set()
        self._waiters.clear()

    def _wake(self) -> None:
        if self._loop is None:
            self._notify()
            return
        try:
            self._loop.call_soon_threadsafe(self._notify)
        except RuntimeError:
            pass    # loop already closed; nobody left to wake

    # -- producers (any thread) -----------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        self.events.append(record)
        if self.max_events is not None \
                and len(self.events) > self.max_events:
            drop = len(self.events) - self.max_events
            del self.events[:drop]
            self._base += drop
            self.truncated += drop
            if self.on_truncate is not None:
                self.on_truncate(drop)
        self._wake()

    def instant(self, name: str, cat: str,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Append an instant (``ph: "i"``) event."""
        record: Dict[str, Any] = {"name": name, "cat": cat, "ph": "i",
                                  "ts": self._now_us(), "pid": 0, "tid": 0}
        if args:
            record["args"] = args
        self.append(record)

    def span(self, name: str, cat: str, start_us: int,
             args: Optional[Dict[str, Any]] = None) -> None:
        """Append a complete (``ph: "X"``) span ending now."""
        record: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": "X", "ts": start_us,
            "dur": max(0, self._now_us() - start_us), "pid": 0, "tid": 0}
        if args:
            record["args"] = args
        self.append(record)

    def scheduler_sink(self, cancel_check=None):
        """An ``on_event`` callback mapping DAG events to instants.

        ``cancel_check`` (a ``threading.Event``) turns the callback into
        the cooperative cancellation point: the scheduler calls it
        between tasks on the job's execution thread, so a set flag
        aborts the DAG there.
        """
        def on_event(event: Dict[str, Any]) -> None:
            if cancel_check is not None and cancel_check.is_set():
                raise JobCancelled()
            self.instant(event.get("kind", "?"), "exec",
                         args={k: v for k, v in event.items()
                               if k != "kind" and v is not None})
        return on_event

    def close(self) -> None:
        self.closed = True
        self._wake()

    # -- consumers (event loop) -----------------------------------------------

    async def _wait(self, seen: int) -> None:
        # Runs on the event loop; `_notify` does too (appends from
        # threads are marshaled through call_soon_threadsafe), so the
        # check-register-await sequence cannot lose a wakeup.
        while self.end <= seen and not self.closed:
            waiter = asyncio.Event()
            self._waiters.append(waiter)
            await waiter.wait()

    def _truncation_marker(self, index: int) -> Dict[str, Any]:
        return {"name": "events-truncated", "cat": "serve", "ph": "i",
                "ts": self._now_us(), "pid": 0, "tid": 0,
                "args": {"dropped": self._base - index,
                         "next": self._base}}

    async def stream(self, start: int = 0) -> AsyncIterator[str]:
        """Yield JSONL lines: the manifest, then events from ``start``.

        ``start`` is an absolute event index. Replays retained history
        first, then follows live appends until the log is closed (the
        job reached a terminal state). Indices that truncation has
        already dropped are acknowledged with one ``events-truncated``
        marker line rather than silently skipped.
        """
        yield json.dumps(self.manifest, sort_keys=True, default=str)
        index = start
        while True:
            while index < self.end:
                # Re-checked per event: truncation can advance the base
                # while this generator is suspended mid-yield.
                if index < self._base:
                    yield json.dumps(self._truncation_marker(index),
                                     sort_keys=True)
                    index = self._base
                    continue
                yield json.dumps(self.events[index - self._base],
                                 sort_keys=True, default=str)
                index += 1
            if self.closed and index >= self.end:
                return
            await self._wait(index)

    def lines(self) -> List[str]:
        """The full log as JSONL lines (manifest first), non-blocking."""
        out = [json.dumps(self.manifest, sort_keys=True, default=str)]
        out.extend(json.dumps(event, sort_keys=True, default=str)
                   for event in list(self.events))
        return out


class JobCancelled(RuntimeError):
    """Raised inside a job's execution thread by a cancellation flag."""
