"""Job kinds: spec validation and blocking execution payloads.

A job spec is plain JSON. Four kinds are served, mirroring the batch
CLIs they replace:

``experiment``
    ``{"points": [...], "jobs": N?, "check": bool?}`` — a list of grid
    points, each ``{"kind": "baseline"|"selector"|"slack-dynamic",
    "bench": ..., "config": ..., "input"?, "selector"?,
    "profile_config"?, "profile_input"?, "global_slack"?, "policy"?}``.
    Executed as a deduplicated trace→profile→plan→timing DAG with the
    warm path pruning already-materialized nodes (:mod:`.warm`).
``bench``
    ``{"benchmarks": [...]?, "selectors": [...]?, "config"?,
    "repeat"?}`` — a simulator-throughput matrix
    (:mod:`repro.harness.bench`).
``fuzz``
    ``{"budget": seconds?, "programs"?, "seed"?}`` — a differential
    fuzzing campaign (:mod:`repro.check.fuzz`).
``limit-study``
    ``{"bench"?, "input"?, "cap"?, "jobs"?}`` — the Figure 8 subset
    sweep (:mod:`repro.analysis.limit_study`).

Validation happens at admission (a bad spec is rejected with 400 before
it can occupy queue space); execution functions are blocking and run on
dispatcher worker threads, polling the job's cancellation flag through
their progress callbacks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..exec.grid import Point, baseline_point, dynamic_point, selector_point
from ..exec.tasks import selector_from_spec
from ..pipeline.config import config_by_name
from ..workloads.suite import benchmark

JOB_KINDS = ("experiment", "bench", "fuzz", "limit-study")

_POINT_KINDS = ("baseline", "selector", "slack-dynamic")


def validate_spec(kind: str, spec: Dict[str, Any]) -> None:
    """Raise ``ValueError`` on a malformed job spec."""
    if kind not in JOB_KINDS:
        raise ValueError(f"unknown job kind {kind!r} "
                         f"(choose from {', '.join(JOB_KINDS)})")
    if not isinstance(spec, dict):
        raise ValueError("job spec must be a JSON object")
    if kind == "experiment":
        parse_points(spec)   # validates every point
        if not isinstance(spec.get("jobs", 1), int) or spec.get("jobs", 1) < 1:
            raise ValueError("'jobs' must be a positive integer")
    elif kind == "bench":
        for name in spec.get("benchmarks") or ():
            benchmark(name)
    elif kind == "fuzz":
        budget = spec.get("budget", 10.0)
        if not isinstance(budget, (int, float)) or budget <= 0:
            raise ValueError("'budget' must be positive seconds")
    elif kind == "limit-study":
        benchmark(spec.get("bench", "adpcm"))
        config_by_name(spec.get("config", "reduced"))


def parse_points(spec: Dict[str, Any]) -> List[Point]:
    """Experiment spec → deduplicated grid :class:`Point` list."""
    raw = spec.get("points")
    if not isinstance(raw, list) or not raw:
        raise ValueError("experiment spec needs a non-empty 'points' list")
    points: List[Point] = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise ValueError(f"points[{i}] is not an object")
        kind = entry.get("kind", "selector")
        if kind not in _POINT_KINDS:
            raise ValueError(f"points[{i}]: unknown point kind {kind!r}")
        bench = entry.get("bench")
        if not isinstance(bench, str):
            raise ValueError(f"points[{i}]: missing 'bench'")
        benchmark(bench)                       # raises on unknown name
        config = entry.get("config", "reduced")
        config_by_name(config)                 # raises on unknown name
        input_name = entry.get("input", "train")
        if kind == "baseline":
            points.append(baseline_point(bench, config, input_name))
        elif kind == "slack-dynamic":
            policy = entry.get("policy") or {}
            points.append(dynamic_point(bench, config, input_name,
                                        **policy))
        else:
            selector = entry.get("selector") or {"kind": "struct-all"}
            selector_from_spec(selector)       # raises on unknown spec
            if entry.get("profile_config"):
                config_by_name(entry["profile_config"])
            points.append(selector_point(
                bench, selector, config, input_name,
                profile_config=entry.get("profile_config"),
                profile_input=entry.get("profile_input"),
                global_slack=bool(entry.get("global_slack", False))))
    return points


def collect_experiment_results(runner, points: List[Point]
                               ) -> Dict[str, Any]:
    """Assemble an experiment job's result from the (now warm) store.

    Called after the pruned DAG completes (or entirely warm): every
    call below hits the store's memory or disk layer, so this is the
    serial replay trick of :func:`repro.exec.grid.run_points` in
    miniature.
    """
    results = []
    for point in points:
        config = config_by_name(point.config)
        if point.kind == "baseline":
            stats = runner.baseline(point.bench, config, point.input_name)
            results.append({"kind": "baseline", "bench": point.bench,
                            "config": point.config,
                            "input": point.input_name,
                            "ipc": stats.ipc})
        elif point.kind == "slack-dynamic":
            run = runner.run_slack_dynamic(
                point.bench, config, input_name=point.input_name,
                **{k: v for k, v in point.policy})
            results.append({"kind": "slack-dynamic", "bench": point.bench,
                            "config": point.config,
                            "input": point.input_name,
                            "selector": run.selector, "ipc": run.ipc,
                            "coverage": run.coverage})
        else:
            selector_spec = {k: v for k, v in point.selector}
            run = runner.run_selector(
                point.bench, selector_from_spec(selector_spec), config,
                input_name=point.input_name,
                profile_config=config_by_name(point.profile_config)
                if point.profile_config else None,
                profile_input=point.profile_input,
                global_slack=point.global_slack)
            results.append({"kind": "selector", "bench": point.bench,
                            "config": point.config,
                            "input": point.input_name,
                            "selector": run.selector, "ipc": run.ipc,
                            "coverage": run.coverage,
                            "templates": run.plan.n_templates})
    return {"points": results}


def run_bench_job(runner, spec: Dict[str, Any],
                  log: Callable[[str], None]) -> Dict[str, Any]:
    """Execute a ``bench`` job (blocking; runs on a worker thread)."""
    from ..harness.bench import (QUICK_BENCHMARKS, QUICK_SELECTORS,
                                 run_bench)
    report = run_bench(
        list(spec.get("benchmarks") or QUICK_BENCHMARKS),
        list(spec.get("selectors") or QUICK_SELECTORS),
        config=config_by_name(spec.get("config", "reduced")),
        label=str(spec.get("label", "serve")),
        repeat=int(spec.get("repeat", 1)),
        runner=runner, log=log)
    return report.to_dict()


def run_fuzz_job(spec: Dict[str, Any], log: Callable[[str], None],
                 cancel=None) -> Dict[str, Any]:
    """Execute a ``fuzz`` job (blocking; runs on a worker thread).

    ``cancel`` (a ``threading.Event``) is polled per program×selector
    through ``plan_hook`` — far finer-grained than the campaign's own
    every-25-programs log cadence, so a cancelled fuzz job unwinds its
    worker thread promptly instead of riding out the time budget.
    """
    from ..check.fuzz import run_fuzz

    def plan_hook(program, selector, plan):
        if cancel is not None and cancel.is_set():
            from .events import JobCancelled
            raise JobCancelled()
        return plan

    report = run_fuzz(budget=float(spec.get("budget", 10.0)),
                      seed=int(spec.get("seed", 0)),
                      max_programs=spec.get("programs"),
                      shrink=bool(spec.get("shrink", True)),
                      plan_hook=plan_hook, log=log)
    return {"ok": report.ok, "summary": report.render()}


def run_limit_study_job(runner, spec: Dict[str, Any],
                        progress) -> Dict[str, Any]:
    """Execute a ``limit-study`` job (blocking; runs on a worker thread)."""
    from ..analysis.limit_study import run_limit_study
    result = run_limit_study(
        runner, bench=spec.get("bench", "adpcm"),
        input_name=spec.get("input", "tiny"),
        subset_cap=spec.get("cap"),
        jobs=int(spec.get("jobs", 1)),
        progress=progress)
    best = result.best
    return {"bench": result.bench, "input": result.input_name,
            "subsets": len(result.points),
            "best_mask": best.mask, "best_relative_ipc": best.relative_ipc,
            "summary": result.render()}
