"""Multi-tenant job queue: priority classes, quotas, durable journal.

The queue itself is synchronous and event-loop-agnostic — the server
drives it from asyncio, the tests drive it directly. Three priority
classes (``interactive`` < ``normal`` < ``batch`` by dispatch order)
break ties by submission order, so the queue is a strict priority FIFO.

Per-client quotas bound both dimensions of multi-tenant abuse:
``max_queued`` rejects submissions outright (the client gets an
immediate 429-style :class:`QuotaExceeded`, it does not silently wait),
while ``max_running`` never rejects — a client over its running quota
simply stays queued and other clients' jobs dispatch around it.

Durability: every submission and every terminal transition appends one
line to a JSONL journal. On restart the server replays the journal and
re-enqueues every job without a terminal record — including jobs that
were *running* when the process died, which is safe because job
execution is idempotent through the content-addressed artifact store
(a re-run of a half-finished job skips everything already published).
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

#: Priority classes, in dispatch order (lower dispatches first).
PRIORITIES = {"interactive": 0, "normal": 1, "batch": 2}

_TERMINAL = ("done", "failed", "cancelled")


class JobState:
    """Job lifecycle states (plain strings; JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class QuotaExceeded(RuntimeError):
    """A submission rejected by the client's ``max_queued`` quota."""


@dataclass
class Quota:
    """Per-client admission limits."""

    max_queued: int = 32
    max_running: int = 2


@dataclass
class Job:
    """One submitted job, from admission to terminal state.

    ``events`` is attached by the server (a telemetry-shaped event log,
    see :mod:`repro.serve.events`); the queue never touches it. The
    ``cancel_requested`` flag is the cooperative mid-flight cancellation
    channel: execution threads poll it between DAG events.
    """

    id: str
    client: str
    kind: str
    spec: Dict[str, Any]
    priority: int = PRIORITIES["normal"]
    state: str = JobState.QUEUED
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    warm_hit: bool = False
    nodes_scheduled: int = 0
    nodes_pruned: int = 0
    events: Any = None
    cancel_requested: Any = None   # threading.Event, set by the server

    def summary(self) -> Dict[str, Any]:
        """The status document served by ``GET /jobs/<id>``."""
        return {
            "id": self.id, "client": self.client, "kind": self.kind,
            "priority": self.priority, "state": self.state,
            "submitted": self.submitted, "started": self.started,
            "finished": self.finished, "error": self.error,
            "warm_hit": self.warm_hit,
            "nodes_scheduled": self.nodes_scheduled,
            "nodes_pruned": self.nodes_pruned,
        }


class JobQueue:
    """Priority FIFO with per-client quotas and an optional journal."""

    def __init__(self, quota: Optional[Quota] = None,
                 journal: Optional[Path] = None):
        self.quota = quota or Quota()
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []          # queued ids, submission order
        self._seq = itertools.count(1)
        self._journal_path = Path(journal) if journal else None
        self._journal_handle = None
        if self._journal_path is not None:
            self._journal_path.parent.mkdir(parents=True, exist_ok=True)

    # -- introspection ---------------------------------------------------------

    def next_id(self) -> str:
        return f"j{next(self._seq):06d}"

    @property
    def depth(self) -> int:
        """Jobs currently queued (admitted, not yet dispatched)."""
        return len(self._order)

    @property
    def active(self) -> int:
        """Jobs currently running."""
        return sum(1 for job in self.jobs.values()
                   if job.state == JobState.RUNNING)

    def counts(self, client: str, state: str) -> int:
        return sum(1 for job in self.jobs.values()
                   if job.client == client and job.state == state)

    # -- journal ---------------------------------------------------------------

    def _journal(self, record: Dict[str, Any]) -> None:
        if self._journal_path is None:
            return
        if self._journal_handle is None:
            self._journal_handle = open(self._journal_path, "a")
        json.dump(record, self._journal_handle, sort_keys=True)
        self._journal_handle.write("\n")
        self._journal_handle.flush()

    def close(self) -> None:
        if self._journal_handle is not None:
            self._journal_handle.close()
            self._journal_handle = None

    def recover(self) -> List[Job]:
        """Replay the journal: re-enqueue every non-terminal job.

        Returns the recovered jobs (already admitted, quota-exempt —
        they were admitted by the previous incarnation). The journal is
        compacted: terminal records older than the live set are dropped
        by rewriting it with just the recovered submissions.
        """
        if self._journal_path is None or not self._journal_path.exists():
            return []
        submitted: Dict[str, Dict[str, Any]] = {}
        terminal: Dict[str, str] = {}
        with open(self._journal_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue    # torn tail line from a crash
                if record.get("kind") == "submit":
                    job = record.get("job", {})
                    if isinstance(job.get("id"), str):
                        submitted[job["id"]] = job
                elif record.get("kind") == "state":
                    if record.get("state") in _TERMINAL:
                        terminal[record.get("id")] = record["state"]
        recovered: List[Job] = []
        top = 0
        for job_id, payload in submitted.items():
            try:
                top = max(top, int(job_id.lstrip("j")))
            except ValueError:
                pass
            if job_id in terminal:
                continue
            job = Job(id=job_id, client=payload.get("client", "?"),
                      kind=payload.get("kind", "?"),
                      spec=payload.get("spec", {}),
                      priority=int(payload.get("priority",
                                               PRIORITIES["normal"])),
                      submitted=payload.get("submitted", time.time()))
            self.jobs[job.id] = job
            self._order.append(job.id)
            recovered.append(job)
        self._seq = itertools.count(top + 1)
        # Compact: rewrite the journal as just the live submissions.
        self.close()
        tmp = self._journal_path.with_suffix(".compact")
        with open(tmp, "w") as handle:
            for job in recovered:
                json.dump({"kind": "submit", "job": {
                    "id": job.id, "client": job.client, "kind": job.kind,
                    "spec": job.spec, "priority": job.priority,
                    "submitted": job.submitted}}, handle, sort_keys=True)
                handle.write("\n")
        tmp.replace(self._journal_path)
        return recovered

    # -- admission / dispatch --------------------------------------------------

    def submit(self, client: str, kind: str, spec: Dict[str, Any],
               priority: str = "normal") -> Job:
        """Admit a job, or raise :class:`QuotaExceeded` / ``ValueError``."""
        if priority not in PRIORITIES:
            raise ValueError(f"unknown priority {priority!r} "
                             f"(choose from {', '.join(PRIORITIES)})")
        if self.counts(client, JobState.QUEUED) >= self.quota.max_queued:
            raise QuotaExceeded(
                f"client {client!r} already has "
                f"{self.quota.max_queued} jobs queued")
        job = Job(id=self.next_id(), client=client, kind=kind, spec=spec,
                  priority=PRIORITIES[priority])
        self.jobs[job.id] = job
        self._order.append(job.id)
        self._journal({"kind": "submit", "job": {
            "id": job.id, "client": job.client, "kind": job.kind,
            "spec": job.spec, "priority": job.priority,
            "submitted": job.submitted}})
        return job

    def next_ready(self) -> Optional[Job]:
        """Pop the best dispatchable queued job, honoring running quotas.

        Best = lowest (priority class, submission order) among jobs
        whose client is under ``max_running``. Jobs of a saturated
        client are skipped, not starved: they become eligible the
        moment one of that client's jobs finishes.
        """
        best_index = None
        running: Dict[str, int] = {}
        for job in self.jobs.values():
            if job.state == JobState.RUNNING:
                running[job.client] = running.get(job.client, 0) + 1
        for index, job_id in enumerate(self._order):
            job = self.jobs[job_id]
            if running.get(job.client, 0) >= self.quota.max_running:
                continue
            if best_index is None \
                    or job.priority < self.jobs[
                        self._order[best_index]].priority:
                best_index = index
        if best_index is None:
            return None
        job = self.jobs[self._order.pop(best_index)]
        job.state = JobState.RUNNING
        job.started = time.time()
        return job

    # -- transitions -----------------------------------------------------------

    def finish(self, job: Job, state: str,
               error: Optional[str] = None) -> None:
        """Move a job to a terminal state and journal it."""
        assert state in _TERMINAL, state
        job.state = state
        job.error = error
        job.finished = time.time()
        self._journal({"kind": "state", "id": job.id, "state": state,
                       "t": job.finished})

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a queued job now, or flag a running one.

        Queued jobs transition to ``cancelled`` immediately. Running
        jobs get ``cancel_requested`` set (if the server attached one)
        and transition when the execution thread notices — the caller
        sees state ``running`` until then. Terminal jobs are untouched.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return None
        if job.state == JobState.QUEUED:
            self._order.remove(job.id)
            self.finish(job, JobState.CANCELLED)
        elif job.state == JobState.RUNNING \
                and job.cancel_requested is not None:
            job.cancel_requested.set()
        return job

    def by_client(self, client: Optional[str] = None) -> List[Job]:
        jobs = list(self.jobs.values())
        if client is not None:
            jobs = [job for job in jobs if job.client == client]
        return sorted(jobs, key=lambda job: job.id)
