"""Warm-path reuse: answer repeat work from the store, schedule the rest.

The artifact store's content addresses make "has this exact result been
computed before?" a pure key lookup — no invalidation protocol, no
staleness window (:mod:`repro.exec.store`). This module exploits that
for serving: before a job's DAG reaches the scheduler, every node whose
output artifact already exists (from a previous job, a previous daemon
incarnation, or a batch CLI run against the same cache directory) is
*pruned*, and its dependents' edges are dropped with it. A repeated
experiment prunes to nothing and never touches the scheduler at all —
the acceptance contract for the serve warm path.

Probing uses the :class:`~repro.harness.runner.Runner` ``*_params``
builders — the same code that keys the compute paths — so a probe can
never disagree with the executor about what an artifact is called.
Probe hits are pulled through the store's memory layer, which *is* the
in-process memoization: the daemon accumulates hot traces, plans and
timing runs across requests for free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..exec.dag import Task
from ..exec.store import MISS
from ..pipeline.config import config_by_name


def task_artifact(runner, task: Task) -> Optional[Tuple[str, Dict]]:
    """The ``(kind, params)`` store address of a DAG node's artifact.

    Returns ``None`` for nodes that are not backed by a store artifact
    (``check`` validation nodes recompute by design) — those are never
    pruned.
    """
    spec = task.args[0] if task.args else {}
    stage = task.stage
    if stage == "trace":
        return "trace", runner.trace_params(spec["bench"], spec["input"])
    if stage == "candidates":
        return "candidates", runner.candidates_params(spec["bench"],
                                                      spec["input"])
    if stage == "profile":
        return "profile", runner.profile_params(
            spec["bench"], config_by_name(spec["config"]), spec["input"],
            spec.get("global_slack", False))
    if stage == "baseline":
        return "baseline", runner.baseline_params(
            spec["bench"], config_by_name(spec["config"]), spec["input"])
    if stage == "plan":
        return "plan", runner.plan_params(
            spec["bench"], spec["selector"], spec["input"],
            config_by_name(spec.get("profile_config") or "reduced"),
            spec.get("profile_input") or spec["input"],
            spec.get("global_slack", False))
    if stage == "timing":
        if spec.get("point_kind") == "slack-dynamic":
            policy = dict(spec.get("policy") or {})
            mode = policy.pop("mode", "full")
            outlining = policy.pop("outlining_penalty", True)
            return "run-dynamic", runner.dynamic_params(
                spec["bench"], config_by_name(spec["config"]),
                spec["input"], mode, outlining, policy)
        return "run", runner.run_params(
            spec["bench"], spec["selector"],
            config_by_name(spec["config"]), spec["input"],
            config_by_name(spec.get("profile_config") or "reduced"),
            spec.get("profile_input") or spec["input"],
            spec.get("global_slack", False), None)
    if stage == "subset":
        return "subset", runner.subset_params(
            spec["bench"], spec["input"], config_by_name(spec["config"]),
            spec["n_candidates"], spec["mask"], spec["baseline_ipc"])
    return None


def prune_cached(runner, tasks: Sequence[Task]
                 ) -> Tuple[List[Task], List[str]]:
    """Split a DAG into (nodes to schedule, node ids served warm).

    A node is pruned when its artifact probes present; surviving
    dependents drop the pruned edge and re-materialize the upstream
    value through the store inside their own task function (one memory-
    layer hit in the worker). ``build_tasks`` emits dependencies before
    dependents, so one forward pass suffices.
    """
    pruned: List[str] = []
    kept: List[Task] = []
    for task in tasks:
        address = task_artifact(runner, task)
        if address is not None:
            kind, params = address
            if runner.store.get(runner.store.key(kind, params),
                                kind) is not MISS:
                pruned.append(task.id)
                continue
        kept.append(task)
    if pruned:
        dead = set(pruned)
        kept = [
            Task(id=task.id, fn=task.fn, args=task.args,
                 deps=tuple(dep for dep in task.deps if dep not in dead),
                 stage=task.stage, retries=task.retries,
                 timeout=task.timeout)
            for task in kept
        ]
    return kept, pruned
