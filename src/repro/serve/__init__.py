"""Simulation-as-a-service: the ``repro serve`` daemon.

Everything else in the repository is a batch CLI that pays cold start —
kernel build check, program/plan recompute, store round-trips — on every
invocation. This package keeps one process alive and turns experiment
execution into a job API over a local socket:

* :mod:`~repro.serve.queue` — multi-tenant job queue: priority classes,
  per-client quotas (max queued + max running), cancellation, and a
  JSONL journal so queued jobs survive a daemon restart;
* :mod:`~repro.serve.jobs` — job-kind registry (experiment, bench,
  fuzz, limit-study): spec validation plus the blocking execution
  functions the dispatcher runs in worker threads;
* :mod:`~repro.serve.warm` — the warm path: probe the content-addressed
  artifact store with exactly the keys the compute paths would use and
  prune every DAG node whose artifact already exists, so a repeated
  experiment schedules zero work;
* :mod:`~repro.serve.server` — the asyncio daemon: HTTP job API,
  per-job telemetry-shaped event streams (NDJSON), shared process pool
  and shared-memory trace segments across jobs, Prometheus metrics;
* :mod:`~repro.serve.client` — a minimal dependency-free HTTP client;
* :mod:`~repro.serve.loadtest` — concurrent-client load harness and
  the ``repro loadtest`` CI gate.

See ``docs/serving.md`` for the API schema and the warm-path contract.
"""

from .queue import (Job, JobQueue, JobState, PRIORITIES, Quota,
                    QuotaExceeded)
from .server import ServeApp, ServerConfig

__all__ = ["Job", "JobQueue", "JobState", "PRIORITIES", "Quota",
           "QuotaExceeded", "ServeApp", "ServerConfig"]
