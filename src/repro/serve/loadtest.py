"""``repro loadtest``: hammer a running daemon with concurrent clients.

Spawns N simulated clients as asyncio coroutines against one server
address. Each client submits a small mixed stream of jobs — warm
experiment points (the same handful of grid points across all clients,
so the server's warm path and cross-job dedup carry nearly all of the
load), plus occasional status/stats probes — then follows each job to
its terminal state and checks its result document.

Measured per job: submit latency (POST round-trip), submit→first-event
latency (the streaming path), and submit→done. Verified globally: no
job lost (every submitted id reaches a terminal state with a
retrievable result), no job duplicated (server ids are unique), and the
server's accounting agrees with the client-side tally. The report gates
CI (``--gate-*`` flags map to :meth:`LoadtestReport.check`).

Client counts in the thousands are the point: connections are short-
lived (one per request), so the daemon needs nothing beyond a healthy
fd limit and the asyncio accept loop.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .client import ServeClient, ServeError

#: The default experiment points the clients cycle through. Tiny inputs
#: (micro benchmarks ship "tiny"/"train"), so a cold first pass is
#: seconds and every later hit is a store lookup.
DEFAULT_POINTS = [
    {"kind": "baseline", "bench": "crc32", "config": "reduced",
     "input": "train"},
    {"kind": "selector", "bench": "crc32", "config": "reduced",
     "input": "train", "selector": {"kind": "struct-all"}},
    {"kind": "selector", "bench": "dijkstra", "config": "reduced",
     "input": "train", "selector": {"kind": "struct-all"}},
]


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (upper); 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


@dataclass
class LoadtestReport:
    """Everything the gate and the human summary need."""

    clients: int
    jobs_per_client: int
    elapsed: float = 0.0
    submitted: int = 0
    done: int = 0
    failed: int = 0
    rejected: int = 0
    errors: List[str] = field(default_factory=list)
    duplicate_ids: int = 0
    lost: int = 0
    submit_s: List[float] = field(default_factory=list)
    first_event_s: List[float] = field(default_factory=list)
    complete_s: List[float] = field(default_factory=list)
    server_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def warm_hit_ratio(self) -> float:
        return float(self.server_stats.get("warm_hit_ratio", 0.0))

    @property
    def throughput(self) -> float:
        return self.done / self.elapsed if self.elapsed else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients, "jobs_per_client": self.jobs_per_client,
            "elapsed_s": round(self.elapsed, 3),
            "submitted": self.submitted, "done": self.done,
            "failed": self.failed, "rejected": self.rejected,
            "lost": self.lost, "duplicate_ids": self.duplicate_ids,
            "throughput_jobs_s": round(self.throughput, 2),
            "warm_hit_ratio": round(self.warm_hit_ratio, 4),
            "submit_p50_ms": round(percentile(self.submit_s, 0.50) * 1e3, 2),
            "submit_p95_ms": round(percentile(self.submit_s, 0.95) * 1e3, 2),
            "first_event_p50_ms":
                round(percentile(self.first_event_s, 0.50) * 1e3, 2),
            "first_event_p95_ms":
                round(percentile(self.first_event_s, 0.95) * 1e3, 2),
            "complete_p50_ms":
                round(percentile(self.complete_s, 0.50) * 1e3, 2),
            "complete_p95_ms":
                round(percentile(self.complete_s, 0.95) * 1e3, 2),
            "errors": self.errors[:10],
        }

    def render(self) -> str:
        doc = self.to_dict()
        lines = [f"=== loadtest: {self.clients} clients × "
                 f"{self.jobs_per_client} jobs in {self.elapsed:.1f}s ===",
                 f"submitted {self.submitted}, done {self.done}, "
                 f"failed {self.failed}, rejected {self.rejected}, "
                 f"lost {self.lost}, duplicate ids {self.duplicate_ids}",
                 f"throughput {doc['throughput_jobs_s']} jobs/s, "
                 f"warm-hit ratio {doc['warm_hit_ratio']:.1%}"
                 if self.server_stats else
                 f"throughput {doc['throughput_jobs_s']} jobs/s",
                 f"submit      p50 {doc['submit_p50_ms']:8.2f} ms   "
                 f"p95 {doc['submit_p95_ms']:8.2f} ms",
                 f"first-event p50 {doc['first_event_p50_ms']:8.2f} ms   "
                 f"p95 {doc['first_event_p95_ms']:8.2f} ms",
                 f"complete    p50 {doc['complete_p50_ms']:8.2f} ms   "
                 f"p95 {doc['complete_p95_ms']:8.2f} ms"]
        for error in self.errors[:10]:
            lines.append(f"  error: {error}")
        return "\n".join(lines)

    def check(self, max_failed: int = 0,
              min_warm_ratio: Optional[float] = None,
              max_first_event_p95: Optional[float] = None) -> List[str]:
        """Gate violations (empty list = pass)."""
        problems = []
        if self.lost:
            problems.append(f"{self.lost} job(s) lost")
        if self.duplicate_ids:
            problems.append(f"{self.duplicate_ids} duplicate job id(s)")
        if self.failed > max_failed:
            problems.append(f"{self.failed} failed job(s) "
                            f"(allowed {max_failed})")
        if self.errors:
            problems.append(f"{len(self.errors)} client error(s): "
                            f"{self.errors[0]}")
        if min_warm_ratio is not None \
                and self.warm_hit_ratio < min_warm_ratio:
            problems.append(f"warm-hit ratio {self.warm_hit_ratio:.3f} "
                            f"< {min_warm_ratio}")
        if max_first_event_p95 is not None:
            p95 = percentile(self.first_event_s, 0.95)
            if p95 > max_first_event_p95:
                problems.append(f"first-event p95 {p95 * 1e3:.1f}ms "
                                f"> {max_first_event_p95 * 1e3:.0f}ms")
        return problems


async def _run_one_job(client: ServeClient, spec_kind: str,
                       spec: Dict[str, Any], priority: str,
                       report: LoadtestReport,
                       timeout: float) -> Optional[str]:
    t0 = time.perf_counter()
    try:
        summary = await client.submit(spec_kind, spec, priority)
    except ServeError as error:
        if error.status == 429:
            report.rejected += 1
            await asyncio.sleep(0.05)
            return
        raise
    report.submit_s.append(time.perf_counter() - t0)
    report.submitted += 1
    job_id = summary["id"]

    async def _first_event() -> None:
        async for record in client.events(job_id):
            if record.get("kind") != "manifest":
                report.first_event_s.append(time.perf_counter() - t0)
                return

    try:
        await asyncio.wait_for(_first_event(), timeout)
    except (asyncio.TimeoutError, ConnectionError):
        pass      # latency sample lost, not the job: `wait` still verifies
    result = await client.wait(job_id, poll=0.05, timeout=timeout)
    report.complete_s.append(time.perf_counter() - t0)
    if result["state"] == "done" and result.get("result") is not None:
        report.done += 1
    else:
        report.failed += 1
    return job_id


async def _client_coro(index: int, address: str, jobs: int,
                       points: List[Dict[str, Any]], mix: bool,
                       stagger: float, report: LoadtestReport,
                       ids: List[str], timeout: float) -> None:
    client = ServeClient(address, client_id=f"load-{index:05d}",
                         timeout=timeout)
    await asyncio.sleep(stagger * index)
    for j in range(jobs):
        point = points[(index + j) % len(points)]
        if mix and (index + j) % 7 == 3:
            kind, spec = "fuzz", {"budget": 0.2, "programs": 2}
        else:
            kind, spec = "experiment", {"points": [point]}
        priority = ("interactive", "normal", "batch")[(index + j) % 3]
        for attempt in range(3):
            try:
                job_id = await _run_one_job(client, kind, spec, priority,
                                            report, timeout)
                if job_id is not None:
                    ids.append(job_id)
                break
            except (ConnectionError, OSError, asyncio.TimeoutError) as err:
                if attempt == 2:
                    report.errors.append(
                        f"client {index}: {type(err).__name__}: {err}")
                else:
                    await asyncio.sleep(0.1 * (attempt + 1))
            except ServeError as err:
                report.errors.append(f"client {index}: {err}")
                break


async def run_loadtest(address: str, clients: int = 100,
                       jobs_per_client: int = 2,
                       points: Optional[List[Dict[str, Any]]] = None,
                       mix: bool = False, stagger: float = 0.0,
                       timeout: float = 120.0,
                       warmup: bool = True) -> LoadtestReport:
    """Drive ``clients`` concurrent clients; verify and measure.

    With ``warmup`` (default) one pilot client first submits every
    experiment point serially, so the measured fleet exercises the warm
    path rather than stampeding the cold compute — mirroring a steady-
    state server. Pass ``warmup=False`` to measure the cold stampede.
    """
    points = points or DEFAULT_POINTS
    report = LoadtestReport(clients=clients, jobs_per_client=jobs_per_client)
    if warmup:
        pilot = ServeClient(address, client_id="load-pilot",
                            timeout=timeout)
        for point in points:
            summary = await pilot.submit("experiment", {"points": [point]})
            await pilot.wait(summary["id"], timeout=timeout)
    ids: List[str] = []
    t0 = time.perf_counter()
    await asyncio.gather(*[
        _client_coro(index, address, jobs_per_client, points, mix,
                     stagger, report, ids, timeout)
        for index in range(clients)])
    report.elapsed = time.perf_counter() - t0
    report.duplicate_ids = len(ids) - len(set(ids))
    report.lost = report.submitted - (report.done + report.failed)
    try:
        report.server_stats = await ServeClient(
            address, client_id="load-pilot", timeout=timeout).stats()
    except (ConnectionError, OSError, ServeError):
        pass
    return report
