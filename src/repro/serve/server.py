"""The ``repro serve`` daemon: async job API over a local socket.

One long-lived asyncio process fronts the whole experiment engine. The
HTTP surface (dependency-free, HTTP/1.1, one request per connection)::

    POST /jobs                     submit {client, kind, spec, priority}
    GET  /jobs?client=...          list jobs
    GET  /jobs/<id>                status summary
    GET  /jobs/<id>/events[?from=N]  NDJSON telemetry stream (live)
    GET  /jobs/<id>/result         result document (409 until terminal)
    POST /jobs/<id>/cancel         cancel queued / flag running
    GET  /stats                    server counters + queue gauges
    GET  /metrics[?format=prom]    metrics registry export
    GET  /healthz                  liveness

Behind it: the multi-tenant :class:`~repro.serve.queue.JobQueue`
(priorities, quotas, restart journal), a dispatcher that runs up to
``job_slots`` jobs concurrently on worker threads, and the warm path —
the compiled ``_ckern`` stays loaded, the runner's store memory layer
accumulates traces/plans/runs across requests, shared-memory trace
segments persist across jobs, and DAG nodes whose artifacts already
exist are pruned before scheduling (:mod:`repro.serve.warm`). Identical
repeat submissions therefore complete with **zero scheduled nodes**.

Cross-job execution shares one :class:`ProcessPoolExecutor` (``pool``
workers) among every parallel job, and an in-flight node registry keeps
two concurrent jobs from computing the same DAG node: the later job
waits for the overlap to land in the store, then re-prunes — compute-
once semantics without cross-process locks, exactly the deterministic
batch-plan / conflict-free-execute split the content-addressed keys
enable.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..exec.dag import Scheduler
from ..exec.grid import build_tasks, publish_point_traces
from ..exec.store import ArtifactStore
from ..harness.runner import Runner
from ..obs.telemetry import run_manifest
from . import jobs as job_fns
from .events import JobCancelled, JobEventLog
from .queue import Job, JobQueue, JobState, Quota, QuotaExceeded
from .warm import prune_cached

_MAX_BODY = 8 << 20
_REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 429: "Too Many Requests",
            500: "Internal Server Error"}


@dataclass
class ServerConfig:
    """Everything ``repro serve`` is parameterized by."""

    state_dir: Path = Path(".repro-serve")
    socket_path: Optional[Path] = None    # default: <state_dir>/serve.sock
    host: Optional[str] = None            # set host+port for TCP instead
    port: int = 0
    cache_dir: Optional[Path] = None      # default: <state_dir>/cache
    job_slots: int = 4                    # concurrent jobs server-wide
    pool_workers: int = 0                 # shared process pool (0 = per-job)
    max_queued: int = 32                  # per-client quotas
    max_running: int = 2
    budget: int = 512                     # runner defaults
    max_mg_size: int = 4
    max_insts: int = 2_000_000
    max_results: int = 256                # completed jobs kept (LRU)
    result_ttl: float = 3600.0            # seconds before eviction
    max_job_events: int = 10_000          # per-job event-log window
    dispatch: Optional[str] = None        # e.g. "workers:host:port"
    batch_threads: int = 0                # batched native dispatch for
                                          # jobs that ask for 1 process
    quiet: bool = False

    def __post_init__(self):
        self.state_dir = Path(self.state_dir)
        if self.socket_path is None and self.host is None:
            self.socket_path = self.state_dir / "serve.sock"
        if self.cache_dir is None:
            self.cache_dir = self.state_dir / "cache"

    @property
    def address(self) -> str:
        if self.host is not None:
            return f"tcp:{self.host}:{self.port}"
        return f"unix:{self.socket_path}"


@dataclass
class ServeStats:
    """Monotonic server counters (see ``collect_server``)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    warm_hits: int = 0
    nodes_scheduled: int = 0
    nodes_pruned: int = 0
    store_corruptions: int = 0
    results_evicted: int = 0
    events_truncated: int = 0
    first_event_us: List[int] = field(default_factory=list)

    @property
    def finished(self) -> int:
        return self.completed + self.failed + self.cancelled

    @property
    def warm_hit_ratio(self) -> float:
        return self.warm_hits / self.completed if self.completed else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"submitted": self.submitted, "completed": self.completed,
                "failed": self.failed, "cancelled": self.cancelled,
                "rejected": self.rejected, "warm_hits": self.warm_hits,
                "warm_hit_ratio": self.warm_hit_ratio,
                "nodes_scheduled": self.nodes_scheduled,
                "nodes_pruned": self.nodes_pruned,
                "store_corruptions": self.store_corruptions,
                "results_evicted": self.results_evicted,
                "events_truncated": self.events_truncated}


class NodeRegistry:
    """In-flight DAG-node claims: cross-job compute-once coordination.

    Single-threaded (event loop only). A job claims its whole node set
    atomically or waits; released claims wake every waiter, which then
    re-prunes against the store — the overlapping nodes it was waiting
    on are artifacts now.
    """

    def __init__(self):
        self._inflight: set = set()
        self._waiters: List[asyncio.Event] = []

    def try_claim(self, node_ids) -> Optional[List[str]]:
        ids = list(node_ids)
        if any(node in self._inflight for node in ids):
            return None
        self._inflight.update(ids)
        return ids

    def release(self, node_ids) -> None:
        self._inflight.difference_update(node_ids)
        for waiter in self._waiters:
            waiter.set()
        self._waiters.clear()

    async def wait(self) -> None:
        waiter = asyncio.Event()
        self._waiters.append(waiter)
        await waiter.wait()


class ServeApp:
    """The daemon: queue + dispatcher + HTTP front end."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.config.state_dir.mkdir(parents=True, exist_ok=True)
        self.stats = ServeStats()
        self.queue = JobQueue(
            quota=Quota(self.config.max_queued, self.config.max_running),
            journal=self.config.state_dir / "jobs.jsonl")
        self.store = ArtifactStore(self.config.cache_dir)
        self.store.on_corrupt = self._on_corrupt
        self.runner = Runner(budget=self.config.budget,
                             max_mg_size=self.config.max_mg_size,
                             max_insts=self.config.max_insts,
                             store=self.store)
        self._runners: Dict[Tuple, Runner] = {}
        self._nodes = NodeRegistry()
        self._shm_registry = None
        self._coordinator = None     # shared dist.remote.SocketCoordinator
        self._pool: Optional[ProcessPoolExecutor] = None
        self._running: set = set()
        self._kick = asyncio.Event()
        self._stopping = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._manifest_base = run_manifest(label="serve")
        self.started = time.time()

    # -- logging / hooks -------------------------------------------------------

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(f"[serve] {message}", file=sys.stderr)

    def _on_corrupt(self, key: str, error: Exception) -> None:
        self.stats.store_corruptions += 1
        self._log(f"store: dropped corrupt artifact {key[:16]}… "
                  f"({type(error).__name__}), recovered as miss")

    # -- runners / pool --------------------------------------------------------

    def _runner_for(self, spec: Dict[str, Any]) -> Runner:
        """The server runner, or a spec-override sibling sharing its store."""
        budget = int(spec.get("budget", self.config.budget))
        max_insts = int(spec.get("max_insts", self.config.max_insts))
        if (budget, max_insts) == (self.config.budget,
                                   self.config.max_insts):
            return self.runner
        key = (budget, max_insts)
        if key not in self._runners:
            self._runners[key] = Runner(
                budget=budget, max_mg_size=self.config.max_mg_size,
                max_insts=max_insts, store=self.store)
        return self._runners[key]

    def _dispatch_backend(self, jobs: int):
        """One coordinator shared by every job; one backend per run.

        Backend handles are nonce-namespaced, so concurrent jobs lease
        through the same worker fleet without id collisions. The
        coordinator outlives individual jobs and is stopped with the
        app.
        """
        if self._coordinator is None:
            from ..dist.remote import SocketCoordinator
            spec = self.config.dispatch
            address = spec[len("workers:"):] \
                if spec.startswith("workers:") else spec
            self._coordinator = SocketCoordinator(address)
            self._coordinator.start()
            self._log(f"dispatch coordinator listening on {address}")
        from ..dist.remote import SocketDispatchBackend
        return SocketDispatchBackend(self._coordinator, jobs=jobs)

    def _scheduler(self, jobs: int, on_event) -> Scheduler:
        if self.config.dispatch:
            return Scheduler(jobs=jobs, on_event=on_event,
                             dispatch=self._dispatch_backend(jobs))
        if jobs <= 1 and self.config.batch_threads > 0:
            # Batched native dispatch: the job stays in-process (the
            # warm path's store probes and memory layer keep working)
            # while each wave of timing points runs as one C call over
            # ``batch_threads`` threads.
            return Scheduler(jobs=1, on_event=on_event,
                             threads=self.config.batch_threads)
        pool = None
        if jobs > 1 and self.config.pool_workers > 0:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.pool_workers)
            pool = self._pool
            jobs = min(jobs, self.config.pool_workers)
        return Scheduler(jobs=jobs, on_event=on_event, pool=pool)

    def _drop_pool_if_degraded(self, degraded: bool) -> None:
        if degraded and self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._log("shared worker pool degraded; recreating on demand")

    def _shm_for(self, runner: Runner, points, jobs: int) -> Dict:
        """Publish (and memoize across jobs) shared-memory trace segments."""
        if jobs <= 1 or not runner.store.persistent:
            return {}
        if self.config.dispatch:
            # Remote workers cannot attach this process's segments;
            # they rehydrate traces through the shared store instead.
            return {}
        if self._shm_registry is None:
            from ..exec.shm import ShmRegistry
            self._shm_registry = ShmRegistry()
        return publish_point_traces(runner, points, self._shm_registry)

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Recover the journal, start the dispatcher and the socket."""
        self._loop = asyncio.get_running_loop()
        recovered = self.queue.recover()
        for job in recovered:
            self._attach_log(job)
            job.events.instant("queued", "job",
                               {"id": job.id, "recovered": True})
        if recovered:
            self._log(f"recovered {len(recovered)} queued job(s) "
                      f"from the journal")
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self.config.host is not None:
            self._server = await asyncio.start_server(
                self._handle_conn, self.config.host, self.config.port,
                backlog=512)
            self.config.port = self._server.sockets[0].getsockname()[1]
        else:
            path = Path(self.config.socket_path)
            if path.exists():
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=str(path), backlog=512)
        (self.config.state_dir / "serve.json").write_text(json.dumps(
            {"address": self.config.address, "pid": os.getpid(),
             "started": self.started}))
        self._kick.set()
        self._log(f"listening on {self.config.address} "
                  f"(slots={self.config.job_slots}, "
                  f"pool={self.config.pool_workers}, "
                  f"cache={self.config.cache_dir})")

    async def stop(self) -> None:
        """Graceful shutdown: flag cancels, drain, tear sockets down."""
        self._stopping = True
        self._kick.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Flag every running job before cancelling its task: the flag
        # unwinds the worker *thread* (which task.cancel cannot reach),
        # so the interpreter's thread-join at loop teardown is short.
        for job in self.queue.jobs.values():
            if job.state == JobState.RUNNING \
                    and job.cancel_requested is not None:
                job.cancel_requested.set()
        for task in list(self._running):
            task.cancel()
        if self._running:
            await asyncio.gather(*self._running, return_exceptions=True)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            await asyncio.gather(self._dispatcher, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._coordinator is not None:
            self._coordinator.stop()
        if self._shm_registry is not None:
            self._shm_registry.release_all()
        self.queue.close()
        self._log("stopped")

    # -- submission ------------------------------------------------------------

    def _attach_log(self, job: Job) -> None:
        job.events = JobEventLog(
            dict(self._manifest_base, label=f"job/{job.id}"),
            loop=self._loop, max_events=self.config.max_job_events)
        job.events.on_truncate = self._on_truncate
        job.cancel_requested = threading.Event()

    def _on_truncate(self, dropped: int) -> None:
        self.stats.events_truncated += dropped

    def _evict_results(self) -> None:
        """Bound the job table: TTL-expire and LRU-cap terminal jobs.

        Queued and running jobs are never evicted. The journal already
        carries each evicted job's terminal record, so a restart does
        not resurrect it; clients asking about an evicted id get a 404,
        same as an id that never existed.
        """
        terminal = [job for job in self.queue.jobs.values()
                    if job.state in (JobState.DONE, JobState.FAILED,
                                     JobState.CANCELLED)
                    and job.finished is not None]
        terminal.sort(key=lambda job: job.finished)
        now = time.time()
        evict = [job for job in terminal
                 if now - job.finished > self.config.result_ttl]
        keep = len(terminal) - len(evict)
        if keep > self.config.max_results:
            fresh = [job for job in terminal if job not in evict]
            evict.extend(fresh[:keep - self.config.max_results])
        for job in evict:
            del self.queue.jobs[job.id]
            self.stats.results_evicted += 1
        if evict:
            self._log(f"evicted {len(evict)} finished job record(s) "
                      f"(max_results={self.config.max_results}, "
                      f"ttl={self.config.result_ttl:.0f}s)")

    def submit(self, client: str, kind: str, spec: Dict[str, Any],
               priority: str = "normal") -> Job:
        """Validate + admit a job (raises ValueError / QuotaExceeded)."""
        job_fns.validate_spec(kind, spec)
        job = self.queue.submit(client, kind, spec, priority)
        self._attach_log(job)
        self.stats.submitted += 1
        job.events.instant("queued", "job",
                           {"id": job.id, "client": client, "kind": kind,
                            "priority": job.priority})
        self._kick.set()
        return job

    # -- dispatch --------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while not self._stopping:
            await self._kick.wait()
            self._kick.clear()
            if self._stopping:
                return
            while len(self._running) < self.config.job_slots:
                job = self.queue.next_ready()
                if job is None:
                    break
                task = asyncio.create_task(self._run_job(job))
                self._running.add(task)
                task.add_done_callback(self._job_finished)

    def _job_finished(self, task) -> None:
        self._running.discard(task)
        self._evict_results()
        self._kick.set()

    async def _run_job(self, job: Job) -> None:
        log: JobEventLog = job.events
        log.instant("started", "job", {"id": job.id})
        start_us = log._now_us()
        try:
            if job.cancel_requested.is_set():
                raise JobCancelled()
            job.result = await self._execute(job)
        except (JobCancelled, asyncio.CancelledError):
            self.queue.finish(job, JobState.CANCELLED)
            self.stats.cancelled += 1
        except Exception as error:  # noqa: BLE001 - job boundary
            self.queue.finish(job, JobState.FAILED,
                              error=f"{type(error).__name__}: {error}")
            self.stats.failed += 1
            self._log(f"job {job.id} failed: {job.error}")
        else:
            self.queue.finish(job, JobState.DONE)
            self.stats.completed += 1
            if job.warm_hit:
                self.stats.warm_hits += 1
        log.instant(job.state, "job",
                    {"id": job.id, "warm_hit": job.warm_hit,
                     "nodes_scheduled": job.nodes_scheduled,
                     "nodes_pruned": job.nodes_pruned,
                     "error": job.error or ""})
        log.span("job", "job", start_us,
                 args={"id": job.id, "kind": job.kind, "state": job.state})
        log.close()

    def _thread_log(self, job: Job):
        """A line-log callback for harness code: events + cancel point."""
        def log_line(line: str) -> None:
            if job.cancel_requested.is_set():
                raise JobCancelled()
            job.events.instant("log", "job", {"line": str(line)})
        return log_line

    async def _execute(self, job: Job) -> Dict[str, Any]:
        runner = self._runner_for(job.spec)
        if job.kind == "experiment":
            return await self._execute_experiment(job, runner)
        if job.kind == "bench":
            return await asyncio.to_thread(
                job_fns.run_bench_job, runner, job.spec,
                self._thread_log(job))
        if job.kind == "fuzz":
            return await asyncio.to_thread(
                job_fns.run_fuzz_job, job.spec, self._thread_log(job),
                job.cancel_requested)
        if job.kind == "limit-study":
            sink = job.events.scheduler_sink(job.cancel_requested)
            return await asyncio.to_thread(
                job_fns.run_limit_study_job, runner, job.spec, sink)
        raise ValueError(f"unknown job kind {job.kind!r}")

    async def _execute_experiment(self, job: Job,
                                  runner: Runner) -> Dict[str, Any]:
        points = job_fns.parse_points(job.spec)
        check = bool(job.spec.get("check", False))
        jobs = int(job.spec.get("jobs", 1))
        if jobs > 1 and not runner.store.persistent:
            jobs = 1
        while True:
            if job.cancel_requested.is_set():
                raise JobCancelled()
            shm = self._shm_for(runner, points, jobs)
            tasks = build_tasks(points, runner, check=check,
                                shm_traces=shm)
            kept, pruned = prune_cached(runner, tasks)
            job.nodes_pruned = len(pruned)
            self.stats.nodes_pruned += len(pruned)
            if not kept:
                job.events.instant("warm-hit", "job",
                                   {"id": job.id, "pruned": len(pruned)})
                break
            claimed = self._nodes.try_claim(task.id for task in kept)
            if claimed is None:
                # Another job is computing overlapping nodes; when it
                # releases, its artifacts are in the store — re-prune.
                job.events.instant("waiting-inflight", "job",
                                   {"id": job.id})
                await self._nodes.wait()
                continue
            sink = job.events.scheduler_sink(job.cancel_requested)
            scheduler = self._scheduler(jobs, sink)
            try:
                report = await asyncio.to_thread(scheduler.run, kept, True)
            finally:
                self._nodes.release(claimed)
            self._drop_pool_if_degraded(report.degraded)
            job.nodes_scheduled = len(report.results)
            self.stats.nodes_scheduled += len(report.results)
            break
        job.warm_hit = job.nodes_scheduled == 0
        return await asyncio.to_thread(
            job_fns.collect_experiment_results, runner, points)

    # -- metrics ---------------------------------------------------------------

    def metrics_registry(self):
        from ..obs.metrics import (MetricsRegistry, collect_dist,
                                   collect_server, collect_store)
        registry = MetricsRegistry()
        collect_server(registry, self)
        collect_store(registry, self.store)
        if self._coordinator is not None:
            collect_dist(registry, self._coordinator.stats)
            registry.gauge("dist.workers",
                           "Workers currently connected").set(
                self._coordinator.worker_count())
        return registry

    def stats_doc(self) -> Dict[str, Any]:
        doc = self.stats.to_dict()
        doc.update({"queue_depth": self.queue.depth,
                    "active_jobs": self.queue.active,
                    "job_slots": self.config.job_slots,
                    "uptime_s": time.time() - self.started,
                    "address": self.config.address,
                    "store": {"hits": self.store.stats.hits,
                              "misses": self.store.stats.misses,
                              "hit_rate": self.store.stats.hit_rate}})
        if self._coordinator is not None:
            dist = self._coordinator.stats.as_dict()
            dist["workers"] = self._coordinator.worker_count()
            doc["dispatch"] = dist
        return doc

    # -- HTTP ------------------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            await self._route(writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # noqa: BLE001 - connection boundary
            try:
                await self._send_json(writer, 500, {
                    "error": f"{type(error).__name__}: {error}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            raise ValueError("request body too large")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return method, split.path, query, body

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    content_type: str, payload: bytes) -> None:
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, '?')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _send_json(self, writer, status: int, doc: Any) -> None:
        payload = (json.dumps(doc, sort_keys=True, default=str) + "\n")
        await self._send(writer, status, "application/json",
                         payload.encode())

    async def _route(self, writer, method: str, path: str,
                     query: Dict[str, str], body: bytes) -> None:
        segments = [s for s in path.split("/") if s]
        if segments == ["healthz"]:
            return await self._send_json(writer, 200, {
                "ok": True, "uptime_s": time.time() - self.started})
        if segments == ["stats"]:
            return await self._send_json(writer, 200, self.stats_doc())
        if segments == ["metrics"]:
            registry = self.metrics_registry()
            if query.get("format") == "prom":
                return await self._send(writer, 200, "text/plain",
                                        registry.to_prometheus().encode())
            return await self._send_json(writer, 200, registry.to_json())
        if segments[:1] == ["jobs"]:
            return await self._route_jobs(writer, method, segments[1:],
                                          query, body)
        return await self._send_json(writer, 404,
                                     {"error": f"no route for {path}"})

    async def _route_jobs(self, writer, method: str, rest: List[str],
                          query: Dict[str, str], body: bytes) -> None:
        if not rest:
            if method == "POST":
                return await self._handle_submit(writer, body)
            jobs = self.queue.by_client(query.get("client"))
            return await self._send_json(writer, 200, {
                "jobs": [job.summary() for job in jobs]})
        job = self.queue.jobs.get(rest[0])
        if job is None:
            return await self._send_json(writer, 404, {
                "error": f"no such job {rest[0]!r}"})
        action = rest[1] if len(rest) > 1 else None
        if action is None:
            return await self._send_json(writer, 200, job.summary())
        if action == "cancel" and method == "POST":
            self.queue.cancel(job.id)
            self._kick.set()
            return await self._send_json(writer, 200, job.summary())
        if action == "result":
            if job.state not in (JobState.DONE, JobState.FAILED,
                                 JobState.CANCELLED):
                return await self._send_json(writer, 409, {
                    "error": f"job {job.id} is {job.state}",
                    "state": job.state})
            return await self._send_json(writer, 200, {
                "id": job.id, "state": job.state, "error": job.error,
                "warm_hit": job.warm_hit,
                "nodes_scheduled": job.nodes_scheduled,
                "result": job.result})
        if action == "events":
            start = int(query.get("from", 0) or 0)
            head = ("HTTP/1.1 200 OK\r\n"
                    "Content-Type: application/x-ndjson\r\n"
                    "Connection: close\r\n\r\n")
            writer.write(head.encode("latin-1"))
            async for line in job.events.stream(start):
                writer.write(line.encode() + b"\n")
                await writer.drain()
            return
        return await self._send_json(writer, 405, {
            "error": f"unsupported {method} on jobs/{'/'.join(rest)}"})

    async def _handle_submit(self, writer, body: bytes) -> None:
        try:
            doc = json.loads(body.decode() or "{}")
        except ValueError:
            return await self._send_json(writer, 400,
                                         {"error": "body is not JSON"})
        if not isinstance(doc, dict):
            return await self._send_json(writer, 400,
                                         {"error": "body must be an object"})
        client = str(doc.get("client", "anonymous"))
        kind = str(doc.get("kind", ""))
        spec = doc.get("spec") or {}
        priority = str(doc.get("priority", "normal"))
        try:
            job = self.submit(client, kind, spec, priority)
        except QuotaExceeded as error:
            self.stats.rejected += 1
            return await self._send_json(writer, 429,
                                         {"error": str(error)})
        except ValueError as error:
            return await self._send_json(writer, 400,
                                         {"error": str(error)})
        return await self._send_json(writer, 201, job.summary())


async def serve_forever(config: ServerConfig) -> int:
    """Run the daemon until SIGINT/SIGTERM (the CLI entry point)."""
    import signal
    _raise_fd_limit()
    app = ServeApp(config)
    await app.start()
    print(f"serving on {config.address}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:
            pass
    await stop.wait()
    await app.stop()
    return 0


def _raise_fd_limit() -> None:
    """Lift the soft fd limit to the hard one (thousands of sockets)."""
    try:
        import resource
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < hard:
            resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
    except (ImportError, ValueError, OSError):
        pass
