"""A dependency-free client for the ``repro serve`` job API.

One connection per request (the server speaks ``Connection: close``
HTTP/1.1), so a client object is just an address plus helpers — safe to
share across coroutines, nothing to pool or reconnect. Addresses are
``unix:/path/to/serve.sock`` or ``host:port``; :func:`resolve_address`
also accepts a server state directory (reads its ``serve.json``).

:class:`ServeClient` is the async API (used by the loadtest harness);
:class:`SyncClient` wraps it in ``asyncio.run`` calls for the CLI.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple


class ServeError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


def parse_address(address: str) -> Tuple[str, Any]:
    """``unix:/path`` → ("unix", path); ``host:port`` → ("tcp", (h, p))."""
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    if address.startswith("tcp:"):
        address = address[len("tcp:"):]
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad server address {address!r} "
                         f"(want unix:/path or host:port)")
    return "tcp", (host, int(port))


def resolve_address(target: str) -> str:
    """Accept an address, a state dir, or a ``serve.json`` path."""
    path = Path(target)
    if path.is_dir():
        path = path / "serve.json"
    if path.is_file() and path.suffix == ".json":
        return json.loads(path.read_text())["address"]
    return target


class ServeClient:
    """Async client; one short-lived connection per call."""

    def __init__(self, address: str, client_id: str = "cli",
                 timeout: float = 60.0):
        self.scheme, self.target = parse_address(address)
        self.client_id = client_id
        self.timeout = timeout

    async def _connect(self):
        if self.scheme == "unix":
            return await asyncio.open_unix_connection(self.target)
        host, port = self.target
        return await asyncio.open_connection(host, port)

    async def _request(self, method: str, path: str,
                       body: Optional[Dict[str, Any]] = None
                       ) -> Tuple[int, Any]:
        reader, writer = await self._connect()
        try:
            payload = json.dumps(body).encode() if body is not None else b""
            head = (f"{method} {path} HTTP/1.1\r\n"
                    f"Host: repro-serve\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n")
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            status, _ = await asyncio.wait_for(
                _read_status_headers(reader), self.timeout)
            raw = await asyncio.wait_for(reader.read(), self.timeout)
            doc = json.loads(raw.decode()) if raw.strip() else None
            if status >= 400:
                message = (doc or {}).get("error", raw.decode()[:200]) \
                    if isinstance(doc, dict) else raw.decode()[:200]
                raise ServeError(status, message)
            return status, doc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- API -------------------------------------------------------------------

    async def health(self) -> Dict[str, Any]:
        return (await self._request("GET", "/healthz"))[1]

    async def stats(self) -> Dict[str, Any]:
        return (await self._request("GET", "/stats"))[1]

    async def metrics(self, fmt: str = "json") -> Any:
        reader, writer = await self._connect()
        try:
            head = (f"GET /metrics?format={fmt} HTTP/1.1\r\n"
                    f"Host: repro-serve\r\nConnection: close\r\n\r\n")
            writer.write(head.encode("latin-1"))
            await writer.drain()
            status, _ = await asyncio.wait_for(
                _read_status_headers(reader), self.timeout)
            raw = await asyncio.wait_for(reader.read(), self.timeout)
            if status >= 400:
                raise ServeError(status, raw.decode()[:200])
            return json.loads(raw) if fmt == "json" else raw.decode()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def submit(self, kind: str, spec: Dict[str, Any],
                     priority: str = "normal") -> Dict[str, Any]:
        """Submit a job; returns its status summary (with ``id``)."""
        _, doc = await self._request("POST", "/jobs", {
            "client": self.client_id, "kind": kind, "spec": spec,
            "priority": priority})
        return doc

    async def status(self, job_id: str) -> Dict[str, Any]:
        return (await self._request("GET", f"/jobs/{job_id}"))[1]

    async def jobs(self, client: Optional[str] = None
                   ) -> List[Dict[str, Any]]:
        path = "/jobs" + (f"?client={client}" if client else "")
        return (await self._request("GET", path))[1]["jobs"]

    async def cancel(self, job_id: str) -> Dict[str, Any]:
        return (await self._request("POST", f"/jobs/{job_id}/cancel"))[1]

    async def result(self, job_id: str) -> Dict[str, Any]:
        """The result document; raises :class:`ServeError` 409 if not done."""
        return (await self._request("GET", f"/jobs/{job_id}/result"))[1]

    async def events(self, job_id: str, start: int = 0,
                     retries: int = 5, backoff: float = 0.2
                     ) -> AsyncIterator[Dict[str, Any]]:
        """Stream a job's telemetry records until it reaches a terminal
        state (yields the manifest first, parsed from NDJSON).

        Survives dropped connections: the client keeps an absolute event
        cursor and reconnects with ``?from=cursor``, so a mid-stream
        disconnect resumes exactly where it left off with no duplicated
        and no skipped records. The manifest line that opens every
        server response is yielded only once. An ``events-truncated``
        marker (the server's log window moved past the cursor) is
        yielded through and resets the cursor to ``args.next``. The
        stream ends cleanly only after the job's terminal instant
        (``done``/``failed``/``cancelled``); an EOF before that is a
        drop and triggers a reconnect, up to ``retries`` consecutive
        failures with linear ``backoff``.
        """
        cursor = start
        manifest_sent = False
        terminal = False
        failures = 0
        while True:
            try:
                reader, writer = await self._connect()
            except (ConnectionError, OSError):
                failures += 1
                if failures > retries:
                    raise
                await asyncio.sleep(backoff * failures)
                continue
            try:
                head = (f"GET /jobs/{job_id}/events?from={cursor} "
                        f"HTTP/1.1\r\n"
                        f"Host: repro-serve\r\nConnection: close\r\n\r\n")
                writer.write(head.encode("latin-1"))
                await writer.drain()
                status, _ = await _read_status_headers(reader)
                if status >= 400:
                    raw = await reader.read()
                    raise ServeError(status, raw.decode()[:200])
                first = True
                async for line in reader:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    if first:
                        first = False   # per-connection manifest line
                        if not manifest_sent:
                            manifest_sent = True
                            yield record
                        continue
                    failures = 0        # progress resets the budget
                    if record.get("name") == "events-truncated" \
                            and record.get("cat") == "serve":
                        args = record.get("args") or {}
                        cursor = int(args.get("next", cursor))
                        yield record
                        continue
                    cursor += 1
                    if record.get("cat") == "job" and record.get(
                            "name") in ("done", "failed", "cancelled"):
                        terminal = True
                    yield record
            except (ConnectionError, OSError,
                    asyncio.IncompleteReadError, TimeoutError):
                pass    # dropped mid-stream; reconnect below
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            if terminal:
                return
            failures += 1
            if failures > retries:
                raise ConnectionError(
                    f"job {job_id} event stream dropped at event "
                    f"{cursor} and reconnect failed {retries} times")
            await asyncio.sleep(backoff * failures)

    async def wait(self, job_id: str, poll: float = 0.05,
                   timeout: float = 600.0) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the result document."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            summary = await self.status(job_id)
            if summary["state"] in ("done", "failed", "cancelled"):
                return await self.result(job_id)
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(f"job {job_id} still {summary['state']} "
                                   f"after {timeout}s")
            await asyncio.sleep(poll)


async def _read_status_headers(reader) -> Tuple[int, Dict[str, str]]:
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError(f"malformed status line {line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


class SyncClient:
    """Blocking facade over :class:`ServeClient` for CLI use."""

    def __init__(self, address: str, client_id: str = "cli",
                 timeout: float = 60.0):
        self.address = address
        self.client_id = client_id
        self.timeout = timeout

    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def _client(self) -> ServeClient:
        return ServeClient(self.address, self.client_id, self.timeout)

    def health(self):
        return self._run(self._client().health())

    def stats(self):
        return self._run(self._client().stats())

    def metrics(self, fmt: str = "json"):
        return self._run(self._client().metrics(fmt))

    def submit(self, kind, spec, priority="normal"):
        return self._run(self._client().submit(kind, spec, priority))

    def status(self, job_id):
        return self._run(self._client().status(job_id))

    def jobs(self, client=None):
        return self._run(self._client().jobs(client))

    def cancel(self, job_id):
        return self._run(self._client().cancel(job_id))

    def result(self, job_id):
        return self._run(self._client().result(job_id))

    def wait(self, job_id, poll=0.05, timeout=600.0):
        return self._run(self._client().wait(job_id, poll, timeout))

    def follow(self, job_id, sink) -> None:
        """Stream a job's events, calling ``sink(record)`` per record."""
        async def _follow():
            async for record in self._client().events(job_id):
                sink(record)
        self._run(_follow())
