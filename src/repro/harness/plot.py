"""Terminal plotting: S-curves and scatter plots as the paper draws them.

The paper's figures are S-curves (per-experiment sorted program values)
and one coverage/performance scatter (Figure 8). This module renders both
as fixed-width text so the benchmark harness and CLI can *show* the
curves, not just their summary statistics.

No *required* plotting dependency: plots are plain character grids. When
matplotlib happens to be installed, :func:`save_scurve_png` /
:func:`save_scatter_png` additionally export publication-style PNGs
(forcing the headless Agg backend so they work on CI and over SSH); when
it is not, they raise a one-line :class:`ValueError` and the text plots
keep working.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .scurve import SCurve

_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    pos = int((value - lo) / (hi - lo) * (cells - 1))
    return max(0, min(cells - 1, pos))


def _axis_labels(lo: float, hi: float, rows: int) -> List[str]:
    labels = []
    for row in range(rows):
        value = hi - (hi - lo) * row / (rows - 1) if rows > 1 else hi
        labels.append(f"{value:7.2f} ")
    return labels


def plot_scurves(curves: Sequence[SCurve], width: int = 64,
                 height: int = 18, title: str = "",
                 reference: Optional[float] = None) -> str:
    """Render S-curves on one grid (x = rank, y = value).

    ``reference`` draws a horizontal guide line (the paper's y=1 baseline).
    """
    curves = [c for c in curves if len(c)]
    if not curves:
        return "(no data)"
    values = [v for c in curves for v in c.sorted_values]
    lo, hi = min(values), max(values)
    if reference is not None:
        lo, hi = min(lo, reference), max(hi, reference)
    pad = (hi - lo) * 0.05 or 0.5
    lo, hi = lo - pad, hi + pad

    grid = [[" "] * width for _ in range(height)]
    if reference is not None:
        ref_row = height - 1 - _scale(reference, lo, hi, height)
        for col in range(width):
            grid[ref_row][col] = "-"
    max_rank = max(len(c) for c in curves)
    for index, curve in enumerate(curves):
        marker = _MARKERS[index % len(_MARKERS)]
        for rank, value in enumerate(curve.sorted_values):
            col = _scale(rank, 0, max(max_rank - 1, 1), width)
            row = height - 1 - _scale(value, lo, hi, height)
            grid[row][col] = marker

    labels = _axis_labels(lo, hi, height)
    lines = []
    if title:
        lines.append(title)
    for row in range(height):
        lines.append(labels[row] + "|" + "".join(grid[row]))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(" " * 9 + f"programs sorted worst to best (n={max_rank})")
    legend = "  ".join(f"{_MARKERS[i % len(_MARKERS)]} {c.label}"
                       for i, c in enumerate(curves))
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def plot_scatter(points: Sequence[Tuple[float, float]],
                 highlights: Optional[Dict[str, Tuple[float, float]]] = None,
                 width: int = 64, height: int = 18, title: str = "",
                 xlabel: str = "coverage", ylabel: str = "perf") -> str:
    """Render a scatter plot (Figure 8 style) with labelled highlights."""
    highlights = highlights or {}
    all_points = list(points) + list(highlights.values())
    if not all_points:
        return "(no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_pad = (x_hi - x_lo) * 0.05 or 0.05
    y_pad = (y_hi - y_lo) * 0.05 or 0.05
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(y, y_lo, y_hi, height)
        grid[row][col] = "."
    legend = []
    for index, (label, (x, y)) in enumerate(sorted(highlights.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(y, y_lo, y_hi, height)
        grid[row][col] = marker
        legend.append(f"{marker} {label}")

    labels = _axis_labels(y_lo, y_hi, height)
    lines = []
    if title:
        lines.append(title)
    for row in range(height):
        lines.append(labels[row] + "|" + "".join(grid[row]))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(" " * 9 + f"{xlabel}: {x_lo:.2f} .. {x_hi:.2f}   "
                 f"(y: {ylabel})")
    if legend:
        lines.append(" " * 9 + "  ".join(legend))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Optional matplotlib (Agg) PNG export
# ---------------------------------------------------------------------------

def _pyplot():
    """Headless matplotlib pyplot, or a clean error when absent."""
    try:
        import matplotlib
    except ImportError:
        raise ValueError(
            "matplotlib is not installed; PNG export is unavailable "
            "(text plots need no dependency)") from None
    matplotlib.use("Agg", force=True)  # headless: no display required
    import matplotlib.pyplot as plt
    return plt


def save_scurve_png(curves: Sequence[SCurve], path,
                    title: str = "",
                    reference: Optional[float] = None):
    """Export S-curves as a PNG via matplotlib's Agg backend.

    Returns the path written. Raises ``ValueError`` when matplotlib is
    not installed or no curve has data.
    """
    curves = [c for c in curves if len(c)]
    if not curves:
        raise ValueError("no data to plot")
    plt = _pyplot()
    fig, ax = plt.subplots(figsize=(7, 4.5))
    try:
        for curve in curves:
            values = curve.sorted_values
            ax.plot(range(len(values)), values, marker=".",
                    label=curve.label)
        if reference is not None:
            ax.axhline(reference, linestyle="--", linewidth=0.8,
                       color="gray")
        ax.set_xlabel("programs sorted worst to best")
        ax.set_ylabel("value")
        if title:
            ax.set_title(title)
        ax.legend(fontsize="small")
        fig.tight_layout()
        fig.savefig(path, dpi=120)
    finally:
        plt.close(fig)
    return path


def save_scatter_png(points: Sequence[Tuple[float, float]], path,
                     highlights: Optional[Dict[str, Tuple[float, float]]]
                     = None,
                     title: str = "", xlabel: str = "coverage",
                     ylabel: str = "perf"):
    """Export a Figure 8–style scatter as a PNG (Agg backend).

    Returns the path written; raises ``ValueError`` without matplotlib
    or data.
    """
    highlights = highlights or {}
    if not points and not highlights:
        raise ValueError("no data to plot")
    plt = _pyplot()
    fig, ax = plt.subplots(figsize=(6, 4.5))
    try:
        if points:
            ax.scatter([p[0] for p in points], [p[1] for p in points],
                       s=8, color="lightgray", label="subsets")
        for label, (x, y) in sorted(highlights.items()):
            ax.scatter([x], [y], s=36, label=label)
        ax.set_xlabel(xlabel)
        ax.set_ylabel(ylabel)
        if title:
            ax.set_title(title)
        ax.legend(fontsize="small")
        fig.tight_layout()
        fig.savefig(path, dpi=120)
    finally:
        plt.close(fig)
    return path
