"""S-curve construction and text rendering.

The paper displays most results as S-curves: for each experiment, programs
are sorted from worst to best, so the same horizontal position can hold
different programs in different experiments (§3.1). This module builds the
sorted series and renders them as aligned text for terminal reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


class SCurve:
    """One experiment's per-program values, sorted worst→best."""

    def __init__(self, label: str, values: Dict[str, float]):
        self.label = label
        self.by_program = dict(values)
        self.sorted_values = sorted(values.values())

    def __len__(self) -> int:
        return len(self.sorted_values)

    @property
    def mean(self) -> float:
        if not self.sorted_values:
            return 0.0
        return sum(self.sorted_values) / len(self.sorted_values)

    @property
    def median(self) -> float:
        values = self.sorted_values
        if not values:
            return 0.0
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2

    @property
    def minimum(self) -> float:
        return self.sorted_values[0] if self.sorted_values else 0.0

    @property
    def maximum(self) -> float:
        return self.sorted_values[-1] if self.sorted_values else 0.0

    def fraction_below(self, threshold: float) -> float:
        """Share of programs strictly below ``threshold``."""
        if not self.sorted_values:
            return 0.0
        below = sum(1 for v in self.sorted_values if v < threshold)
        return below / len(self.sorted_values)

    def crossover_with(self, other: "SCurve") -> bool:
        """True if the two sorted curves cross (neither dominates)."""
        a_higher = b_higher = False
        for va, vb in zip(self.sorted_values, other.sorted_values):
            if va > vb:
                a_higher = True
            elif vb > va:
                b_higher = True
        return a_higher and b_higher


def render_scurves(curves: Sequence[SCurve], title: str = "",
                   fmt: str = "{:7.3f}") -> str:
    """Aligned text table: one row per rank position, one column per curve."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "rank  " + "  ".join(f"{c.label:>12s}" for c in curves)
    lines.append(header)
    lines.append("-" * len(header))
    length = max((len(c) for c in curves), default=0)
    for rank in range(length):
        row = [f"{rank:4d}  "]
        for curve in curves:
            if rank < len(curve):
                row.append(f"{fmt.format(curve.sorted_values[rank]):>12s}")
            else:
                row.append(" " * 12)
        lines.append("  ".join(row))
    lines.append("-" * len(header))
    summary = ["mean  "] + [f"{fmt.format(c.mean):>12s}" for c in curves]
    lines.append("  ".join(summary))
    summary = ["med   "] + [f"{fmt.format(c.median):>12s}" for c in curves]
    lines.append("  ".join(summary))
    return "\n".join(lines)


def summarize(curves: Sequence[SCurve]) -> str:
    """Compact per-curve summary (mean/median/min/max)."""
    lines = [f"{'curve':>22s} {'mean':>8s} {'median':>8s} {'min':>8s} "
             f"{'max':>8s} {'n':>4s}"]
    for curve in curves:
        lines.append(
            f"{curve.label:>22s} {curve.mean:8.3f} {curve.median:8.3f} "
            f"{curve.minimum:8.3f} {curve.maximum:8.3f} {len(curve):4d}")
    return "\n".join(lines)


def relative(values: Dict[str, float],
             baselines: Dict[str, float]) -> Dict[str, float]:
    """Per-program ratios value/baseline (programs missing either dropped)."""
    out = {}
    for name, value in values.items():
        base = baselines.get(name)
        if base:
            out[name] = value / base
    return out
