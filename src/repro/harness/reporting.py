"""Result persistence and report formatting.

Experiment drivers return in-memory :class:`ExperimentResult` objects;
this module serializes them (JSON) so that long regenerations can be
archived and diffed, and renders Markdown tables for EXPERIMENTS.md-style
records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .experiments import ExperimentResult
from .scurve import SCurve


def experiment_to_dict(result: ExperimentResult) -> Dict:
    """A JSON-serializable snapshot of an experiment's curves."""
    return {
        "name": result.name,
        "notes": list(result.notes),
        "groups": {
            group: [
                {
                    "label": curve.label,
                    "by_program": dict(sorted(curve.by_program.items())),
                    "mean": curve.mean,
                    "median": curve.median,
                    "min": curve.minimum,
                    "max": curve.maximum,
                }
                for curve in curves
            ]
            for group, curves in result.groups.items()
        },
    }


def experiment_from_dict(payload: Dict) -> ExperimentResult:
    """Inverse of :func:`experiment_to_dict` (summaries are recomputed).

    Round-trip property: ``experiment_from_dict(experiment_to_dict(r))``
    preserves name, notes, group order, curve labels, and per-program
    values; derived statistics (mean/median/min/max) are recomputed from
    the values and will match the archived ones, which are retained in
    the JSON purely for human diffing.
    """
    result = ExperimentResult(payload["name"])
    result.notes = list(payload.get("notes", ()))
    for group, curves in payload.get("groups", {}).items():
        result.groups[group] = [
            SCurve(entry["label"], entry["by_program"]) for entry in curves
        ]
    return result


#: Backwards-compatible alias for :func:`experiment_from_dict`.
dict_to_experiment = experiment_from_dict


def save_results(results: List[ExperimentResult],
                 path: Union[str, Path]) -> Path:
    """Write experiments to a JSON archive; returns the path."""
    path = Path(path)
    payload = [experiment_to_dict(result) for result in results]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: Union[str, Path]) -> List[ExperimentResult]:
    """Read experiments back from a JSON archive."""
    payload = json.loads(Path(path).read_text())
    return [experiment_from_dict(entry) for entry in payload]


def load_experiment(path: Union[str, Path],
                    name: Optional[str] = None) -> ExperimentResult:
    """One experiment from an archive, by name (or the only one).

    Lets archived regenerations (``--save-json``) be reloaded and diffed
    against fresh runs without indexing into the full list.
    """
    results = load_results(path)
    if name is None:
        if len(results) != 1:
            raise ValueError(
                f"{path} holds {len(results)} experiments; pass name=")
        return results[0]
    for result in results:
        if result.name == name:
            return result
    known = [result.name for result in results]
    raise KeyError(f"no experiment named {name!r} in {path} "
                   f"(found {known})")


def markdown_table(result: ExperimentResult, group: str) -> str:
    """A Markdown summary table (mean/median/min/max per curve)."""
    curves = result.groups[group]
    lines = [f"**{result.name} — {group}**", "",
             "| curve | mean | median | min | max | n |",
             "|---|---|---|---|---|---|"]
    for curve in curves:
        lines.append(
            f"| {curve.label} | {curve.mean:.3f} | {curve.median:.3f} | "
            f"{curve.minimum:.3f} | {curve.maximum:.3f} | {len(curve)} |")
    return "\n".join(lines)
