"""Result persistence and report formatting.

Experiment drivers return in-memory :class:`ExperimentResult` objects;
this module serializes them (JSON) so that long regenerations can be
archived and diffed, and renders Markdown tables for EXPERIMENTS.md-style
records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .experiments import ExperimentResult
from .scurve import SCurve


def experiment_to_dict(result: ExperimentResult) -> Dict:
    """A JSON-serializable snapshot of an experiment's curves."""
    return {
        "name": result.name,
        "notes": list(result.notes),
        "groups": {
            group: [
                {
                    "label": curve.label,
                    "by_program": dict(sorted(curve.by_program.items())),
                    "mean": curve.mean,
                    "median": curve.median,
                    "min": curve.minimum,
                    "max": curve.maximum,
                }
                for curve in curves
            ]
            for group, curves in result.groups.items()
        },
    }


def dict_to_experiment(payload: Dict) -> ExperimentResult:
    """Inverse of :func:`experiment_to_dict` (summaries are recomputed)."""
    result = ExperimentResult(payload["name"])
    result.notes = list(payload.get("notes", ()))
    for group, curves in payload.get("groups", {}).items():
        result.groups[group] = [
            SCurve(entry["label"], entry["by_program"]) for entry in curves
        ]
    return result


def save_results(results: List[ExperimentResult],
                 path: Union[str, Path]) -> Path:
    """Write experiments to a JSON archive; returns the path."""
    path = Path(path)
    payload = [experiment_to_dict(result) for result in results]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_results(path: Union[str, Path]) -> List[ExperimentResult]:
    """Read experiments back from a JSON archive."""
    payload = json.loads(Path(path).read_text())
    return [dict_to_experiment(entry) for entry in payload]


def markdown_table(result: ExperimentResult, group: str) -> str:
    """A Markdown summary table (mean/median/min/max per curve)."""
    curves = result.groups[group]
    lines = [f"**{result.name} — {group}**", "",
             "| curve | mean | median | min | max | n |",
             "|---|---|---|---|---|---|"]
    for curve in curves:
        lines.append(
            f"| {curve.label} | {curve.mean:.3f} | {curve.median:.3f} | "
            f"{curve.minimum:.3f} | {curve.maximum:.3f} | {len(curve)} |")
    return "\n".join(lines)
