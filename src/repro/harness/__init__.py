"""Experiment harness: runner, S-curves, and per-figure drivers."""

from .runner import Runner, SelectorRun
from .scurve import SCurve, relative, render_scurves, summarize

__all__ = ["Runner", "SCurve", "SelectorRun", "relative", "render_scurves",
           "summarize"]
