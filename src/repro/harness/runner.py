"""Experiment runner: composes tracing, profiling, selection, and timing.

A :class:`Runner` memoizes every expensive intermediate (functional traces,
slack profiles, candidate enumerations, selection plans) so that the
figure-regeneration experiments share work. All methods are keyed by
benchmark name, input set, and machine configuration name.

The mini-graph flow for one (program, selector, machine) run:

1. functional trace of the program (architectural, machine-independent);
2. slack profile, if the selector needs one — a singleton timing run on
   the *profiling* machine and input with a :class:`SlackCollector`;
3. candidate enumeration → template grouping → selector pool filter →
   greedy budgeted selection (the plan);
4. trace folding (outlining transform) and the timing run proper, with a
   :class:`SlackDynamicPolicy` attached for dynamic selectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa.interp import Trace, execute
from ..minigraph.candidates import Candidate, enumerate_candidates
from ..minigraph.dynamic import MiniGraphPolicy, SlackDynamicPolicy
from ..minigraph.selection import MiniGraphPlan
from ..minigraph.selectors import Selector, make_plan
from ..minigraph.slack import SlackCollector, SlackProfile
from ..minigraph.transform import fold_trace
from ..pipeline.config import MachineConfig, config_by_name
from ..pipeline.core import OoOCore
from ..pipeline.stats import RunStats
from ..workloads.suite import Benchmark, benchmark

DEFAULT_INPUT = "train"
DEFAULT_MAX_INSTS = 2_000_000


@dataclass
class SelectorRun:
    """Outcome of one selector × machine × program timing run."""

    program: str
    selector: str
    config: str
    stats: RunStats
    plan: MiniGraphPlan

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def coverage(self) -> float:
        return self.stats.coverage


class Runner:
    """Caching orchestrator for all paper experiments."""

    def __init__(self, budget: int = 512, max_mg_size: int = 4,
                 warm_caches: bool = True,
                 max_insts: int = DEFAULT_MAX_INSTS):
        self.budget = budget
        self.max_mg_size = max_mg_size
        self.warm_caches = warm_caches
        self.max_insts = max_insts
        self._traces: Dict[Tuple[str, str], Trace] = {}
        self._profiles: Dict[Tuple[str, str, str], SlackProfile] = {}
        self._baselines: Dict[Tuple[str, str, str], RunStats] = {}
        self._candidates: Dict[Tuple[str, str, int], List[Candidate]] = {}
        self._plans: Dict[Tuple, MiniGraphPlan] = {}

    # -- benchmark helpers -----------------------------------------------------

    def _bench(self, bench) -> Benchmark:
        return benchmark(bench) if isinstance(bench, str) else bench

    def trace(self, bench, input_name: str = DEFAULT_INPUT) -> Trace:
        """Functional (singleton) trace of a benchmark."""
        bench = self._bench(bench)
        key = (bench.name, input_name)
        if key not in self._traces:
            program = bench.program(input_name)
            self._traces[key] = execute(program, max_insts=self.max_insts,
                                        input_name=input_name)
        return self._traces[key]

    def candidates(self, bench,
                   input_name: str = DEFAULT_INPUT) -> List[Candidate]:
        """Memoized candidate enumeration for a benchmark program."""
        bench = self._bench(bench)
        key = (bench.name, input_name, self.max_mg_size)
        if key not in self._candidates:
            program = bench.program(input_name)
            self._candidates[key] = enumerate_candidates(
                program, max_size=self.max_mg_size)
        return self._candidates[key]

    # -- timing runs --------------------------------------------------------------

    def baseline(self, bench, config: MachineConfig,
                 input_name: str = DEFAULT_INPUT) -> RunStats:
        """Singleton (no mini-graphs) timing run."""
        bench = self._bench(bench)
        key = (bench.name, input_name, config.name)
        if key not in self._baselines:
            trace = self.trace(bench, input_name)
            core = OoOCore(config, trace.records,
                           warm_caches=self.warm_caches)
            stats = core.run()
            stats.program_name = bench.name
            self._baselines[key] = stats
        return self._baselines[key]

    def slack_profile(self, bench, config: MachineConfig,
                      input_name: str = DEFAULT_INPUT,
                      global_slack: bool = False) -> SlackProfile:
        """Self- or cross-trained slack profile (singleton profiling run).

        With ``global_slack`` the profile's slack field holds *global*
        slack (see :mod:`repro.analysis.global_slack`) — the §4.3
        alternative the paper argues against.
        """
        bench = self._bench(bench)
        key = (bench.name, input_name, config.name, global_slack)
        if key not in self._profiles:
            trace = self.trace(bench, input_name)
            if global_slack:
                from ..analysis.global_slack import GlobalSlackCollector
                collector = GlobalSlackCollector(
                    bench.program(input_name), config_name=config.name,
                    input_name=input_name)
            else:
                collector = SlackCollector(bench.program(input_name),
                                           config_name=config.name,
                                           input_name=input_name)
            core = OoOCore(config, trace.records, collector=collector,
                           warm_caches=self.warm_caches)
            stats = core.run()
            stats.program_name = bench.name
            self._profiles[key] = collector.global_profile() \
                if global_slack else collector.profile()
        return self._profiles[key]

    def plan(self, bench, selector: Selector,
             input_name: str = DEFAULT_INPUT,
             profile_config: Optional[MachineConfig] = None,
             profile_input: Optional[str] = None,
             global_slack: bool = False) -> MiniGraphPlan:
        """Mini-graph selection for a benchmark under one selector.

        Template frequencies and (for slack selectors) the slack profile
        come from the *profiling* run: by default the same input on the
        reduced machine ("self-trained", §5.5); pass ``profile_config`` /
        ``profile_input`` to cross-train.
        """
        bench = self._bench(bench)
        profile_input = profile_input or input_name
        if profile_config is None:
            profile_config = config_by_name("reduced")
        key = (bench.name, selector.name, input_name, profile_config.name,
               profile_input, self.budget, self.max_mg_size, global_slack)
        if key not in self._plans:
            profile = None
            if selector.needs_profile:
                profile = self.slack_profile(bench, profile_config,
                                             profile_input,
                                             global_slack=global_slack)
            freq_trace = self.trace(bench, profile_input)
            freq_counts = freq_trace.dynamic_count_of()
            program = bench.program(input_name)
            if profile_input != input_name:
                # Cross-input training: programs are rebuilt per input but
                # share static code structure only if the builder emits the
                # same instruction sequence; candidate enumeration runs on
                # the target program with frequencies from the profile run.
                freq_counts = self._align_counts(program, freq_counts)
            self._plans[key] = make_plan(
                program, freq_counts, selector, profile=profile,
                budget=self.budget, max_size=self.max_mg_size,
                candidates=self.candidates(bench, input_name))
        return self._plans[key]

    @staticmethod
    def _align_counts(program, counts: List[int]) -> List[int]:
        """Pad/truncate profile counts to the target program length."""
        if len(counts) < len(program):
            return counts + [0] * (len(program) - len(counts))
        return counts[:len(program)]

    def run_selector(self, bench, selector: Selector, config: MachineConfig,
                     input_name: str = DEFAULT_INPUT,
                     profile_config: Optional[MachineConfig] = None,
                     profile_input: Optional[str] = None,
                     policy: Optional[MiniGraphPolicy] = None,
                     global_slack: bool = False) -> SelectorRun:
        """Full pipeline for one (program, selector, machine) point."""
        bench = self._bench(bench)
        plan = self.plan(bench, selector, input_name=input_name,
                         profile_config=profile_config,
                         profile_input=profile_input,
                         global_slack=global_slack)
        trace = self.trace(bench, input_name)
        records = fold_trace(trace, plan)
        core = OoOCore(config, records, policy=policy,
                       warm_caches=self.warm_caches)
        stats = core.run()
        stats.program_name = bench.name
        return SelectorRun(bench.name, selector.name, config.name, stats,
                           plan)

    def run_slack_dynamic(self, bench, config: MachineConfig,
                          mode: str = "full",
                          outlining_penalty: bool = True,
                          input_name: str = DEFAULT_INPUT,
                          **policy_kwargs) -> SelectorRun:
        """Slack-Dynamic: Struct-All pool + run-time disabling policy."""
        from ..minigraph.selectors import SlackDynamicSelector
        policy = SlackDynamicPolicy(mode=mode,
                                    outlining_penalty=outlining_penalty,
                                    **policy_kwargs)
        run = self.run_selector(bench, SlackDynamicSelector(), config,
                                input_name=input_name, policy=policy)
        suffix = "" if mode == "full" else f"-{mode}"
        ideal = "" if outlining_penalty else "ideal-"
        run.selector = f"{ideal}slack-dynamic{suffix}"
        return run
