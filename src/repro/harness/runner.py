"""Experiment runner: composes tracing, profiling, selection, and timing.

A :class:`Runner` memoizes every expensive intermediate (functional traces,
slack profiles, candidate enumerations, selection plans, timing runs)
through a content-addressed :class:`~repro.exec.store.ArtifactStore`.
Every memo key includes *all* parameters the value depends on —
benchmark, input, machine configuration (full sizing, not just the name),
selector parameters, ``budget``, ``max_mg_size``, ``max_insts``,
``warm_caches`` — plus a code-version salt, so a key can never alias two
different results. By default the store is memory-only and dies with the
process (the historical behavior); pass ``store=ArtifactStore(cache_dir)``
to persist artifacts across runs and share them with scheduler workers
(see :mod:`repro.exec`).

The mini-graph flow for one (program, selector, machine) run:

1. functional trace of the program (architectural, machine-independent);
2. slack profile, if the selector needs one — a singleton timing run on
   the *profiling* machine and input with a :class:`SlackCollector`;
3. candidate enumeration → template grouping → selector pool filter →
   greedy budgeted selection (the plan);
4. trace folding (outlining transform) and the timing run proper, with a
   :class:`SlackDynamicPolicy` attached for dynamic selectors.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Dict, List, Optional

from ..exec.store import ArtifactStore
from ..isa.interp import Trace, execute
from ..minigraph.candidates import Candidate, enumerate_candidates
from ..minigraph.dynamic import MiniGraphPolicy, SlackDynamicPolicy
from ..minigraph.selection import MiniGraphPlan
from ..minigraph.selectors import Selector, make_plan
from ..minigraph.slack import SlackCollector, SlackProfile
from ..minigraph.templates import build_templates
from ..minigraph.transform import fold_trace
from ..pipeline.config import MachineConfig, config_by_name
from ..pipeline.core import OoOCore
from ..pipeline.stats import RunStats
from ..workloads.suite import Benchmark, benchmark

DEFAULT_INPUT = "train"
DEFAULT_MAX_INSTS = 2_000_000


@dataclass(frozen=True)
class SelectorRun:
    """Outcome of one selector × machine × program timing run.

    Frozen: results are placed in the artifact store and shared between
    callers, so no field may be rebound after construction. Display-name
    variants (e.g. ``ideal-slack-dynamic-sial``) are passed into the
    constructor via :meth:`Runner.run_selector`'s ``label``.
    """

    program: str
    selector: str
    config: str
    stats: RunStats
    plan: MiniGraphPlan

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def coverage(self) -> float:
        return self.stats.coverage


@lru_cache(maxsize=None)
def _config_params(config: MachineConfig) -> Dict:
    """The complete machine sizing, not just the name: a custom
    ``config.scaled(...)`` must never collide with its namesake.

    Cached per (frozen, hashable) config instance: every memo lookup on
    a hot path was re-walking the dataclass through ``asdict`` — pure
    overhead for the handful of configs a process ever touches. Callers
    treat the returned dict as read-only (it is embedded in store-key
    params and serialized, never mutated).
    """
    return asdict(config)


class Runner:
    """Caching orchestrator for all paper experiments."""

    def __init__(self, budget: int = 512, max_mg_size: int = 4,
                 warm_caches: bool = True,
                 max_insts: int = DEFAULT_MAX_INSTS,
                 store: Optional[ArtifactStore] = None,
                 jobs: int = 1):
        self.budget = budget
        self.max_mg_size = max_mg_size
        self.warm_caches = warm_caches
        self.max_insts = max_insts
        self.store = store if store is not None else ArtifactStore()
        #: Degree of process fan-out used by drivers that schedule their
        #: own work through :mod:`repro.exec` (e.g. the limit study).
        self.jobs = jobs
        # Hoisted template sites per (bench, input, profile_input):
        # enumeration and template grouping are selector-independent,
        # so the per-selector plan loop shares one build_templates pass
        # (bounded; in-memory only — sites are cheap to rebuild).
        self._sites_memo: Dict = {}

    @classmethod
    def from_params(cls, params: Dict, jobs: int = 1) -> "Runner":
        """Rebuild a runner from :func:`repro.exec.tasks.runner_params`.

        The inverse used by resume (`repro resume` reconstructs the
        runner a dead run's ledger header describes) and by dispatch
        workers; both sides share one params vocabulary so a rebuilt
        runner can never key artifacts differently than the original.
        """
        store = ArtifactStore(params.get("cache_dir"),
                              backend=params.get("store_backend"))
        return cls(budget=params["budget"],
                   max_mg_size=params["max_mg_size"],
                   warm_caches=params["warm_caches"],
                   max_insts=params["max_insts"],
                   store=store, jobs=jobs)

    # -- benchmark helpers -----------------------------------------------------

    def _bench(self, bench) -> Benchmark:
        return benchmark(bench) if isinstance(bench, str) else bench

    # -- artifact-key params ---------------------------------------------------
    #
    # Every memoized phase builds its store key from one of the builders
    # below, and nothing else: external probes (the serve warm path, see
    # :mod:`repro.serve.warm`) construct the identical params to ask
    # "is this artifact already materialized?" without computing anything.
    # Adding a parameter to a compute path means adding it here, once.

    def trace_params(self, bench_name: str, input_name: str) -> Dict:
        """Store-key params for :meth:`trace`."""
        return {"bench": bench_name, "input": input_name,
                "max_insts": self.max_insts}

    def candidates_params(self, bench_name: str, input_name: str) -> Dict:
        """Store-key params for :meth:`candidates`."""
        return {"bench": bench_name, "input": input_name,
                "max_mg_size": self.max_mg_size}

    def baseline_params(self, bench_name: str,
                        config: MachineConfig, input_name: str) -> Dict:
        """Store-key params for :meth:`baseline`."""
        return {"bench": bench_name, "input": input_name,
                "config": _config_params(config),
                "warm_caches": self.warm_caches,
                "max_insts": self.max_insts}

    def profile_params(self, bench_name: str, config: MachineConfig,
                       input_name: str, global_slack: bool) -> Dict:
        """Store-key params for :meth:`slack_profile`."""
        return {"bench": bench_name, "input": input_name,
                "config": _config_params(config),
                "global_slack": global_slack,
                "warm_caches": self.warm_caches,
                "max_insts": self.max_insts}

    def plan_params(self, bench_name: str, selector_spec: Dict,
                    input_name: str, profile_config: MachineConfig,
                    profile_input: str, global_slack: bool) -> Dict:
        """Store-key params for :meth:`plan` (resolved profiling args)."""
        return {"bench": bench_name, "selector": selector_spec,
                "input": input_name,
                "profile_config": _config_params(profile_config),
                "profile_input": profile_input,
                "budget": self.budget, "max_mg_size": self.max_mg_size,
                "global_slack": global_slack,
                "warm_caches": self.warm_caches,
                "max_insts": self.max_insts}

    def run_params(self, bench_name: str, selector_spec: Dict,
                   config: MachineConfig, input_name: str,
                   profile_config: MachineConfig, profile_input: str,
                   global_slack: bool, label: Optional[str]) -> Dict:
        """Store-key params for :meth:`run_selector` (resolved args)."""
        return {"bench": bench_name, "selector": selector_spec,
                "config": _config_params(config),
                "input": input_name,
                "profile_config": _config_params(profile_config),
                "profile_input": profile_input,
                "budget": self.budget, "max_mg_size": self.max_mg_size,
                "global_slack": global_slack,
                "warm_caches": self.warm_caches,
                "max_insts": self.max_insts,
                "label": label}

    def subset_params(self, bench_name: str, input_name: str,
                      config: MachineConfig, n_candidates: int,
                      mask: int, baseline_ipc: float) -> Dict:
        """Store-key params for one limit-study subset evaluation."""
        return {"bench": bench_name, "input": input_name,
                "config": _config_params(config),
                "n_candidates": n_candidates, "mask": mask,
                "baseline_ipc": baseline_ipc,
                "budget": self.budget, "max_mg_size": self.max_mg_size,
                "warm_caches": self.warm_caches,
                "max_insts": self.max_insts}

    def dynamic_params(self, bench_name: str, config: MachineConfig,
                       input_name: str, mode: str,
                       outlining_penalty: bool, policy_kwargs: Dict) -> Dict:
        """Store-key params for :meth:`run_slack_dynamic`."""
        return {"bench": bench_name, "config": _config_params(config),
                "input": input_name, "mode": mode,
                "outlining_penalty": outlining_penalty,
                "policy": dict(sorted(policy_kwargs.items())),
                "budget": self.budget, "max_mg_size": self.max_mg_size,
                "warm_caches": self.warm_caches,
                "max_insts": self.max_insts}

    def trace(self, bench, input_name: str = DEFAULT_INPUT) -> Trace:
        """Functional (singleton) trace of a benchmark."""
        bench = self._bench(bench)
        params = self.trace_params(bench.name, input_name)

        def compute() -> Trace:
            program = bench.program(input_name)
            return execute(program, max_insts=self.max_insts,
                           input_name=input_name)

        return self.store.get_or_compute("trace", params, compute)

    def candidates(self, bench,
                   input_name: str = DEFAULT_INPUT) -> List[Candidate]:
        """Memoized candidate enumeration for a benchmark program."""
        bench = self._bench(bench)
        params = self.candidates_params(bench.name, input_name)

        def compute() -> List[Candidate]:
            program = bench.program(input_name)
            # Materialize: the native enumerator returns a lazy packed
            # set, but the stored artifact must be the same plain list
            # the Python reference produces (byte-identical pickles).
            return list(enumerate_candidates(program,
                                             max_size=self.max_mg_size))

        return self.store.get_or_compute("candidates", params, compute)

    # -- timing runs --------------------------------------------------------------

    # -- prepared (core, finalize) pairs ---------------------------------------
    #
    # Each ``*_prepared`` helper materializes every upstream artifact,
    # constructs the timing core *without running it*, and returns a
    # ``finalize(stats)`` closure that turns a finished run's stats into
    # the store artifact. The serial computes below are thin wrappers
    # (``finalize(core.run())``), and the batched executor
    # (:mod:`repro.exec.batch`) drives the same cores through one native
    # ``repro_run_batch`` call — the two paths cannot disagree on how a
    # point is set up or summarized because there is only one setup path.

    def baseline_prepared(self, bench, config: MachineConfig,
                          input_name: str = DEFAULT_INPUT):
        """``(core, finalize)`` for one singleton timing run."""
        bench = self._bench(bench)
        trace = self.trace(bench, input_name)
        core = OoOCore(config, trace.packed(), warm_caches=self.warm_caches)

        def finalize(stats: RunStats) -> RunStats:
            stats.program_name = bench.name
            return stats

        return core, finalize

    def profile_prepared(self, bench, config: MachineConfig,
                         input_name: str = DEFAULT_INPUT,
                         global_slack: bool = False):
        """``(core, finalize)`` for one slack-profiling run."""
        bench = self._bench(bench)
        trace = self.trace(bench, input_name)
        if global_slack:
            from ..analysis.global_slack import GlobalSlackCollector
            collector = GlobalSlackCollector(
                bench.program(input_name), config_name=config.name,
                input_name=input_name)
        else:
            collector = SlackCollector(bench.program(input_name),
                                       config_name=config.name,
                                       input_name=input_name)
        core = OoOCore(config, trace.packed(), collector=collector,
                       warm_caches=self.warm_caches)

        def finalize(stats: RunStats) -> SlackProfile:
            stats.program_name = bench.name
            return collector.global_profile() if global_slack \
                else collector.profile()

        return core, finalize

    def selector_prepared(self, bench, selector: Selector,
                          config: MachineConfig,
                          input_name: str = DEFAULT_INPUT,
                          profile_config: Optional[MachineConfig] = None,
                          profile_input: Optional[str] = None,
                          global_slack: bool = False,
                          label: Optional[str] = None,
                          policy: Optional[MiniGraphPolicy] = None):
        """``(core, finalize)`` for one selector timing run (plan, trace
        fold, and core construction — everything but the cycle loop)."""
        bench = self._bench(bench)
        plan = self.plan(bench, selector, input_name=input_name,
                         profile_config=profile_config,
                         profile_input=profile_input,
                         global_slack=global_slack)
        trace = self.trace(bench, input_name)
        records = fold_trace(trace, plan)
        core = OoOCore(config, records, policy=policy,
                       warm_caches=self.warm_caches)

        def finalize(stats: RunStats) -> SelectorRun:
            stats.program_name = bench.name
            return SelectorRun(bench.name, label or selector.name,
                               config.name, stats, plan)

        return core, finalize

    def baseline(self, bench, config: MachineConfig,
                 input_name: str = DEFAULT_INPUT) -> RunStats:
        """Singleton (no mini-graphs) timing run."""
        bench = self._bench(bench)
        params = self.baseline_params(bench.name, config, input_name)

        def compute() -> RunStats:
            core, finalize = self.baseline_prepared(bench, config,
                                                    input_name)
            return finalize(core.run())

        return self.store.get_or_compute("baseline", params, compute)

    def slack_profile(self, bench, config: MachineConfig,
                      input_name: str = DEFAULT_INPUT,
                      global_slack: bool = False) -> SlackProfile:
        """Self- or cross-trained slack profile (singleton profiling run).

        With ``global_slack`` the profile's slack field holds *global*
        slack (see :mod:`repro.analysis.global_slack`) — the §4.3
        alternative the paper argues against.
        """
        bench = self._bench(bench)
        params = self.profile_params(bench.name, config, input_name,
                                     global_slack)

        def compute() -> SlackProfile:
            core, finalize = self.profile_prepared(bench, config, input_name,
                                                   global_slack=global_slack)
            return finalize(core.run())

        return self.store.get_or_compute("profile", params, compute)

    def plan(self, bench, selector: Selector,
             input_name: str = DEFAULT_INPUT,
             profile_config: Optional[MachineConfig] = None,
             profile_input: Optional[str] = None,
             global_slack: bool = False) -> MiniGraphPlan:
        """Mini-graph selection for a benchmark under one selector.

        Template frequencies and (for slack selectors) the slack profile
        come from the *profiling* run: by default the same input on the
        reduced machine ("self-trained", §5.5); pass ``profile_config`` /
        ``profile_input`` to cross-train.
        """
        bench = self._bench(bench)
        profile_input = profile_input or input_name
        if profile_config is None:
            profile_config = config_by_name("reduced")
        params = self.plan_params(bench.name, selector.spec(), input_name,
                                  profile_config, profile_input,
                                  global_slack)

        def compute() -> MiniGraphPlan:
            profile = None
            if selector.needs_profile:
                profile = self.slack_profile(bench, profile_config,
                                             profile_input,
                                             global_slack=global_slack)
            freq_trace = self.trace(bench, profile_input)
            freq_counts = freq_trace.dynamic_count_of()
            program = bench.program(input_name)
            if profile_input != input_name:
                # Cross-input training: programs are rebuilt per input but
                # share static code structure only if the builder emits the
                # same instruction sequence; candidate enumeration runs on
                # the target program with frequencies from the profile run.
                freq_counts = self._align_counts(program, freq_counts)
            candidates = self.candidates(bench, input_name)
            sites = self._hoisted_sites(bench.name, input_name,
                                        profile_input, candidates,
                                        freq_counts)
            return make_plan(
                program, freq_counts, selector, profile=profile,
                budget=self.budget, max_size=self.max_mg_size,
                candidates=candidates, sites=sites)

        return self.store.get_or_compute("plan", params, compute)

    def _hoisted_sites(self, bench_name: str, input_name: str,
                       profile_input: str, candidates, freq_counts):
        """Template sites shared across the per-selector plan loop.

        Enumeration and ``build_templates`` are selector-independent, so
        an experiment matrix that plans the same (bench, input) under
        many selectors reuses one grouping pass. Safe to share: folds
        reassign the per-site scratch pcs before reading them, and
        pickled sites normalize those pcs (``MGSite.__getstate__``), so
        plans built from reused sites are bit-identical to fresh ones.
        """
        key = (bench_name, input_name, profile_input, self.max_mg_size)
        hit = self._sites_memo.get(key)
        if hit is not None:
            return hit
        templates = build_templates(candidates, freq_counts)
        sites = [site for template in templates for site in template.sites]
        if len(self._sites_memo) >= 8:
            self._sites_memo.clear()
        self._sites_memo[key] = sites
        return sites

    @staticmethod
    def _align_counts(program, counts: List[int]) -> List[int]:
        """Pad/truncate profile counts to the target program length."""
        if len(counts) < len(program):
            return counts + [0] * (len(program) - len(counts))
        return counts[:len(program)]

    def run_selector(self, bench, selector: Selector, config: MachineConfig,
                     input_name: str = DEFAULT_INPUT,
                     profile_config: Optional[MachineConfig] = None,
                     profile_input: Optional[str] = None,
                     policy: Optional[MiniGraphPolicy] = None,
                     global_slack: bool = False,
                     label: Optional[str] = None) -> SelectorRun:
        """Full pipeline for one (program, selector, machine) point.

        Memoized through the store unless a caller-supplied ``policy``
        carries state the key cannot capture.
        """
        bench = self._bench(bench)
        if policy is not None:
            return self._run_selector(bench, selector, config, input_name,
                                      profile_config, profile_input, policy,
                                      global_slack, label)
        # Key on the *resolved* profiling parameters (the same defaults
        # plan() applies) so an explicit profile_config=reduced_config()
        # and the default share one artifact.
        resolved_profile = profile_config if profile_config is not None \
            else config_by_name("reduced")
        params = self.run_params(bench.name, selector.spec(), config,
                                 input_name, resolved_profile,
                                 profile_input or input_name,
                                 global_slack, label)
        return self.store.get_or_compute(
            "run", params,
            lambda: self._run_selector(bench, selector, config, input_name,
                                       profile_config, profile_input, None,
                                       global_slack, label))

    def _run_selector(self, bench, selector, config, input_name,
                      profile_config, profile_input, policy, global_slack,
                      label) -> SelectorRun:
        core, finalize = self.selector_prepared(
            bench, selector, config, input_name=input_name,
            profile_config=profile_config, profile_input=profile_input,
            global_slack=global_slack, label=label, policy=policy)
        return finalize(core.run())

    def run_slack_dynamic(self, bench, config: MachineConfig,
                          mode: str = "full",
                          outlining_penalty: bool = True,
                          input_name: str = DEFAULT_INPUT,
                          **policy_kwargs) -> SelectorRun:
        """Slack-Dynamic: Struct-All pool + run-time disabling policy."""
        from ..minigraph.selectors import SlackDynamicSelector
        bench = self._bench(bench)
        suffix = "" if mode == "full" else f"-{mode}"
        ideal = "" if outlining_penalty else "ideal-"
        name = f"{ideal}slack-dynamic{suffix}"
        params = self.dynamic_params(bench.name, config, input_name, mode,
                                     outlining_penalty, policy_kwargs)

        def compute() -> SelectorRun:
            policy = SlackDynamicPolicy(mode=mode,
                                        outlining_penalty=outlining_penalty,
                                        **policy_kwargs)
            return self._run_selector(bench, SlackDynamicSelector(), config,
                                      input_name, None, None, policy,
                                      False, name)

        return self.store.get_or_compute("run-dynamic", params, compute)
