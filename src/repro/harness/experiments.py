"""Per-figure experiment drivers (the paper's evaluation, §3 and §5).

Each ``fig*`` function regenerates the data series of one paper figure over
a benchmark population and returns an :class:`ExperimentResult` whose
``render()`` prints the same rows/series the paper reports (S-curves with
means/medians). Absolute numbers differ from the paper — the substrate is
a different simulator and workload population — but the *shapes* (selector
ordering, crossovers, who compensates for the reduced machine) are the
reproduction targets; see EXPERIMENTS.md.

Run from the command line::

    python -m repro.harness.experiments fig6 --suites spec media --limit 10
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..minigraph.selectors import (
    SlackProfileSelector, StructAll, StructBounded, StructNone,
)
from ..pipeline.config import (
    cross_2way_config, cross_8way_config, cross_dmem4_config, full_config,
    reduced_config,
)
from ..workloads.suite import all_benchmarks
from .runner import Runner
from .scurve import SCurve, relative, render_scurves, summarize


@dataclass
class ExperimentResult:
    """Named groups of S-curves plus free-form notes."""

    name: str
    groups: Dict[str, List[SCurve]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def curve(self, group: str, label: str) -> SCurve:
        """Look up one curve by group and label."""
        for curve in self.groups[group]:
            if curve.label == label:
                return curve
        raise KeyError(f"{group}/{label}")

    def render(self, full_tables: bool = False) -> str:
        """Human-readable report: per-group summaries (and full tables)."""
        lines = [f"=== {self.name} ==="]
        for group, curves in self.groups.items():
            lines.append(f"\n--- {group} ---")
            lines.append(summarize(curves))
            if full_tables:
                lines.append(render_scurves(curves))
        if self.notes:
            lines.append("")
            lines.extend(self.notes)
        return "\n".join(lines)


def _population(suites: Optional[Sequence[str]] = None,
                limit: Optional[int] = None,
                include_synthetic: bool = True) -> list:
    benches = all_benchmarks(suites=suites,
                             include_synthetic=include_synthetic)
    if limit is not None:
        benches = benches[:limit]
    return benches


def _full_baseline_ipcs(runner: Runner, benches) -> Dict[str, float]:
    full = full_config()
    return {b.name: runner.baseline(b, full).ipc for b in benches}


def _selector_curves(runner: Runner, benches, selectors, config,
                     baselines: Dict[str, float]):
    """Relative-performance and coverage curves for each selector."""
    perf_curves: List[SCurve] = []
    cov_curves: List[SCurve] = []
    for selector in selectors:
        perf: Dict[str, float] = {}
        coverage: Dict[str, float] = {}
        for bench in benches:
            run = runner.run_selector(bench, selector, config)
            perf[bench.name] = run.ipc
            coverage[bench.name] = run.coverage
        perf_curves.append(SCurve(selector.name, relative(perf, baselines)))
        cov_curves.append(SCurve(selector.name, coverage))
    return perf_curves, cov_curves


def _no_mg_curve(runner: Runner, benches, config,
                 baselines: Dict[str, float]) -> SCurve:
    perf = {b.name: runner.baseline(b, config).ipc for b in benches}
    return SCurve("no-mini-graphs", relative(perf, baselines))


# ---------------------------------------------------------------------------
# Figure 3: serialization-blind selection
# ---------------------------------------------------------------------------

def fig3(runner: Runner, benches) -> ExperimentResult:
    """Struct-All vs Struct-None on the reduced and full machines."""
    result = ExperimentResult("FIG3 naive structural selectors")
    baselines = _full_baseline_ipcs(runner, benches)
    reduced = reduced_config()
    full = full_config()
    selectors = [StructAll(), StructNone()]

    perf_red, cov = _selector_curves(runner, benches, selectors, reduced,
                                     baselines)
    perf_red.insert(0, _no_mg_curve(runner, benches, reduced, baselines))
    result.groups["performance on reduced (rel. full baseline)"] = perf_red

    perf_full, _ = _selector_curves(runner, benches, selectors, full,
                                    baselines)
    result.groups["performance on full (rel. full baseline)"] = perf_full
    result.groups["coverage"] = cov

    all_red = result.curve(
        "performance on reduced (rel. full baseline)", "struct-all")
    none_red = result.curve(
        "performance on reduced (rel. full baseline)", "struct-none")
    result.notes.append(
        f"struct-all/struct-none cross on reduced: "
        f"{all_red.crossover_with(none_red)}")
    return result


# ---------------------------------------------------------------------------
# Figure 6 (and Figure 1): serialization-aware selection
# ---------------------------------------------------------------------------

def fig6(runner: Runner, benches) -> ExperimentResult:
    """All five selectors: reduced perf, full perf, coverage."""
    result = ExperimentResult("FIG6 serialization-aware selectors")
    baselines = _full_baseline_ipcs(runner, benches)
    reduced = reduced_config()
    full = full_config()
    static_selectors = [StructAll(), StructNone(), StructBounded(),
                        SlackProfileSelector()]

    for config, group in ((reduced, "performance on reduced"),
                          (full, "performance on full")):
        perf, cov = _selector_curves(runner, benches, static_selectors,
                                     config, baselines)
        dynamic_perf: Dict[str, float] = {}
        dynamic_cov: Dict[str, float] = {}
        for bench in benches:
            run = runner.run_slack_dynamic(bench, config)
            dynamic_perf[bench.name] = run.ipc
            dynamic_cov[bench.name] = run.coverage
        perf.append(SCurve("slack-dynamic",
                           relative(dynamic_perf, baselines)))
        perf.insert(0, _no_mg_curve(runner, benches, config, baselines))
        result.groups[f"{group} (rel. full baseline)"] = perf
        if config is reduced:
            cov.append(SCurve("slack-dynamic", dynamic_cov))
            result.groups["coverage"] = cov
    return result


def fig1(runner: Runner, benches) -> ExperimentResult:
    """Headline: Slack-Profile vs the naive selectors on the reduced machine."""
    result = ExperimentResult("FIG1 headline S-curve")
    baselines = _full_baseline_ipcs(runner, benches)
    reduced = reduced_config()
    selectors = [StructAll(), StructNone(), SlackProfileSelector()]
    perf, _ = _selector_curves(runner, benches, selectors, reduced,
                               baselines)
    perf.insert(0, _no_mg_curve(runner, benches, reduced, baselines))
    result.groups["performance on reduced (rel. full baseline)"] = perf
    slack = result.curve("performance on reduced (rel. full baseline)",
                         "slack-profile")
    result.notes.append(
        f"slack-profile mean relative performance: {slack.mean:.3f} "
        f"(paper: 1.02)")
    return result


# ---------------------------------------------------------------------------
# Figure 7: model component breakdowns
# ---------------------------------------------------------------------------

def fig7(runner: Runner, benches) -> ExperimentResult:
    """Slack-Profile and Slack-Dynamic ablations on the reduced machine."""
    result = ExperimentResult("FIG7 model breakdowns")
    baselines = _full_baseline_ipcs(runner, benches)
    reduced = reduced_config()

    profile_selectors = [StructAll(), StructNone(),
                         SlackProfileSelector("sial"),
                         SlackProfileSelector("delay"),
                         SlackProfileSelector("full")]
    perf, _ = _selector_curves(runner, benches, profile_selectors, reduced,
                               baselines)
    result.groups["slack-profile breakdown (reduced)"] = perf

    dynamic_variants = [
        ("slack-dynamic", dict(mode="full", outlining_penalty=True)),
        ("ideal-slack-dynamic", dict(mode="full", outlining_penalty=False)),
        ("ideal-slack-dynamic-delay",
         dict(mode="delay", outlining_penalty=False)),
        ("ideal-slack-dynamic-sial",
         dict(mode="sial", outlining_penalty=False)),
    ]
    curves: List[SCurve] = []
    for label, kwargs in dynamic_variants:
        perf_values: Dict[str, float] = {}
        for bench in benches:
            run = runner.run_slack_dynamic(bench, reduced, **kwargs)
            perf_values[bench.name] = run.ipc
        curves.append(SCurve(label, relative(perf_values, baselines)))
    result.groups["slack-dynamic breakdown (reduced)"] = curves
    return result


# ---------------------------------------------------------------------------
# Figure 9: slack profile robustness
# ---------------------------------------------------------------------------

def fig9_machines(runner: Runner, benches) -> ExperimentResult:
    """Cross-training across microarchitectures (Figure 9 top)."""
    result = ExperimentResult("FIG9 robustness to machine configuration")
    baselines = _full_baseline_ipcs(runner, benches)
    reduced = reduced_config()
    trainers = [("self (reduced)", reduced),
                ("cross 2-way", cross_2way_config()),
                ("cross 8-way", cross_8way_config()),
                ("cross dmem/4", cross_dmem4_config())]
    curves = []
    for label, train_config in trainers:
        perf: Dict[str, float] = {}
        for bench in benches:
            run = runner.run_selector(bench, SlackProfileSelector(), reduced,
                                      profile_config=train_config)
            perf[bench.name] = run.ipc
        curves.append(SCurve(label, relative(perf, baselines)))
    result.groups["slack-profile perf on reduced, by training machine"] = \
        curves
    self_curve, rest = curves[0], curves[1:]
    for curve in rest:
        gap = abs(curve.mean - self_curve.mean)
        result.notes.append(
            f"{curve.label}: |mean - self| = {gap:.3f}")
    return result


def fig9_inputs(runner: Runner, benches) -> ExperimentResult:
    """Cross-training across program inputs (Figure 9 bottom)."""
    result = ExperimentResult("FIG9 robustness to input data sets")
    baselines = _full_baseline_ipcs(runner, benches)
    reduced = reduced_config()
    curves = []
    for label, profile_input in (("self (train)", "train"),
                                 ("cross (ref)", "ref")):
        perf: Dict[str, float] = {}
        for bench in benches:
            run = runner.run_selector(bench, SlackProfileSelector(), reduced,
                                      profile_input=profile_input)
            perf[bench.name] = run.ipc
        curves.append(SCurve(label, relative(perf, baselines)))
    result.groups["slack-profile perf on reduced, by training input"] = \
        curves
    gap = abs(curves[1].mean - curves[0].mean)
    result.notes.append(f"cross-input |mean - self| = {gap:.3f} "
                        f"(paper: <2% absolute)")
    return result


# ---------------------------------------------------------------------------
# Figure 8: exhaustive limit study (delegates to repro.analysis)
# ---------------------------------------------------------------------------

def fig8(runner: Runner, benches) -> ExperimentResult:
    """Exhaustive 1024-subset limit study on the ADPCM coder (§5.4).

    The benchmark population argument is unused — the study is defined on
    one short-running program, as in the paper. Parallelized over subset
    masks when the runner carries ``jobs > 1``.
    """
    from ..analysis.limit_study import run_limit_study
    study = run_limit_study(runner, jobs=runner.jobs)
    result = ExperimentResult("FIG8 limit study (adpcm)")
    result.notes.append(study.render())
    return result


EXPERIMENTS = {
    "fig1": fig1,
    "fig3": fig3,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9-machines": fig9_machines,
    "fig9-inputs": fig9_inputs,
}


# ---------------------------------------------------------------------------
# Grid declarations: the same points the drivers above walk serially,
# expressed as repro.exec grid Points so --jobs can prewarm the artifact
# store in parallel before the driver replays them from cache.
# ---------------------------------------------------------------------------

def grid_points(name: str, benches) -> list:
    """The (bench × selector × machine) points behind one experiment."""
    from ..exec.grid import baseline_point, dynamic_point, selector_point
    points = []
    names = [b.name for b in benches]
    if name == "fig8":
        return points  # run_limit_study schedules its own subset tasks
    for bench in names:
        points.append(baseline_point(bench, "full"))

    def selectors_on(configs, selectors):
        for bench in names:
            for config in configs:
                for selector in selectors:
                    points.append(selector_point(bench, selector, config))

    if name == "fig1":
        points.extend(baseline_point(b, "reduced") for b in names)
        selectors_on(["reduced"], [StructAll(), StructNone(),
                                   SlackProfileSelector()])
    elif name == "fig3":
        points.extend(baseline_point(b, "reduced") for b in names)
        selectors_on(["reduced", "full"], [StructAll(), StructNone()])
    elif name == "fig6":
        for bench in names:
            for config in ("reduced", "full"):
                points.append(baseline_point(bench, config))
                points.append(dynamic_point(bench, config, mode="full",
                                            outlining_penalty=True))
        selectors_on(["reduced", "full"],
                     [StructAll(), StructNone(), StructBounded(),
                      SlackProfileSelector()])
    elif name == "fig7":
        selectors_on(["reduced"],
                     [StructAll(), StructNone(),
                      SlackProfileSelector("sial"),
                      SlackProfileSelector("delay"),
                      SlackProfileSelector("full")])
        for bench in names:
            for mode, penalty in (("full", True), ("full", False),
                                  ("delay", False), ("sial", False)):
                points.append(dynamic_point(bench, "reduced", mode=mode,
                                            outlining_penalty=penalty))
    elif name == "fig9-machines":
        for bench in names:
            for trainer in ("reduced", "cross-2way", "cross-8way",
                            "cross-dmem4"):
                points.append(selector_point(bench, SlackProfileSelector(),
                                             "reduced",
                                             profile_config=trainer))
    elif name == "fig9-inputs":
        for bench in names:
            for profile_input in ("train", "ref"):
                points.append(selector_point(bench, SlackProfileSelector(),
                                             "reduced",
                                             profile_input=profile_input))
    return points


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: regenerate one figure (or all) and print it."""
    parser = argparse.ArgumentParser(
        description="Regenerate a paper figure's data series.")
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--suites", nargs="*", default=None,
                        help="restrict to suites (spec media comm embedded "
                             "synth)")
    parser.add_argument("--limit", type=int, default=None,
                        help="use only the first N benchmarks")
    parser.add_argument("--no-synthetic", action="store_true")
    parser.add_argument("--full-tables", action="store_true",
                        help="print complete S-curve tables")
    parser.add_argument("--plot", action="store_true",
                        help="draw terminal S-curve plots per group")
    parser.add_argument("--budget", type=int, default=512,
                        help="MGT template budget")
    parser.add_argument("--jobs", type=str, default="1",
                        help="worker processes for the experiment grid "
                             "(1 = serial in-process), or 'threads:N' for "
                             "batched native dispatch: each wave of ready "
                             "timing points runs as one C call over N "
                             "threads (in-process, no persistent store "
                             "needed; see docs/performance.md)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the scheduler progress stream on "
                             "stderr (telemetry, if enabled, still "
                             "records every event)")
    parser.add_argument("--check", action="store_true",
                        help="add a lockstep+lint validation node per "
                             "(program, selector) point; any divergence "
                             "fails the run (see docs/correctness.md)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent artifact store directory "
                             "(default: $REPRO_CACHE_DIR, else none)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir/$REPRO_CACHE_DIR; "
                             "memory-only memoization")
    parser.add_argument("--store-backend", default=None,
                        choices=["dir", "sqlite"],
                        help="artifact store index backend (default: "
                             "$REPRO_STORE_BACKEND, else dir)")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="journal DAG completion to PATH so a killed "
                             "run resumes with `repro resume PATH` "
                             "(single figure only; see docs/distributed.md)")
    parser.add_argument("--dispatch", default=None, metavar="SPEC",
                        help="dispatch backend: 'local' (default) or "
                             "'workers:HOST:PORT' / 'workers:/path.sock' "
                             "to coordinate a `repro worker` fleet")
    parser.add_argument("--save-json", default=None, metavar="PATH",
                        help="archive the regenerated curves as JSON "
                             "(see repro.harness.reporting)")
    parser.add_argument("--telemetry", default=None, metavar="PATH",
                        help="write run telemetry (manifest + Chrome "
                             "trace-event JSONL) to PATH; see "
                             "docs/observability.md")
    args = parser.parse_args(argv)

    import sys as _sys

    from ..exec import ArtifactStore, ProgressPrinter, resolve_cache_dir
    from ..exec.grid import parse_jobs, run_points

    try:
        jobs, threads = parse_jobs(args.jobs)
    except ValueError as error:
        print(f"experiments: {error}", file=_sys.stderr)
        return 2
    cache_dir = resolve_cache_dir(args.cache_dir, args.no_cache)
    if args.ledger and args.experiment == "all":
        print("experiments: --ledger needs a single figure (one ledger "
              "describes one workload)", file=_sys.stderr)
        return 2
    if (args.ledger or args.dispatch) and cache_dir is None:
        print("experiments: --ledger/--dispatch need a persistent store; "
              "pass --cache-dir or set $REPRO_CACHE_DIR",
              file=_sys.stderr)
        return 2
    scratch = None
    if jobs > 1 and cache_dir is None:
        # Workers hand artifacts back through the store, so parallel
        # execution needs a disk layer even when the user asked for no
        # persistent cache; use a run-scoped scratch directory.
        import tempfile
        scratch = tempfile.TemporaryDirectory(prefix="repro-exec-")
        cache_dir = scratch.name

    benches = _population(args.suites, args.limit,
                          include_synthetic=not args.no_synthetic)
    runner = Runner(budget=args.budget,
                    store=ArtifactStore(cache_dir,
                                        backend=args.store_backend),
                    jobs=jobs)
    telemetry = None
    if args.telemetry:
        from ..obs.telemetry import (attach_store_telemetry, run_manifest,
                                     scheduler_telemetry, TelemetryWriter)
        telemetry = TelemetryWriter(
            args.telemetry,
            run_manifest(label=f"experiments-{args.experiment}",
                         argv=argv if argv is not None else _sys.argv[1:]))
        attach_store_telemetry(runner.store, telemetry)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    results = []
    try:
        for name in names:
            start = time.time()
            if jobs > 1 or threads or args.check or args.ledger \
                    or args.dispatch:
                points = grid_points(name, benches)
                if points:
                    from ..exec.dag import TaskError
                    on_event = None if args.quiet else ProgressPrinter()
                    if telemetry is not None:
                        on_event = scheduler_telemetry(telemetry, on_event)
                    ledger = None
                    if args.ledger:
                        from ..dist.resume import (
                            open_ledger, workload_for_points,
                        )
                        ledger = open_ledger(
                            args.ledger, runner,
                            workload_for_points(points, check=args.check,
                                                label=name),
                            extra={"jobs": jobs})
                    dispatch = None
                    if args.dispatch:
                        from ..dist.dispatch import make_dispatch
                        dispatch = make_dispatch(args.dispatch,
                                                 jobs=jobs)
                    try:
                        report = run_points(runner, points, jobs=jobs,
                                            on_event=on_event,
                                            check=args.check,
                                            raise_on_failure=args.check,
                                            ledger=ledger,
                                            dispatch=dispatch,
                                            threads=threads)
                    except TaskError as error:
                        print(f"experiments: check failed: {error}",
                              file=_sys.stderr)
                        return 1
                    finally:
                        if ledger is not None:
                            ledger.close()
                    if not args.quiet:
                        print(report.render(), file=_sys.stderr)
            if telemetry is not None:
                with telemetry.span(name, "experiment"):
                    result = EXPERIMENTS[name](runner, benches)
            else:
                result = EXPERIMENTS[name](runner, benches)
            results.append(result)
            print(result.render(full_tables=args.full_tables))
            if args.plot:
                from .plot import plot_scurves
                for group, curves in result.groups.items():
                    print()
                    print(plot_scurves(curves, title=group, reference=1.0))
            print(f"[{name}: {time.time() - start:.1f}s, "
                  f"{len(benches)} programs]\n")
    finally:
        if telemetry is not None:
            telemetry.close()
            print(f"[telemetry] {telemetry.events_written} events -> "
                  f"{telemetry.path}", file=_sys.stderr)
        if scratch is not None:
            scratch.cleanup()
    if runner.store.persistent and scratch is None:
        print(runner.store.stats.render(), file=_sys.stderr)
    if args.save_json:
        from .reporting import save_results
        path = save_results(results, args.save_json)
        print(f"[saved {len(results)} experiment(s) to {path}]",
              file=_sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
