"""``repro bench``: the performance harness for the simulator itself.

Every experiment in the reproduction bottlenecks on
:meth:`repro.pipeline.core.OoOCore.run`, so simulator throughput is a
first-class, regression-gated metric. This module runs a fixed
benchmark × selector matrix, times the *timing run only* (traces, plans
and trace folding are prepared — and memoized — before the stopwatch
starts), and reports per-point and aggregate:

``wall_s``
    Wall-clock seconds of ``OoOCore.run()``.
``cycles`` / ``ipc`` / ``coverage``
    The simulated results, recorded so a perf report doubles as a
    fidelity check: two BENCH files for the same matrix must agree on
    these byte-for-byte, whatever their KIPS say.
``kips``
    Thousands of trace records retired per wall-second — committed
    *original-program* instructions (a retired mini-graph handle counts
    its constituents), so the figure is comparable across selectors.

Results are written to ``BENCH_<label>.json`` so the perf trajectory of
the simulator is part of the repository history, and
:func:`check_against` gates CI on both fidelity (exact) and throughput
(tolerance). See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..pipeline.config import MachineConfig, config_by_name
from ..pipeline.core import OoOCore
from .runner import Runner

#: The default matrix: a deliberate mix of compute-bound (crafty, fft),
#: branchy (gzip, dijkstra), serial (g721pred) and memory-bound (mcf)
#: workloads so aggregate KIPS cannot be gamed by one behaviour class.
DEFAULT_BENCHMARKS = ("crc32", "dijkstra", "fft", "g721pred", "mcf",
                      "gzip", "crafty", "patricia")
DEFAULT_SELECTORS = ("none", "struct-all", "slack-profile")

#: ``--quick`` matrix for CI smoke runs.
QUICK_BENCHMARKS = ("crc32", "dijkstra", "mcf")
QUICK_SELECTORS = ("none", "struct-all")

#: Observed-run modes: a singleton profiling run with a
#: :class:`~repro.minigraph.slack.SlackCollector` attached. ``observed``
#: takes whatever path the core picks (the compiled kernel's event tap
#: where available); ``observed-py`` pins the Python reference loop with
#: in-loop callbacks — the pre-event-tap behaviour, kept as the
#: denominator for the speedup gate in CI (see ``profile-smoke``).
OBSERVED_SELECTORS = ("observed", "observed-py")

SCHEMA_VERSION = 1


@dataclass
class BenchPoint:
    """One benchmark × selector measurement."""

    bench: str
    selector: str
    config: str
    records: int          # records in the (possibly folded) trace
    instructions: int     # committed original-program instructions
    cycles: int
    ipc: float
    coverage: float
    wall_s: float
    kips: float


@dataclass
class BenchReport:
    """A full matrix run, serializable to ``BENCH_<label>.json``."""

    label: str
    schema: int = SCHEMA_VERSION
    created: str = ""
    python: str = ""
    platform: str = ""
    config: str = "reduced"
    repeat: int = 1
    points: List[BenchPoint] = field(default_factory=list)
    total_instructions: int = 0
    total_wall_s: float = 0.0
    kips: float = 0.0
    peak_rss_kb: int = 0
    #: Run manifest (git SHA, config digest, code-version salt, …) shared
    #: with the telemetry subsystem; empty in pre-manifest reports.
    manifest: Dict = field(default_factory=dict)

    def finalize(self) -> None:
        self.total_instructions = sum(p.instructions for p in self.points)
        self.total_wall_s = sum(p.wall_s for p in self.points)
        self.kips = (self.total_instructions / self.total_wall_s / 1e3
                     if self.total_wall_s else 0.0)
        self.peak_rss_kb = peak_rss_kb()

    def to_dict(self) -> Dict:
        return asdict(self)

    def render(self) -> str:
        lines = [f"{'bench':<10s} {'selector':<14s} {'cycles':>9s} "
                 f"{'ipc':>7s} {'cover':>7s} {'wall_s':>8s} {'KIPS':>8s}"]
        for p in self.points:
            lines.append(
                f"{p.bench:<10s} {p.selector:<14s} {p.cycles:>9d} "
                f"{p.ipc:>7.3f} {p.coverage:>7.1%} {p.wall_s:>8.3f} "
                f"{p.kips:>8.1f}")
        lines.append(
            f"{'total':<10s} {'':<14s} {'':>9s} {'':>7s} {'':>7s} "
            f"{self.total_wall_s:>8.3f} {self.kips:>8.1f}")
        lines.append(f"peak RSS: {self.peak_rss_kb} kB   "
                     f"({self.python}, {self.platform})")
        return "\n".join(lines)


def peak_rss_kb() -> int:
    """Peak resident set size of this process in kB (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kB, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        peak //= 1024
    return int(peak)


def _prepare_point(runner: Runner, bench: str, selector: str):
    """Build the record stream for one point (not timed)."""
    trace = runner.trace(bench)
    if selector == "none" or selector in OBSERVED_SELECTORS:
        return trace.packed()
    from ..minigraph.transform import fold_trace
    sel = _selector_by_name(selector)
    plan = runner.plan(bench, sel)
    return fold_trace(trace, plan)


def _make_core(runner: Runner, bench: str, selector: str, records,
               config: MachineConfig) -> OoOCore:
    """The core for one timed run; observed modes attach a collector."""
    if selector not in OBSERVED_SELECTORS:
        return OoOCore(config, records, warm_caches=True)
    from ..minigraph.slack import SlackCollector
    collector = SlackCollector(runner._bench(bench).program("train"),
                               config_name=config.name, input_name="train")
    core = OoOCore(config, records, collector=collector, warm_caches=True)
    if selector == "observed-py":
        core._ctrace = None
        core._want_tap = False
    return core


def _selector_by_name(name: str):
    from ..minigraph.selectors import (
        SlackProfileSelector, StructAll, StructBounded, StructNone,
    )
    table = {"struct-all": StructAll, "struct-none": StructNone,
             "struct-bounded": StructBounded,
             "slack-profile": SlackProfileSelector}
    try:
        return table[name]()
    except KeyError:
        raise ValueError(f"unknown bench selector {name!r} "
                         f"(choose from none, {', '.join(sorted(table))})") \
            from None


def run_bench(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
              selectors: Sequence[str] = DEFAULT_SELECTORS,
              config: Optional[MachineConfig] = None,
              label: str = "local",
              repeat: int = 1,
              runner: Optional[Runner] = None,
              log: Optional[Callable[[str], None]] = None,
              telemetry=None) -> BenchReport:
    """Run the matrix and return a :class:`BenchReport`.

    ``repeat`` times each point's ``OoOCore.run()`` that many times and
    keeps the *fastest* wall time (simulated results are deterministic,
    so repeats only tighten the clock; cycles/IPC/coverage come from the
    first run and are asserted identical across repeats).

    ``telemetry`` optionally takes a
    :class:`~repro.obs.telemetry.TelemetryWriter`: every point's timed
    region becomes a ``bench`` span and the report embeds the writer's
    manifest (without a writer a fresh manifest is built directly).
    """
    from ..obs.telemetry import run_manifest
    if config is None:
        config = config_by_name("reduced")
    if runner is None:
        runner = Runner()
    report = BenchReport(
        label=label,
        created=time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        python=platform.python_version(),
        platform=f"{platform.system()}-{platform.machine()}",
        config=config.name, repeat=repeat,
        manifest=(telemetry.manifest if telemetry is not None
                  else run_manifest(config=config, label=label)))
    for bench in benchmarks:
        for selector in selectors:
            records = _prepare_point(runner, bench, selector)
            best: Optional[Tuple[float, int, float, float, int]] = None
            for _ in range(max(1, repeat)):
                core = _make_core(runner, bench, selector, records, config)
                start = time.perf_counter()
                stats = core.run()
                wall = time.perf_counter() - start
                point = (wall, stats.cycles, stats.ipc, stats.coverage,
                         stats.original_committed)
                if best is not None and point[1:] != best[1:]:
                    raise RuntimeError(
                        f"{bench}/{selector}: non-deterministic rerun "
                        f"({point[1:]} vs {best[1:]})")
                if best is None or wall < best[0]:
                    best = point
            wall, cycles, ipc, coverage, insts = best
            if telemetry is not None:
                telemetry.event(
                    f"{bench}/{selector}", "bench", "X",
                    ts=max(0, telemetry.now_us() - int(wall * 1e6)),
                    dur=int(wall * 1e6),
                    args={"cycles": cycles, "ipc": ipc,
                          "instructions": insts,
                          "kips": insts / wall / 1e3 if wall else 0.0})
            report.points.append(BenchPoint(
                bench=bench, selector=selector, config=config.name,
                records=len(records), instructions=insts, cycles=cycles,
                ipc=ipc, coverage=coverage, wall_s=wall,
                kips=insts / wall / 1e3 if wall else 0.0))
            if log is not None:
                p = report.points[-1]
                log(f"[bench] {bench}/{selector}: {p.kips:.1f} KIPS "
                    f"({p.cycles} cycles, ipc {p.ipc:.3f})")
    report.finalize()
    return report


def write_report(report: BenchReport, out_dir: Path = Path(".")) -> Path:
    """Write ``BENCH_<label>.json`` and return its path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report.label}.json"
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path) -> BenchReport:
    """Load a ``BENCH_*.json`` back into a :class:`BenchReport`."""
    with open(path) as handle:
        data = json.load(handle)
    points = [BenchPoint(**p) for p in data.pop("points", [])]
    known = {f for f in BenchReport.__dataclass_fields__}
    report = BenchReport(**{k: v for k, v in data.items() if k in known})
    report.points = points
    return report


# -- batched-dispatch bench ---------------------------------------------------
#
# ``repro bench --batch`` measures what the batched native dispatcher
# buys over the pre-existing per-point process dispatch: the same
# benchmark x config matrix is run once as one-task-per-point through a
# ProcessPoolExecutor (spec pickling, worker-side trace rehydration,
# result round-trip — the real ``--jobs N`` cost per timing point) and
# once as a single ``repro_run_batch`` call over the same number of C
# threads. Both sides simulate identical work (asserted on committed
# instruction counts), so aggregate KIPS is directly comparable and the
# ratio is pure dispatch overhead. CI gates the committed
# ``BENCH_batch.json`` with :func:`check_batch_report`.

BATCH_SCHEMA_VERSION = 1

#: Both record-stream shapes the batch path serves: plain singleton
#: timing runs, and tap-observed profiling runs (SlackCollector riding
#: the kernel's event tap).
BATCH_MODES = ("unobserved", "observed")


@dataclass
class BatchBenchMode:
    """One mode's per-point-vs-batched comparison."""

    mode: str
    points: int
    instructions: int
    perpoint_wall_s: float
    batch_wall_s: float
    perpoint_kips: float
    batch_kips: float
    speedup: float


@dataclass
class BatchBenchReport:
    """Serialized to ``BENCH_batch.json``."""

    label: str = "batch"
    schema: int = BATCH_SCHEMA_VERSION
    created: str = ""
    python: str = ""
    platform: str = ""
    threads: int = 0
    modes: List[BatchBenchMode] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return asdict(self)

    def render(self) -> str:
        lines = [f"{'mode':<12s} {'points':>6s} {'perpoint':>10s} "
                 f"{'batched':>10s} {'speedup':>8s}   (KIPS, "
                 f"{self.threads} threads)"]
        for m in self.modes:
            lines.append(f"{m.mode:<12s} {m.points:>6d} "
                         f"{m.perpoint_kips:>10.1f} {m.batch_kips:>10.1f} "
                         f"{m.speedup:>7.1f}x")
        return "\n".join(lines)


#: Per-worker runner cache (mirrors ``repro.exec.tasks._RUNNERS``): the
#: per-point baseline gets the same intra-worker memoization the real
#: process path enjoys, so the comparison is not rigged against it.
_DISPATCH_RUNNERS: Dict[str, Runner] = {}


def _dispatch_point(spec: Dict) -> int:
    """One per-point dispatch unit: rebuild state, run, return insts."""
    cache_dir = spec["cache_dir"]
    runner = _DISPATCH_RUNNERS.get(cache_dir)
    if runner is None:
        from ..exec.store import ArtifactStore
        runner = Runner(store=ArtifactStore(cache_dir))
        _DISPATCH_RUNNERS[cache_dir] = runner
    config = config_by_name(spec["config"])
    records = _prepare_point(runner, spec["bench"], spec["selector"])
    core = _make_core(runner, spec["bench"], spec["selector"], records,
                      config)
    return core.run().original_committed


def run_batch_bench(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                    threads: int = 0,
                    label: str = "batch",
                    log: Optional[Callable[[str], None]] = None
                    ) -> BatchBenchReport:
    """Per-point process dispatch vs one batched native call."""
    import os
    import tempfile
    from concurrent.futures import ProcessPoolExecutor

    from ..pipeline import ckern
    if not ckern.available():
        raise RuntimeError("batch bench needs the compiled kernel "
                           "(C compiler available, REPRO_PURE_PY unset)")
    if threads <= 0:
        threads = max(1, min(8, (os.cpu_count() or 2) - 1))
    report = BatchBenchReport(
        label=label,
        created=time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        python=platform.python_version(),
        platform=f"{platform.system()}-{platform.machine()}",
        threads=threads)
    configs = ("reduced", "full")
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
        from ..exec.store import ArtifactStore
        runner = Runner(store=ArtifactStore(scratch))
        for bench in benchmarks:
            runner.trace(bench)  # shared persistent prewarm (both sides)
        for mode in BATCH_MODES:
            selector = "none" if mode == "unobserved" else "observed"
            specs = [{"cache_dir": scratch, "bench": bench,
                      "config": config, "selector": selector}
                     for bench in benchmarks for config in configs]

            start = time.perf_counter()
            with ProcessPoolExecutor(max_workers=threads) as pool:
                perpoint_insts = sum(pool.map(_dispatch_point, specs))
            perpoint_wall = time.perf_counter() - start

            cores = [_make_core(runner, spec["bench"], spec["selector"],
                                _prepare_point(runner, spec["bench"],
                                               spec["selector"]),
                                config_by_name(spec["config"]))
                     for spec in specs]
            entries = [core.kernel_batch_entry(200_000_000)
                       for core in cores]
            start = time.perf_counter()
            results = ckern.run_batch(entries, threads)
            batch_wall = time.perf_counter() - start
            batch_insts = 0
            for core, point in zip(cores, results):
                stats = core.apply_kernel_result(*point)
                if stats is None:
                    raise RuntimeError("batched point fell back mid-bench")
                batch_insts += stats.original_committed
            if batch_insts != perpoint_insts:
                raise RuntimeError(
                    f"{mode}: batched work diverged from per-point "
                    f"({batch_insts} != {perpoint_insts} instructions)")

            entry = BatchBenchMode(
                mode=mode, points=len(specs), instructions=batch_insts,
                perpoint_wall_s=perpoint_wall, batch_wall_s=batch_wall,
                perpoint_kips=perpoint_insts / perpoint_wall / 1e3
                if perpoint_wall else 0.0,
                batch_kips=batch_insts / batch_wall / 1e3
                if batch_wall else 0.0,
                speedup=perpoint_wall / batch_wall if batch_wall else 0.0)
            report.modes.append(entry)
            if log is not None:
                log(f"[bench] batch/{mode}: {entry.batch_kips:.1f} KIPS "
                    f"batched vs {entry.perpoint_kips:.1f} per-point "
                    f"({entry.speedup:.1f}x, {len(specs)} points)")
    return report


def write_batch_report(report: BatchBenchReport,
                       out_dir: Path = Path(".")) -> Path:
    """Write ``BENCH_<label>.json`` for a batch report."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report.label}.json"
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_batch_report(path) -> BatchBenchReport:
    """Load a batch report back from JSON."""
    with open(path) as handle:
        data = json.load(handle)
    modes = [BatchBenchMode(**m) for m in data.pop("modes", [])]
    known = set(BatchBenchReport.__dataclass_fields__)
    report = BatchBenchReport(
        **{k: v for k, v in data.items() if k in known})
    report.modes = modes
    return report


def check_batch_report(report: BatchBenchReport,
                       min_speedup: float = 3.0) -> List[str]:
    """Gate: batched dispatch must beat per-point by ``min_speedup``.

    Applied to both modes — the tap-observed batch pays event-buffer
    allocation and post-hoc decode, and must still clear the bar.
    """
    failures: List[str] = []
    if not report.modes:
        return ["batch report has no modes"]
    for mode in report.modes:
        if mode.speedup < min_speedup:
            failures.append(
                f"{mode.mode}: batched dispatch only {mode.speedup:.2f}x "
                f"per-point (gate {min_speedup:.1f}x, "
                f"{mode.batch_kips:.1f} vs {mode.perpoint_kips:.1f} KIPS)")
    return failures


def check_against(current: BenchReport, baseline: BenchReport,
                  tolerance: float = 0.20) -> List[str]:
    """Regression-gate ``current`` against a committed ``baseline``.

    Returns a list of failures (empty = pass):

    * fidelity — every point present in both reports must agree exactly
      on cycles, IPC, and coverage (the simulated results are
      deterministic; any drift is a correctness bug, not noise);
    * throughput — aggregate KIPS must not fall more than ``tolerance``
      below the baseline (per-point KIPS is reported but not gated: it
      is too noisy on shared CI runners).
    """
    failures: List[str] = []
    base_points = {(p.bench, p.selector, p.config): p
                   for p in baseline.points}
    compared = 0
    for point in current.points:
        base = base_points.get((point.bench, point.selector, point.config))
        if base is None:
            continue
        compared += 1
        for fld in ("cycles", "ipc", "coverage", "instructions"):
            got, want = getattr(point, fld), getattr(base, fld)
            if got != want:
                failures.append(
                    f"{point.bench}/{point.selector}: {fld} diverged "
                    f"from baseline ({got!r} != {want!r})")
    if not compared:
        failures.append("no overlapping matrix points with the baseline")
        return failures
    if baseline.kips > 0:
        floor = baseline.kips * (1.0 - tolerance)
        if current.kips < floor:
            failures.append(
                f"aggregate KIPS regressed: {current.kips:.1f} < "
                f"{floor:.1f} (baseline {baseline.kips:.1f} "
                f"- {tolerance:.0%})")
    return failures


# ---------------------------------------------------------------------
# Plan-construction bench (``repro bench --plan``)
# ---------------------------------------------------------------------
#
# The plan-kernel counterpart of the batch bench above: instead of the
# cycle loop, it times the three plan-construction stages the compiled
# kernel accelerates — post-hoc slack-profile build from the event tap,
# candidate enumeration, and selector scoring — native against the
# pure-Python reference (forced in-process via ``REPRO_PURE_PY``; both
# sides run the same entry points, so the comparison is the real
# fallback path, not a strawman). Every point asserts bit-identity
# (pickled profiles, pickled candidate lists, selected pools) before
# its timings count, so a plan-bench report doubles as a parity check.

PLAN_SCHEMA_VERSION = 1

#: Stages in report order; ``total`` rows aggregate all three.
PLAN_STAGES = ("profile", "enumerate", "score")


@dataclass
class PlanBenchPoint:
    """One benchmark's native-vs-Python plan-construction comparison."""

    bench: str
    n_static: int
    n_candidates: int
    tap_words: int
    profile_py_ms: float
    profile_native_ms: float
    enumerate_py_ms: float
    enumerate_native_ms: float
    score_py_ms: float
    score_native_ms: float
    total_py_ms: float
    total_native_ms: float
    speedup: float


@dataclass
class PlanBenchReport:
    """Serialized to ``BENCH_<label>.json`` (label default ``plankern``)."""

    label: str = "plankern"
    schema: int = PLAN_SCHEMA_VERSION
    created: str = ""
    python: str = ""
    platform: str = ""
    config: str = "reduced"
    repeat: int = 3
    max_mg_size: int = 4
    max_ext_inputs: int = 3
    points: List[PlanBenchPoint] = field(default_factory=list)
    total_py_ms: float = 0.0
    total_native_ms: float = 0.0
    speedup: float = 0.0

    def finalize(self) -> None:
        self.total_py_ms = sum(p.total_py_ms for p in self.points)
        self.total_native_ms = sum(p.total_native_ms for p in self.points)
        self.speedup = (self.total_py_ms / self.total_native_ms
                        if self.total_native_ms else 0.0)

    def to_dict(self) -> Dict:
        return asdict(self)

    def render(self) -> str:
        lines = [f"{'bench':<10s} {'static':>6s} {'cands':>6s} "
                 f"{'profile':>9s} {'enum':>9s} {'score':>9s} "
                 f"{'total':>13s} {'speedup':>8s}   (py/native ms)"]
        for p in self.points:
            lines.append(
                f"{p.bench:<10s} {p.n_static:>6d} {p.n_candidates:>6d} "
                f"{p.profile_py_ms:>4.1f}/{p.profile_native_ms:<4.2f} "
                f"{p.enumerate_py_ms:>4.1f}/{p.enumerate_native_ms:<4.2f} "
                f"{p.score_py_ms:>4.2f}/{p.score_native_ms:<4.2f} "
                f"{p.total_py_ms:>6.1f}/{p.total_native_ms:<6.2f} "
                f"{p.speedup:>7.1f}x")
        lines.append(f"{'total':<10s} {'':>6s} {'':>6s} {'':>9s} {'':>9s} "
                     f"{'':>9s} {self.total_py_ms:>6.1f}/"
                     f"{self.total_native_ms:<6.2f} {self.speedup:>7.1f}x")
        lines.append(f"({self.python}, {self.platform}, "
                     f"repeat {self.repeat}, keep fastest)")
        return "\n".join(lines)


class _PurePy:
    """Force the pure-Python reference path inside a ``with`` block.

    ``ckern.available()`` re-reads ``REPRO_PURE_PY`` on every call, so
    flipping the environment variable in-process is enough to route
    every plan entry point (profile build, enumeration, scoring, tap
    fold) through its reference implementation.
    """

    def __enter__(self):
        import os
        self._prior = os.environ.get("REPRO_PURE_PY")
        os.environ["REPRO_PURE_PY"] = "1"
        return self

    def __exit__(self, *exc):
        import os
        if self._prior is None:
            del os.environ["REPRO_PURE_PY"]
        else:
            os.environ["REPRO_PURE_PY"] = self._prior
        return False


def _best_of(fn: Callable[[], object], repeat: int) -> float:
    """Fastest-of-N wall milliseconds for ``fn()`` (N >= 1)."""
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def run_plan_bench(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                   label: str = "plankern",
                   repeat: int = 3,
                   log: Optional[Callable[[str], None]] = None
                   ) -> PlanBenchReport:
    """Native vs pure-Python plan construction over the golden matrix.

    For each benchmark, one kernel profiling run captures the event-tap
    log (not timed); the stopwatch then covers (a) rebuilding the slack
    profile from that log, (b) enumerating candidates — materialized to
    ``Candidate`` objects on both legs, so lazy rehydration is charged
    to the native side — and (c) scoring the full site list through
    ``SlackProfileSelector.build_pool``. Parity between the legs is
    asserted before any timing is recorded.
    """
    import pickle
    import tempfile

    from ..exec.store import ArtifactStore
    from ..minigraph import candidates as candidates_mod
    from ..minigraph.candidates import enumerate_candidates
    from ..minigraph.selectors import SlackProfileSelector
    from ..minigraph.slack import SlackCollector
    from ..minigraph.templates import build_templates
    from ..pipeline import ckern

    if not ckern.available():
        raise RuntimeError("plan bench needs the compiled kernel "
                           "(C compiler available, REPRO_PURE_PY unset)")
    config = config_by_name("reduced")
    report = PlanBenchReport(
        label=label,
        created=time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        python=platform.python_version(),
        platform=f"{platform.system()}-{platform.machine()}",
        config=config.name, repeat=repeat)
    with tempfile.TemporaryDirectory(prefix="repro-planbench-") as scratch:
        runner = Runner(store=ArtifactStore(scratch))
        for name in benchmarks:
            bench = runner._bench(name)
            program = bench.program("train")

            # -- capture one tap event log (not timed) ------------------
            core, _finalize = runner.profile_prepared(bench, config,
                                                      "train")
            entry = core.kernel_batch_entry(200_000_000)
            if entry is None:
                raise RuntimeError(f"{name}: profiling core is not "
                                   f"kernel-eligible")
            (rc, out, events, n_words, overflowed), = \
                ckern.run_batch([entry], 1)
            if rc != ckern.RC_OK or overflowed:
                raise RuntimeError(f"{name}: tap capture failed (rc={rc})")
            committed = out[ckern.OUT_SLOTS_COMMITTED]
            packed = core.records

            # -- stage 1: profile build from the event log --------------
            def build_profile():
                collector = SlackCollector(program,
                                           config_name=config.name,
                                           input_name="train")
                collector.ingest_ckern_tap(packed, events, n_words,
                                           committed)
                return collector.profile()

            profile_native = build_profile()
            profile_ms = _best_of(build_profile, repeat)
            with _PurePy():
                profile_py = build_profile()
                profile_py_ms = _best_of(build_profile, repeat)
            if pickle.dumps(profile_native) != pickle.dumps(profile_py):
                raise RuntimeError(f"{name}: native profile diverged "
                                   f"from the Python reference")

            # -- stage 2: candidate enumeration -------------------------
            def enumerate_fresh():
                # Charge the native leg its full cost: packed-column
                # build (caches cleared) plus Candidate rehydration.
                candidates_mod._STATIC_CACHE.clear()
                candidates_mod._PACK_CACHE.clear()
                return list(enumerate_candidates(
                    program, max_size=report.max_mg_size,
                    max_ext_inputs=report.max_ext_inputs))

            candidates = enumerate_candidates(
                program, max_size=report.max_mg_size,
                max_ext_inputs=report.max_ext_inputs)
            enum_ms = _best_of(enumerate_fresh, repeat)
            with _PurePy():
                candidates_py = enumerate_fresh()
                enum_py_ms = _best_of(enumerate_fresh, repeat)
            if pickle.dumps(list(candidates)) != pickle.dumps(candidates_py):
                raise RuntimeError(f"{name}: native enumeration diverged "
                                   f"from the Python reference")

            # -- stage 3: selector scoring ------------------------------
            freq_counts = runner.trace(bench, "train").dynamic_count_of()
            templates = build_templates(candidates, freq_counts)
            sites = [site for template in templates
                     for site in template.sites]
            selector = SlackProfileSelector()

            def score():
                return selector.build_pool(sites, profile_native,
                                           candidates)

            pool_native = score()
            score_ms = _best_of(score, repeat)
            with _PurePy():
                pool_py = score()
                score_py_ms = _best_of(score, repeat)
            if [site.id for site in pool_native] != \
                    [site.id for site in pool_py]:
                raise RuntimeError(f"{name}: native scoring diverged "
                                   f"from the Python reference")

            total_py = profile_py_ms + enum_py_ms + score_py_ms
            total_native = profile_ms + enum_ms + score_ms
            point = PlanBenchPoint(
                bench=name, n_static=len(program),
                n_candidates=len(candidates), tap_words=n_words,
                profile_py_ms=profile_py_ms, profile_native_ms=profile_ms,
                enumerate_py_ms=enum_py_ms, enumerate_native_ms=enum_ms,
                score_py_ms=score_py_ms, score_native_ms=score_ms,
                total_py_ms=total_py, total_native_ms=total_native,
                speedup=total_py / total_native if total_native else 0.0)
            report.points.append(point)
            if log is not None:
                log(f"[bench] plan/{name}: {point.speedup:.1f}x "
                    f"({total_py:.1f} -> {total_native:.2f} ms, "
                    f"{len(candidates)} candidates, {n_words} tap words)")
    report.finalize()
    return report


def write_plan_report(report: PlanBenchReport,
                      out_dir: Path = Path(".")) -> Path:
    """Write ``BENCH_<label>.json`` for a plan report."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report.label}.json"
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_plan_report(path) -> PlanBenchReport:
    """Load a plan report back from JSON."""
    with open(path) as handle:
        data = json.load(handle)
    points = [PlanBenchPoint(**p) for p in data.pop("points", [])]
    known = set(PlanBenchReport.__dataclass_fields__)
    report = PlanBenchReport(
        **{k: v for k, v in data.items() if k in known})
    report.points = points
    return report


def check_plan_report(report: PlanBenchReport,
                      min_speedup: float = 3.0) -> List[str]:
    """Gate: native plan construction must beat Python per point.

    Per point rather than in aggregate so a large benchmark cannot
    amortize a regression on a small one; the profile-build stage
    scales with the dynamic event log while enumeration and scoring
    scale with the static program, so every point clears the bar on
    its own.
    """
    failures: List[str] = []
    if not report.points:
        return ["plan report has no points"]
    for point in report.points:
        if point.speedup < min_speedup:
            failures.append(
                f"{point.bench}: native plan construction only "
                f"{point.speedup:.2f}x the Python reference "
                f"(gate {min_speedup:.1f}x, {point.total_py_ms:.1f} vs "
                f"{point.total_native_ms:.2f} ms)")
    return failures
