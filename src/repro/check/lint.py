"""Static invariant linting of :class:`MiniGraphPlan` objects.

The paper's structural contract (§2) is what makes a mini-graph
hardware-legal: ≤4 constituents, ≤3 external register inputs, ≤1 live
register output, ≤1 memory operation, ≤1 control transfer (which must be
the final constituent), all confined to one basic block. A selector that
violates any of these produces plans the MGT could never encode — and
would silently skew IPC results.

:func:`lint_plan` audits a plan against that contract *and* against
internal consistency: sites must not overlap, each candidate's stored
interface (``ext_inputs``/``output``/``edges``/``serialization``) must
match a fresh recomputation from the program (dataflow closure), and each
site's template must carry the candidate's canonical shape. It is pure
and returns a list of :class:`PlanIssue`; :func:`check_plan` is the
raising wrapper used as a library assertion (see
``repro.minigraph.selectors.make_plan(verify=True)`` and the
``REPRO_CHECK_PLANS`` environment variable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from ..isa import opcodes as oc
from ..isa.program import Program
from ..minigraph.candidates import MAX_EXT_INPUTS, MAX_MG_SIZE
from ..minigraph.dataflow import (
    group_interface, internal_edges, liveness,
)
from ..minigraph.selection import MiniGraphPlan
from ..minigraph.serialization import classify
from ..minigraph.templates import canonical_key

_AGGREGABLE = (oc.OC_SIMPLE, oc.OC_LOAD, oc.OC_STORE, oc.OC_BRANCH)


@dataclass(frozen=True)
class PlanIssue:
    """One invariant violation found in a plan."""

    site_id: int    # offending site, or -1 for plan-level issues
    rule: str       # short machine-readable rule name
    message: str

    def render(self) -> str:
        where = f"site #{self.site_id}" if self.site_id >= 0 else "plan"
        return f"{where}: [{self.rule}] {self.message}"


class PlanInvariantError(AssertionError):
    """Raised by :func:`check_plan` when a plan violates the contract."""

    def __init__(self, program_name: str, issues: List[PlanIssue]):
        self.issues = issues
        lines = [f"plan for {program_name} violates "
                 f"{len(issues)} invariant(s):"]
        lines.extend("  " + issue.render() for issue in issues)
        super().__init__("\n".join(lines))


def _lint_site(program: Program, site, live_out_sets,
               max_size: int, issues: List[PlanIssue]) -> None:
    cand = site.candidate
    sid = site.id
    n = len(program.instructions)

    def issue(rule: str, message: str) -> None:
        issues.append(PlanIssue(sid, rule, message))

    if not (0 <= cand.start < cand.end <= n):
        issue("bounds", f"range [{cand.start},{cand.end}) outside "
                        f"program of {n} instructions")
        return
    if cand.program is not program:
        # Plans round-trip through the pickled artifact store, so object
        # identity cannot be required — but the constituent instructions
        # must match the program being checked.
        for pc in range(cand.start, cand.end):
            if cand.program.instructions[pc].render() \
                    != program.instructions[pc].render():
                issue("program-mismatch",
                      f"candidate instruction at pc {pc} "
                      f"({cand.program.instructions[pc].render()}) does "
                      f"not match the program "
                      f"({program.instructions[pc].render()})")
                return

    # -- paper constraints ------------------------------------------------
    size = cand.size
    if not 2 <= size <= max_size:
        issue("size", f"{size} constituents (legal: 2..{max_size})")
    block = program.block_of(cand.start)
    if cand.end > block.end:
        issue("basic-block", f"range [{cand.start},{cand.end}) crosses "
                             f"the block boundary at {block.end}")
    mem_ops = 0
    for offset, inst in enumerate(cand.instructions()):
        if inst.opclass not in _AGGREGABLE:
            issue("opclass", f"constituent at pc {cand.start + offset} "
                             f"({inst.render()}) is not aggregable")
        if inst.is_memory:
            mem_ops += 1
        if inst.is_control and offset != size - 1:
            issue("control-position",
                  f"control transfer at pc {cand.start + offset} is not "
                  f"the final constituent")
    if mem_ops > 1:
        issue("memory-ops", f"{mem_ops} memory operations (legal: ≤1)")

    # -- dataflow closure: stored interface vs. recomputation -------------
    ext_inputs, outputs = group_interface(program, cand.start, cand.end,
                                          live_out_sets)
    if len(ext_inputs) > MAX_EXT_INPUTS:
        issue("ext-inputs", f"{len(ext_inputs)} external register inputs "
                            f"(legal: ≤{MAX_EXT_INPUTS})")
    if len(outputs) > 1:
        issue("outputs", f"{len(outputs)} live register outputs "
                         f"{sorted(r for r, _ in outputs)} (legal: ≤1)")
    if list(cand.ext_inputs) != list(ext_inputs):
        issue("stale-inputs",
              f"stored ext_inputs {cand.ext_inputs} != recomputed "
              f"{ext_inputs}")
    expected_output = outputs[0] if len(outputs) == 1 else None
    if len(outputs) <= 1 and cand.output != expected_output:
        issue("stale-output", f"stored output {cand.output} != "
                              f"recomputed {expected_output}")
    edges = internal_edges(program, cand.start, cand.end)
    if list(cand.edges) != list(edges):
        issue("stale-edges",
              f"stored edges {cand.edges} != recomputed {edges}")
    expected_class = classify(size, ext_inputs, edges,
                              expected_output[1] if expected_output
                              else None)
    if len(outputs) <= 1 and cand.serialization is not expected_class:
        issue("stale-serialization",
              f"stored class {cand.serialization.value} != recomputed "
              f"{expected_class.value}")

    # -- template shape ---------------------------------------------------
    if site.template is None:
        issue("template", "site has no template")
    else:
        key = canonical_key(cand)
        if site.template.key != key:
            issue("template-shape",
                  f"template #{site.template.id} key does not match the "
                  f"candidate's canonical shape")
        if site.template.size != size:
            issue("template-shape",
                  f"template #{site.template.id} size "
                  f"{site.template.size} != candidate size {size}")


def lint_plan(program: Program, plan: MiniGraphPlan,
              max_size: int = MAX_MG_SIZE,
              budget: Optional[int] = None,
              live_out_sets: Optional[List[FrozenSet[int]]] = None
              ) -> List[PlanIssue]:
    """Audit ``plan`` against ``program``; return all violations found.

    ``budget`` (if given) additionally checks the MGT template budget.
    Pass precomputed ``live_out_sets`` (from
    :func:`repro.minigraph.dataflow.liveness`) to amortize analysis cost
    across many lints of the same program.
    """
    issues: List[PlanIssue] = []
    if budget is not None and len(plan.templates) > budget:
        issues.append(PlanIssue(
            -1, "budget", f"{len(plan.templates)} templates exceed the "
                          f"MGT budget of {budget}"))
    template_ids = {t.id for t in plan.templates}
    if len(template_ids) != len(plan.templates):
        issues.append(PlanIssue(-1, "duplicate-template",
                                "plan lists a template id twice"))
    if live_out_sets is None:
        live_out_sets = liveness(program)
    prev_end = -1
    prev_id = -1
    for site in plan.sites:  # sorted by start (MiniGraphPlan invariant)
        if site.start < prev_end:
            issues.append(PlanIssue(
                site.id, "overlap",
                f"site #{site.id} [{site.start},{site.end}) overlaps "
                f"site #{prev_id} ending at {prev_end}"))
        prev_end = max(prev_end, site.end)
        prev_id = site.id
        if site.template is not None \
                and site.template.id not in template_ids:
            issues.append(PlanIssue(
                site.id, "orphan-site",
                f"site #{site.id} uses template #{site.template.id} "
                f"absent from the plan's template list"))
        _lint_site(program, site, live_out_sets, max_size, issues)
    return issues


def check_plan(program: Program, plan: MiniGraphPlan,
               max_size: int = MAX_MG_SIZE,
               budget: Optional[int] = None) -> MiniGraphPlan:
    """Assert ``plan`` is legal; raise :class:`PlanInvariantError` if not.

    Returns the plan unchanged so selectors can tail-call it.
    """
    issues = lint_plan(program, plan, max_size=max_size, budget=budget)
    if issues:
        raise PlanInvariantError(program.name, issues)
    return plan
