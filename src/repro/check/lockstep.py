"""Differential lockstep checking of the mini-graph transform.

The paper's premise is that a mini-graph has "the external interface of a
RISC singleton": outlining a program must be architecturally invisible.
This module checks that property *dynamically* by co-executing two
machines over the transformed trace:

* the **reference** machine steps the original program instruction by
  instruction (:class:`~repro.isa.interp.MachineState` — a second,
  independently structured ISA implementation);
* the **subject** machine replays the folded record stream the timing
  core would consume, committing only each record's *declared external
  interface*: a mini-graph handle commits its single register output, its
  single memory operation, and its control transfer — interior register
  writes are discarded, exactly as mini-graph hardware never allocates
  them physical registers.

At every original-instruction boundary the checker compares source
operand values, memory writes (address and value), and control flow
between the two machines, and verifies the handle's declared interface
(``rd``/``srcs``/``addr``/``taken``/``next_pc``, post-outlining PCs)
against what actually happened. Registers whose subject-side value went
stale because a handle hid an interior write are *tainted*; reading a
tainted register is the signature of a selection bug (a live value
treated as interior) and produces a targeted diagnostic. The first
divergence is reported with full context: the folded-record window, the
static code around the fault, and the differing architectural state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..isa.interp import MachineState, Trace, execute
from ..isa.opcodes import OC_BRANCH, OC_STORE, op_name
from ..isa.program import Program
from ..minigraph.selection import MiniGraphPlan
from ..minigraph.transform import TransformedBinary, fold_trace

DEFAULT_MAX_INSTS = 2_000_000
_CONTEXT_RECORDS = 4


@dataclass(frozen=True)
class Divergence:
    """The first point where the transformed stream left the original
    program's architectural behaviour."""

    index: int          # position in the folded record stream (-1: global)
    orig_pc: int        # original-program PC of the fault (-1 if n/a)
    field: str          # what disagreed (e.g. "r15", "addr", "next_pc")
    expected: object    # reference-side value
    actual: object      # subject-side / declared value
    message: str
    context: str = ""

    def summary(self) -> str:
        return (f"{self.message} [record {self.index}, pc {self.orig_pc}, "
                f"{self.field}: expected {self.expected!r}, "
                f"got {self.actual!r}]")

    def render(self) -> str:
        lines = [self.summary()]
        if self.context:
            lines.append(self.context)
        return "\n".join(lines)


class LockstepError(RuntimeError):
    """Raised by :func:`assert_lockstep` on the first divergence."""

    def __init__(self, divergence: Divergence):
        self.divergence = divergence
        super().__init__(divergence.summary())


@dataclass
class LockstepReport:
    """Outcome of one lockstep run."""

    program: str
    selector: str = ""
    records: int = 0           # folded records walked
    handles: int = 0
    singletons: int = 0
    stores_checked: int = 0
    operands_checked: int = 0
    divergence: Optional[Divergence] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        head = (f"lockstep {self.program}"
                + (f"/{self.selector}" if self.selector else ""))
        if self.ok:
            return (f"{head}: OK ({self.records} records, "
                    f"{self.handles} handles, {self.stores_checked} stores, "
                    f"{self.operands_checked} operand reads)")
        return f"{head}: DIVERGED\n{self.divergence.render()}"


@dataclass
class _Walk:
    """Mutable cursor shared by the comparison helpers."""

    program: Program
    folded: List
    pc_map: List[int]
    index: int = 0
    tainted: Set[int] = field(default_factory=set)


def _render_context(walk: _Walk, ref: MachineState,
                    sub: MachineState) -> str:
    """Folded-record window, static listing, and differing state."""
    lines = ["-- folded records --"]
    lo = max(0, walk.index - _CONTEXT_RECORDS)
    hi = min(len(walk.folded), walk.index + 2)
    for i in range(lo, hi):
        rec = walk.folded[i]
        marker = ">>" if i == walk.index else "  "
        if rec.kind == 1:
            lines.append(f"{marker} [{i}] mg-handle pc={rec.pc} "
                         f"site#{rec.site.id} "
                         f"[{rec.site.start},{rec.site.end}) rd={rec.rd} "
                         f"srcs={rec.srcs} addr={rec.addr} "
                         f"taken={rec.taken} next={rec.next_pc}")
        else:
            lines.append(f"{marker} [{i}] {op_name(rec.op):6s} pc={rec.pc} "
                         f"rd={rec.rd} addr={rec.addr} next={rec.next_pc}")
    pc = min(max(ref.pc, 0), len(walk.program) - 1)
    lines.append("-- static code around the fault --")
    for p in range(max(0, pc - 2), min(len(walk.program), pc + 3)):
        marker = ">>" if p == pc else "  "
        lines.append(f"{marker} {p:5d}  "
                     f"{walk.program.instructions[p].render()}")
    diffs = [(r, ref.regs[r], sub.regs[r]) for r in range(32)
             if ref.regs[r] != sub.regs[r]]
    if diffs:
        lines.append("-- differing registers (reference vs subject) --")
        for reg, a, b in diffs[:8]:
            taint = " [tainted: hidden by an earlier mini-graph]" \
                if reg in walk.tainted else ""
            lines.append(f"   r{reg}: {a} vs {b}{taint}")
        if len(diffs) > 8:
            lines.append(f"   ... {len(diffs) - 8} more")
    return "\n".join(lines)


def _diverge(report: LockstepReport, walk: _Walk, ref: MachineState,
             sub: MachineState, orig_pc: int, field_name: str,
             expected, actual, message: str) -> LockstepReport:
    report.divergence = Divergence(
        walk.index, orig_pc, field_name, expected, actual, message,
        _render_context(walk, ref, sub))
    return report


def _check_operands(report, walk, ref, sub, inst, orig_pc,
                    internal: Optional[Set[int]] = None,
                    declared: Optional[Set[int]] = None):
    """Source-operand agreement between the machines, plus interface
    closure on handle constituents (external reads must be declared)."""
    for src in inst.srcs:
        if src == 0:
            continue
        report.operands_checked += 1
        if internal is not None and src not in internal \
                and declared is not None and src not in declared:
            return _diverge(
                report, walk, ref, sub, orig_pc, f"r{src}",
                "declared external input", "undeclared",
                f"mini-graph constituent at pc {orig_pc} reads r{src} "
                f"from outside the group, but the handle does not "
                f"declare it as an input")
        if internal is not None and src in internal:
            continue  # internally produced: equality follows from inputs
        if ref.regs[src] != sub.regs[src]:
            hidden = src in walk.tainted
            return _diverge(
                report, walk, ref, sub, orig_pc, f"r{src}",
                ref.regs[src], sub.regs[src],
                (f"instruction at pc {orig_pc} reads r{src} whose value "
                 f"was hidden inside an earlier mini-graph (interior "
                 f"write treated as dead)") if hidden else
                (f"instruction at pc {orig_pc} reads diverged register "
                 f"r{src}"))
    return None


def _step_pair(report, walk, ref, sub):
    """Step both machines one instruction; compare store effects."""
    inst = ref.program.instructions[ref.pc]
    ref_rec = ref.step()
    sub_rec = sub.step()
    if inst.opclass == OC_STORE:
        report.stores_checked += 1
        if ref_rec.addr != sub_rec.addr:
            return None, _diverge(
                report, walk, ref, sub, ref_rec.pc, "store-addr",
                ref_rec.addr, sub_rec.addr,
                f"store at pc {ref_rec.pc} computed different addresses")
        if ref.memory[ref_rec.addr] != sub.memory[sub_rec.addr]:
            return None, _diverge(
                report, walk, ref, sub, ref_rec.pc, "store-value",
                ref.memory[ref_rec.addr], sub.memory[sub_rec.addr],
                f"store at pc {ref_rec.pc} wrote different values")
    if ref_rec.next_pc != sub_rec.next_pc:
        return None, _diverge(
            report, walk, ref, sub, ref_rec.pc, "control",
            ref_rec.next_pc, sub_rec.next_pc,
            f"control flow diverged after pc {ref_rec.pc}")
    return ref_rec, None


def lockstep_check(program: Program, plan: MiniGraphPlan,
                   trace: Optional[Trace] = None,
                   selector: str = "",
                   max_insts: int = DEFAULT_MAX_INSTS) -> LockstepReport:
    """Co-execute ``program`` and its transform under ``plan``.

    Returns a :class:`LockstepReport`; ``report.divergence`` carries the
    first divergence (or ``None``). Pass a precomputed ``trace`` to avoid
    re-executing the program.
    """
    report = LockstepReport(program.name, selector=selector)
    if trace is None:
        trace = execute(program, max_insts=max_insts)
    try:
        folded = fold_trace(trace, plan)
    except AssertionError as error:
        report.divergence = Divergence(
            -1, -1, "transform", "foldable trace", "assertion",
            f"fold_trace rejected the plan: {error}")
        return report
    binary = TransformedBinary(program, plan)
    pc_map = binary.pc_map
    n_pc = len(pc_map)
    walk = _Walk(program, folded, pc_map)
    ref = MachineState(program)
    sub = MachineState(program)

    def mapped(orig: int) -> int:
        return pc_map[orig] if orig < n_pc else orig

    for index, rec in enumerate(folded):
        walk.index = index
        report.records += 1
        if rec.kind == 0:
            report.singletons += 1
            orig_pc = ref.pc
            if rec.pc != mapped(orig_pc):
                return _diverge(
                    report, walk, ref, sub, orig_pc, "pc",
                    mapped(orig_pc), rec.pc,
                    f"folded record carries pc {rec.pc} but the rewritten "
                    f"binary places pc {orig_pc} at {mapped(orig_pc)}")
            inst = program.instructions[orig_pc]
            fault = _check_operands(report, walk, ref, sub, inst, orig_pc)
            if fault is not None:
                return fault
            ref_rec, fault = _step_pair(report, walk, ref, sub)
            if fault is not None:
                return fault
            for field_name, expect, got in (
                    ("rd", ref_rec.rd, rec.rd),
                    ("addr", ref_rec.addr, rec.addr),
                    ("taken", ref_rec.taken, rec.taken),
                    ("next_pc", mapped(ref_rec.next_pc), rec.next_pc)):
                if expect != got:
                    return _diverge(
                        report, walk, ref, sub, orig_pc, field_name,
                        expect, got,
                        f"singleton record at pc {orig_pc} misdeclares "
                        f"its {field_name}")
            if rec.rd >= 0:
                walk.tainted.discard(rec.rd)
            continue

        # -- mini-graph handle ------------------------------------------
        report.handles += 1
        site = rec.site
        size = site.end - site.start
        orig_pc = ref.pc
        if orig_pc != site.start:
            return _diverge(
                report, walk, ref, sub, orig_pc, "control",
                orig_pc, site.start,
                f"handle for site #{site.id} appears while execution is "
                f"at pc {orig_pc}, not the site start {site.start}")
        if rec.pc != site.handle_pc:
            return _diverge(
                report, walk, ref, sub, orig_pc, "pc",
                site.handle_pc, rec.pc,
                f"handle record carries pc {rec.pc}, not the site's "
                f"assigned handle slot {site.handle_pc}")
        if len(rec.constituents) != size:
            return _diverge(
                report, walk, ref, sub, orig_pc, "constituents",
                size, len(rec.constituents),
                f"handle for site #{site.id} carries "
                f"{len(rec.constituents)} constituents for a "
                f"{size}-instruction site")
        declared = set(rec.srcs)
        internal: Set[int] = set()
        saved: Dict[int, int] = {}
        mem_addr = -1
        mem_ops = 0
        branch_taken = False
        for offset in range(size):
            pc_now = sub.pc
            if pc_now != site.start + offset:
                return _diverge(
                    report, walk, ref, sub, pc_now, "control",
                    site.start + offset, pc_now,
                    f"mini-graph body did not execute straight-line "
                    f"through site #{site.id}")
            inst = program.instructions[pc_now]
            if inst.is_control and offset != size - 1:
                return _diverge(
                    report, walk, ref, sub, pc_now, "control-position",
                    "final constituent", f"offset {offset}",
                    f"site #{site.id} embeds a control transfer before "
                    f"its final constituent")
            fault = _check_operands(report, walk, ref, sub, inst, pc_now,
                                    internal=internal, declared=declared)
            if fault is not None:
                return fault
            if inst.writes_reg and inst.rd not in saved:
                saved[inst.rd] = sub.regs[inst.rd]
            ref_rec, fault = _step_pair(report, walk, ref, sub)
            if fault is not None:
                return fault
            if inst.writes_reg:
                internal.add(inst.rd)
            if ref_rec.addr >= 0:
                mem_ops += 1
                mem_addr = ref_rec.addr
            if ref_rec.opclass == OC_BRANCH:
                branch_taken = ref_rec.taken
        if mem_ops > 1:
            return _diverge(
                report, walk, ref, sub, site.start, "memory-ops",
                "at most 1", mem_ops,
                f"site #{site.id} performed {mem_ops} memory operations")
        if rec.rd >= 0 and rec.rd not in internal:
            return _diverge(
                report, walk, ref, sub, site.start, "rd",
                f"a register written by site #{site.id}", f"r{rec.rd}",
                f"handle declares output r{rec.rd} which no constituent "
                f"writes")
        # Commit only the declared interface: interior writes roll back.
        for reg, old in saved.items():
            if reg != rec.rd:
                sub.regs[reg] = old
                if sub.regs[reg] != ref.regs[reg]:
                    walk.tainted.add(reg)
        if rec.rd >= 0:
            walk.tainted.discard(rec.rd)
        for field_name, expect, got in (
                ("addr", mem_addr, rec.addr),
                ("taken", branch_taken, rec.taken),
                ("next_pc", mapped(ref.pc), rec.next_pc)):
            if expect != got:
                return _diverge(
                    report, walk, ref, sub, site.start, field_name,
                    expect, got,
                    f"handle for site #{site.id} misdeclares its "
                    f"{field_name}")

    walk.index = len(folded) - 1
    if not ref.halted or not sub.halted:
        return _diverge(
            report, walk, ref, sub, ref.pc, "termination",
            "halted", f"pc {ref.pc}",
            "folded stream ended before the program halted")
    if ref.memory != sub.memory:
        delta = next(a for a in range(len(ref.memory))
                     if ref.memory[a] != sub.memory[a])
        return _diverge(
            report, walk, ref, sub, -1, f"mem[{delta}]",
            ref.memory[delta], sub.memory[delta],
            "final memory images differ")
    for reg in range(32):
        if reg not in walk.tainted and ref.regs[reg] != sub.regs[reg]:
            return _diverge(
                report, walk, ref, sub, -1, f"r{reg}",
                ref.regs[reg], sub.regs[reg],
                f"final value of r{reg} differs (and r{reg} was never "
                f"hidden by a mini-graph)")
    return report


def assert_lockstep(program: Program, plan: MiniGraphPlan,
                    trace: Optional[Trace] = None,
                    selector: str = "") -> LockstepReport:
    """:func:`lockstep_check`, raising :class:`LockstepError` on failure."""
    report = lockstep_check(program, plan, trace=trace, selector=selector)
    if report.divergence is not None:
        raise LockstepError(report.divergence)
    return report
