"""Delta-debugging minimization of failing programs.

When the fuzzer finds a program whose transform diverges (or whose plan
fails the linter), the raw reproducer is a few hundred instructions of
generated loop nest — too big to eyeball. This module shrinks it with the
classic ddmin algorithm of Zeller & Hildebrandt, specialized to
instruction sequences: a reduction candidate deletes a subset of
instructions and remaps surviving control-transfer targets to the next
surviving instruction; the reduction is kept only when the *same* failure
still reproduces (the caller's predicate enforces the failure signature,
so a reduction that merely breaks the program differently is rejected).

The result is typically a handful of instructions that still trigger the
bug — small enough to paste into a regression test.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, List, Optional, Sequence

from ..isa.instruction import Instruction
from ..isa.opcodes import JR, OC_BRANCH, OC_JUMP
from ..isa.program import Program

DEFAULT_MAX_EVALS = 400


def delete_instructions(program: Program,
                        keep: Sequence[int]) -> Optional[Program]:
    """The program restricted to the instruction indices in ``keep``.

    Control-transfer targets are remapped: a target that survives maps to
    its new index; a deleted target maps to the next surviving
    instruction after it. Returns ``None`` when the reduction cannot be
    expressed (nothing kept, or a transfer targets past the end of the
    kept sequence). The data segment and memory size are preserved —
    failures often depend on the initial data image.
    """
    kept = sorted(set(keep))
    if not kept:
        return None
    new_index = {old: new for new, old in enumerate(kept)}

    def remap(target: int) -> Optional[int]:
        pos = bisect_left(kept, target)
        return pos if pos < len(kept) else None

    instructions: List[Instruction] = []
    for old in kept:
        inst = program.instructions[old]
        imm = inst.imm
        if inst.opclass in (OC_BRANCH, OC_JUMP) and inst.op != JR:
            mapped = remap(inst.imm)
            if mapped is None:
                return None
            imm = mapped
        instructions.append(Instruction(inst.op, rd=inst.rd,
                                        srcs=inst.srcs, imm=imm))
    labels = {label: new_index[pc] for label, pc in program.labels.items()
              if pc in new_index}
    return Program(f"{program.name}-shrunk", instructions,
                   data=program.data, labels=labels,
                   memory_words=program.memory_words)


def _chunks(items: List[int], n: int) -> List[List[int]]:
    size = max(1, len(items) // n)
    out = [items[i:i + size] for i in range(0, len(items), size)]
    return out[:n - 1] + [sum(out[n - 1:], [])] if len(out) > n else out


def ddmin(items: List[int], keep_ok: Callable[[List[int]], bool],
          max_evals: int = DEFAULT_MAX_EVALS) -> List[int]:
    """Minimal (1-minimal up to the eval budget) subset of ``items``.

    ``keep_ok(subset)`` must return True when the failure of interest
    still reproduces with only ``subset`` kept. ``items`` itself is
    assumed to satisfy the predicate.
    """
    current = list(items)
    granularity = 2
    evals = 0
    while len(current) >= 2 and evals < max_evals:
        reduced = False
        for chunk in _chunks(current, granularity):
            if len(chunk) == len(current):
                continue
            removed = set(chunk)
            candidate = [x for x in current if x not in removed]
            evals += 1
            if keep_ok(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if evals >= max_evals:
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def shrink_program(program: Program,
                   still_fails: Callable[[Program], bool],
                   max_evals: int = DEFAULT_MAX_EVALS) -> Program:
    """Instruction-level ddmin of ``program`` under ``still_fails``.

    ``still_fails`` receives a reduced program and must return True only
    when the original failure signature reproduces; it must not raise
    (classify crashes as False). Returns the smallest failing program
    found (possibly ``program`` itself).
    """

    def keep_ok(keep: List[int]) -> bool:
        reduced = delete_instructions(program, keep)
        return reduced is not None and still_fails(reduced)

    kept = ddmin(list(range(len(program))), keep_ok, max_evals=max_evals)
    reduced = delete_instructions(program, kept)
    return reduced if reduced is not None else program
