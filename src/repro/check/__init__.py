"""Correctness subsystem: lockstep checking, plan linting, fuzzing.

Three layers of defense against selection/transform bugs silently
corrupting IPC results:

* :mod:`repro.check.lockstep` — differential co-execution of a program
  and its mini-graph transform, comparing architectural state at every
  original-instruction boundary;
* :mod:`repro.check.lint` — static audit of a
  :class:`~repro.minigraph.selection.MiniGraphPlan` against the paper's
  structural contract and internal consistency;
* :mod:`repro.check.fuzz` / :mod:`repro.check.shrink` — property-based
  fuzzing of generated programs across all selectors, with
  delta-debugging minimization of failures.

See ``docs/correctness.md`` for the model and workflow.
"""

from .lint import PlanInvariantError, PlanIssue, check_plan, lint_plan
from .lockstep import (
    Divergence, LockstepError, LockstepReport, assert_lockstep,
    lockstep_check,
)

__all__ = [
    "Divergence", "LockstepError", "LockstepReport", "PlanInvariantError",
    "PlanIssue", "assert_lockstep", "check_plan", "lint_plan",
    "lockstep_check",
]
