"""Property-based fuzzing of the mini-graph pipeline.

The property under test: for *every* program the generator can produce
and *every* selector, the selected plan passes the static invariant
linter and the transformed trace is architecturally indistinguishable
from the original program (differential lockstep). The fuzzer samples
that space — randomized mix parameters into
:func:`repro.workloads.generator.synth_program`, every default selector
per program — until a time or program budget runs out.

Reproducibility is exact: a program is a pure function of its
:class:`FuzzSpec`, and every spec is derived deterministically from one
integer (``FuzzSpec.derive(seed)``), so a failure is reproduced by
``repro fuzz --replay SEED`` with no campaign state. Failures are
minimized by the delta-debugging shrinker (:mod:`repro.check.shrink`) —
first at the spec level (fewer loops, fewer trips, smaller bodies), then
instruction by instruction — and written to an artifacts directory as a
self-contained reproducer.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from ..isa import validate
from ..isa.interp import (
    ExecutionLimitExceeded, MemoryFault, Trace, execute,
)
from ..isa.program import Program
from ..minigraph.candidates import enumerate_candidates
from ..minigraph.selection import MiniGraphPlan
from ..minigraph.templates import build_templates
from ..minigraph.selectors import (
    ReadPortAwareSelector, Selector, SlackDynamicSelector,
    SlackProfileSelector, StructAll, StructBounded, StructNone, make_plan,
)
from ..workloads.generator import PROFILES, synth_program
from .lint import PlanIssue, lint_plan
from .lockstep import Divergence, lockstep_check
from .shrink import shrink_program

DEFAULT_MAX_INSTS = 200_000
_SPEC_STRIDE = 1_000_003  # campaign seed -> per-program spec seeds


def default_selectors() -> List[Selector]:
    """The five paper selectors plus the searchable read-port family."""
    return [StructAll(), StructNone(), StructBounded(),
            SlackProfileSelector(), SlackDynamicSelector(),
            ReadPortAwareSelector()]


@dataclass(frozen=True)
class FuzzSpec:
    """Exact reproducer for one generated program."""

    seed: int
    profile: str
    n_loops: int
    trips: int
    ops: int
    array_sizes: Tuple[int, ...]

    @classmethod
    def derive(cls, seed: int) -> "FuzzSpec":
        """The spec for ``seed`` — deterministic, no campaign state.

        Parameters skew small relative to the registered benchmarks: the
        fuzzer wants *many* structurally diverse programs per minute, not
        long-running ones.
        """
        rng = random.Random(seed * 48271 + 11)
        return cls(
            seed=seed,
            profile=rng.choice(list(PROFILES)),
            n_loops=rng.randint(1, 3),
            trips=rng.randint(4, 32),
            ops=rng.randint(2, 10),
            array_sizes=tuple(rng.choice([16, 32, 64, 128])
                              for _ in range(rng.randint(1, 3))))

    def build(self) -> Program:
        return synth_program(
            self.seed, "train", name=f"fuzz{self.seed}",
            profile=self.profile, n_loops=self.n_loops, trips=self.trips,
            ops=self.ops, array_sizes=self.array_sizes)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "profile": self.profile,
                "n_loops": self.n_loops, "trips": self.trips,
                "ops": self.ops, "array_sizes": list(self.array_sizes)}

    @classmethod
    def from_dict(cls, d: dict) -> "FuzzSpec":
        return cls(seed=d["seed"], profile=d["profile"],
                   n_loops=d["n_loops"], trips=d["trips"], ops=d["ops"],
                   array_sizes=tuple(d["array_sizes"]))


@dataclass(frozen=True)
class CheckFailure:
    """One funnel failure for a (program, selector) pair."""

    kind: str       # "validate" | "execution" | "lockstep" | "lint"
    selector: str   # "" for selector-independent failures
    message: str
    divergence: Optional[Divergence] = None
    issues: Tuple[PlanIssue, ...] = ()

    @property
    def signature(self) -> Tuple[str, str]:
        """What must match for a shrunk program to count as "the same
        failure"."""
        return (self.kind, self.selector)

    def render(self) -> str:
        head = f"[{self.kind}]" + (f" selector={self.selector}"
                                   if self.selector else "")
        return f"{head} {self.message}"


def _slack_profile(program: Program, trace: Trace):
    """Self-trained slack profile on the reduced machine (as the paper's
    profiling flow does), computed directly — the fuzzer bypasses the
    Runner because its programs are not registered benchmarks."""
    from ..minigraph.slack import SlackCollector
    from ..pipeline.config import config_by_name
    from ..pipeline.core import OoOCore
    config = config_by_name("reduced")
    collector = SlackCollector(program, config_name=config.name,
                               input_name="fuzz")
    OoOCore(config, trace.records, collector=collector,
            warm_caches=True).run()
    return collector.profile()


def check_program(program: Program,
                  selectors: Optional[Sequence[Selector]] = None,
                  budget: int = 512, max_size: int = 4,
                  max_insts: int = DEFAULT_MAX_INSTS,
                  lint_plans: bool = True,
                  plan_hook: Optional[Callable[
                      [Program, Selector, MiniGraphPlan],
                      MiniGraphPlan]] = None) -> Optional[CheckFailure]:
    """Funnel one program through validate → lockstep → lint.

    Returns the first :class:`CheckFailure`, or ``None`` if every
    selector's plan checks out. Lockstep runs *before* lint so dynamic
    divergence is attributed to the lockstep engine even when the linter
    would also have flagged the plan statically. ``plan_hook`` lets tests
    substitute a (deliberately broken) plan per selector.
    """
    try:
        validate.check(program)
    except validate.ValidationError as error:
        return CheckFailure("validate", "", str(error))
    try:
        trace = execute(program, max_insts=max_insts)
    except (MemoryFault, ExecutionLimitExceeded) as error:
        return CheckFailure("execution", "",
                            f"{type(error).__name__}: {error}")
    freq_counts = trace.dynamic_count_of()
    # Enumeration and template grouping are selector-independent: hoist
    # both out of the per-selector loop (folds reassign the per-site
    # scratch pcs, so sharing sites across sequential plan/fold/check
    # rounds cannot leak state between selectors).
    candidates = enumerate_candidates(program, max_size=max_size)
    templates = build_templates(candidates, freq_counts)
    sites = [site for template in templates for site in template.sites]
    profile = None
    for selector in (selectors if selectors is not None
                     else default_selectors()):
        if selector.needs_profile and profile is None:
            profile = _slack_profile(program, trace)
        plan = make_plan(program, freq_counts, selector,
                         profile=profile if selector.needs_profile
                         else None,
                         budget=budget, max_size=max_size,
                         candidates=candidates, verify=False,
                         sites=sites)
        if plan_hook is not None:
            plan = plan_hook(program, selector, plan)
        report = lockstep_check(program, plan, trace=trace,
                                selector=selector.name,
                                max_insts=max_insts)
        if report.divergence is not None:
            return CheckFailure("lockstep", selector.name,
                                report.divergence.render(),
                                divergence=report.divergence)
        if lint_plans:
            issues = lint_plan(program, plan, max_size=max_size,
                               budget=budget)
            if issues:
                return CheckFailure(
                    "lint", selector.name,
                    "; ".join(i.render() for i in issues[:5]),
                    issues=tuple(issues))
    return None


@dataclass
class FuzzFailure:
    """A failing spec plus its minimized reproducers."""

    spec: FuzzSpec
    failure: CheckFailure
    shrunk_spec: Optional[FuzzSpec] = None
    shrunk_program: Optional[Program] = None
    shrunk_failure: Optional[CheckFailure] = None
    artifact_paths: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"seed {self.spec.seed}: {self.failure.render()}",
                 f"  replay: repro fuzz --replay {self.spec.seed}"]
        if self.shrunk_program is not None:
            lines.append(f"  shrunk to {len(self.shrunk_program)} "
                         f"instructions")
        for path in self.artifact_paths:
            lines.append(f"  artifact: {path}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    programs: int = 0
    checks: int = 0          # (program, selector) lockstep+lint passes
    selectors: Tuple[str, ...] = ()
    elapsed: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"fuzz: seed {self.seed}, {self.programs} programs, "
                 f"{self.checks} (program, selector) checks over "
                 f"{len(self.selectors)} selectors "
                 f"[{', '.join(self.selectors)}] in {self.elapsed:.1f}s"]
        if self.ok:
            lines.append("fuzz: no divergences")
        else:
            for failure in self.failures:
                lines.append(failure.render())
        return "\n".join(lines)


def _spec_shrink_steps(spec: FuzzSpec) -> List[FuzzSpec]:
    """Simpler variants of ``spec``, most aggressive first."""
    steps: List[FuzzSpec] = []
    if spec.n_loops > 1:
        steps.append(replace(spec, n_loops=1))
    for trips in (2, 4, 8):
        if trips < spec.trips:
            steps.append(replace(spec, trips=trips))
    for ops in (1, 2, 4):
        if ops < spec.ops:
            steps.append(replace(spec, ops=ops))
    if len(spec.array_sizes) > 1:
        steps.append(replace(spec, array_sizes=spec.array_sizes[:1]))
    if any(size > 16 for size in spec.array_sizes):
        steps.append(replace(
            spec, array_sizes=tuple(min(size, 16)
                                    for size in spec.array_sizes)))
    return steps


def shrink_failure(spec: FuzzSpec, failure: CheckFailure,
                   check: Callable[[Program], Optional[CheckFailure]],
                   max_evals: int = 400
                   ) -> Tuple[FuzzSpec, Program, CheckFailure]:
    """Minimize a failing spec: parameter-level, then instruction-level.

    ``check`` is the funnel restricted to the campaign's settings (the
    fuzzer passes only the failing selector for speed). Returns the
    smallest (spec, program, failure) triple with the original failure
    signature.
    """
    signature = failure.signature

    def fails_same(program: Program) -> Optional[CheckFailure]:
        try:
            found = check(program)
        except Exception:   # a crash is a *different* bug; don't chase it
            return None
        return found if found is not None \
            and found.signature == signature else None

    # Parameter-level: keep applying the first simplification that still
    # fails, until none does.
    best_spec, best_failure = spec, failure
    progress = True
    while progress:
        progress = False
        for candidate in _spec_shrink_steps(best_spec):
            found = fails_same(candidate.build())
            if found is not None:
                best_spec, best_failure = candidate, found
                progress = True
                break
    best_program = best_spec.build()

    # Instruction-level ddmin on the reduced program.
    shrunk = shrink_program(best_program,
                            lambda p: fails_same(p) is not None,
                            max_evals=max_evals)
    final = fails_same(shrunk)
    if final is None:  # shrinker returned the unreduced program
        shrunk, final = best_program, best_failure
    return best_spec, shrunk, final


def _write_artifacts(directory: str, result: FuzzFailure) -> List[str]:
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    seed = result.spec.seed
    paths: List[str] = []
    meta = {
        "spec": result.spec.to_dict(),
        "failure": {"kind": result.failure.kind,
                    "selector": result.failure.selector,
                    "message": result.failure.message},
        "replay": f"repro fuzz --replay {seed}",
    }
    if result.shrunk_spec is not None:
        meta["shrunk_spec"] = result.shrunk_spec.to_dict()
    if result.shrunk_program is not None:
        meta["shrunk_instructions"] = len(result.shrunk_program)
    json_path = root / f"reproducer-{seed}.json"
    json_path.write_text(json.dumps(meta, indent=2) + "\n")
    paths.append(str(json_path))
    lines = [f"# fuzz reproducer, seed {seed}",
             f"# {result.failure.render()}", ""]
    if result.shrunk_program is not None:
        lines += [f"# shrunk program "
                  f"({len(result.shrunk_program)} instructions):",
                  result.shrunk_program.listing(), ""]
        if result.shrunk_failure is not None:
            lines += ["# failure on the shrunk program:",
                      result.shrunk_failure.render(), ""]
    lines += ["# original program:", result.spec.build().listing()]
    txt_path = root / f"reproducer-{seed}.txt"
    txt_path.write_text("\n".join(lines) + "\n")
    paths.append(str(txt_path))
    return paths


def run_fuzz(budget: float = 60.0, seed: int = 0,
             max_programs: Optional[int] = None,
             selectors: Optional[Sequence[Selector]] = None,
             artifacts_dir: Optional[str] = None,
             shrink: bool = True,
             lint_plans: bool = True,
             plan_hook: Optional[Callable] = None,
             mgt_budget: int = 512, max_size: int = 4,
             max_insts: int = DEFAULT_MAX_INSTS,
             shrink_max_evals: int = 400,
             log: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """One fuzzing campaign; stops at the first failure.

    Runs until ``budget`` seconds elapse or ``max_programs`` programs
    have been checked, whichever comes first. Program ``i`` of campaign
    ``seed`` uses spec seed ``seed * 1_000_003 + i``, so campaigns with
    different seeds explore disjoint spec streams and any failure is
    replayable from its spec seed alone.
    """
    sel = list(selectors) if selectors is not None else default_selectors()
    report = FuzzReport(seed=seed,
                        selectors=tuple(s.name for s in sel))
    start = time.monotonic()
    index = 0
    while True:
        if max_programs is not None and index >= max_programs:
            break
        if time.monotonic() - start >= budget:
            break
        spec = FuzzSpec.derive(seed * _SPEC_STRIDE + index)
        index += 1
        failure = check_program(spec.build(), selectors=sel,
                                budget=mgt_budget, max_size=max_size,
                                max_insts=max_insts,
                                lint_plans=lint_plans,
                                plan_hook=plan_hook)
        report.programs += 1
        if failure is None:
            report.checks += len(sel)
            if log is not None and report.programs % 25 == 0:
                log(f"fuzz: {report.programs} programs ok "
                    f"({time.monotonic() - start:.1f}s)")
            continue
        result = FuzzFailure(spec=spec, failure=failure)
        if log is not None:
            log(f"fuzz: FAILURE at seed {spec.seed}: {failure.render()}")
        if shrink:
            failing_sel = [s for s in sel
                           if s.name == failure.selector] or sel

            def recheck(program: Program) -> Optional[CheckFailure]:
                return check_program(program, selectors=failing_sel,
                                     budget=mgt_budget,
                                     max_size=max_size,
                                     max_insts=max_insts,
                                     lint_plans=lint_plans,
                                     plan_hook=plan_hook)

            shrunk_spec, shrunk_program, shrunk_failure = shrink_failure(
                spec, failure, recheck, max_evals=shrink_max_evals)
            result.shrunk_spec = shrunk_spec
            result.shrunk_program = shrunk_program
            result.shrunk_failure = shrunk_failure
            if log is not None:
                log(f"fuzz: shrunk to {len(shrunk_program)} instructions")
        if artifacts_dir is not None:
            result.artifact_paths = _write_artifacts(artifacts_dir, result)
        report.failures.append(result)
        break
    report.elapsed = time.monotonic() - start
    return report


def replay(spec_seed: int,
           selectors: Optional[Sequence[Selector]] = None,
           **kwargs) -> Optional[CheckFailure]:
    """Re-run the funnel for one spec seed (``repro fuzz --replay``)."""
    return check_program(FuzzSpec.derive(spec_seed).build(),
                         selectors=selectors, **kwargs)
