"""Global slack: the alternative §4.3 argues against.

An instruction's *global* slack is the delay its value can absorb without
lengthening the whole execution — apportioned along consumer chains down
to the program's end — whereas *local* slack only protects the immediate
consumers. The paper observes that global slack is more accurate for a
single mini-graph but brittle: selecting one mini-graph moves the critical
path, invalidating every other global number, so using it well would
require re-profiling after every selection. Local slack is less sensitive
and needs a single profile.

This module computes per-static-instruction global slack with a backward
dynamic program over the observed consumption graph:

``G(u) = min over consumers c of (slack(u→c) + G(c))``, and
``G(u) = end − ready(u)`` for values nobody consumes; a mispredicted
control transfer pins ``G = 0`` (delaying its resolution delays the
redirect and everything after it).

:class:`GlobalSlackCollector` extends the local collector, so the
resulting profile is a drop-in for :class:`SlackProfileSelector` — pass it
instead of the local profile to get the paper's "global" strawman.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..isa.program import Program
from ..minigraph.slack import SLACK_CAP, ProfileEntry, SlackCollector, \
    SlackProfile


class GlobalSlackCollector(SlackCollector):
    """Like :class:`SlackCollector`, but the profile's ``slack`` field
    holds *global* slack (capped at :data:`SLACK_CAP` for comparability)."""

    #: Global slack propagates along full consumer chains, which the
    #: packed event tap does not record — this collector still needs the
    #: Python reference loop's in-order callbacks.
    supports_ckern_tap = False

    def __init__(self, program: Program, config_name: str = "",
                 input_name: str = "default"):
        super().__init__(program, config_name=config_name,
                         input_name=input_name)
        # producer uop id -> list of (consumer uop, consume cycle)
        self._consumers: Dict[int, List[Tuple[object, int]]] = {}
        self._redirected: set = set()

    # -- core callbacks (extend the local collector's) ----------------------

    def on_consume(self, producer, consumer, cycle: int) -> None:
        """Record the consumption edge for the global backward pass."""
        super().on_consume(producer, consumer, cycle)
        self._consumers.setdefault(id(producer), []).append(
            (consumer, cycle))

    def on_redirect(self, uop, resolve_cycle: int) -> None:
        """Pin mispredicted control transfers at zero global slack."""
        super().on_redirect(uop, resolve_cycle)
        self._redirected.add(id(uop))

    # -- global slack -------------------------------------------------------

    def _value_ready(self, uop) -> int:
        ready = uop.out_actual_ready
        if ready >= (1 << 50):
            ready = uop.store_resolve_cycle
        if ready >= (1 << 50):
            ready = uop.complete_cycle
        return ready

    def global_profile(self) -> SlackProfile:
        """Backward-DP global slack, aggregated per static instruction."""
        self.on_finish()
        if not self._committed:
            return SlackProfile(self.program.name, self.config_name,
                                self.input_name, {})
        end_time = max(u.complete_cycle for u in self._committed)
        global_slack: Dict[int, float] = {}
        # Consumers are always younger: process youngest-first.
        for uop in reversed(self._committed):
            key = id(uop)
            if key in self._redirected:
                global_slack[key] = 0.0
                continue
            ready = self._value_ready(uop)
            samples = self._consumers.get(key)
            if not samples:
                g = float(end_time - ready)
            else:
                g = min(
                    (cycle - ready) + global_slack.get(id(consumer),
                                                       float(SLACK_CAP))
                    for consumer, cycle in samples)
            global_slack[key] = max(0.0, g)

        # Aggregate per pc, reusing the local profile's issue/ready data.
        local = self.profile()
        sums: Dict[int, float] = {}
        mins: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for uop in self._committed:
            g = min(global_slack[id(uop)], float(SLACK_CAP))
            pc = uop.pc
            sums[pc] = sums.get(pc, 0.0) + g
            mins[pc] = min(mins.get(pc, float(SLACK_CAP)), g)
            counts[pc] = counts.get(pc, 0) + 1
        entries: Dict[int, ProfileEntry] = {}
        for pc, entry in local.entries.items():
            entries[pc] = ProfileEntry(
                pc, entry.count, entry.rel_issue, entry.src_ready,
                entry.out_ready, sums[pc] / counts[pc], int(mins[pc]))
        return SlackProfile(self.program.name, self.config_name,
                            self.input_name, entries)


def compare_profiles(local: SlackProfile,
                     global_: SlackProfile) -> Dict[str, float]:
    """Summary statistics of local vs global slack over shared PCs."""
    shared = set(local.entries) & set(global_.entries)
    if not shared:
        return {"n": 0.0}
    diffs = [global_.entries[pc].slack - local.entries[pc].slack
             for pc in shared]
    wider = sum(1 for d in diffs if d > 0.5)
    return {
        "n": float(len(shared)),
        "mean_local": sum(local.entries[pc].slack for pc in shared)
        / len(shared),
        "mean_global": sum(global_.entries[pc].slack for pc in shared)
        / len(shared),
        "fraction_global_wider": wider / len(shared),
    }
