"""Global slack: the alternative §4.3 argues against.

An instruction's *global* slack is the delay its value can absorb without
lengthening the whole execution — apportioned along consumer chains down
to the program's end — whereas *local* slack only protects the immediate
consumers. The paper observes that global slack is more accurate for a
single mini-graph but brittle: selecting one mini-graph moves the critical
path, invalidating every other global number, so using it well would
require re-profiling after every selection. Local slack is less sensitive
and needs a single profile.

This module computes per-static-instruction global slack with a backward
dynamic program over the observed consumption graph:

``G(u) = min over consumers c of (slack(u→c) + G(c))``, and
``G(u) = end − ready(u)`` for values nobody consumes; a mispredicted
control transfer pins ``G = 0`` (delaying its resolution delays the
redirect and everything after it).

:class:`GlobalSlackCollector` extends the local collector, so the
resulting profile is a drop-in for :class:`SlackProfileSelector` — pass it
instead of the local profile to get the paper's "global" strawman.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.program import Program
from ..minigraph.slack import SLACK_CAP, ProfileEntry, SlackCollector, \
    SlackProfile
from ..pipeline import ckern as _ckern
from ..pipeline.ckern import (
    TAP_CONSUME as _TAP_CONSUME,
    TAP_FLAG_GLOBAL,
    TAP_ISSUE as _TAP_ISSUE,
    TAP_REDIRECT as _TAP_REDIRECT,
    TAP_VALUE as _TAP_VALUE,
)


class GlobalSlackCollector(SlackCollector):
    """Like :class:`SlackCollector`, but the profile's ``slack`` field
    holds *global* slack (capped at :data:`SLACK_CAP` for comparability)."""

    #: Global slack propagates along full consumer chains; the packed
    #: event tap records them (CONSUME carries the consumer's record
    #: index, and TAP_FLAG_GLOBAL opts into per-singleton TAP_VALUE
    #: records with the value-ready/complete times the backward DP
    #: needs), so these runs ride the compiled kernel too.
    supports_ckern_tap = True
    #: Extra record families this collector needs the kernel to emit.
    ckern_tap_flags = TAP_FLAG_GLOBAL

    def __init__(self, program: Program, config_name: str = "",
                 input_name: str = "default"):
        super().__init__(program, config_name=config_name,
                         input_name=input_name)
        # producer uop id -> list of (consumer uop, consume cycle)
        self._consumers: Dict[int, List[Tuple[object, int]]] = {}
        self._redirected: set = set()
        # Decoded kernel-tap state (set by ingest_ckern_tap); when
        # present, global_profile() rebuilds from it instead of the
        # in-loop callback state above.
        self._tap_global: Optional[tuple] = None
        # Per-pc (n_singletons, sums, mins, counts) from the native
        # event fold (ckern.global_fold); takes precedence over
        # _tap_global in global_profile() when set.
        self._tap_folded: Optional[tuple] = None

    # -- core callbacks (extend the local collector's) ----------------------

    def on_consume(self, producer, consumer, cycle: int) -> None:
        """Record the consumption edge for the global backward pass."""
        super().on_consume(producer, consumer, cycle)
        self._consumers.setdefault(id(producer), []).append(
            (consumer, cycle))

    def on_redirect(self, uop, resolve_cycle: int) -> None:
        """Pin mispredicted control transfers at zero global slack."""
        super().on_redirect(uop, resolve_cycle)
        self._redirected.add(id(uop))

    # -- post-hoc decode of the compiled kernel's event tap -----------------

    def ingest_ckern_tap(self, packed, events, n_words: int,
                         n_committed: int) -> None:
        """Rebuild local *and* global state from the packed event log.

        The base decode rebuilds the local-slack accumulators. The
        second pass here replays dynamic-instance identity — an ISSUE
        event bumps its record's generation counter, exactly as a
        refetched ``Uop`` gets a fresh ``id()`` — and collects what the
        in-loop callbacks would have kept:

        * CONSUME ``(producer ix, a = cycle - ready, b = consumer ix)``
          appends ``(consumer instance, sample)`` to the producer's
          *current* instance, the live uop at consume time. A sample
          recorded against an instance that is later squashed and
          re-issued is orphaned, just like the stale ``id()`` key. The
          two-level ready the kernel baked into ``a`` equals the DP's
          three-level ``_value_ready`` for every sampled producer: a
          consumed value is either a register value or a store forward.
        * REDIRECT marks the current instance mispredicted.
        * TAP_VALUE (one per singleton issue) carries the three-level
          value-ready time and the completion cycle; the last record
          per ix belongs to the committed instance.
        """
        super().ingest_ckern_tap(packed, events, n_words, n_committed)
        if _ckern.available():
            # Preferred path: the decode above plus the backward DP run
            # as one C call (same float-op order, so the same doubles).
            folded = _ckern.global_fold(events, n_words, n_committed,
                                        packed, len(self.program),
                                        SLACK_CAP)
            if folded is not None:
                self._tap_folded = folded
                return
        n = packed.n
        gen = [0] * n
        consumers: Dict[Tuple[int, int], list] = {}
        redirected = set()
        value_ready = [0] * n
        complete = [0] * n
        consume, issue = _TAP_CONSUME, _TAP_ISSUE
        redirect, value = _TAP_REDIRECT, _TAP_VALUE
        i = 0
        while i < n_words:
            w0 = events[i]
            tag = w0 & 15
            ix = w0 >> 4
            if tag == consume:
                b = events[i + 2]
                consumers.setdefault((ix, gen[ix]), []).append(
                    (b, gen[b], events[i + 1]))
            elif tag == issue:
                gen[ix] += 1
            elif tag == value:
                value_ready[ix] = events[i + 1]
                complete[ix] = events[i + 2]
            elif tag == redirect:
                redirected.add((ix, gen[ix]))
            i += 3
        self._tap_global = (packed, gen, consumers, redirected,
                            value_ready, complete, n_committed)

    def _global_profile_from_tap(self) -> SlackProfile:
        """The backward DP over decoded tap state — statement for
        statement the in-loop :meth:`global_profile`, with ``(ix, gen)``
        instance keys standing in for uop identities (same float-op
        order, so the result is bit-identical)."""
        (packed, gen, consumers, redirected, value_ready, complete,
         n_committed) = self._tap_global
        kinds = packed.kind
        pcs = packed.pc
        # Commits retire in trace order: the committed instances are the
        # last-issued instances of the first n_committed records, and
        # on_commit only ever saw singletons.
        committed = [ix for ix in range(n_committed) if not kinds[ix]]
        if not committed:
            return SlackProfile(self.program.name, self.config_name,
                                self.input_name, {})
        end_time = max(complete[ix] for ix in committed)
        cap_f = float(SLACK_CAP)
        global_slack: Dict[Tuple[int, int], float] = {}
        # Consumers are always younger: process youngest-first.
        for ix in reversed(committed):
            inst = (ix, gen[ix])
            if inst in redirected:
                global_slack[inst] = 0.0
                continue
            samples = consumers.get(inst)
            if not samples:
                g = float(end_time - value_ready[ix])
            else:
                g = min(sample + global_slack.get((cix, cgen), cap_f)
                        for cix, cgen, sample in samples)
            global_slack[inst] = max(0.0, g)

        local = self.profile()
        sums: Dict[int, float] = {}
        mins: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for ix in committed:
            g = min(global_slack[(ix, gen[ix])], cap_f)
            pc = pcs[ix]
            sums[pc] = sums.get(pc, 0.0) + g
            mins[pc] = min(mins.get(pc, cap_f), g)
            counts[pc] = counts.get(pc, 0) + 1
        entries: Dict[int, ProfileEntry] = {}
        for pc, entry in local.entries.items():
            entries[pc] = ProfileEntry(
                pc, entry.count, entry.rel_issue, entry.src_ready,
                entry.out_ready, sums[pc] / counts[pc], int(mins[pc]))
        return SlackProfile(self.program.name, self.config_name,
                            self.input_name, entries)

    # -- global slack -------------------------------------------------------

    def _value_ready(self, uop) -> int:
        ready = uop.out_actual_ready
        if ready >= (1 << 50):
            ready = uop.store_resolve_cycle
        if ready >= (1 << 50):
            ready = uop.complete_cycle
        return ready

    def _global_profile_from_fold(self) -> SlackProfile:
        """Entries from the native fold's per-pc aggregate columns."""
        n_singletons, sums, mins, counts = self._tap_folded
        if n_singletons == 0:
            return SlackProfile(self.program.name, self.config_name,
                                self.input_name, {})
        local = self.profile()
        entries: Dict[int, ProfileEntry] = {}
        for pc, entry in local.entries.items():
            entries[pc] = ProfileEntry(
                pc, entry.count, entry.rel_issue, entry.src_ready,
                entry.out_ready, sums[pc] / counts[pc], int(mins[pc]))
        return SlackProfile(self.program.name, self.config_name,
                            self.input_name, entries)

    def global_profile(self) -> SlackProfile:
        """Backward-DP global slack, aggregated per static instruction."""
        if self._tap_folded is not None:
            return self._global_profile_from_fold()
        if self._tap_global is not None:
            return self._global_profile_from_tap()
        self.on_finish()
        if not self._committed:
            return SlackProfile(self.program.name, self.config_name,
                                self.input_name, {})
        end_time = max(u.complete_cycle for u in self._committed)
        global_slack: Dict[int, float] = {}
        # Consumers are always younger: process youngest-first.
        for uop in reversed(self._committed):
            key = id(uop)
            if key in self._redirected:
                global_slack[key] = 0.0
                continue
            ready = self._value_ready(uop)
            samples = self._consumers.get(key)
            if not samples:
                g = float(end_time - ready)
            else:
                g = min(
                    (cycle - ready) + global_slack.get(id(consumer),
                                                       float(SLACK_CAP))
                    for consumer, cycle in samples)
            global_slack[key] = max(0.0, g)

        # Aggregate per pc, reusing the local profile's issue/ready data.
        local = self.profile()
        sums: Dict[int, float] = {}
        mins: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for uop in self._committed:
            g = min(global_slack[id(uop)], float(SLACK_CAP))
            pc = uop.pc
            sums[pc] = sums.get(pc, 0.0) + g
            mins[pc] = min(mins.get(pc, float(SLACK_CAP)), g)
            counts[pc] = counts.get(pc, 0) + 1
        entries: Dict[int, ProfileEntry] = {}
        for pc, entry in local.entries.items():
            entries[pc] = ProfileEntry(
                pc, entry.count, entry.rel_issue, entry.src_ready,
                entry.out_ready, sums[pc] / counts[pc], int(mins[pc]))
        return SlackProfile(self.program.name, self.config_name,
                            self.input_name, entries)


def compare_profiles(local: SlackProfile,
                     global_: SlackProfile) -> Dict[str, float]:
    """Summary statistics of local vs global slack over shared PCs."""
    shared = set(local.entries) & set(global_.entries)
    if not shared:
        return {"n": 0.0}
    diffs = [global_.entries[pc].slack - local.entries[pc].slack
             for pc in shared]
    wider = sum(1 for d in diffs if d > 0.5)
    return {
        "n": float(len(shared)),
        "mean_local": sum(local.entries[pc].slack for pc in shared)
        / len(shared),
        "mean_global": sum(global_.entries[pc].slack for pc in shared)
        / len(shared),
        "fraction_global_wider": wider / len(shared),
    }
