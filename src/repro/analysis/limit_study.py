"""Figure 8: exhaustive limit study over 10 mini-graph candidates.

Mini-graph selection is non-decomposable, so a full limit study is
infeasible (§5.4); the paper instead takes the 10 most frequent
non-overlapping static mini-graph candidates of the ADPCM coder, evaluates
all 2^10 = 1024 subsets exhaustively on the reduced machine, and places
each selector's choice on the resulting coverage/performance scatter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..minigraph.dynamic import SlackDynamicPolicy
from ..minigraph.selectors import (
    FixedSetSelector, Selector, SlackProfileSelector, StructAll,
    StructBounded, StructNone, make_plan,
)
from ..minigraph.templates import MGSite, build_templates
from ..minigraph.transform import fold_trace
from ..pipeline.config import MachineConfig, reduced_config
from ..pipeline.core import OoOCore
from ..harness.runner import Runner


@dataclass
class SubsetPoint:
    """One evaluated mini-graph subset."""

    mask: int
    coverage: float
    relative_ipc: float

    def members(self) -> List[int]:
        """Candidate indices present in this subset's bitmask."""
        return [i for i in range(10) if self.mask & (1 << i)]


@dataclass
class LimitStudyResult:
    """Scatter points plus each selector's position."""

    bench: str
    input_name: str
    candidate_sites: List[MGSite] = field(default_factory=list)
    points: List[SubsetPoint] = field(default_factory=list)
    selector_points: Dict[str, SubsetPoint] = field(default_factory=dict)

    @property
    def best(self) -> SubsetPoint:
        return max(self.points, key=lambda p: p.relative_ipc)

    @property
    def empty_set(self) -> SubsetPoint:
        return next(p for p in self.points if p.mask == 0)

    def render(self) -> str:
        """Text table: the exhaustive best plus each selector's point."""
        lines = [f"=== FIG8 limit study: {self.bench}/{self.input_name} ===",
                 f"{len(self.points)} subsets evaluated over "
                 f"{len(self.candidate_sites)} candidates",
                 f"{'set':>22s} {'mask':>12s} {'coverage':>9s} "
                 f"{'rel perf':>9s}"]
        best = self.best
        lines.append(f"{'exhaustive best':>22s} {best.members()!s:>12s} "
                     f"{best.coverage:9.3f} {best.relative_ipc:9.3f}")
        for name, point in self.selector_points.items():
            lines.append(f"{name:>22s} {point.members()!s:>12s} "
                         f"{point.coverage:9.3f} {point.relative_ipc:9.3f}")
        return "\n".join(lines)


def top_nonoverlapping_sites(runner: Runner, bench: str, input_name: str,
                             count: int = 10) -> List[MGSite]:
    """The ``count`` most frequent, mutually non-overlapping candidates."""
    bench_obj = runner._bench(bench)
    program = bench_obj.program(input_name)
    trace = runner.trace(bench, input_name)
    candidates = runner.candidates(bench, input_name)
    templates = build_templates(candidates, trace.dynamic_count_of())
    sites = [site for template in templates for site in template.sites]
    sites.sort(key=lambda s: (-s.score_contribution, s.start))
    chosen: List[MGSite] = []
    for site in sites:
        if len(chosen) == count:
            break
        if any(site.start < c.end and c.start < site.end for c in chosen):
            continue
        if site.frequency == 0:
            continue
        chosen.append(site)
    chosen.sort(key=lambda s: s.start)
    return chosen


def _evaluate_subset(runner: Runner, bench: str, input_name: str,
                     config: MachineConfig, sites: List[MGSite], mask: int,
                     baseline_ipc: float,
                     policy=None) -> SubsetPoint:
    allowed = {site.id for i, site in enumerate(sites) if mask & (1 << i)}
    bench_obj = runner._bench(bench)
    program = bench_obj.program(input_name)
    trace = runner.trace(bench, input_name)
    plan = make_plan(program, trace.dynamic_count_of(),
                     FixedSetSelector(allowed),
                     budget=runner.budget,
                     candidates=runner.candidates(bench, input_name))
    records = fold_trace(trace, plan)
    core = OoOCore(config, records, policy=policy,
                   warm_caches=runner.warm_caches)
    stats = core.run()
    return SubsetPoint(mask, stats.coverage, stats.ipc / baseline_ipc)


def evaluate_subset_cached(runner: Runner, bench: str, input_name: str,
                           config: MachineConfig, n_candidates: int,
                           mask: int, baseline_ipc: float,
                           sites: Optional[List[MGSite]] = None
                           ) -> SubsetPoint:
    """Store-backed subset evaluation: the durable form of one Figure 8
    scatter point.

    Keyed via :meth:`Runner.subset_params` (full machine sizing, mask,
    candidate count, normalization baseline, runner knobs), so completed
    masks survive process death — which is what lets ``repro resume``
    skip them after a killed limit study — and repeated sweeps over the
    same cache directory are free. ``sites`` skips the candidate ranking
    when the caller already holds it.
    """
    params = runner.subset_params(bench, input_name, config, n_candidates,
                                  mask, baseline_ipc)

    def compute() -> SubsetPoint:
        ranked = sites if sites is not None else top_nonoverlapping_sites(
            runner, bench, input_name, n_candidates)
        return _evaluate_subset(runner, bench, input_name, config, ranked,
                                mask, baseline_ipc)

    return runner.store.get_or_compute("subset", params, compute)


def _selector_mask(plan_sites: List[MGSite], sites: List[MGSite]) -> int:
    chosen_ids = {site.id for site in plan_sites}
    mask = 0
    for i, site in enumerate(sites):
        if site.id in chosen_ids:
            mask |= 1 << i
    return mask


def _parallel_subset_points(runner: Runner, bench: str, input_name: str,
                            config: MachineConfig, n_candidates: int,
                            n_subsets: int, baseline_ipc: float,
                            jobs: int,
                            progress=None) -> List[SubsetPoint]:
    """Fan the exhaustive subset sweep out over worker processes.

    Each mask evaluation is one task; trace and candidate enumeration
    are shared through the runner's persistent artifact store. Results
    are ordered by mask, so the outcome is independent of ``jobs``.
    """
    from ..exec.dag import Scheduler, Task
    from ..exec.shm import ShmRegistry
    from ..exec.tasks import run_subset, runner_params

    base = runner_params(runner)
    # The driver has already materialized the trace (site ranking reads
    # it), so ship it to the workers zero-copy instead of having every
    # process unpickle the same multi-megabyte artifact.
    registry = ShmRegistry()
    descriptor = registry.publish(runner.trace(bench, input_name),
                                  bench, input_name, runner.max_insts)
    if descriptor is not None:
        base = dict(base, shm_traces=[descriptor])
    tasks = [
        Task(id=f"subset/{bench}/{input_name}/{mask}", fn=run_subset,
             args=(dict(base, bench=bench, input=input_name,
                        config=config.name, n_candidates=n_candidates,
                        mask=mask, baseline_ipc=baseline_ipc),),
             stage="subset")
        for mask in range(n_subsets)
    ]
    try:
        report = Scheduler(jobs=jobs, on_event=progress).run(tasks)
    finally:
        registry.release_all()
    points = [SubsetPoint(r["mask"], r["coverage"], r["relative_ipc"])
              for r in report.results.values()]
    points.sort(key=lambda p: p.mask)
    return points


def run_limit_study(runner: Optional[Runner] = None, bench: str = "adpcm",
                    input_name: str = "tiny",
                    config: Optional[MachineConfig] = None,
                    n_candidates: int = 10,
                    subset_cap: Optional[int] = None,
                    jobs: int = 1,
                    progress=None) -> LimitStudyResult:
    """Exhaustively evaluate mini-graph subsets and place the selectors.

    ``subset_cap`` truncates the exhaustive sweep (tests use small caps);
    the full Figure 8 sweep needs ``2 ** n_candidates`` evaluations.
    With ``jobs > 1`` (and a persistent artifact store on ``runner`` and
    a *named* machine configuration) the sweep fans out over worker
    processes; results are identical to the serial path. ``progress``
    receives the scheduler's per-task event stream (see
    :class:`~repro.exec.dag.Scheduler`); callers that render progress —
    the CLI, the serve daemon's per-job event logs — attach their own
    sink instead of sharing one process-wide stderr stream.
    """
    runner = runner or Runner()
    config = config or reduced_config()
    sites = top_nonoverlapping_sites(runner, bench, input_name,
                                     n_candidates)
    result = LimitStudyResult(bench, input_name, candidate_sites=sites)

    # Normalize against the fully-provisioned machine without mini-graphs.
    from ..pipeline.config import NAMED_CONFIGS, full_config
    baseline_ipc = runner.baseline(bench, full_config(), input_name).ipc

    n_subsets = 1 << len(sites)
    if subset_cap is not None:
        n_subsets = min(n_subsets, subset_cap)
    parallel_ok = (jobs > 1 and runner.store.persistent
                   and config.name in NAMED_CONFIGS)
    if parallel_ok:
        result.points.extend(_parallel_subset_points(
            runner, bench, input_name, config, n_candidates, n_subsets,
            baseline_ipc, jobs, progress=progress))
    else:
        for mask in range(n_subsets):
            result.points.append(evaluate_subset_cached(
                runner, bench, input_name, config, n_candidates, mask,
                baseline_ipc, sites=sites))

    # Place each static selector: its pool restricted to the 10 candidates.
    profile = runner.slack_profile(bench, config, input_name)
    static_selectors: List[Selector] = [
        StructAll(), StructNone(), StructBounded(), SlackProfileSelector()]
    by_mask = {p.mask: p for p in result.points}
    for selector in static_selectors:
        pool = selector.build_pool(sites, profile)
        mask = _selector_mask(pool, sites)
        point = by_mask.get(mask)
        if point is None:
            point = evaluate_subset_cached(runner, bench, input_name,
                                           config, n_candidates, mask,
                                           baseline_ipc, sites=sites)
        result.selector_points[selector.name] = point

    # Slack-Dynamic starts from the full set and disables at run time.
    policy = SlackDynamicPolicy()
    full_mask = (1 << len(sites)) - 1
    dynamic_point = _evaluate_subset(runner, bench, input_name, config,
                                     sites, full_mask, baseline_ipc,
                                     policy=policy)
    enabled_mask = 0
    for i, site in enumerate(sites):
        if policy.enabled(site):
            enabled_mask |= 1 << i
    result.selector_points["slack-dynamic"] = SubsetPoint(
        enabled_mask, dynamic_point.coverage, dynamic_point.relative_ipc)
    return result
