"""Analysis tools: the Figure 8 limit study, global slack, suite reports."""

from .global_slack import GlobalSlackCollector, compare_profiles
from .limit_study import (
    LimitStudyResult, SubsetPoint, run_limit_study, top_nonoverlapping_sites,
)
from .report import SuiteReport, SuiteRow, compare_selectors_by_suite, \
    suite_report

__all__ = ["GlobalSlackCollector", "LimitStudyResult", "SubsetPoint",
           "SuiteReport", "SuiteRow", "compare_profiles",
           "compare_selectors_by_suite", "run_limit_study", "suite_report",
           "top_nonoverlapping_sites"]
