"""Population reports: per-suite breakdowns of the headline comparison.

The paper's S-curves aggregate four benchmark suites; this module slices
the headline experiment by suite so suite-specific behaviour (e.g.
MiBench-style embedded loops aggregating more readily than SPEC-style
pointer code) is visible — the kind of table a paper's discussion section
quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..harness.runner import Runner
from ..minigraph.selectors import Selector, SlackProfileSelector, StructAll
from ..pipeline.config import full_config, reduced_config
from ..workloads.suite import all_benchmarks


@dataclass
class SuiteRow:
    """Aggregates for one benchmark suite."""

    suite: str
    n: int
    no_mg_rel: float
    selector_rel: float
    coverage: float
    mg_serialized_rate: float   # serialized handle instances per handle

    @property
    def recovered(self) -> float:
        """Fraction of the reduction loss the selector recovered."""
        loss = 1.0 - self.no_mg_rel
        if loss <= 0:
            return 1.0
        return min((self.selector_rel - self.no_mg_rel) / loss, 9.99)


@dataclass
class SuiteReport:
    """Per-suite breakdown of one selector's headline run."""

    selector: str
    rows: List[SuiteRow] = field(default_factory=list)

    def render(self) -> str:
        """Aligned text table, one row per suite plus the total."""
        lines = [f"per-suite breakdown — {self.selector} on the reduced "
                 f"machine (rel. full baseline)",
                 f"{'suite':>10s} {'n':>3s} {'no-MG':>7s} {'with-MG':>8s} "
                 f"{'recovered':>10s} {'coverage':>9s} {'serialized':>11s}"]
        for row in self.rows:
            lines.append(
                f"{row.suite:>10s} {row.n:3d} {row.no_mg_rel:7.3f} "
                f"{row.selector_rel:8.3f} {row.recovered:10.1%} "
                f"{row.coverage:9.1%} {row.mg_serialized_rate:11.2%}")
        return "\n".join(lines)


def suite_report(runner: Optional[Runner] = None,
                 selector: Optional[Selector] = None,
                 suites: Optional[Sequence[str]] = None,
                 limit_per_suite: Optional[int] = None) -> SuiteReport:
    """Build the per-suite headline breakdown.

    ``limit_per_suite`` bounds the programs per suite (tests use small
    values); the default covers the whole population.
    """
    runner = runner or Runner()
    selector = selector or SlackProfileSelector()
    full = full_config()
    reduced = reduced_config()
    by_suite: Dict[str, List] = {}
    for bench in all_benchmarks(suites=suites):
        group = by_suite.setdefault(bench.suite, [])
        if limit_per_suite is None or len(group) < limit_per_suite:
            group.append(bench)

    report = SuiteReport(selector.name)
    totals = []
    for suite in sorted(by_suite):
        benches = by_suite[suite]
        no_mg = mg = cov = serial = handles = 0.0
        for bench in benches:
            base = runner.baseline(bench, full).ipc
            no_mg += runner.baseline(bench, reduced).ipc / base
            run = runner.run_selector(bench, selector, reduced)
            mg += run.ipc / base
            cov += run.coverage
            serial += run.stats.mg_serialized_instances
            handles += max(run.stats.handles_committed, 1)
        n = len(benches)
        row = SuiteRow(suite, n, no_mg / n, mg / n, cov / n,
                       serial / handles)
        report.rows.append(row)
        totals.append((n, row))

    total_n = sum(n for n, _ in totals)
    if total_n:
        report.rows.append(SuiteRow(
            "ALL", total_n,
            sum(r.no_mg_rel * n for n, r in totals) / total_n,
            sum(r.selector_rel * n for n, r in totals) / total_n,
            sum(r.coverage * n for n, r in totals) / total_n,
            sum(r.mg_serialized_rate * n for n, r in totals) / total_n))
    return report


def compare_selectors_by_suite(runner: Optional[Runner] = None,
                               suites: Optional[Sequence[str]] = None,
                               limit_per_suite: Optional[int] = None) -> str:
    """Struct-All vs Slack-Profile per suite — where awareness pays."""
    runner = runner or Runner()
    blind = suite_report(runner, StructAll(), suites, limit_per_suite)
    aware = suite_report(runner, SlackProfileSelector(), suites,
                         limit_per_suite)
    lines = [f"{'suite':>10s} {'struct-all':>11s} {'slack-profile':>14s} "
             f"{'awareness gain':>15s}"]
    for blind_row, aware_row in zip(blind.rows, aware.rows):
        gain = aware_row.selector_rel - blind_row.selector_rel
        lines.append(f"{blind_row.suite:>10s} "
                     f"{blind_row.selector_rel:11.3f} "
                     f"{aware_row.selector_rel:14.3f} {gain:+15.3f}")
    return "\n".join(lines)
