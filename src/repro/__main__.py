"""Top-level command-line interface.

Subcommands::

    python -m repro list                       # benchmark population
    python -m repro run crc32 --selector slack-profile
    python -m repro trace crc32 --first 20 --last 45
    python -m repro validate all
    python -m repro experiments fig1 ...       # figure regeneration
    python -m repro limit-study --jobs 4       # Figure 8
    python -m repro cache stats                # artifact store maintenance
    python -m repro metrics crc32 --format prom   # metrics registry export
    python -m repro attribution --benchmarks crc32 # predicted-vs-observed
    python -m repro telemetry trace.jsonl      # validate a telemetry file
    python -m repro serve --state-dir .serve   # persistent job daemon
    python -m repro submit experiment spec.json --wait  # talk to it
    python -m repro loadtest --clients 200     # hammer a running daemon

`experiments` forwards to :mod:`repro.harness.experiments`; everything
else is a thin veneer over the library API so each command doubles as a
usage example. Commands that simulate accept ``--cache-dir`` (or honor
``$REPRO_CACHE_DIR``) to persist intermediates in the content-addressed
artifact store of :mod:`repro.exec`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .exec import ArtifactStore, resolve_cache_dir
from .harness.runner import Runner
from .isa.interp import ExecutionLimitExceeded, MemoryFault
from .isa.validate import ValidationError
from .minigraph.selectors import (
    ReadPortAwareSelector, SlackProfileSelector, StructAll, StructBounded,
    StructNone,
)
from .pipeline.config import config_by_name
from .workloads.suite import all_benchmarks, benchmark

SELECTORS = {
    "struct-all": StructAll,
    "struct-none": StructNone,
    "struct-bounded": StructBounded,
    "slack-profile": SlackProfileSelector,
    "read-port": ReadPortAwareSelector,
}


def _cmd_list(args) -> int:
    benches = all_benchmarks(suites=args.suites or None)
    print(f"{'name':<14s} {'suite':<9s} {'inputs':<18s} description")
    print("-" * 72)
    for bench in benches:
        print(f"{bench.name:<14s} {bench.suite:<9s} "
              f"{','.join(bench.inputs):<18s} {bench.description}")
    print(f"\n{len(benches)} benchmarks")
    return 0


def _store_for(args) -> ArtifactStore:
    cache_dir = resolve_cache_dir(getattr(args, "cache_dir", None),
                                  getattr(args, "no_cache", False))
    return ArtifactStore(cache_dir)


def _add_cache_flags(parser) -> None:
    parser.add_argument("--cache-dir", default=None,
                        help="persistent artifact store directory "
                             "(default: $REPRO_CACHE_DIR, else none)")
    parser.add_argument("--no-cache", action="store_true",
                        help="memory-only memoization")


def _cmd_run(args) -> int:
    runner = Runner(store=_store_for(args))
    config = config_by_name(args.config)
    full = config_by_name("full")
    base_full = runner.baseline(args.benchmark, full, args.input)
    base = runner.baseline(args.benchmark, config, args.input)
    print(f"{args.benchmark} on {config.name} ({args.input} input)")
    print(f"  no mini-graphs : IPC {base.ipc:.3f} "
          f"({base.ipc / base_full.ipc:.3f}x of full baseline)")
    if args.selector == "none":
        return 0
    if args.selector == "slack-dynamic":
        run = runner.run_slack_dynamic(args.benchmark, config,
                                       input_name=args.input)
    else:
        selector = SELECTORS[args.selector]()
        run = runner.run_selector(args.benchmark, selector, config,
                                  input_name=args.input)
    stats = run.stats
    print(f"  {run.selector:<15s}: IPC {stats.ipc:.3f} "
          f"({stats.ipc / base_full.ipc:.3f}x), "
          f"coverage {stats.coverage:.1%}, "
          f"{stats.handles_committed} handles, "
          f"{run.plan.n_templates} templates")
    if stats.mg_serialized_instances:
        print(f"  serialization  : {stats.mg_serialized_instances} "
              f"serialized instances, {stats.mg_consumer_delays} "
              f"propagated to consumers")
    return 0


def _cmd_trace(args) -> int:
    from .pipeline.pipetrace import pipetrace
    runner = Runner()
    config = config_by_name(args.config)
    if args.selector == "none":
        records = runner.trace(args.benchmark, args.input).records
    else:
        from .minigraph.transform import fold_trace
        selector = SELECTORS[args.selector]()
        plan = runner.plan(args.benchmark, selector, input_name=args.input)
        records = fold_trace(runner.trace(args.benchmark, args.input), plan)
    print(pipetrace(config, records, first=args.first, last=args.last))
    return 0


def _cmd_validate(args) -> int:
    from .isa.validate import ValidationError, check
    names = [b.name for b in all_benchmarks()] \
        if args.benchmark == "all" else [args.benchmark]
    failures = 0
    for name in names:
        program = benchmark(name).program("train")
        try:
            warnings = check(program)
        except ValidationError as error:
            failures += 1
            print(f"{name}: ERROR {error}")
            continue
        status = f"{len(warnings)} warnings" if warnings else "clean"
        print(f"{name}: {status}")
    return 1 if failures else 0


def _cmd_report(args) -> int:
    from .analysis.report import suite_report
    selector = SELECTORS[args.selector]()
    report = suite_report(Runner(), selector,
                          limit_per_suite=args.limit_per_suite)
    print(report.render())
    return 0


def _cmd_limit_study(args) -> int:
    from .analysis.limit_study import run_limit_study
    store = _store_for(args)
    if args.ledger and not store.persistent:
        print("limit-study: --ledger needs a persistent store; pass "
              "--cache-dir or set $REPRO_CACHE_DIR", file=sys.stderr)
        return 2
    telemetry = None
    if getattr(args, "telemetry", None):
        from .obs.telemetry import (
            TelemetryWriter, attach_store_telemetry, run_manifest,
        )
        telemetry = TelemetryWriter(args.telemetry,
                                    run_manifest(label="limit-study"))

    def study(runner):
        ledger = None
        progress = None
        if args.ledger:
            from .dist.resume import open_ledger, workload_for_limit_study
            ledger = open_ledger(
                args.ledger, runner,
                workload_for_limit_study("adpcm", "tiny", "reduced", 10,
                                         args.cap),
                extra={"jobs": args.jobs})
            progress = ledger.sink(None)
        try:
            if telemetry is not None:
                attach_store_telemetry(runner.store, telemetry)
                with telemetry.span("limit-study", "experiment",
                                    args={"jobs": args.jobs}):
                    result = run_limit_study(runner, subset_cap=args.cap,
                                             jobs=args.jobs,
                                             progress=progress)
            else:
                result = run_limit_study(runner, subset_cap=args.cap,
                                         jobs=args.jobs, progress=progress)
            if ledger is not None:
                ledger.complete(len(result.points), 0)
            return result
        finally:
            if ledger is not None:
                ledger.close()

    try:
        if args.jobs > 1 and not store.persistent:
            import tempfile
            with tempfile.TemporaryDirectory(
                    prefix="repro-exec-") as scratch:
                result = study(Runner(store=ArtifactStore(scratch)))
        else:
            result = study(Runner(store=store))
    finally:
        if telemetry is not None:
            telemetry.close()
            print(f"[telemetry] {telemetry.events_written} events -> "
                  f"{telemetry.path}", file=sys.stderr)
    print(result.render())
    return 0


def _parse_duration(text: str) -> float:
    """``"60"``, ``"60s"``, ``"2m"`` → seconds."""
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("ms"):
        text, scale = text[:-2], 0.001
    elif text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        text, scale = text[:-1], 60.0
    try:
        seconds = float(text) * scale
    except ValueError:
        raise ValueError(f"bad duration {text!r} (try 60s, 90, or 2m)") \
            from None
    if seconds <= 0:
        raise ValueError("duration must be positive")
    return seconds


def _fuzz_selectors(names):
    from .check.fuzz import default_selectors
    if not names:
        return None
    by_name = {s.name: s for s in default_selectors()}
    missing = [n for n in names if n not in by_name]
    if missing:
        raise ValueError(
            f"unknown selector(s) {', '.join(missing)} "
            f"(choose from {', '.join(sorted(by_name))})")
    return [by_name[n] for n in names]


def _cmd_fuzz(args) -> int:
    from .check.fuzz import replay, run_fuzz
    selectors = _fuzz_selectors(args.selectors)
    if args.replay is not None:
        failure = replay(args.replay, selectors=selectors)
        if failure is None:
            print(f"replay {args.replay}: no failure")
            return 0
        print(f"replay {args.replay}: {failure.render()}")
        return 1
    report = run_fuzz(budget=_parse_duration(args.budget),
                      seed=args.seed, max_programs=args.programs,
                      selectors=selectors,
                      artifacts_dir=args.artifacts,
                      shrink=not args.no_shrink,
                      log=lambda line: print(line, file=sys.stderr))
    print(report.render())
    return 0 if report.ok else 1


def _cmd_lint_plan(args) -> int:
    from .check.lint import lint_plan
    runner = Runner(budget=args.budget, store=_store_for(args))
    if args.selector == "slack-dynamic":
        from .minigraph.selectors import SlackDynamicSelector
        selector = SlackDynamicSelector()
    else:
        selector = SELECTORS[args.selector]()
    names = [b.name for b in all_benchmarks()] \
        if args.benchmark == "all" else [args.benchmark]
    failures = 0
    for name in names:
        plan = runner.plan(name, selector, input_name=args.input)
        program = benchmark(name).program(args.input)
        issues = lint_plan(program, plan, max_size=runner.max_mg_size,
                           budget=runner.budget)
        if issues:
            failures += 1
            print(f"{name}/{selector.name}: {len(issues)} issue(s)")
            for issue in issues:
                print(f"  {issue.render()}")
        else:
            print(f"{name}/{selector.name}: OK "
                  f"({len(plan.sites)} sites, {plan.n_templates} "
                  f"templates)")
    return 1 if failures else 0


def _cmd_gen(args) -> int:
    from .isa.validate import check
    from .workloads.generator import synth_program
    program = synth_program(
        args.seed, args.input, profile=args.profile,
        n_loops=args.n_loops, trips=args.trips, ops=args.ops,
        array_sizes=args.array_sizes)
    check(program)
    print(f"# {program.name}: {len(program)} instructions, "
          f"{len(program.data)} data words (seed {args.seed}, "
          f"{args.input} input)")
    print(program.listing())
    return 0


def _cmd_bench(args) -> int:
    from .harness.bench import (
        DEFAULT_BENCHMARKS, DEFAULT_SELECTORS, QUICK_BENCHMARKS,
        QUICK_SELECTORS, check_against, load_report, run_bench, write_report,
    )
    if args.plan:
        from .harness.bench import (
            check_plan_report, run_plan_bench, write_plan_report,
        )
        benchmarks = list(args.benchmarks or
                          (QUICK_BENCHMARKS if args.quick
                           else DEFAULT_BENCHMARKS))
        label = "plankern" if args.label == "local" else args.label
        report = run_plan_bench(
            benchmarks, label=label, repeat=max(3, args.repeat),
            log=lambda line: print(line, file=sys.stderr))
        print(report.render())
        path = write_plan_report(report, args.out)
        print(f"wrote {path}")
        failures = check_plan_report(report,
                                     min_speedup=args.min_speedup)
        if failures:
            for failure in failures:
                print(f"bench: FAIL {failure}", file=sys.stderr)
            return 1
        return 0
    if args.batch:
        from .harness.bench import (
            check_batch_report, run_batch_bench, write_batch_report,
        )
        benchmarks = list(args.benchmarks or
                          (QUICK_BENCHMARKS if args.quick
                           else DEFAULT_BENCHMARKS))
        label = "batch" if args.label == "local" else args.label
        report = run_batch_bench(
            benchmarks, threads=args.batch_threads, label=label,
            log=lambda line: print(line, file=sys.stderr))
        print(report.render())
        path = write_batch_report(report, args.out)
        print(f"wrote {path}")
        failures = check_batch_report(report,
                                      min_speedup=args.min_speedup)
        if failures:
            for failure in failures:
                print(f"bench: FAIL {failure}", file=sys.stderr)
            return 1
        return 0
    if args.quick:
        benchmarks = list(args.benchmarks or QUICK_BENCHMARKS)
        selectors = list(args.selectors or QUICK_SELECTORS)
    else:
        benchmarks = list(args.benchmarks or DEFAULT_BENCHMARKS)
        selectors = list(args.selectors or DEFAULT_SELECTORS)
    runner = Runner(store=_store_for(args))
    telemetry = None
    if args.telemetry:
        from .obs.telemetry import (
            TelemetryWriter, attach_store_telemetry, run_manifest,
        )
        telemetry = TelemetryWriter(
            args.telemetry,
            run_manifest(config=config_by_name(args.config),
                         label=args.label))
        attach_store_telemetry(runner.store, telemetry)
    try:
        report = run_bench(benchmarks, selectors,
                           config=config_by_name(args.config),
                           label=args.label, repeat=args.repeat,
                           runner=runner, telemetry=telemetry,
                           log=lambda line: print(line, file=sys.stderr))
    finally:
        if telemetry is not None:
            telemetry.close()
            print(f"[telemetry] {telemetry.events_written} events -> "
                  f"{telemetry.path}", file=sys.stderr)
    print(report.render())
    path = write_report(report, args.out)
    print(f"wrote {path}")
    if args.check_against is not None:
        baseline = load_report(args.check_against)
        failures = check_against(report, baseline,
                                 tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"bench: FAIL {failure}", file=sys.stderr)
            return 1
        print(f"bench: OK against {args.check_against} "
              f"(KIPS {report.kips:.1f} vs baseline {baseline.kips:.1f})")
    return 0


def _cmd_metrics(args) -> int:
    import json as _json

    from .minigraph.transform import fold_trace
    from .obs.attribution import AttributionCollector
    from .obs.metrics import run_registry, validate_metrics
    from .pipeline.core import OoOCore

    if getattr(args, "server", None):
        # Proxy a running daemon's registry instead of simulating.
        from .serve.client import SyncClient
        payload = SyncClient(_serve_address(args)).metrics(args.format)
        if args.format == "json":
            validate_metrics(payload)
            text = _json.dumps(payload, indent=2, sort_keys=True) + "\n"
        else:
            text = payload
        if args.out:
            from pathlib import Path
            Path(args.out).write_text(text)
        else:
            sys.stdout.write(text)
        return 0

    runner = Runner(store=_store_for(args))
    config = config_by_name(args.config)
    if args.selector == "none":
        records = runner.trace(args.benchmark, args.input).packed()
    else:
        selector = SELECTORS[args.selector]()
        plan = runner.plan(args.benchmark, selector, input_name=args.input)
        records = fold_trace(runner.trace(args.benchmark, args.input), plan)
    # Attach an (empty-handed for selector=none) attribution collector.
    # Whichever path the core picks — the compiled kernel writes every
    # cache/TLB/branch/store-set counter back, the Python loop counts in
    # place — the structures hold real per-run counts for the harvest.
    core = OoOCore(config, records, warm_caches=True,
                   attribution=AttributionCollector())
    stats = core.run()
    stats.program_name = args.benchmark
    registry = run_registry(core=core, store=runner.store)
    if args.format == "prom":
        text = registry.to_prometheus()
    else:
        doc = registry.to_json()
        validate_metrics(doc)
        text = _json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(text)
        print(f"wrote {len(registry)} metrics to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_attribution(args) -> int:
    from .harness.bench import DEFAULT_BENCHMARKS
    from .obs.attribution import (
        ATTRIBUTION_SELECTORS, render_table, run_attribution,
    )
    runner = Runner(budget=args.budget, store=_store_for(args))
    benchmarks = list(args.benchmarks or DEFAULT_BENCHMARKS)
    selectors = list(args.selectors or ATTRIBUTION_SELECTORS)
    points = run_attribution(
        runner, benchmarks, selectors, config=config_by_name(args.config),
        log=lambda line: print(line, file=sys.stderr))
    print(render_table(points, per_template=args.per_template))
    return 0


def _cmd_telemetry(args) -> int:
    from .obs.telemetry import validate_file
    summary = validate_file(args.file)
    manifest = summary["manifest"]
    print(f"{args.file}: OK ({summary['events']} events, "
          f"{summary['spans']} spans, {summary['instants']} instants)")
    print(f"manifest: git {manifest['git_sha'][:12]} "
          f"config {manifest['config_digest']} salt {manifest['salt']} "
          f"label {manifest['label']!r} created {manifest['created']}")
    if summary["cats"]:
        print("categories: " + ", ".join(
            f"{cat}={count}"
            for cat, count in sorted(summary["cats"].items())))
    return 0


def _cmd_tune(args) -> int:
    from .exec.grid import parse_jobs
    from .tune import SearchSpace, run_tune
    from .tune.ledger import TuneLedgerError
    from .tune.report import tune_doc, write_doc, write_plot
    if args.resume and not args.ledger:
        raise ValueError("--resume needs --ledger")
    if args.space:
        space = SearchSpace.from_file(args.space)
    else:
        space = SearchSpace.from_cli(
            args.selectors or ["struct-all", "read-port"],
            args.configs or ["full", "reduced"],
            benchmarks=args.benchmarks or None,
            input_name=args.input)
    jobs, threads = parse_jobs(args.jobs)
    log = None if args.quiet \
        else (lambda line: print(line, file=sys.stderr))
    try:
        result = run_tune(
            space, strategy=args.strategy, trials=args.trials,
            seed=args.seed, store=_store_for(args), budget=args.budget,
            jobs=jobs, threads=threads, max_insts=args.max_insts,
            halving_eta=args.halving_eta,
            halving_min_insts=args.halving_min_insts,
            ledger_path=args.ledger, resume=args.resume, log=log)
    except TuneLedgerError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    print(result.render())
    if args.out:
        doc = tune_doc(space, result.evals, result.frontier,
                       stats=result.stats.as_dict())
        print(f"wrote {write_doc(args.out, doc)}")
    if args.metrics:
        import json as _json
        from pathlib import Path

        from .obs.metrics import MetricsRegistry, collect_tune
        registry = MetricsRegistry()
        collect_tune(registry, result.stats)
        Path(args.metrics).write_text(
            _json.dumps(registry.to_json(), indent=2) + "\n")
        print(f"wrote {len(registry)} metrics to {args.metrics}")
    if args.plot:
        try:
            print(f"wrote {write_plot(args.plot, result.evals, result.frontier)}")
        except ValueError as error:
            print(f"repro: plot skipped: {error}", file=sys.stderr)
    return 0


def _cmd_cache(args) -> int:
    cache_dir = resolve_cache_dir(args.cache_dir)
    if cache_dir is None:
        print("no cache directory: pass --cache-dir or set "
              "$REPRO_CACHE_DIR", file=sys.stderr)
        return 1
    if args.action == "migrate":
        from .dist.sqlite_store import SqliteManifestBackend
        backend = SqliteManifestBackend(cache_dir)
        count = backend.reindex(force=True)
        backend.close()
        print(f"indexed {count} artifacts into "
              f"{cache_dir}/manifest.sqlite")
        return 0
    store = ArtifactStore(cache_dir, backend=args.backend)
    if args.action == "stats":
        summary = store.disk_summary()
        total_count = sum(e["count"] for e in summary.values())
        total_bytes = sum(e["bytes"] for e in summary.values())
        print(f"artifact store at {store.root} "
              f"({store.backend_name} backend)")
        print(f"{'kind':<12s} {'count':>7s} {'bytes':>12s}")
        for kind in sorted(summary):
            entry = summary[kind]
            print(f"{kind:<12s} {entry['count']:>7d} {entry['bytes']:>12d}")
        print(f"{'total':<12s} {total_count:>7d} {total_bytes:>12d}")
        print(f"code-version salt: {store.salt}")
        if args.compare or args.bench_out:
            from .dist.sqlite_store import compare_backends
            timing = compare_backends(store.root)
            print(f"stats timing: dir {timing['dir_stats_s'] * 1e3:.2f}ms "
                  f"sqlite {timing['sqlite_stats_s'] * 1e3:.2f}ms "
                  f"({timing['speedup']:.1f}x, "
                  f"{timing['artifacts']} artifacts)")
            if args.bench_out:
                import json as _json
                from pathlib import Path
                doc = {k: v for k, v in timing.items() if k != "summary"}
                Path(args.bench_out).write_text(
                    _json.dumps(doc, indent=2, sort_keys=True) + "\n")
                print(f"wrote {args.bench_out}")
    elif args.action == "clear":
        print(f"removed {store.clear()} artifacts from {store.root}")
    elif args.action == "dedup":
        result = store.dedup()
        print(f"deduplicated {store.root}: {result['groups']} duplicate "
              f"groups, {result['linked']} payloads hard-linked, "
              f"{result['bytes_saved']} bytes saved")
    else:  # prune
        max_age = args.max_age_days * 86400.0 \
            if args.max_age_days is not None else None
        removed = store.prune(max_age=max_age, kinds=args.kinds or None)
        print(f"pruned {removed} artifacts from {store.root}")
    return 0


def _cmd_resume(args) -> int:
    from .dist.ledger import LedgerError
    from .dist.resume import resume_run
    from .exec import ProgressPrinter
    dispatch = None
    if args.dispatch:
        from .dist.dispatch import make_dispatch
        dispatch = make_dispatch(args.dispatch, jobs=args.jobs or 1)
    try:
        summary = resume_run(
            args.ledger, jobs=args.jobs,
            on_event=None if args.quiet else ProgressPrinter(),
            dispatch=dispatch, allow_stale=args.force)
    except LedgerError as error:
        print(f"repro: resume: {error}", file=sys.stderr)
        return 1
    print(f"resumed {summary['kind']} run from {args.ledger}: "
          f"{summary['skipped']} nodes already durable, "
          f"{summary['scheduled']} scheduled, "
          f"{summary['completed']} completed, "
          f"{summary['failed']} failed")
    return 1 if summary["failed"] else 0


def _cmd_serve(args) -> int:
    import asyncio
    from pathlib import Path

    from .serve.server import ServerConfig, serve_forever
    config = ServerConfig(
        state_dir=Path(args.state_dir),
        socket_path=Path(args.socket) if args.socket else None,
        host=args.host, port=args.port,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        job_slots=args.job_slots, pool_workers=args.pool,
        max_queued=args.max_queued, max_running=args.max_running,
        budget=args.budget, quiet=args.quiet,
        max_results=args.max_results, result_ttl=args.result_ttl,
        max_job_events=args.max_job_events, dispatch=args.dispatch,
        batch_threads=args.batch_threads)
    return asyncio.run(serve_forever(config))


def _serve_address(args) -> str:
    from .serve.client import resolve_address
    return resolve_address(args.server)


def _cmd_submit(args) -> int:
    import json as _json

    from .serve.client import ServeError, SyncClient
    if args.spec == "-":
        spec = _json.load(sys.stdin)
    elif args.spec.lstrip().startswith("{"):
        spec = _json.loads(args.spec)
    else:
        from pathlib import Path
        spec = _json.loads(Path(args.spec).read_text())
    client = SyncClient(_serve_address(args), client_id=args.client)
    try:
        summary = client.submit(args.kind, spec, priority=args.priority)
    except ServeError as error:
        print(f"repro: submit rejected: {error}", file=sys.stderr)
        return 1
    print(f"submitted {summary['id']} ({summary['state']})")
    if args.follow:
        client.follow(summary["id"],
                      lambda rec: print(_json.dumps(rec, sort_keys=True)))
    if args.wait or args.follow:
        doc = client.wait(summary["id"])
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0 if doc["state"] == "done" else 1
    return 0


def _cmd_loadtest(args) -> int:
    import asyncio
    import json as _json

    from .serve.loadtest import run_loadtest
    report = asyncio.run(run_loadtest(
        _serve_address(args), clients=args.clients,
        jobs_per_client=args.jobs_per_client, mix=args.mix,
        stagger=args.stagger, timeout=args.timeout,
        warmup=not args.no_warmup))
    print(report.render())
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(
            _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    problems = report.check(
        max_failed=args.gate_max_failed,
        min_warm_ratio=args.gate_min_warm_ratio,
        max_first_event_p95=args.gate_first_event_p95)
    for problem in problems:
        print(f"loadtest: FAIL {problem}", file=sys.stderr)
    return 1 if problems else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "experiments":
        from .harness.experiments import main as experiments_main
        return experiments_main(argv[1:])
    if argv and argv[0] == "worker":
        from .dist.worker import main as worker_main
        return worker_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serialization-aware mini-graphs (MICRO 2006 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the benchmark population")
    p_list.add_argument("--suites", nargs="*")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("benchmark")
    p_run.add_argument("--config", default="reduced")
    p_run.add_argument("--input", default="train")
    p_run.add_argument("--selector", default="slack-profile",
                       choices=sorted(SELECTORS) + ["slack-dynamic",
                                                    "none"])
    _add_cache_flags(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_trace = sub.add_parser("trace", help="pipetrace a benchmark window")
    p_trace.add_argument("benchmark")
    p_trace.add_argument("--config", default="reduced")
    p_trace.add_argument("--input", default="train")
    p_trace.add_argument("--selector", default="none",
                         choices=sorted(SELECTORS) + ["none"])
    p_trace.add_argument("--first", type=int, default=0)
    p_trace.add_argument("--last", type=int, default=32)
    p_trace.set_defaults(fn=_cmd_trace)

    p_val = sub.add_parser("validate", help="statically validate programs")
    p_val.add_argument("benchmark", help="a benchmark name or 'all'")
    p_val.set_defaults(fn=_cmd_validate)

    p_report = sub.add_parser("report",
                              help="per-suite headline breakdown")
    p_report.add_argument("--selector", default="slack-profile",
                          choices=sorted(SELECTORS))
    p_report.add_argument("--limit-per-suite", type=int, default=None)
    p_report.set_defaults(fn=_cmd_report)

    p_limit = sub.add_parser("limit-study",
                             help="Figure 8 exhaustive study")
    p_limit.add_argument("--cap", type=int, default=None,
                         help="truncate the subset sweep")
    p_limit.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the subset sweep")
    p_limit.add_argument("--telemetry", default=None, metavar="PATH",
                         help="write run telemetry JSONL to PATH")
    p_limit.add_argument("--ledger", default=None, metavar="PATH",
                         help="journal subset completion to PATH; a "
                              "killed study resumes with "
                              "`repro resume PATH`")
    _add_cache_flags(p_limit)
    p_limit.set_defaults(fn=_cmd_limit_study)

    p_fuzz = sub.add_parser(
        "fuzz", help="property-based fuzz of the mini-graph pipeline")
    p_fuzz.add_argument("--budget", default="60s",
                        help="time budget, e.g. 60s, 90, 2m (default 60s)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (disjoint spec streams)")
    p_fuzz.add_argument("--programs", type=int, default=None,
                        help="stop after N programs even under budget")
    p_fuzz.add_argument("--selectors", nargs="*", default=None,
                        help="restrict to these selectors "
                             "(default: all five)")
    p_fuzz.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write shrunk reproducers here")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging minimization")
    p_fuzz.add_argument("--replay", type=int, default=None, metavar="SEED",
                        help="re-check one spec seed instead of fuzzing")
    p_fuzz.set_defaults(fn=_cmd_fuzz)

    p_lint = sub.add_parser(
        "lint-plan", help="audit a selection plan against the paper's "
                          "structural contract")
    p_lint.add_argument("benchmark", help="a benchmark name or 'all'")
    p_lint.add_argument("--selector", default="slack-profile",
                        choices=sorted(SELECTORS) + ["slack-dynamic"])
    p_lint.add_argument("--input", default="train")
    p_lint.add_argument("--budget", type=int, default=512,
                        help="MGT template budget")
    _add_cache_flags(p_lint)
    p_lint.set_defaults(fn=_cmd_lint_plan)

    p_gen = sub.add_parser(
        "gen", help="print one synthetic generator program")
    p_gen.add_argument("--seed", type=int, required=True,
                       help="generator seed (exact reproducer)")
    p_gen.add_argument("--input", default="train",
                       choices=["train", "ref"])
    p_gen.add_argument("--profile", default=None,
                       choices=["compute", "memory", "branchy", "serial"])
    p_gen.add_argument("--n-loops", type=int, default=None)
    p_gen.add_argument("--trips", type=int, default=None)
    p_gen.add_argument("--ops", type=int, default=None)
    p_gen.add_argument("--array-sizes", type=int, nargs="*", default=None,
                       help="power-of-two array sizes")
    p_gen.set_defaults(fn=_cmd_gen)

    p_bench = sub.add_parser(
        "bench", help="simulator throughput benchmark (KIPS) over a "
                      "benchmark x selector matrix")
    p_bench.add_argument("--quick", action="store_true",
                         help="small matrix for CI smoke runs")
    p_bench.add_argument("--benchmarks", nargs="*", default=None,
                         help="override the benchmark list")
    p_bench.add_argument("--selectors", nargs="*", default=None,
                         help="override the selector list "
                              "(none struct-all struct-none struct-bounded "
                              "slack-profile)")
    p_bench.add_argument("--config", default="reduced")
    p_bench.add_argument("--label", default="local",
                         help="writes BENCH_<label>.json")
    p_bench.add_argument("--out", default=".",
                         help="directory for the BENCH json "
                              "(default: current directory)")
    p_bench.add_argument("--repeat", type=int, default=1,
                         help="time each point N times, keep the fastest")
    p_bench.add_argument("--check-against", default=None, metavar="FILE",
                         help="fail on fidelity drift or aggregate KIPS "
                              "regression vs this BENCH json")
    p_bench.add_argument("--tolerance", type=float, default=0.20,
                         help="allowed fractional KIPS regression "
                              "(default 0.20)")
    p_bench.add_argument("--telemetry", default=None, metavar="PATH",
                         help="write run telemetry JSONL to PATH "
                              "(bench spans + runner phases)")
    p_bench.add_argument("--batch", action="store_true",
                         help="benchmark batched native dispatch against "
                              "per-point process dispatch; writes "
                              "BENCH_batch.json")
    p_bench.add_argument("--batch-threads", type=int, default=0,
                         help="C threads for --batch (default: auto)")
    p_bench.add_argument("--plan", action="store_true",
                         help="benchmark native plan construction "
                              "(profile build, enumeration, scoring) "
                              "against the pure-Python reference; writes "
                              "BENCH_plankern.json")
    p_bench.add_argument("--min-speedup", type=float, default=3.0,
                         help="--batch/--plan gate: the native path must "
                              "beat the reference by this factor "
                              "(default 3.0)")
    _add_cache_flags(p_bench)
    p_bench.set_defaults(fn=_cmd_bench)

    p_metrics = sub.add_parser(
        "metrics", help="run one point and export the unified metrics "
                        "registry (JSON or Prometheus text)")
    p_metrics.add_argument("benchmark", nargs="?", default="crc32")
    p_metrics.add_argument("--config", default="reduced")
    p_metrics.add_argument("--input", default="train")
    p_metrics.add_argument("--selector", default="none",
                           choices=sorted(SELECTORS) + ["none"])
    p_metrics.add_argument("--format", default="json",
                           choices=["json", "prom"],
                           help="export format (default json)")
    p_metrics.add_argument("--out", default=None, metavar="PATH",
                           help="write the export here instead of stdout")
    p_metrics.add_argument("--server", default=None, metavar="ADDR",
                           help="export a running daemon's registry "
                                "(unix:/path, host:port, or a serve "
                                "state dir) instead of simulating")
    _add_cache_flags(p_metrics)
    p_metrics.set_defaults(fn=_cmd_metrics)

    p_attr = sub.add_parser(
        "attribution",
        help="predicted-vs-observed mini-graph serialization delay "
             "(all five selectors; see docs/observability.md)")
    p_attr.add_argument("--benchmarks", nargs="*", default=None,
                        help="override the default benchmark suite")
    p_attr.add_argument("--selectors", nargs="*", default=None,
                        help="override the selector list (struct-all "
                             "struct-none struct-bounded slack-profile "
                             "slack-dynamic)")
    p_attr.add_argument("--config", default="reduced")
    p_attr.add_argument("--budget", type=int, default=512,
                        help="MGT template budget")
    p_attr.add_argument("--per-template", action="store_true",
                        help="append the worst-templates detail section")
    _add_cache_flags(p_attr)
    p_attr.set_defaults(fn=_cmd_attribution)

    p_tele = sub.add_parser(
        "telemetry", help="validate a telemetry JSONL file against the "
                          "documented schema and summarize it")
    p_tele.add_argument("file", help="path to a --telemetry output file")
    p_tele.set_defaults(fn=_cmd_telemetry)

    p_tune = sub.add_parser(
        "tune", help="design-space autotuner: search selector families x "
                     "machine configs, report Pareto frontiers "
                     "(see docs/tuning.md)")
    p_tune.add_argument("--space", default=None, metavar="FILE",
                        help="search-space spec file (.json, or .toml on "
                             "Python >= 3.11)")
    p_tune.add_argument("--selectors", nargs="*", metavar="KIND",
                        help="selector families when no --space file "
                             "(default grids apply; default: struct-all "
                             "read-port)")
    p_tune.add_argument("--configs", nargs="*", metavar="SPEC",
                        help="config specs: names or base@knob=value,... "
                             "(default: full reduced)")
    p_tune.add_argument("--benchmarks", nargs="*")
    p_tune.add_argument("--input", default="train")
    p_tune.add_argument("--strategy", default="grid",
                        choices=["grid", "random", "halving"])
    p_tune.add_argument("--trials", type=int, default=None,
                        help="trial cap (the random sample size; an "
                             "optional truncation for grid/halving)")
    p_tune.add_argument("--seed", type=int, default=0,
                        help="random-strategy sampling seed")
    p_tune.add_argument("--jobs", default="1",
                        help="N processes or threads:N batched native "
                             "dispatch (as in repro experiments)")
    p_tune.add_argument("--budget", type=int, default=512,
                        help="MGT entries per plan")
    p_tune.add_argument("--max-insts", type=int, default=2_000_000,
                        help="full-evaluation trace length")
    p_tune.add_argument("--halving-eta", type=int, default=2,
                        help="successive-halving promotion factor")
    p_tune.add_argument("--halving-min-insts", type=int, default=50_000,
                        help="shortest successive-halving rung")
    p_tune.add_argument("--ledger", default=None, metavar="FILE",
                        help="JSONL tuning ledger (enables --resume)")
    p_tune.add_argument("--resume", action="store_true",
                        help="skip trials already journaled in --ledger")
    p_tune.add_argument("--out", default=None, metavar="FILE",
                        help="write the benchmarks/-style JSON artifact")
    p_tune.add_argument("--plot", default=None, metavar="PNG",
                        help="coverage-vs-IPC scatter (needs matplotlib)")
    p_tune.add_argument("--metrics", default=None, metavar="FILE",
                        help="export tune.* metrics as JSON")
    p_tune.add_argument("--quiet", action="store_true",
                        help="suppress progress on stderr")
    _add_cache_flags(p_tune)
    p_tune.set_defaults(fn=_cmd_tune)

    p_cache = sub.add_parser("cache",
                             help="artifact store maintenance")
    p_cache.add_argument("action", choices=["stats", "clear", "prune",
                                            "migrate", "dedup"])
    p_cache.add_argument("--cache-dir", default=None,
                         help="store directory (default: $REPRO_CACHE_DIR)")
    p_cache.add_argument("--backend", default=None,
                         choices=["dir", "sqlite"],
                         help="store index backend (default: "
                              "$REPRO_STORE_BACKEND, else dir)")
    p_cache.add_argument("--max-age-days", type=float, default=None,
                         help="prune: drop artifacts older than this")
    p_cache.add_argument("--kinds", nargs="*", default=None,
                         help="prune: restrict to artifact kinds "
                              "(trace profile candidates plan baseline "
                              "run run-dynamic subset)")
    p_cache.add_argument("--compare", action="store_true",
                         help="stats: time the dir walk against the "
                              "sqlite manifest on this store")
    p_cache.add_argument("--bench-out", default=None, metavar="PATH",
                         help="stats: write the backend timing comparison "
                              "JSON here (implies --compare)")
    p_cache.set_defaults(fn=_cmd_cache)

    p_serve = sub.add_parser(
        "serve", help="persistent job daemon: submit experiments over a "
                      "local socket, warm-path reuse across jobs "
                      "(see docs/serving.md)")
    p_serve.add_argument("--state-dir", default=".repro-serve",
                         help="journal, socket and default cache live "
                              "here (default .repro-serve)")
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="unix socket path "
                              "(default <state-dir>/serve.sock)")
    p_serve.add_argument("--host", default=None,
                         help="serve TCP on this host instead of a "
                              "unix socket")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral; requires --host)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="artifact store directory "
                              "(default <state-dir>/cache)")
    p_serve.add_argument("--job-slots", type=int, default=4,
                         help="jobs running concurrently (default 4)")
    p_serve.add_argument("--pool", type=int, default=0,
                         help="shared worker-process pool size "
                              "(0 = per-job pools)")
    p_serve.add_argument("--max-queued", type=int, default=32,
                         help="per-client queued-job quota (default 32)")
    p_serve.add_argument("--max-running", type=int, default=2,
                         help="per-client running-job quota (default 2)")
    p_serve.add_argument("--budget", type=int, default=512,
                         help="MGT template budget for served runs")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress progress lines on stderr")
    p_serve.add_argument("--max-results", type=int, default=256,
                         help="terminal jobs retained in the job table "
                              "before LRU eviction (default 256)")
    p_serve.add_argument("--result-ttl", type=float, default=3600.0,
                         help="seconds a finished job's result stays "
                              "queryable (default 3600)")
    p_serve.add_argument("--max-job-events", type=int, default=10_000,
                         help="per-job event-log window; older events "
                              "are truncated (default 10000)")
    p_serve.add_argument("--dispatch", default=None, metavar="SPEC",
                         help="run DAGs on a worker fleet: workers:HOST"
                              ":PORT (workers join with 'repro worker')")
    p_serve.add_argument("--batch-threads", type=int, default=0,
                         help="batched native dispatch for single-process "
                              "jobs: each wave of timing points runs as "
                              "one C call over N threads (0 = off)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one job to a running daemon")
    p_submit.add_argument("kind",
                          choices=["experiment", "bench", "fuzz",
                                   "limit-study"])
    p_submit.add_argument("spec",
                          help="inline JSON, a spec file path, or '-' "
                               "for stdin")
    p_submit.add_argument("--server", default=".repro-serve",
                          help="daemon address or state dir "
                               "(default .repro-serve)")
    p_submit.add_argument("--client", default="cli",
                          help="client id for quota accounting")
    p_submit.add_argument("--priority", default="normal",
                          choices=["interactive", "normal", "batch"])
    p_submit.add_argument("--wait", action="store_true",
                          help="block until terminal, print the result")
    p_submit.add_argument("--follow", action="store_true",
                          help="stream the job's telemetry events "
                               "(implies --wait)")
    p_submit.set_defaults(fn=_cmd_submit)

    p_load = sub.add_parser(
        "loadtest", help="drive concurrent clients against a running "
                         "daemon and gate on the report")
    p_load.add_argument("--server", default=".repro-serve",
                        help="daemon address or state dir "
                             "(default .repro-serve)")
    p_load.add_argument("--clients", type=int, default=100,
                        help="concurrent simulated clients (default 100)")
    p_load.add_argument("--jobs-per-client", type=int, default=2,
                        help="jobs each client submits (default 2)")
    p_load.add_argument("--mix", action="store_true",
                        help="mix short fuzz jobs into the stream")
    p_load.add_argument("--stagger", type=float, default=0.0,
                        help="per-client start offset in seconds")
    p_load.add_argument("--timeout", type=float, default=120.0,
                        help="per-job completion timeout (default 120s)")
    p_load.add_argument("--no-warmup", action="store_true",
                        help="skip the pilot warm pass (measure the "
                             "cold stampede)")
    p_load.add_argument("--out", default=None, metavar="PATH",
                        help="also write the report JSON here")
    p_load.add_argument("--gate-max-failed", type=int, default=0,
                        help="fail if more jobs fail (default 0)")
    p_load.add_argument("--gate-min-warm-ratio", type=float, default=None,
                        help="fail if the server warm-hit ratio is lower")
    p_load.add_argument("--gate-first-event-p95", type=float, default=None,
                        metavar="SECONDS",
                        help="fail if submit-to-first-event p95 exceeds "
                             "this")
    p_load.set_defaults(fn=_cmd_loadtest)

    p_resume = sub.add_parser(
        "resume", help="resume a killed run from its --ledger journal, "
                       "scheduling only nodes whose durable artifacts "
                       "are missing (see docs/distributed.md)")
    p_resume.add_argument("ledger", help="ledger path from --ledger")
    p_resume.add_argument("--jobs", type=int, default=None,
                          help="override the dead run's fan-out")
    p_resume.add_argument("--dispatch", default=None, metavar="SPEC",
                          help="dispatch backend: 'local' or "
                               "'workers:ADDR' (repro worker fleet)")
    p_resume.add_argument("--force", action="store_true",
                          help="proceed even if the code-version salt "
                               "changed (re-runs everything)")
    p_resume.add_argument("--quiet", action="store_true",
                          help="suppress the scheduler progress stream")
    p_resume.set_defaults(fn=_cmd_resume)

    # "experiments" and "worker" are documented here even though they are
    # dispatched above.
    sub.add_parser("experiments",
                   help="regenerate paper figures "
                        "(see repro.harness.experiments)")
    sub.add_parser("worker",
                   help="join a dispatch coordinator and execute leased "
                        "DAG nodes (see repro.dist.worker)")

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0
    except (ValidationError, MemoryFault, ExecutionLimitExceeded,
            ValueError) as error:
        # Anticipated failures (bad benchmark/selector names, assembler
        # and validation errors, runaway or faulting programs) get a
        # one-line diagnostic, not a traceback.
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
