"""Top-level command-line interface.

Subcommands::

    python -m repro list                       # benchmark population
    python -m repro run crc32 --selector slack-profile
    python -m repro trace crc32 --first 20 --last 45
    python -m repro validate all
    python -m repro experiments fig1 ...       # figure regeneration
    python -m repro limit-study                # Figure 8

`experiments` forwards to :mod:`repro.harness.experiments`; everything
else is a thin veneer over the library API so each command doubles as a
usage example.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .harness.runner import Runner
from .minigraph.selectors import (
    SlackProfileSelector, StructAll, StructBounded, StructNone,
)
from .pipeline.config import config_by_name
from .workloads.suite import all_benchmarks, benchmark

SELECTORS = {
    "struct-all": StructAll,
    "struct-none": StructNone,
    "struct-bounded": StructBounded,
    "slack-profile": SlackProfileSelector,
}


def _cmd_list(args) -> int:
    benches = all_benchmarks(suites=args.suites or None)
    print(f"{'name':<14s} {'suite':<9s} {'inputs':<18s} description")
    print("-" * 72)
    for bench in benches:
        print(f"{bench.name:<14s} {bench.suite:<9s} "
              f"{','.join(bench.inputs):<18s} {bench.description}")
    print(f"\n{len(benches)} benchmarks")
    return 0


def _cmd_run(args) -> int:
    runner = Runner()
    config = config_by_name(args.config)
    full = config_by_name("full")
    base_full = runner.baseline(args.benchmark, full, args.input)
    base = runner.baseline(args.benchmark, config, args.input)
    print(f"{args.benchmark} on {config.name} ({args.input} input)")
    print(f"  no mini-graphs : IPC {base.ipc:.3f} "
          f"({base.ipc / base_full.ipc:.3f}x of full baseline)")
    if args.selector == "none":
        return 0
    if args.selector == "slack-dynamic":
        run = runner.run_slack_dynamic(args.benchmark, config,
                                       input_name=args.input)
    else:
        selector = SELECTORS[args.selector]()
        run = runner.run_selector(args.benchmark, selector, config,
                                  input_name=args.input)
    stats = run.stats
    print(f"  {run.selector:<15s}: IPC {stats.ipc:.3f} "
          f"({stats.ipc / base_full.ipc:.3f}x), "
          f"coverage {stats.coverage:.1%}, "
          f"{stats.handles_committed} handles, "
          f"{run.plan.n_templates} templates")
    if stats.mg_serialized_instances:
        print(f"  serialization  : {stats.mg_serialized_instances} "
              f"serialized instances, {stats.mg_consumer_delays} "
              f"propagated to consumers")
    return 0


def _cmd_trace(args) -> int:
    from .pipeline.pipetrace import pipetrace
    runner = Runner()
    config = config_by_name(args.config)
    if args.selector == "none":
        records = runner.trace(args.benchmark, args.input).records
    else:
        from .minigraph.transform import fold_trace
        selector = SELECTORS[args.selector]()
        plan = runner.plan(args.benchmark, selector, input_name=args.input)
        records = fold_trace(runner.trace(args.benchmark, args.input), plan)
    print(pipetrace(config, records, first=args.first, last=args.last))
    return 0


def _cmd_validate(args) -> int:
    from .isa.validate import ValidationError, check
    names = [b.name for b in all_benchmarks()] \
        if args.benchmark == "all" else [args.benchmark]
    failures = 0
    for name in names:
        program = benchmark(name).program("train")
        try:
            warnings = check(program)
        except ValidationError as error:
            failures += 1
            print(f"{name}: ERROR {error}")
            continue
        status = f"{len(warnings)} warnings" if warnings else "clean"
        print(f"{name}: {status}")
    return 1 if failures else 0


def _cmd_report(args) -> int:
    from .analysis.report import suite_report
    selector = SELECTORS[args.selector]()
    report = suite_report(Runner(), selector,
                          limit_per_suite=args.limit_per_suite)
    print(report.render())
    return 0


def _cmd_limit_study(args) -> int:
    from .analysis.limit_study import run_limit_study
    result = run_limit_study(Runner(), subset_cap=args.cap)
    print(result.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "experiments":
        from .harness.experiments import main as experiments_main
        return experiments_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serialization-aware mini-graphs (MICRO 2006 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the benchmark population")
    p_list.add_argument("--suites", nargs="*")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("benchmark")
    p_run.add_argument("--config", default="reduced")
    p_run.add_argument("--input", default="train")
    p_run.add_argument("--selector", default="slack-profile",
                       choices=sorted(SELECTORS) + ["slack-dynamic",
                                                    "none"])
    p_run.set_defaults(fn=_cmd_run)

    p_trace = sub.add_parser("trace", help="pipetrace a benchmark window")
    p_trace.add_argument("benchmark")
    p_trace.add_argument("--config", default="reduced")
    p_trace.add_argument("--input", default="train")
    p_trace.add_argument("--selector", default="none",
                         choices=sorted(SELECTORS) + ["none"])
    p_trace.add_argument("--first", type=int, default=0)
    p_trace.add_argument("--last", type=int, default=32)
    p_trace.set_defaults(fn=_cmd_trace)

    p_val = sub.add_parser("validate", help="statically validate programs")
    p_val.add_argument("benchmark", help="a benchmark name or 'all'")
    p_val.set_defaults(fn=_cmd_validate)

    p_report = sub.add_parser("report",
                              help="per-suite headline breakdown")
    p_report.add_argument("--selector", default="slack-profile",
                          choices=sorted(SELECTORS))
    p_report.add_argument("--limit-per-suite", type=int, default=None)
    p_report.set_defaults(fn=_cmd_report)

    p_limit = sub.add_parser("limit-study",
                             help="Figure 8 exhaustive study")
    p_limit.add_argument("--cap", type=int, default=None,
                         help="truncate the subset sweep")
    p_limit.set_defaults(fn=_cmd_limit_study)

    # "experiments" is documented here even though it is dispatched above.
    sub.add_parser("experiments",
                   help="regenerate paper figures "
                        "(see repro.harness.experiments)")

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
