"""Instruction representation.

An :class:`Instruction` is one static instruction of a
:class:`~repro.isa.program.Program`. Instances are immutable after program
construction; the simulators never mutate them.

Register convention (32 architectural integer registers):

=========  =======================================
``r0``     hardwired zero (writes are discarded)
``r1-r25`` general purpose
``r26``    ``ra`` — return address (by convention)
``r27``    ``gp`` — data-segment base (by convention)
``r28``    ``sp`` — stack pointer (by convention)
``r29-31`` general purpose / temporaries
=========  =======================================
"""

from __future__ import annotations

from typing import Optional, Tuple

from .opcodes import (
    OC_BRANCH, OC_JUMP, OC_LOAD, OC_STORE, OP_INFO, JR, op_name,
)

NUM_ARCH_REGS = 32
REG_ZERO = 0
REG_RA = 26
REG_GP = 27
REG_SP = 28


class Instruction:
    """One static instruction.

    Parameters
    ----------
    op:
        Integer opcode (see :mod:`repro.isa.opcodes`).
    rd:
        Destination architectural register, or ``None``.
    srcs:
        Tuple of source architectural registers (may be empty).
    imm:
        Immediate operand (also holds branch/jump target PC after linking).
    target_label:
        Symbolic control-flow target; resolved to ``imm`` by the assembler.
    """

    __slots__ = ("op", "rd", "srcs", "imm", "target_label", "pc",
                 # classification, memoized at construction (hot simulator
                 # loops read these as plain attributes, not properties)
                 "opclass", "latency", "writes_reg", "is_branch", "is_jump",
                 "is_control", "is_indirect", "is_load", "is_store",
                 "is_memory")

    def __init__(self, op: int, rd: Optional[int] = None,
                 srcs: Tuple[int, ...] = (), imm: int = 0,
                 target_label: Optional[str] = None):
        info = OP_INFO[op]
        if len(srcs) != info.n_src:
            raise ValueError(
                f"{info.name} expects {info.n_src} sources, got {len(srcs)}")
        if info.writes_reg and rd is None:
            raise ValueError(f"{info.name} requires a destination register")
        if not info.writes_reg and rd is not None:
            raise ValueError(f"{info.name} does not write a register")
        for r in srcs:
            if not 0 <= r < NUM_ARCH_REGS:
                raise ValueError(f"bad source register r{r}")
        if rd is not None and not 0 <= rd < NUM_ARCH_REGS:
            raise ValueError(f"bad destination register r{rd}")
        self.op = op
        self.rd = rd
        self.srcs = srcs
        self.imm = imm
        self.target_label = target_label
        self.pc = -1  # assigned when placed into a Program

        # -- classification (instances are immutable; op/rd never change) --
        opclass = info.opclass
        self.opclass = opclass
        self.latency = info.latency
        self.writes_reg = info.writes_reg and rd != REG_ZERO
        self.is_branch = opclass == OC_BRANCH
        self.is_jump = opclass == OC_JUMP
        self.is_control = opclass in (OC_BRANCH, OC_JUMP)
        self.is_indirect = op == JR
        self.is_load = opclass == OC_LOAD
        self.is_store = opclass == OC_STORE
        self.is_memory = opclass in (OC_LOAD, OC_STORE)

    # -- rendering ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instruction pc={self.pc} {self.render()}>"

    def render(self) -> str:
        """Assembly-style rendering, e.g. ``add r3, r1, r2``."""
        info = OP_INFO[self.op]
        parts = []
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        parts.extend(f"r{s}" for s in self.srcs)
        if info.has_imm:
            if self.target_label is not None:
                parts.append(self.target_label)
            else:
                parts.append(str(self.imm))
        return f"{op_name(self.op)} " + ", ".join(parts) if parts \
            else op_name(self.op)
