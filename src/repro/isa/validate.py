"""Static program validation.

Workload kernels are hand-written assembly; this linter catches the
classic mistakes before they surface as weird simulation results:
control transfers out of range, falls off the end of the program, reads
of registers that no path has written (reads of zeroed registers are
legal but usually unintended), and obviously wild r0-relative memory
references.

``validate(program)`` returns a list of :class:`Issue`;
``check(program)`` raises :class:`ValidationError` on any error-severity
issue. The workload test-suite runs ``check`` over every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from . import opcodes as oc
from .program import Program

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: str
    pc: int
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.severity}] pc={self.pc}: {self.message}"


class ValidationError(RuntimeError):
    """The program has at least one error-severity issue."""

    def __init__(self, issues: List[Issue]):
        self.issues = issues
        summary = "; ".join(str(issue) for issue in issues[:5])
        super().__init__(summary)


def _control_targets_in_range(program: Program,
                              issues: List[Issue]) -> None:
    n = len(program)
    for pc, inst in enumerate(program.instructions):
        if inst.opclass in (oc.OC_BRANCH, oc.OC_JUMP) \
                and inst.op != oc.JR:
            if not 0 <= inst.imm < n:
                issues.append(Issue(
                    ERROR, pc,
                    f"control target {inst.imm} outside program"))


def _terminates(program: Program, issues: List[Issue]) -> None:
    """Every block must end in halt, a jump, a branch, or flow into a
    successor; the final instruction must not fall off the end."""
    n = len(program)
    last = program.instructions[n - 1]
    if last.opclass not in (oc.OC_HALT, oc.OC_JUMP) \
            and not (last.opclass == oc.OC_BRANCH):
        issues.append(Issue(ERROR, n - 1,
                            "control can fall off the end of the program"))
    if last.opclass == oc.OC_BRANCH:
        issues.append(Issue(ERROR, n - 1,
                            "final instruction is a conditional branch "
                            "whose fall-through leaves the program"))
    if not any(inst.opclass == oc.OC_HALT
               for inst in program.instructions):
        issues.append(Issue(WARNING, 0, "program contains no halt"))


def _reads_of_never_written(program: Program,
                            issues: List[Issue]) -> None:
    """Registers read somewhere but written nowhere (r0 excluded)."""
    written: Set[int] = {0}
    read: Set[int] = set()
    first_read_pc = {}
    for pc, inst in enumerate(program.instructions):
        for src in inst.srcs:
            if src not in read:
                read.add(src)
                first_read_pc[src] = pc
        if inst.writes_reg:
            written.add(inst.rd)
    for reg in sorted(read - written):
        issues.append(Issue(
            WARNING, first_read_pc[reg],
            f"r{reg} is read but never written (reads as zero)"))


def _wild_absolute_memory(program: Program, issues: List[Issue]) -> None:
    """r0-relative memory accesses with out-of-range offsets are always
    faults at run time; flag them statically."""
    for pc, inst in enumerate(program.instructions):
        if inst.is_memory and inst.srcs[0] == 0:
            if not 0 <= inst.imm < program.memory_words:
                issues.append(Issue(
                    ERROR, pc,
                    f"absolute memory access at {inst.imm} outside the "
                    f"{program.memory_words}-word memory"))


def validate(program: Program) -> List[Issue]:
    """All findings for ``program`` (errors first, then warnings by pc)."""
    if not len(program):
        return [Issue(ERROR, 0, "empty program")]
    issues: List[Issue] = []
    _control_targets_in_range(program, issues)
    _terminates(program, issues)
    _reads_of_never_written(program, issues)
    _wild_absolute_memory(program, issues)
    issues.sort(key=lambda i: (i.severity != ERROR, i.pc))
    return issues


def check(program: Program) -> List[Issue]:
    """Raise :class:`ValidationError` on errors; return any warnings."""
    issues = validate(program)
    errors = [issue for issue in issues if issue.severity == ERROR]
    if errors:
        raise ValidationError(errors)
    return issues
