"""The repro RISC ISA: opcodes, instructions, programs, and the assembler DSL."""

from . import opcodes
from .assembler import Assembler, parse_reg
from .instruction import (
    Instruction, NUM_ARCH_REGS, REG_GP, REG_RA, REG_SP, REG_ZERO,
)
from .program import BasicBlock, Program

__all__ = [
    "Assembler",
    "BasicBlock",
    "Instruction",
    "NUM_ARCH_REGS",
    "Program",
    "REG_GP",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "opcodes",
    "parse_reg",
]
