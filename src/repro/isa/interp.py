"""Functional execution: architectural interpreter and dynamic traces.

The reproduction uses trace-driven timing simulation (see DESIGN.md §5):
this module executes a program *architecturally*, producing a dynamic
instruction trace with resolved branch outcomes and memory addresses. The
cycle-level core in :mod:`repro.pipeline.core` then replays the trace
against its own branch predictors and caches.

Values are 64-bit; registers hold the unsigned representation and signed
operations reinterpret as needed. Register ``r0`` is hardwired to zero.
"""

from __future__ import annotations

from array import array
from typing import List, Optional

from . import opcodes as oc
from .program import Program

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def to_signed(value: int) -> int:
    """Reinterpret a 64-bit unsigned value as signed."""
    return value - (1 << 64) if value & _SIGN else value


def to_unsigned(value: int) -> int:
    """Truncate a Python int to its 64-bit unsigned representation."""
    return value & _MASK


class TraceRecord:
    """One dynamic instruction instance.

    ``kind`` is 0 for singletons; mini-graph handle records (kind 1) are
    defined in :mod:`repro.minigraph.transform` and share this interface.
    """

    __slots__ = ("pc", "op", "opclass", "latency", "rd", "srcs",
                 "addr", "taken", "next_pc")
    kind = 0

    def __init__(self, pc: int, op: int, opclass: int, latency: int,
                 rd: int, srcs: tuple, addr: int, taken: bool, next_pc: int):
        self.pc = pc
        self.op = op
        self.opclass = opclass
        self.latency = latency
        self.rd = rd              # -1 if no register output
        self.srcs = srcs          # architectural source registers
        self.addr = addr          # -1 if not a memory operation
        self.taken = taken        # control transfers only
        self.next_pc = next_pc

    @property
    def is_load(self) -> bool:
        return self.opclass == oc.OC_LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass == oc.OC_STORE

    @property
    def is_control(self) -> bool:
        return self.opclass in (oc.OC_BRANCH, oc.OC_JUMP)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceRecord pc={self.pc} {oc.op_name(self.op)} "
                f"addr={self.addr} next={self.next_pc}>")


class PackedTrace:
    """Struct-of-arrays view of a dynamic record stream.

    The timing core's hot loops (fetch grouping, cache warm-up) read one
    field from thousands of records per call; chasing a Python object per
    record for that is cache-hostile and megamorphic. ``PackedTrace``
    packs the scalar fields into parallel typed columns (``array('q')``,
    with ``array('b')`` for the two flags) built once per trace, while
    ``objs`` keeps the original record objects so consumers that want the
    object view (rename sources, mini-graph constituents, lockstep
    checking, tests) index it transparently: a ``PackedTrace`` is a
    drop-in sequence of records.

    Ragged ``srcs`` tuples are flattened into ``srcs`` with a CSR-style
    ``srcs_start`` offset column (record ``i`` owns
    ``srcs[srcs_start[i]:srcs_start[i+1]]``).

    Mini-graph handle records (``kind == 1``) have no opcode; their
    ``op``/``opclass``/``latency`` columns hold ``-1``/``OC_MGH``/``0``.
    """

    __slots__ = ("objs", "n", "kind", "pc", "op", "opclass", "latency",
                 "rd", "addr", "taken", "next_pc", "srcs", "srcs_start")

    def __init__(self, objs, kind, pc, op, opclass, latency, rd, addr,
                 taken, next_pc, srcs, srcs_start):
        self.objs = objs
        self.n = len(objs)
        self.kind = kind
        self.pc = pc
        self.op = op
        self.opclass = opclass
        self.latency = latency
        self.rd = rd
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc
        self.srcs = srcs
        self.srcs_start = srcs_start

    @classmethod
    def from_records(cls, records) -> "PackedTrace":
        """Pack a record sequence (no-op copy if already packed)."""
        if isinstance(records, cls):
            return records
        objs = list(records)
        kind = array("b")
        pc = array("q")
        op = array("q")
        opclass = array("q")
        latency = array("q")
        rd = array("q")
        addr = array("q")
        taken = array("b")
        next_pc = array("q")
        srcs = array("q")
        srcs_start = array("q", [0])
        for rec in objs:
            if rec.kind == 1:
                kind.append(1)
                op.append(-1)
                opclass.append(oc.OC_MGH)
                latency.append(0)
            else:
                kind.append(0)
                op.append(rec.op)
                opclass.append(rec.opclass)
                latency.append(rec.latency)
            pc.append(rec.pc)
            rd.append(rec.rd)
            addr.append(rec.addr)
            taken.append(1 if rec.taken else 0)
            next_pc.append(rec.next_pc)
            srcs.extend(rec.srcs)
            srcs_start.append(len(srcs))
        return cls(objs, kind, pc, op, opclass, latency, rd, addr, taken,
                   next_pc, srcs, srcs_start)

    def srcs_of(self, i: int) -> tuple:
        """The source-register tuple of record ``i`` (columnar view)."""
        return tuple(self.srcs[self.srcs_start[i]:self.srcs_start[i + 1]])

    # -- sequence protocol: drop-in for the plain record list ----------

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index):
        return self.objs[index]

    def __iter__(self):
        return iter(self.objs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PackedTrace n={self.n}>"


class Trace:
    """A complete dynamic execution of a program."""

    def __init__(self, program: Program, records: List[TraceRecord],
                 input_name: str = "default",
                 final_memory: Optional[List[int]] = None):
        self.program = program
        self.records = records
        self.input_name = input_name
        #: Final memory image, present when executed with capture_memory.
        self.final_memory = final_memory
        self._packed: Optional[PackedTrace] = None

    def packed(self) -> PackedTrace:
        """Struct-of-arrays view of ``records``, built once and cached."""
        packed = getattr(self, "_packed", None)
        if packed is None:
            packed = PackedTrace.from_records(self.records)
            self._packed = packed
        return packed

    def __getstate__(self):
        # The packed view is derived data; rebuild it after unpickling
        # rather than doubling the artifact-store footprint.
        state = self.__dict__.copy()
        state["_packed"] = None
        return state

    def __len__(self) -> int:
        return len(self.records)

    def dynamic_count_of(self) -> List[int]:
        """Per-static-PC dynamic execution counts."""
        counts = [0] * len(self.program)
        for rec in self.records:
            counts[rec.pc] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Trace {self.program.name!r}/{self.input_name}: "
                f"{len(self.records)} dynamic insts>")


class ExecutionLimitExceeded(RuntimeError):
    """The interpreter hit its dynamic instruction budget (likely a loop bug)."""


class MemoryFault(RuntimeError):
    """A load or store accessed an address outside program memory."""


# --------------------------------------------------------------------------
# Stepwise interpreter (the lockstep / differential-checking substrate)
# --------------------------------------------------------------------------
#
# MachineState implements the ISA a second time, structured differently from
# execute()'s fused dispatch loop: per-opcode lambdas in dispatch tables, one
# instruction per step() call, with the architectural state (registers,
# memory, PC) exposed between steps. repro.check uses it as the oracle for
# differential lockstep checking, and the test-suite cross-checks the two
# implementations record-for-record — a bug in either shows up as a
# disagreement rather than silently corrupting results in both.

_ALU_EVAL = {
    oc.ADD: lambda r, s, i: (r[s[0]] + r[s[1]]) & _MASK,
    oc.ADDI: lambda r, s, i: (r[s[0]] + i) & _MASK,
    oc.SUB: lambda r, s, i: (r[s[0]] - r[s[1]]) & _MASK,
    oc.AND: lambda r, s, i: r[s[0]] & r[s[1]],
    oc.OR: lambda r, s, i: r[s[0]] | r[s[1]],
    oc.XOR: lambda r, s, i: r[s[0]] ^ r[s[1]],
    oc.NOR: lambda r, s, i: ~(r[s[0]] | r[s[1]]) & _MASK,
    oc.SLL: lambda r, s, i: (r[s[0]] << (r[s[1]] & 63)) & _MASK,
    oc.SRL: lambda r, s, i: r[s[0]] >> (r[s[1]] & 63),
    oc.SRA: lambda r, s, i: to_unsigned(to_signed(r[s[0]]) >> (r[s[1]] & 63)),
    oc.SLT: lambda r, s, i: int(to_signed(r[s[0]]) < to_signed(r[s[1]])),
    oc.SLTU: lambda r, s, i: int(r[s[0]] < r[s[1]]),
    oc.SEQ: lambda r, s, i: int(r[s[0]] == r[s[1]]),
    oc.ANDI: lambda r, s, i: r[s[0]] & to_unsigned(i),
    oc.ORI: lambda r, s, i: r[s[0]] | to_unsigned(i),
    oc.XORI: lambda r, s, i: r[s[0]] ^ to_unsigned(i),
    oc.SLLI: lambda r, s, i: (r[s[0]] << (i & 63)) & _MASK,
    oc.SRLI: lambda r, s, i: r[s[0]] >> (i & 63),
    oc.SRAI: lambda r, s, i: to_unsigned(to_signed(r[s[0]]) >> (i & 63)),
    oc.SLTI: lambda r, s, i: int(to_signed(r[s[0]]) < i),
    oc.SEQI: lambda r, s, i: int(to_signed(r[s[0]]) == i),
    oc.LI: lambda r, s, i: to_unsigned(i),
    oc.CMOVZ: lambda r, s, i: r[s[0]] if r[s[1]] == 0 else r[s[2]],
    oc.CMOVN: lambda r, s, i: r[s[0]] if r[s[1]] != 0 else r[s[2]],
    oc.MUL: lambda r, s, i: (r[s[0]] * r[s[1]]) & _MASK,
    oc.MULH: lambda r, s, i: to_unsigned(
        (to_signed(r[s[0]]) * to_signed(r[s[1]])) >> 64),
    oc.DIV: lambda r, s, i: 0 if to_signed(r[s[1]]) == 0 else to_unsigned(
        int(to_signed(r[s[0]]) / to_signed(r[s[1]]))),
    oc.REM: lambda r, s, i: 0 if to_signed(r[s[1]]) == 0 else to_unsigned(
        to_signed(r[s[0]]) - int(to_signed(r[s[0]]) / to_signed(r[s[1]]))
        * to_signed(r[s[1]])),
    oc.FADD: lambda r, s, i: (r[s[0]] + r[s[1]]) & _MASK,
    oc.FMUL: lambda r, s, i: to_unsigned(
        (to_signed(r[s[0]]) * to_signed(r[s[1]])) >> 16),
}

_BRANCH_EVAL = {
    oc.BEQ: lambda a, b: a == b,
    oc.BNE: lambda a, b: a != b,
    oc.BLT: lambda a, b: to_signed(a) < to_signed(b),
    oc.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    oc.BLTU: lambda a, b: a < b,
    oc.BGEU: lambda a, b: a >= b,
}


class MachineState:
    """Architectural machine state with a one-instruction ``step()``.

    State starts exactly as :func:`execute` starts it: PC 0, zeroed
    registers (unless ``regs_init`` is given), data segment loaded at
    address 0, the rest of memory zeroed.
    """

    __slots__ = ("program", "regs", "memory", "pc", "retired", "halted")

    def __init__(self, program: Program,
                 regs_init: Optional[List[int]] = None):
        self.program = program
        self.memory = list(program.data) + [0] * (program.memory_words
                                                  - len(program.data))
        self.regs = list(regs_init) if regs_init is not None else [0] * 32
        self.regs[0] = 0
        self.pc = 0
        self.retired = 0
        self.halted = False

    def step(self) -> TraceRecord:
        """Execute the instruction at the current PC; return its record."""
        if self.halted:
            raise RuntimeError(f"{self.program.name}: stepped past halt")
        pc = self.pc
        insts = self.program.instructions
        if not 0 <= pc < len(insts):
            raise MemoryFault(f"{self.program.name}: control left program "
                              f"at PC {pc}")
        inst = insts[pc]
        op = inst.op
        opclass = inst.opclass
        srcs = inst.srcs
        regs = self.regs
        addr = -1
        taken = False
        next_pc = pc + 1
        value = None

        if op in _ALU_EVAL:
            value = _ALU_EVAL[op](regs, srcs, inst.imm)
        elif opclass == oc.OC_LOAD:
            addr = (regs[srcs[0]] + inst.imm) & _MASK
            if addr >= len(self.memory):
                raise MemoryFault(
                    f"{self.program.name}: load from {addr} at PC {pc}")
            value = self.memory[addr]
        elif opclass == oc.OC_STORE:
            addr = (regs[srcs[0]] + inst.imm) & _MASK
            if addr >= len(self.memory):
                raise MemoryFault(
                    f"{self.program.name}: store to {addr} at PC {pc}")
            self.memory[addr] = regs[srcs[1]]
        elif opclass == oc.OC_BRANCH:
            taken = _BRANCH_EVAL[op](regs[srcs[0]], regs[srcs[1]])
            if taken:
                next_pc = inst.imm
        elif opclass == oc.OC_JUMP:
            taken = True
            if op == oc.JMP:
                next_pc = inst.imm
            elif op == oc.JAL:
                value = pc + 1
                next_pc = inst.imm
            else:  # JR
                next_pc = regs[srcs[0]]
        elif opclass == oc.OC_NOP:
            pass
        elif opclass == oc.OC_HALT:
            self.halted = True
            return TraceRecord(pc, op, opclass, inst.latency, -1, srcs,
                               -1, False, pc)
        else:  # pragma: no cover - MGH never appears in source programs
            raise NotImplementedError(oc.op_name(op))

        rd = inst.rd
        if value is not None and rd is not None and rd != 0:
            regs[rd] = value
        self.retired += 1
        self.pc = next_pc
        return TraceRecord(pc, op, opclass, inst.latency,
                           rd if (rd is not None and rd != 0
                                  and inst.writes_reg) else -1,
                           srcs, addr, taken, next_pc)

    def run(self, max_insts: int = 2_000_000) -> List[TraceRecord]:
        """Step to halt (or the budget); returns the record list."""
        records: List[TraceRecord] = []
        while not self.halted:
            if self.retired >= max_insts:
                raise ExecutionLimitExceeded(
                    f"{self.program.name}: exceeded {max_insts} dynamic "
                    f"instructions")
            records.append(self.step())
        return records


def execute(program: Program, max_insts: int = 2_000_000,
            input_name: str = "default",
            regs_init: Optional[List[int]] = None,
            capture_memory: bool = False) -> Trace:
    """Architecturally execute ``program`` and return its dynamic trace.

    Execution starts at PC 0 with zeroed registers (unless ``regs_init``
    is given) and runs until a ``halt`` or until ``max_insts`` dynamic
    instructions have retired, whichever comes first; exceeding the budget
    raises :class:`ExecutionLimitExceeded`. With ``capture_memory`` the
    final memory image is attached to the trace (used by transformation
    passes to verify semantics preservation).
    """
    insts = program.instructions
    n_insts = len(insts)
    memory = list(program.data) + [0] * (program.memory_words
                                         - len(program.data))
    regs = list(regs_init) if regs_init is not None else [0] * 32
    regs[0] = 0
    records: List[TraceRecord] = []
    append = records.append
    pc = 0
    retired = 0

    while True:
        if retired >= max_insts:
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded {max_insts} dynamic instructions")
        if not 0 <= pc < n_insts:
            raise MemoryFault(f"{program.name}: control left program at "
                              f"PC {pc}")
        inst = insts[pc]
        op = inst.op
        opclass = inst.opclass
        srcs = inst.srcs
        rd = inst.rd
        imm = inst.imm
        addr = -1
        taken = False
        next_pc = pc + 1
        value = None

        if opclass == oc.OC_SIMPLE:
            if op == oc.ADD:
                value = (regs[srcs[0]] + regs[srcs[1]]) & _MASK
            elif op == oc.ADDI:
                value = (regs[srcs[0]] + imm) & _MASK
            elif op == oc.SUB:
                value = (regs[srcs[0]] - regs[srcs[1]]) & _MASK
            elif op == oc.AND:
                value = regs[srcs[0]] & regs[srcs[1]]
            elif op == oc.OR:
                value = regs[srcs[0]] | regs[srcs[1]]
            elif op == oc.XOR:
                value = regs[srcs[0]] ^ regs[srcs[1]]
            elif op == oc.NOR:
                value = ~(regs[srcs[0]] | regs[srcs[1]]) & _MASK
            elif op == oc.SLL:
                value = (regs[srcs[0]] << (regs[srcs[1]] & 63)) & _MASK
            elif op == oc.SRL:
                value = regs[srcs[0]] >> (regs[srcs[1]] & 63)
            elif op == oc.SRA:
                value = to_unsigned(
                    to_signed(regs[srcs[0]]) >> (regs[srcs[1]] & 63))
            elif op == oc.SLT:
                value = int(to_signed(regs[srcs[0]])
                            < to_signed(regs[srcs[1]]))
            elif op == oc.SLTU:
                value = int(regs[srcs[0]] < regs[srcs[1]])
            elif op == oc.SEQ:
                value = int(regs[srcs[0]] == regs[srcs[1]])
            elif op == oc.ANDI:
                value = regs[srcs[0]] & to_unsigned(imm)
            elif op == oc.ORI:
                value = regs[srcs[0]] | to_unsigned(imm)
            elif op == oc.XORI:
                value = regs[srcs[0]] ^ to_unsigned(imm)
            elif op == oc.SLLI:
                value = (regs[srcs[0]] << (imm & 63)) & _MASK
            elif op == oc.SRLI:
                value = regs[srcs[0]] >> (imm & 63)
            elif op == oc.SRAI:
                value = to_unsigned(to_signed(regs[srcs[0]]) >> (imm & 63))
            elif op == oc.SLTI:
                value = int(to_signed(regs[srcs[0]]) < imm)
            elif op == oc.SEQI:
                value = int(to_signed(regs[srcs[0]]) == imm)
            elif op == oc.LI:
                value = to_unsigned(imm)
            elif op == oc.CMOVZ:
                value = regs[srcs[0]] if regs[srcs[1]] == 0 else regs[srcs[2]]
            elif op == oc.CMOVN:
                value = regs[srcs[0]] if regs[srcs[1]] != 0 else regs[srcs[2]]
            else:  # pragma: no cover - exhaustive above
                raise NotImplementedError(oc.op_name(op))
        elif opclass == oc.OC_COMPLEX:
            a, b = regs[srcs[0]], regs[srcs[1]]
            if op == oc.MUL:
                value = (a * b) & _MASK
            elif op == oc.MULH:
                value = to_unsigned((to_signed(a) * to_signed(b)) >> 64)
            elif op == oc.DIV:
                sb = to_signed(b)
                value = 0 if sb == 0 else to_unsigned(
                    int(to_signed(a) / sb))
            elif op == oc.REM:
                sb = to_signed(b)
                sa = to_signed(a)
                value = 0 if sb == 0 else to_unsigned(
                    sa - int(sa / sb) * sb)
            elif op == oc.FADD:
                value = (a + b) & _MASK
            elif op == oc.FMUL:
                value = to_unsigned((to_signed(a) * to_signed(b)) >> 16)
            else:  # pragma: no cover - exhaustive above
                raise NotImplementedError(oc.op_name(op))
        elif opclass == oc.OC_LOAD:
            addr = (regs[srcs[0]] + imm) & _MASK
            if addr >= len(memory):
                raise MemoryFault(
                    f"{program.name}: load from {addr} at PC {pc}")
            value = memory[addr]
        elif opclass == oc.OC_STORE:
            addr = (regs[srcs[0]] + imm) & _MASK
            if addr >= len(memory):
                raise MemoryFault(
                    f"{program.name}: store to {addr} at PC {pc}")
            memory[addr] = regs[srcs[1]]
        elif opclass == oc.OC_BRANCH:
            a, b = regs[srcs[0]], regs[srcs[1]]
            if op == oc.BEQ:
                taken = a == b
            elif op == oc.BNE:
                taken = a != b
            elif op == oc.BLT:
                taken = to_signed(a) < to_signed(b)
            elif op == oc.BGE:
                taken = to_signed(a) >= to_signed(b)
            elif op == oc.BLTU:
                taken = a < b
            elif op == oc.BGEU:
                taken = a >= b
            else:  # pragma: no cover - exhaustive above
                raise NotImplementedError(oc.op_name(op))
            if taken:
                next_pc = imm
        elif opclass == oc.OC_JUMP:
            taken = True
            if op == oc.JMP:
                next_pc = imm
            elif op == oc.JAL:
                value = pc + 1
                next_pc = imm
            else:  # JR
                next_pc = regs[srcs[0]]
        elif opclass == oc.OC_NOP:
            pass
        elif opclass == oc.OC_HALT:
            append(TraceRecord(pc, op, opclass, inst.latency, -1, srcs,
                               -1, False, pc))
            break
        else:  # pragma: no cover - MGH never appears in source programs
            raise NotImplementedError(oc.op_name(op))

        if value is not None and rd is not None and rd != 0:
            regs[rd] = value
        append(TraceRecord(pc, op, opclass, inst.latency,
                           rd if (rd is not None and rd != 0
                                  and inst.writes_reg) else -1,
                           srcs, addr, taken, next_pc))
        retired += 1
        pc = next_pc

    return Trace(program, records, input_name=input_name,
                 final_memory=memory if capture_memory else None)
