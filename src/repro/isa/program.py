"""Programs and basic blocks.

A :class:`Program` is a linked list of instructions (PC = index into the
instruction list), an initial data-segment image, and label metadata. The
mini-graph machinery works on :class:`BasicBlock` views of the program;
mini-graphs are confined to basic blocks (atomicity — §2 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .instruction import Instruction
from .opcodes import JR, OC_BRANCH, OC_HALT, OC_JUMP


class BasicBlock:
    """A maximal single-entry straight-line region ``[start, end)``."""

    __slots__ = ("index", "start", "end")

    def __init__(self, index: int, start: int, end: int):
        self.index = index
        self.start = start
        self.end = end

    def __len__(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock #{self.index} [{self.start}, {self.end})>"

    def pcs(self) -> range:
        """The PCs of this block, in order."""
        return range(self.start, self.end)


class Program:
    """An executable program image.

    Parameters
    ----------
    name:
        Identifier used by the suite registry and caches.
    instructions:
        The static instruction sequence; ``pc`` attributes are assigned here.
    data:
        Initial data-segment image (word-addressed; address 0 is data word 0).
    labels:
        Map of label name to PC, for diagnostics.
    memory_words:
        Total memory size. Memory beyond ``len(data)`` starts zeroed and
        serves as heap/stack.
    """

    def __init__(self, name: str, instructions: Sequence[Instruction],
                 data: Optional[Sequence[int]] = None,
                 labels: Optional[Dict[str, int]] = None,
                 memory_words: int = 1 << 16):
        self.name = name
        self.instructions: List[Instruction] = list(instructions)
        for pc, inst in enumerate(self.instructions):
            inst.pc = pc
        self.data: List[int] = list(data or ())
        self.labels: Dict[str, int] = dict(labels or {})
        if memory_words < len(self.data):
            raise ValueError("memory_words smaller than data segment")
        self.memory_words = memory_words
        self._blocks: Optional[List[BasicBlock]] = None
        self._block_of_pc: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __getstate__(self):
        # Basic-block analysis is derived data; excluding it keeps pickled
        # programs (and the traces that embed them) canonical regardless of
        # which analyses ran earlier in the process.
        state = self.__dict__.copy()
        state["_blocks"] = None
        state["_block_of_pc"] = None
        return state

    # -- control-flow structure ---------------------------------------------

    def basic_blocks(self) -> List[BasicBlock]:
        """Partition the program into basic blocks.

        Leaders are: PC 0, targets of control transfers, and instructions
        following a control transfer or halt. Indirect jumps (``jr``) end a
        block but contribute no static target; call/return discipline means
        their dynamic targets are always leaders anyway (targets of ``jal``
        or fall-throughs of calls).
        """
        if self._blocks is not None:
            return self._blocks
        n = len(self.instructions)
        leaders = {0}
        for pc, inst in enumerate(self.instructions):
            cls = inst.opclass
            if cls in (OC_BRANCH, OC_JUMP, OC_HALT):
                if pc + 1 < n:
                    leaders.add(pc + 1)
                if cls != OC_HALT and inst.op != JR:
                    leaders.add(inst.imm)
        ordered = sorted(p for p in leaders if 0 <= p < n)
        blocks: List[BasicBlock] = []
        block_of_pc = [0] * n
        for i, start in enumerate(ordered):
            end = ordered[i + 1] if i + 1 < len(ordered) else n
            blocks.append(BasicBlock(len(blocks), start, end))
            for pc in range(start, end):
                block_of_pc[pc] = len(blocks) - 1
        self._blocks = blocks
        self._block_of_pc = block_of_pc
        return blocks

    def block_of(self, pc: int) -> BasicBlock:
        """The basic block containing ``pc``."""
        self.basic_blocks()
        assert self._blocks is not None and self._block_of_pc is not None
        return self._blocks[self._block_of_pc[pc]]

    # -- rendering ------------------------------------------------------------

    def listing(self) -> str:
        """Full assembly listing with labels, for diagnostics."""
        by_pc: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(label)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for label in sorted(by_pc.get(pc, ())):
                lines.append(f"{label}:")
            lines.append(f"  {pc:5d}  {inst.render()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Program {self.name!r}: {len(self.instructions)} insts, "
                f"{len(self.data)} data words>")
