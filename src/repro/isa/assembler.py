"""A small assembler DSL for building :class:`~repro.isa.program.Program`.

Workload kernels are written in Python against this builder::

    a = Assembler("crc32")
    table = a.data_words([...], label="table")
    a.label("loop")
    a.ld("r3", "r1", 0)
    a.xor("r2", "r2", "r3")
    a.addi("r1", "r1", 1)
    a.bne("r1", "r4", "loop")
    a.halt()
    prog = a.build()

Registers may be written as integers, ``"rN"``, or the aliases ``zero``,
``ra``, ``gp``, ``sp``. Branch targets are labels, resolved at build time.
Data words are laid out in declaration order; each ``data_*`` call returns
the base address of its allocation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from . import opcodes as oc
from .instruction import Instruction, NUM_ARCH_REGS, REG_GP, REG_RA, REG_SP
from .program import Program

Reg = Union[int, str]

_ALIASES = {"zero": 0, "ra": REG_RA, "gp": REG_GP, "sp": REG_SP}


def parse_reg(reg: Reg) -> int:
    """Resolve a register designator to its architectural number."""
    if isinstance(reg, int):
        num = reg
    elif reg in _ALIASES:
        num = _ALIASES[reg]
    elif reg.startswith("r") and reg[1:].isdigit():
        num = int(reg[1:])
    else:
        raise ValueError(f"unknown register {reg!r}")
    if not 0 <= num < NUM_ARCH_REGS:
        raise ValueError(f"register number out of range: {reg!r}")
    return num


class Assembler:
    """Incrementally builds a :class:`Program`."""

    def __init__(self, name: str, memory_words: int = 1 << 16):
        self.name = name
        self.memory_words = memory_words
        self._insts: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._data: List[int] = []
        self._data_labels: Dict[str, int] = {}

    # -- layout ------------------------------------------------------------

    def label(self, name: str) -> None:
        """Define a code label at the current PC."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)

    def here(self) -> int:
        """The current PC."""
        return len(self._insts)

    def data_words(self, words: Sequence[int],
                   label: Optional[str] = None) -> int:
        """Append initialized data words; returns the base address."""
        base = len(self._data)
        self._data.extend(int(w) for w in words)
        if label is not None:
            self._data_labels[label] = base
        return base

    def data_zeros(self, count: int, label: Optional[str] = None) -> int:
        """Append ``count`` zeroed data words; returns the base address."""
        return self.data_words([0] * count, label=label)

    def data_addr(self, label: str) -> int:
        """Address of a previously declared data label."""
        return self._data_labels[label]

    # -- generic emitters ----------------------------------------------------

    def _emit(self, inst: Instruction) -> None:
        self._insts.append(inst)

    def _rrr(self, op: int, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(Instruction(op, parse_reg(rd),
                               (parse_reg(rs1), parse_reg(rs2))))

    def _rri(self, op: int, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(Instruction(op, parse_reg(rd), (parse_reg(rs1),),
                               imm=int(imm)))

    def _branch(self, op: int, rs1: Reg, rs2: Reg, target: str) -> None:
        self._emit(Instruction(op, None, (parse_reg(rs1), parse_reg(rs2)),
                               target_label=target))

    # -- ALU, register-register ---------------------------------------------

    def add(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 + rs2``"""
        self._rrr(oc.ADD, rd, rs1, rs2)

    def sub(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 - rs2``"""
        self._rrr(oc.SUB, rd, rs1, rs2)

    def and_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 & rs2``"""
        self._rrr(oc.AND, rd, rs1, rs2)

    def or_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 | rs2``"""
        self._rrr(oc.OR, rd, rs1, rs2)

    def xor(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 ^ rs2``"""
        self._rrr(oc.XOR, rd, rs1, rs2)

    def nor(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = ~(rs1 | rs2)``"""
        self._rrr(oc.NOR, rd, rs1, rs2)

    def sll(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 << (rs2 & 63)``"""
        self._rrr(oc.SLL, rd, rs1, rs2)

    def srl(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 >> (rs2 & 63)`` (logical)"""
        self._rrr(oc.SRL, rd, rs1, rs2)

    def sra(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 >> (rs2 & 63)`` (arithmetic)"""
        self._rrr(oc.SRA, rd, rs1, rs2)

    def slt(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = 1 if rs1 < rs2 else 0`` (signed)"""
        self._rrr(oc.SLT, rd, rs1, rs2)

    def sltu(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = 1 if rs1 < rs2 else 0`` (unsigned)"""
        self._rrr(oc.SLTU, rd, rs1, rs2)

    def seq(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = 1 if rs1 == rs2 else 0``"""
        self._rrr(oc.SEQ, rd, rs1, rs2)

    def cmovz(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs2 == 0 ? rs1 : rd`` (reads rd as a third source)."""
        self._emit(Instruction(oc.CMOVZ, parse_reg(rd),
                               (parse_reg(rs1), parse_reg(rs2),
                                parse_reg(rd))))

    def cmovn(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs2 != 0 ? rs1 : rd`` (reads rd as a third source)."""
        self._emit(Instruction(oc.CMOVN, parse_reg(rd),
                               (parse_reg(rs1), parse_reg(rs2),
                                parse_reg(rd))))

    # -- ALU, register-immediate ----------------------------------------------

    def addi(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd = rs1 + imm``"""
        self._rri(oc.ADDI, rd, rs1, imm)

    def andi(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd = rs1 & imm``"""
        self._rri(oc.ANDI, rd, rs1, imm)

    def ori(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd = rs1 | imm``"""
        self._rri(oc.ORI, rd, rs1, imm)

    def xori(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd = rs1 ^ imm``"""
        self._rri(oc.XORI, rd, rs1, imm)

    def slli(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd = rs1 << imm``"""
        self._rri(oc.SLLI, rd, rs1, imm)

    def srli(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd = rs1 >> imm`` (logical)"""
        self._rri(oc.SRLI, rd, rs1, imm)

    def srai(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd = rs1 >> imm`` (arithmetic)"""
        self._rri(oc.SRAI, rd, rs1, imm)

    def slti(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd = 1 if rs1 < imm else 0`` (signed)"""
        self._rri(oc.SLTI, rd, rs1, imm)

    def seqi(self, rd: Reg, rs1: Reg, imm: int) -> None:
        """``rd = 1 if rs1 == imm else 0``"""
        self._rri(oc.SEQI, rd, rs1, imm)

    def li(self, rd: Reg, imm: int) -> None:
        """``rd = imm``"""
        self._emit(Instruction(oc.LI, parse_reg(rd), (), imm=int(imm)))

    def mov(self, rd: Reg, rs1: Reg) -> None:
        """Pseudo-op: ``addi rd, rs1, 0``."""
        self.addi(rd, rs1, 0)

    # -- complex ---------------------------------------------------------------

    def mul(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 * rs2`` (low 64 bits; complex port, 3 cycles)"""
        self._rrr(oc.MUL, rd, rs1, rs2)

    def mulh(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = (rs1 * rs2) >> 64`` (signed high; complex port)"""
        self._rrr(oc.MULH, rd, rs1, rs2)

    def div(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 / rs2`` (signed, truncating; 0 on divide-by-zero)"""
        self._rrr(oc.DIV, rd, rs1, rs2)

    def rem(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """``rd = rs1 % rs2`` (C-style sign; 0 on divide-by-zero)"""
        self._rrr(oc.REM, rd, rs1, rs2)

    def fadd(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """Fixed-point add on the complex/FP port (4 cycles)."""
        self._rrr(oc.FADD, rd, rs1, rs2)

    def fmul(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        """Q16 fixed-point multiply on the complex/FP port."""
        self._rrr(oc.FMUL, rd, rs1, rs2)

    # -- memory ------------------------------------------------------------------

    def ld(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        """``rd = MEM[base + offset]`` (word-addressed)."""
        self._emit(Instruction(oc.LD, parse_reg(rd), (parse_reg(base),),
                               imm=int(offset)))

    def st(self, src: Reg, base: Reg, offset: int = 0) -> None:
        """``MEM[base + offset] = src`` (word-addressed)."""
        self._emit(Instruction(oc.ST, None,
                               (parse_reg(base), parse_reg(src)),
                               imm=int(offset)))

    # -- control -------------------------------------------------------------------

    def beq(self, rs1: Reg, rs2: Reg, target: str) -> None:
        """Branch to ``target`` if ``rs1 == rs2``."""
        self._branch(oc.BEQ, rs1, rs2, target)

    def bne(self, rs1: Reg, rs2: Reg, target: str) -> None:
        """Branch to ``target`` if ``rs1 != rs2``."""
        self._branch(oc.BNE, rs1, rs2, target)

    def blt(self, rs1: Reg, rs2: Reg, target: str) -> None:
        """Branch to ``target`` if ``rs1 < rs2`` (signed)."""
        self._branch(oc.BLT, rs1, rs2, target)

    def bge(self, rs1: Reg, rs2: Reg, target: str) -> None:
        """Branch to ``target`` if ``rs1 >= rs2`` (signed)."""
        self._branch(oc.BGE, rs1, rs2, target)

    def bltu(self, rs1: Reg, rs2: Reg, target: str) -> None:
        """Branch to ``target`` if ``rs1 < rs2`` (unsigned)."""
        self._branch(oc.BLTU, rs1, rs2, target)

    def bgeu(self, rs1: Reg, rs2: Reg, target: str) -> None:
        """Branch to ``target`` if ``rs1 >= rs2`` (unsigned)."""
        self._branch(oc.BGEU, rs1, rs2, target)

    def beqz(self, rs1: Reg, target: str) -> None:
        """Branch to ``target`` if ``rs1 == 0``."""
        self.beq(rs1, 0, target)

    def bnez(self, rs1: Reg, target: str) -> None:
        """Branch to ``target`` if ``rs1 != 0``."""
        self.bne(rs1, 0, target)

    def jmp(self, target: str) -> None:
        """Unconditional direct jump to ``target``."""
        self._emit(Instruction(oc.JMP, None, (), target_label=target))

    def jal(self, target: str, rd: Reg = REG_RA) -> None:
        """Call: ``rd = return address``; jump to ``target``."""
        self._emit(Instruction(oc.JAL, parse_reg(rd), (),
                               target_label=target))

    def jr(self, rs1: Reg = REG_RA) -> None:
        """Indirect jump to the address in ``rs1`` (return)."""
        self._emit(Instruction(oc.JR, None, (parse_reg(rs1),)))

    def ret(self) -> None:
        """Return: ``jr ra``."""
        self.jr(REG_RA)

    # -- misc -----------------------------------------------------------------------

    def nop(self) -> None:
        """No operation."""
        self._emit(Instruction(oc.NOP))

    def halt(self) -> None:
        """Stop execution."""
        self._emit(Instruction(oc.HALT))

    # -- build ---------------------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and produce the final :class:`Program`."""
        for pc, inst in enumerate(self._insts):
            if inst.target_label is not None:
                if inst.target_label not in self._labels:
                    raise ValueError(
                        f"undefined label {inst.target_label!r} at PC {pc}")
                inst.imm = self._labels[inst.target_label]
        return Program(self.name, self._insts, data=self._data,
                       labels=dict(self._labels),
                       memory_words=self.memory_words)
