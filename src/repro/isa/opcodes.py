"""Opcode definitions for the repro RISC ISA.

The ISA is a small 32-register RISC machine in the style of the Alpha EV6
used by the paper. Operation *classes* mirror the issue-port split of
Table 1 of the paper: simple integer, complex integer (multiply/divide,
standing in for the shared complex-int/FP port), loads, stores, and control
transfers. Latencies are per-opcode; loads take their latency from the data
cache at simulation time.

Opcodes are small integers so that hot simulator loops can dispatch on them
cheaply; human-readable metadata lives in :data:`OP_INFO`.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

# --------------------------------------------------------------------------
# Operation classes (issue-port classes, Table 1)
# --------------------------------------------------------------------------

OC_SIMPLE = 0   # simple integer ALU (1-cycle)
OC_COMPLEX = 1  # complex integer / FP (shared single port)
OC_LOAD = 2
OC_STORE = 3
OC_BRANCH = 4   # conditional control transfer
OC_JUMP = 5     # unconditional control transfer (direct, call, indirect)
OC_NOP = 6
OC_HALT = 7
OC_MGH = 8      # mini-graph handle (appears only in transformed streams)

OP_CLASS_NAMES = {
    OC_SIMPLE: "simple",
    OC_COMPLEX: "complex",
    OC_LOAD: "load",
    OC_STORE: "store",
    OC_BRANCH: "branch",
    OC_JUMP: "jump",
    OC_NOP: "nop",
    OC_HALT: "halt",
    OC_MGH: "mgh",
}


class OpInfo(NamedTuple):
    """Static metadata for one opcode."""

    name: str
    opclass: int
    latency: int      # execution latency in cycles (loads: L1-hit placeholder)
    n_src: int        # number of register sources
    writes_reg: bool  # produces a register value
    has_imm: bool


_OPS = []
_BY_NAME: Dict[str, int] = {}


def _op(name: str, opclass: int, latency: int, n_src: int,
        writes_reg: bool, has_imm: bool) -> int:
    code = len(_OPS)
    _OPS.append(OpInfo(name, opclass, latency, n_src, writes_reg, has_imm))
    _BY_NAME[name] = code
    return code


# Simple integer, register-register ------------------------------------------------
ADD = _op("add", OC_SIMPLE, 1, 2, True, False)
SUB = _op("sub", OC_SIMPLE, 1, 2, True, False)
AND = _op("and", OC_SIMPLE, 1, 2, True, False)
OR = _op("or", OC_SIMPLE, 1, 2, True, False)
XOR = _op("xor", OC_SIMPLE, 1, 2, True, False)
NOR = _op("nor", OC_SIMPLE, 1, 2, True, False)
SLL = _op("sll", OC_SIMPLE, 1, 2, True, False)
SRL = _op("srl", OC_SIMPLE, 1, 2, True, False)
SRA = _op("sra", OC_SIMPLE, 1, 2, True, False)
SLT = _op("slt", OC_SIMPLE, 1, 2, True, False)
SLTU = _op("sltu", OC_SIMPLE, 1, 2, True, False)
SEQ = _op("seq", OC_SIMPLE, 1, 2, True, False)
CMOVZ = _op("cmovz", OC_SIMPLE, 1, 3, True, False)   # rd = (rs2==0) ? rs1 : rd
CMOVN = _op("cmovn", OC_SIMPLE, 1, 3, True, False)   # rd = (rs2!=0) ? rs1 : rd

# Simple integer, register-immediate ----------------------------------------------
ADDI = _op("addi", OC_SIMPLE, 1, 1, True, True)
ANDI = _op("andi", OC_SIMPLE, 1, 1, True, True)
ORI = _op("ori", OC_SIMPLE, 1, 1, True, True)
XORI = _op("xori", OC_SIMPLE, 1, 1, True, True)
SLLI = _op("slli", OC_SIMPLE, 1, 1, True, True)
SRLI = _op("srli", OC_SIMPLE, 1, 1, True, True)
SRAI = _op("srai", OC_SIMPLE, 1, 1, True, True)
SLTI = _op("slti", OC_SIMPLE, 1, 1, True, True)
SEQI = _op("seqi", OC_SIMPLE, 1, 1, True, True)
LI = _op("li", OC_SIMPLE, 1, 0, True, True)

# Complex integer / FP-port operations ---------------------------------------------
MUL = _op("mul", OC_COMPLEX, 3, 2, True, False)
MULH = _op("mulh", OC_COMPLEX, 3, 2, True, False)
DIV = _op("div", OC_COMPLEX, 12, 2, True, False)
REM = _op("rem", OC_COMPLEX, 12, 2, True, False)
FADD = _op("fadd", OC_COMPLEX, 4, 2, True, False)    # fixed-point "FP" add
FMUL = _op("fmul", OC_COMPLEX, 4, 2, True, False)    # fixed-point "FP" mul

# Memory ---------------------------------------------------------------------------
LD = _op("ld", OC_LOAD, 3, 1, True, True)      # rd = MEM[rs1 + imm]
ST = _op("st", OC_STORE, 1, 2, False, True)    # MEM[rs1 + imm] = rs2

# Control --------------------------------------------------------------------------
BEQ = _op("beq", OC_BRANCH, 1, 2, False, True)
BNE = _op("bne", OC_BRANCH, 1, 2, False, True)
BLT = _op("blt", OC_BRANCH, 1, 2, False, True)
BGE = _op("bge", OC_BRANCH, 1, 2, False, True)
BLTU = _op("bltu", OC_BRANCH, 1, 2, False, True)
BGEU = _op("bgeu", OC_BRANCH, 1, 2, False, True)
JMP = _op("jmp", OC_JUMP, 1, 0, False, True)
JAL = _op("jal", OC_JUMP, 1, 0, True, True)    # rd = return address
JR = _op("jr", OC_JUMP, 1, 1, False, False)    # indirect jump / return

# Misc -----------------------------------------------------------------------------
NOP = _op("nop", OC_NOP, 1, 0, False, False)
HALT = _op("halt", OC_HALT, 1, 0, False, False)
MGH = _op("mgh", OC_MGH, 1, 0, True, False)    # mini-graph handle

OP_INFO = tuple(_OPS)
OP_BY_NAME = dict(_BY_NAME)
N_OPCODES = len(OP_INFO)


def op_name(op: int) -> str:
    """Human-readable mnemonic for opcode ``op``."""
    return OP_INFO[op].name


def op_class(op: int) -> int:
    """Issue-port class of opcode ``op``."""
    return OP_INFO[op].opclass


def op_latency(op: int) -> int:
    """Nominal execution latency (loads report their L1-hit latency)."""
    return OP_INFO[op].latency


def is_control(op: int) -> bool:
    """True for any control transfer (conditional or unconditional)."""
    return OP_INFO[op].opclass in (OC_BRANCH, OC_JUMP)


def is_memory(op: int) -> bool:
    """True for loads and stores."""
    return OP_INFO[op].opclass in (OC_LOAD, OC_STORE)
