"""CommBench-family kernels: checksums, coding, and packet scheduling."""

from __future__ import annotations

import random

from ..isa.assembler import Assembler
from ..isa.program import Program
from .suite import Benchmark, register


def _crc32_table() -> list:
    table = []
    for n in range(256):
        c = n
        for _ in range(8):
            c = (0xEDB88320 ^ (c >> 1)) if c & 1 else (c >> 1)
        table.append(c)
    return table


def crc32(input_name: str) -> Program:
    """Table-driven CRC32 over a message buffer."""
    n = 400 if input_name == "train" else 680
    seed = 3 if input_name == "train" else 5
    rng = random.Random(seed)
    message = [rng.randint(0, 255) for _ in range(n)]

    a = Assembler("crc32")
    table = a.data_words(_crc32_table(), label="crctab")
    data = a.data_words(message, label="msg")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", n)
    a.li("r3", table)
    a.li("r4", 0xFFFFFFFF)     # crc
    a.label("loop")
    a.ld("r5", "r1", 0)
    a.xor("r6", "r4", "r5")
    a.andi("r6", "r6", 255)
    a.add("r7", "r3", "r6")
    a.ld("r8", "r7", 0)
    a.srli("r9", "r4", 8)
    a.xor("r4", "r8", "r9")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r4", "r0", result)
    a.halt()
    return a.build()


def rs_gf_encode(input_name: str) -> Program:
    """Reed-Solomon-style GF(256) parity: log/antilog table multiplies."""
    n = 230 if input_name == "train" else 400
    seed = 11 if input_name == "train" else 31
    rng = random.Random(seed)
    # GF(256) log/alog tables over the AES polynomial.
    alog = [1] * 256
    for i in range(1, 255):
        v = alog[i - 1] << 1
        if v & 0x100:
            v ^= 0x11B
        alog[i] = v & 0xFF
    log = [0] * 256
    for i in range(255):
        log[alog[i]] = i
    data = [rng.randint(1, 255) for _ in range(n)]
    gens = [rng.randint(1, 255) for _ in range(8)]

    a = Assembler("rsenc")
    log_tab = a.data_words(log, label="log")
    alog_tab = a.data_words(alog + alog, label="alog")  # doubled: no mod
    msg = a.data_words(data, label="msg")
    gen = a.data_words(gens, label="gen")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", msg)
    a.li("r2", n)
    a.li("r3", log_tab)
    a.li("r4", alog_tab)
    a.li("r5", gen)
    a.li("r15", 0)             # parity accumulator
    a.li("r14", 0)             # generator index
    a.label("loop")
    a.ld("r6", "r1", 0)        # symbol (nonzero)
    a.add("r7", "r5", "r14")
    a.ld("r8", "r7", 0)        # generator coefficient
    # GF multiply: alog[log[a] + log[b]]
    a.add("r9", "r3", "r6")
    a.ld("r10", "r9", 0)
    a.add("r9", "r3", "r8")
    a.ld("r11", "r9", 0)
    a.add("r12", "r10", "r11")
    a.add("r9", "r4", "r12")
    a.ld("r13", "r9", 0)
    a.xor("r15", "r15", "r13")
    a.addi("r14", "r14", 1)
    a.andi("r14", "r14", 7)
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def drr_sched(input_name: str) -> Program:
    """Deficit-round-robin packet scheduler over per-flow queues."""
    rounds = 60 if input_name == "train" else 110
    flows = 8
    seed = 13 if input_name == "train" else 41
    rng = random.Random(seed)
    sizes = [rng.randint(40, 1500) for _ in range(flows * 4)]

    a = Assembler("drr")
    size_tab = a.data_words(sizes, label="sizes")
    deficits = a.data_zeros(flows, label="deficits")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")
    quantum = 500

    a.li("r1", rounds)
    a.li("r15", 0)             # bytes sent
    a.label("round")
    a.li("r2", 0)              # flow index
    a.label("flow")
    a.li("r3", deficits)
    a.add("r3", "r3", "r2")
    a.ld("r4", "r3", 0)
    a.addi("r4", "r4", quantum)
    # Pick this flow's "head packet" size: sizes[(flow*4 + round) & 31]
    a.slli("r5", "r2", 2)
    a.add("r5", "r5", "r1")
    a.andi("r5", "r5", 31)
    a.li("r6", size_tab)
    a.add("r6", "r6", "r5")
    a.ld("r7", "r6", 0)
    # Send packets while deficit covers them.
    a.label("send")
    a.blt("r4", "r7", "done_send")
    a.sub("r4", "r4", "r7")
    a.add("r15", "r15", "r7")
    a.addi("r7", "r7", 64)     # next packet slightly larger
    a.jmp("send")
    a.label("done_send")
    a.st("r4", "r3", 0)
    a.addi("r2", "r2", 1)
    a.slti("r8", "r2", flows)
    a.bne("r8", "r0", "flow")
    a.addi("r1", "r1", -1)
    a.bne("r1", "r0", "round")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def ipchk(input_name: str) -> Program:
    """IP-style one's-complement header checksum over packet words."""
    packets = 70 if input_name == "train" else 120
    words = 10
    seed = 17 if input_name == "train" else 43
    rng = random.Random(seed)
    headers = [rng.randint(0, 0xFFFF) for _ in range(packets * words)]

    a = Assembler("ipchk")
    data = a.data_words(headers, label="headers")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", packets)
    a.li("r15", 0)
    a.label("packet")
    a.li("r3", words)
    a.li("r4", 0)              # sum
    a.label("word")
    a.ld("r5", "r1", 0)
    a.add("r4", "r4", "r5")
    # Fold carries out of the low 16 bits.
    a.srli("r6", "r4", 16)
    a.andi("r4", "r4", 0xFFFF)
    a.add("r4", "r4", "r6")
    a.addi("r1", "r1", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "word")
    a.xori("r4", "r4", 0xFFFF)
    a.xor("r15", "r15", "r4")
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "packet")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def red_queue(input_name: str) -> Program:
    """RED-style queue management: EWMA average and drop decisions."""
    n = 320 if input_name == "train" else 560
    seed = 19 if input_name == "train" else 47
    rng = random.Random(seed)
    arrivals = [rng.randint(0, 120) for _ in range(n)]

    a = Assembler("red")
    data = a.data_words(arrivals, label="arrivals")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")
    min_th, max_th = 20, 80

    a.li("r1", data)
    a.li("r2", n)
    a.li("r4", 0)              # avg (fixed-point <<4)
    a.li("r15", 0)             # drops
    a.label("loop")
    a.ld("r5", "r1", 0)        # instantaneous queue length
    # avg += (q - avg) >> 3   (EWMA in <<4 fixed point)
    a.slli("r6", "r5", 4)
    a.sub("r7", "r6", "r4")
    a.srai("r7", "r7", 3)
    a.add("r4", "r4", "r7")
    a.srai("r8", "r4", 4)
    a.slti("r9", "r8", min_th)
    a.bne("r9", "r0", "accept")
    a.slti("r9", "r8", max_th)
    a.beq("r9", "r0", "drop")
    # Probabilistic region: drop when (avg ^ q) has low bits set.
    a.xor("r10", "r8", "r5")
    a.andi("r10", "r10", 3)
    a.bne("r10", "r0", "accept")
    a.label("drop")
    a.addi("r15", "r15", 1)
    a.label("accept")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def zrle(input_name: str) -> Program:
    """Zero run-length encoder (transport-stream style)."""
    n = 380 if input_name == "train" else 640
    seed = 23 if input_name == "train" else 53
    rng = random.Random(seed)
    data = []
    while len(data) < n:
        if rng.random() < 0.5:
            data.extend([0] * rng.randint(1, 9))
        else:
            data.append(rng.randint(1, 255))
    data = data[:n]
    data[-1] = 1  # terminate any trailing run

    a = Assembler("zrle")
    src = a.data_words(data, label="src")
    dst = a.data_zeros(n + 4, label="dst")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", src)
    a.li("r2", dst)
    a.li("r3", n)
    a.li("r15", 0)             # emitted words
    a.label("loop")
    a.ld("r4", "r1", 0)
    a.bne("r4", "r0", "literal")
    # Count the zero run.
    a.li("r5", 0)
    a.label("run")
    a.addi("r5", "r5", 1)
    a.addi("r1", "r1", 1)
    a.addi("r3", "r3", -1)
    a.beq("r3", "r0", "emit_run")
    a.ld("r4", "r1", 0)
    a.beq("r4", "r0", "run")
    a.label("emit_run")
    a.ori("r6", "r5", 256)     # run marker
    a.st("r6", "r2", 0)
    a.addi("r2", "r2", 1)
    a.addi("r15", "r15", 1)
    a.bne("r3", "r0", "loop")
    a.jmp("done")
    a.label("literal")
    a.st("r4", "r2", 0)
    a.addi("r2", "r2", 1)
    a.addi("r15", "r15", 1)
    a.addi("r1", "r1", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "loop")
    a.label("done")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


register(Benchmark("crc32", "comm", crc32,
                   description="table-driven CRC32"))
register(Benchmark("rsenc", "comm", rs_gf_encode,
                   description="Reed-Solomon GF(256) parity"))
register(Benchmark("drr", "comm", drr_sched,
                   description="deficit round robin scheduler"))
register(Benchmark("ipchk", "comm", ipchk,
                   description="IP one's-complement checksum"))
register(Benchmark("red", "comm", red_queue,
                   description="RED queue management"))
register(Benchmark("zrle", "comm", zrle,
                   description="zero run-length encoding"))
