"""Benchmark programs: four suite families plus synthetic workloads."""

from .suite import SUITES, Benchmark, all_benchmarks, benchmark, register

__all__ = ["SUITES", "Benchmark", "all_benchmarks", "benchmark", "register"]
