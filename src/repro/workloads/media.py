"""MediaBench-family kernels: codecs and DSP loops.

Includes the ADPCM coder used by the paper's Figure 8 limit study.
"""

from __future__ import annotations

import math
import random

from ..isa.assembler import Assembler
from ..isa.program import Program
from .suite import Benchmark, register

# IMA ADPCM tables (standard).
_STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484,
    7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818,
    18500, 20350, 22385, 24623, 27086, 29794, 32767,
]
_INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def _pcm_samples(count: int, seed: int) -> list:
    rng = random.Random(seed)
    return [int(4000 * math.sin(i * 0.07) + rng.randint(-300, 300))
            for i in range(count)]


def adpcm_enc(input_name: str) -> Program:
    """IMA ADPCM encoder (the paper's limit-study benchmark).

    The extra ``tiny`` input keeps the 1024-subset exhaustive search of
    Figure 8 tractable.
    """
    count = {"train": 160, "ref": 280, "tiny": 64}[input_name]
    seed = {"train": 11, "ref": 23, "tiny": 2}[input_name]
    a = Assembler("adpcm")
    samples = a.data_words(_pcm_samples(count, seed), label="samples")
    codes = a.data_zeros(count, label="codes")
    steps = a.data_words(_STEP_TABLE, label="steps")
    index_tab = a.data_words(_INDEX_TABLE, label="indextab")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", samples)
    a.li("r2", codes)
    a.li("r3", count)
    a.li("r4", 0)          # valpred
    a.li("r5", 0)          # index
    a.li("r6", steps)
    a.li("r7", index_tab)
    a.li("r15", 0)         # checksum
    a.label("loop")
    a.add("r12", "r6", "r5")
    a.ld("r11", "r12", 0)  # step
    a.ld("r8", "r1", 0)    # sample
    a.sub("r9", "r8", "r4")  # diff
    a.li("r10", 0)
    a.bge("r9", "r0", "pos")
    a.li("r10", 8)
    a.sub("r9", "r0", "r9")
    a.label("pos")
    a.srai("r13", "r11", 3)  # vpdiff = step >> 3
    a.blt("r9", "r11", "b1")
    a.ori("r10", "r10", 4)
    a.sub("r9", "r9", "r11")
    a.add("r13", "r13", "r11")
    a.label("b1")
    a.srai("r11", "r11", 1)
    a.blt("r9", "r11", "b2")
    a.ori("r10", "r10", 2)
    a.sub("r9", "r9", "r11")
    a.add("r13", "r13", "r11")
    a.label("b2")
    a.srai("r11", "r11", 1)
    a.blt("r9", "r11", "b3")
    a.ori("r10", "r10", 1)
    a.add("r13", "r13", "r11")
    a.label("b3")
    a.andi("r14", "r10", 8)
    a.beq("r14", "r0", "plus")
    a.sub("r4", "r4", "r13")
    a.jmp("clamp")
    a.label("plus")
    a.add("r4", "r4", "r13")
    a.label("clamp")
    a.li("r14", 32767)
    a.blt("r4", "r14", "c1")
    a.mov("r4", "r14")
    a.label("c1")
    a.li("r14", -32768)
    a.bge("r4", "r14", "c2")
    a.mov("r4", "r14")
    a.label("c2")
    a.add("r12", "r7", "r10")
    a.ld("r14", "r12", 0)
    a.add("r5", "r5", "r14")
    a.bge("r5", "r0", "c3")
    a.li("r5", 0)
    a.label("c3")
    a.li("r14", 88)
    a.blt("r5", "r14", "c4")
    a.mov("r5", "r14")
    a.label("c4")
    a.st("r10", "r2", 0)
    a.add("r15", "r15", "r10")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def adpcm_dec(input_name: str) -> Program:
    """IMA ADPCM decoder, fed by a synthetic code stream."""
    count = 200 if input_name == "train" else 320
    seed = 5 if input_name == "train" else 17
    rng = random.Random(seed)
    a = Assembler("adpcm_dec")
    codes = a.data_words([rng.randint(0, 15) for _ in range(count)],
                         label="codes")
    pcm = a.data_zeros(count, label="pcm")
    steps = a.data_words(_STEP_TABLE, label="steps")
    index_tab = a.data_words(_INDEX_TABLE, label="indextab")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", codes)
    a.li("r2", pcm)
    a.li("r3", count)
    a.li("r4", 0)          # valpred
    a.li("r5", 0)          # index
    a.li("r6", steps)
    a.li("r7", index_tab)
    a.li("r15", 0)
    a.label("loop")
    a.add("r12", "r6", "r5")
    a.ld("r11", "r12", 0)  # step
    a.ld("r10", "r1", 0)   # code
    a.srai("r13", "r11", 3)  # vpdiff = step >> 3
    a.andi("r14", "r10", 4)
    a.beq("r14", "r0", "d1")
    a.add("r13", "r13", "r11")
    a.label("d1")
    a.andi("r14", "r10", 2)
    a.beq("r14", "r0", "d2")
    a.srai("r9", "r11", 1)
    a.add("r13", "r13", "r9")
    a.label("d2")
    a.andi("r14", "r10", 1)
    a.beq("r14", "r0", "d3")
    a.srai("r9", "r11", 2)
    a.add("r13", "r13", "r9")
    a.label("d3")
    a.andi("r14", "r10", 8)
    a.beq("r14", "r0", "dplus")
    a.sub("r4", "r4", "r13")
    a.jmp("dclamp")
    a.label("dplus")
    a.add("r4", "r4", "r13")
    a.label("dclamp")
    a.li("r14", 32767)
    a.blt("r4", "r14", "e1")
    a.mov("r4", "r14")
    a.label("e1")
    a.li("r14", -32768)
    a.bge("r4", "r14", "e2")
    a.mov("r4", "r14")
    a.label("e2")
    a.add("r12", "r7", "r10")
    a.ld("r14", "r12", 0)
    a.add("r5", "r5", "r14")
    a.bge("r5", "r0", "e3")
    a.li("r5", 0)
    a.label("e3")
    a.li("r14", 88)
    a.blt("r5", "r14", "e4")
    a.mov("r5", "r14")
    a.label("e4")
    a.st("r4", "r2", 0)
    a.xor("r15", "r15", "r4")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def jpeg_dct(input_name: str) -> Program:
    """Shift-add 8-point DCT butterflies over image rows (jpeg-style)."""
    rows = 24 if input_name == "train" else 40
    seed = 31 if input_name == "train" else 47
    rng = random.Random(seed)
    a = Assembler("jpegdct")
    pixels = a.data_words([rng.randint(0, 255) for _ in range(rows * 8)],
                          label="pixels")
    coeffs = a.data_zeros(rows * 8, label="coeffs")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", pixels)
    a.li("r2", coeffs)
    a.li("r3", rows)
    a.li("r15", 0)
    a.label("row")
    # Load the 8 pixels of the row.
    for i in range(8):
        a.ld(f"r{4 + i}", "r1", i)
    # Stage 1 butterflies: s_i = x_i + x_{7-i}, d_i = x_i - x_{7-i}.
    a.add("r12", "r4", "r11")   # s0
    a.sub("r13", "r4", "r11")   # d0
    a.add("r14", "r5", "r10")   # s1
    a.sub("r5", "r5", "r10")    # d1
    a.add("r10", "r6", "r9")    # s2
    a.sub("r6", "r6", "r9")     # d2
    a.add("r9", "r7", "r8")     # s3
    a.sub("r7", "r7", "r8")     # d3
    # Stage 2: even part.
    a.add("r4", "r12", "r9")    # e0 = s0+s3
    a.sub("r12", "r12", "r9")   # e1 = s0-s3
    a.add("r8", "r14", "r10")   # e2 = s1+s2
    a.sub("r14", "r14", "r10")  # e3 = s1-s2
    # Outputs (shift-add approximations of the cosine weights).
    a.add("r9", "r4", "r8")     # c0
    a.sub("r10", "r4", "r8")    # c4
    a.slli("r11", "r12", 1)
    a.add("r11", "r11", "r14")  # c2 ~ 2*e1 + e3
    a.slli("r4", "r14", 1)
    a.sub("r4", "r12", "r4")    # c6 ~ e1 - 2*e3
    a.st("r9", "r2", 0)
    a.st("r10", "r2", 4)
    a.st("r11", "r2", 2)
    a.st("r4", "r2", 6)
    # Odd part: progressive shift-add rotations of d0..d3.
    a.slli("r8", "r13", 1)
    a.add("r8", "r8", "r5")     # o1 = 2*d0 + d1
    a.srai("r9", "r6", 1)
    a.add("r9", "r9", "r7")     # o3 = d2/2 + d3
    a.add("r10", "r8", "r9")    # c1
    a.sub("r11", "r8", "r9")    # c7
    a.srai("r12", "r5", 1)
    a.sub("r12", "r13", "r12")  # o5 = d0 - d1/2
    a.slli("r14", "r7", 1)
    a.sub("r14", "r6", "r14")   # o7 = d2 - 2*d3
    a.add("r5", "r12", "r14")   # c3
    a.sub("r6", "r12", "r14")   # c5
    a.st("r10", "r2", 1)
    a.st("r5", "r2", 3)
    a.st("r6", "r2", 5)
    a.st("r11", "r2", 7)
    a.xor("r15", "r15", "r10")
    a.add("r15", "r15", "r9")
    a.addi("r1", "r1", 8)
    a.addi("r2", "r2", 8)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "row")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def gsm_autocorr(input_name: str) -> Program:
    """GSM-style LPC autocorrelation (multiply-accumulate over lags)."""
    n = 120 if input_name == "train" else 200
    seed = 3 if input_name == "train" else 29
    rng = random.Random(seed)
    a = Assembler("gsmlpc")
    signal = a.data_words([rng.randint(-1000, 1000) for _ in range(n)],
                          label="signal")
    acf = a.data_zeros(9, label="acf")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r7", 0)              # lag k
    a.li("r8", 9)
    a.label("lag")
    a.li("r1", signal)
    a.add("r2", "r1", "r7")    # &signal[k]
    a.sub("r3", "r8", "r7")
    a.li("r4", n)
    a.sub("r3", "r4", "r7")    # n - k iterations
    a.li("r5", 0)              # accumulator
    a.label("mac")
    a.ld("r9", "r1", 0)
    a.ld("r10", "r2", 0)
    a.mul("r11", "r9", "r10")
    a.add("r5", "r5", "r11")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "mac")
    a.srai("r5", "r5", 4)      # scale
    a.li("r6", acf)
    a.add("r6", "r6", "r7")
    a.st("r5", "r6", 0)
    a.addi("r7", "r7", 1)
    a.blt("r7", "r8", "lag")
    # Fold the ACF into a checksum.
    a.li("r1", acf)
    a.li("r3", 9)
    a.li("r15", 0)
    a.label("fold")
    a.ld("r9", "r1", 0)
    a.xor("r15", "r15", "r9")
    a.addi("r1", "r1", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "fold")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def g721_quant(input_name: str) -> Program:
    """G.721-style log-domain quantization: normalize, compare, pack."""
    n = 180 if input_name == "train" else 300
    seed = 41 if input_name == "train" else 53
    rng = random.Random(seed)
    a = Assembler("g721quant")
    data = a.data_words([rng.randint(1, 1 << 14) for _ in range(n)],
                        label="data")
    quant = a.data_zeros(n, label="quant")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", quant)
    a.li("r3", n)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)
    # Normalize: count the magnitude's exponent by repeated shifting.
    a.li("r5", 0)              # exponent
    a.mov("r6", "r4")
    a.label("norm")
    a.slti("r7", "r6", 2)
    a.bne("r7", "r0", "done_norm")
    a.srai("r6", "r6", 1)
    a.addi("r5", "r5", 1)
    a.jmp("norm")
    a.label("done_norm")
    # Mantissa: top bits under the exponent.
    a.srai("r8", "r4", 1)
    a.andi("r8", "r8", 63)
    a.slli("r9", "r5", 6)
    a.or_("r9", "r9", "r8")    # packed log value
    a.st("r9", "r2", 0)
    a.add("r15", "r15", "r9")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def epic_filter(input_name: str) -> Program:
    """EPIC-style separable wavelet filter (two-tap lift) over a signal."""
    n = 256 if input_name == "train" else 448
    seed = 59 if input_name == "train" else 61
    rng = random.Random(seed)
    a = Assembler("epicfilt")
    signal = a.data_words([rng.randint(0, 4095) for _ in range(n)],
                          label="signal")
    lo = a.data_zeros(n // 2, label="lo")
    hi = a.data_zeros(n // 2, label="hi")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", signal)
    a.li("r2", lo)
    a.li("r3", hi)
    a.li("r4", n // 2)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r5", "r1", 0)
    a.ld("r6", "r1", 1)
    a.add("r7", "r5", "r6")
    a.srai("r7", "r7", 1)      # average -> lowpass
    a.sub("r8", "r5", "r6")    # difference -> highpass
    a.st("r7", "r2", 0)
    a.st("r8", "r3", 0)
    a.xor("r15", "r15", "r7")
    a.add("r15", "r15", "r8")
    a.addi("r1", "r1", 2)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", 1)
    a.addi("r4", "r4", -1)
    a.bne("r4", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


register(Benchmark("adpcm", "media", adpcm_enc,
                   inputs=("train", "ref", "tiny"),
                   description="IMA ADPCM encoder (Figure 8 benchmark)"))
register(Benchmark("adpcm_dec", "media", adpcm_dec,
                   description="IMA ADPCM decoder"))
register(Benchmark("jpegdct", "media", jpeg_dct,
                   description="shift-add 8-point DCT"))
register(Benchmark("gsmlpc", "media", gsm_autocorr,
                   description="GSM LPC autocorrelation"))
register(Benchmark("g721quant", "media", g721_quant,
                   description="G.721 log-domain quantization"))
register(Benchmark("epicfilt", "media", epic_filter,
                   description="EPIC two-tap wavelet filter"))
