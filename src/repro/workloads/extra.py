"""Additional suite kernels (second wave, bringing the population toward
the paper's 78-program scale)."""

from __future__ import annotations

import random

from ..isa.assembler import Assembler
from ..isa.program import Program
from .suite import Benchmark, register


def twolf_swap(input_name: str) -> Program:
    """twolf-style annealing step: evaluate cell-swap wirelength deltas."""
    n = 150 if input_name == "train" else 260
    cells = 64
    seed = 3 if input_name == "train" else 5
    rng = random.Random(seed)
    xs = [rng.randint(0, 127) for _ in range(cells)]
    swaps = [rng.randrange(cells) for _ in range(2 * n)]

    a = Assembler("twolf")
    x_tab = a.data_words(xs, label="xs")
    swap_tab = a.data_words(swaps, label="swaps")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", swap_tab)
    a.li("r2", n)
    a.li("r3", x_tab)
    a.li("r15", 0)             # accepted swaps
    a.label("loop")
    a.ld("r4", "r1", 0)        # cell a
    a.ld("r5", "r1", 1)        # cell b
    a.add("r6", "r3", "r4")
    a.ld("r7", "r6", 0)        # x[a]
    a.add("r8", "r3", "r5")
    a.ld("r9", "r8", 0)        # x[b]
    # delta = |x[a] - x[b]| with a parity-based accept rule.
    a.sub("r10", "r7", "r9")
    a.bge("r10", "r0", "abs1")
    a.sub("r10", "r0", "r10")
    a.label("abs1")
    a.andi("r11", "r10", 3)
    a.bne("r11", "r0", "reject")
    # Accept: swap the coordinates.
    a.st("r9", "r6", 0)
    a.st("r7", "r8", 0)
    a.addi("r15", "r15", 1)
    a.label("reject")
    a.addi("r1", "r1", 2)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def vortex_db(input_name: str) -> Program:
    """vortex-style record store: keyed insert + lookup over a flat DB."""
    n = 160 if input_name == "train" else 280
    slots = 128
    seed = 7 if input_name == "train" else 11
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        ops.append(rng.randint(0, 1))          # 0=insert, 1=lookup
        ops.append(rng.randint(1, 96))         # key
        ops.append(rng.randint(1, 10000))      # payload

    a = Assembler("vortex")
    op_tab = a.data_words(ops, label="ops")
    keys = a.data_zeros(slots, label="keys")
    payloads = a.data_zeros(slots, label="payloads")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", op_tab)
    a.li("r2", n)
    a.li("r3", keys)
    a.li("r4", payloads)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r5", "r1", 0)        # op
    a.ld("r6", "r1", 1)        # key
    a.ld("r7", "r1", 2)        # payload
    a.slli("r8", "r6", 1)
    a.xor("r8", "r8", "r6")
    a.andi("r8", "r8", slots - 1)   # slot hash
    a.add("r9", "r3", "r8")
    a.ld("r10", "r9", 0)       # stored key
    a.bne("r5", "r0", "lookup")
    # Insert (overwrite semantics).
    a.st("r6", "r9", 0)
    a.add("r11", "r4", "r8")
    a.st("r7", "r11", 0)
    a.addi("r15", "r15", 1)
    a.jmp("next")
    a.label("lookup")
    a.bne("r10", "r6", "miss")
    a.add("r11", "r4", "r8")
    a.ld("r12", "r11", 0)
    a.add("r15", "r15", "r12")
    a.jmp("next")
    a.label("miss")
    a.xori("r15", "r15", 1)
    a.label("next")
    a.addi("r1", "r1", 3)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def pegwit_modmul(input_name: str) -> Program:
    """pegwit-style public-key arithmetic: square-and-multiply modexp."""
    n = 26 if input_name == "train" else 44
    seed = 13 if input_name == "train" else 17
    rng = random.Random(seed)
    bases = [rng.randint(2, 1 << 16) for _ in range(n)]
    exps = [rng.randint(3, 255) for _ in range(n)]
    modulus = 65521  # largest 16-bit prime

    a = Assembler("pegwit")
    base_tab = a.data_words(bases, label="bases")
    exp_tab = a.data_words(exps, label="exps")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", base_tab)
    a.li("r2", exp_tab)
    a.li("r3", n)
    a.li("r7", modulus)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)        # base
    a.ld("r5", "r2", 0)        # exponent
    a.li("r6", 1)              # accumulator
    a.label("sqmul")
    a.beq("r5", "r0", "done")
    a.andi("r8", "r5", 1)
    a.beq("r8", "r0", "square")
    a.mul("r6", "r6", "r4")
    a.rem("r6", "r6", "r7")
    a.label("square")
    a.mul("r4", "r4", "r4")
    a.rem("r4", "r4", "r7")
    a.srli("r5", "r5", 1)
    a.jmp("sqmul")
    a.label("done")
    a.xor("r15", "r15", "r6")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def mpeg_idct(input_name: str) -> Program:
    """MPEG-style shift-add 1-D IDCT over coefficient rows."""
    rows = 20 if input_name == "train" else 36
    seed = 19 if input_name == "train" else 23
    rng = random.Random(seed)
    coeffs = [rng.randint(-512, 512) for _ in range(rows * 8)]

    a = Assembler("mpegidct")
    c_tab = a.data_words(coeffs, label="coeffs")
    pixels = a.data_zeros(rows * 8, label="pixels")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", c_tab)
    a.li("r2", pixels)
    a.li("r3", rows)
    a.li("r15", 0)
    a.label("row")
    for i in range(4):
        a.ld(f"r{4 + i}", "r1", i)          # even coefficients
    # Even butterfly tree (shift-add cosine approximations).
    a.add("r8", "r4", "r6")
    a.sub("r9", "r4", "r6")
    a.srai("r10", "r5", 1)
    a.add("r10", "r10", "r7")
    a.srai("r11", "r7", 1)
    a.sub("r11", "r5", "r11")
    a.add("r12", "r8", "r10")  # p0
    a.add("r13", "r9", "r11")  # p1
    a.sub("r14", "r9", "r11")  # p2
    a.sub("r4", "r8", "r10")   # p3 (r4 reused)
    a.st("r12", "r2", 0)
    a.st("r13", "r2", 1)
    a.st("r14", "r2", 2)
    a.st("r4", "r2", 3)
    # Odd half: mirror with different weights.
    for i in range(4):
        a.ld(f"r{5 + i}", "r1", 4 + i)
    a.add("r9", "r5", "r8")
    a.sub("r10", "r6", "r7")
    a.srai("r11", "r9", 2)
    a.add("r11", "r11", "r10")
    a.sub("r12", "r9", "r10")
    a.st("r11", "r2", 4)
    a.st("r12", "r2", 5)
    a.srai("r13", "r12", 1)
    a.add("r13", "r13", "r11")
    a.sub("r14", "r11", "r12")
    a.st("r13", "r2", 6)
    a.st("r14", "r2", 7)
    a.xor("r15", "r15", "r13")
    a.add("r15", "r15", "r12")
    a.addi("r1", "r1", 8)
    a.addi("r2", "r2", 8)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "row")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def rtr_lookup(input_name: str) -> Program:
    """CommBench RTR: two-level radix-tree route lookup."""
    n = 220 if input_name == "train" else 380
    seed = 29 if input_name == "train" else 31
    rng = random.Random(seed)
    # Level-1 table: 256 entries; negative => next-hop, else L2 base index.
    l2_tables = 16
    level1 = []
    for _ in range(256):
        if rng.random() < 0.7:
            level1.append(rng.randint(1, 30))            # direct next hop
        else:
            level1.append(-(rng.randrange(l2_tables) + 1))  # L2 pointer
    level2 = [rng.randint(1, 30) for _ in range(l2_tables * 16)]
    addrs = [rng.getrandbits(16) for _ in range(n)]

    a = Assembler("rtr")
    l1 = a.data_words(level1, label="l1")
    l2 = a.data_words(level2, label="l2")
    pkt = a.data_words(addrs, label="pkts")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", pkt)
    a.li("r2", n)
    a.li("r3", l1)
    a.li("r4", l2)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r5", "r1", 0)        # packet address
    a.srli("r6", "r5", 8)
    a.andi("r6", "r6", 255)    # level-1 index
    a.add("r7", "r3", "r6")
    a.ld("r8", "r7", 0)
    a.bge("r8", "r0", "hop")   # direct next hop
    # Level-2 walk.
    a.sub("r9", "r0", "r8")
    a.addi("r9", "r9", -1)     # table index
    a.slli("r9", "r9", 4)
    a.andi("r10", "r5", 15)    # low bits pick the slot
    a.add("r9", "r9", "r10")
    a.add("r11", "r4", "r9")
    a.ld("r8", "r11", 0)
    a.label("hop")
    a.add("r15", "r15", "r8")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def frag_rewrite(input_name: str) -> Program:
    """CommBench FRAG: split packets into fragments, rewriting headers."""
    packets = 40 if input_name == "train" else 70
    seed = 37 if input_name == "train" else 41
    rng = random.Random(seed)
    lengths = [rng.randint(100, 1500) for _ in range(packets)]
    mtu = 576

    a = Assembler("frag")
    len_tab = a.data_words(lengths, label="lens")
    out = a.data_zeros(packets * 4, label="out")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", len_tab)
    a.li("r2", packets)
    a.li("r3", out)
    a.li("r7", mtu)
    a.li("r15", 0)             # fragments emitted
    a.label("pkt")
    a.ld("r4", "r1", 0)        # remaining length
    a.li("r5", 0)              # fragment offset
    a.label("frag")
    a.blt("r4", "r7", "last")
    # Full-size fragment: emit (offset | more-bit).
    a.ori("r6", "r5", 1 << 15)
    a.st("r6", "r3", 0)
    a.addi("r3", "r3", 1)
    a.addi("r15", "r15", 1)
    a.add("r5", "r5", "r7")
    a.sub("r4", "r4", "r7")
    a.jmp("frag")
    a.label("last")
    a.st("r5", "r3", 0)
    a.addi("r3", "r3", 1)
    a.addi("r15", "r15", 1)
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "pkt")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def blowfish_rounds(input_name: str) -> Program:
    """Blowfish-style Feistel rounds with S-box lookups."""
    blocks = 50 if input_name == "train" else 90
    rounds = 8
    seed = 43 if input_name == "train" else 47
    rng = random.Random(seed)
    sbox = [rng.getrandbits(16) for _ in range(256)]
    pbox = [rng.getrandbits(16) for _ in range(rounds)]
    data = [rng.getrandbits(32) for _ in range(blocks * 2)]

    a = Assembler("blowfish")
    s_tab = a.data_words(sbox, label="sbox")
    p_tab = a.data_words(pbox, label="pbox")
    blocks_tab = a.data_words(data, label="blocks")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", blocks_tab)
    a.li("r2", blocks)
    a.li("r3", s_tab)
    a.li("r4", p_tab)
    a.li("r15", 0)
    a.label("block")
    a.ld("r5", "r1", 0)        # left
    a.ld("r6", "r1", 1)        # right
    a.li("r7", rounds)
    a.li("r8", 0)              # round index
    a.label("round")
    a.add("r9", "r4", "r8")
    a.ld("r10", "r9", 0)       # P[i]
    a.xor("r5", "r5", "r10")
    # F(left): S-box lookup on the low byte plus a rotate-add.
    a.andi("r11", "r5", 255)
    a.add("r12", "r3", "r11")
    a.ld("r13", "r12", 0)
    a.srli("r14", "r5", 8)
    a.add("r13", "r13", "r14")
    a.xor("r6", "r6", "r13")
    # Swap halves.
    a.mov("r11", "r5")
    a.mov("r5", "r6")
    a.mov("r6", "r11")
    a.addi("r8", "r8", 1)
    a.blt("r8", "r7", "round")
    a.st("r5", "r1", 0)
    a.st("r6", "r1", 1)
    a.xor("r15", "r15", "r5")
    a.addi("r1", "r1", 2)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "block")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def patricia_trie(input_name: str) -> Program:
    """MiBench patricia: bit-test trie walk over address keys."""
    n = 180 if input_name == "train" else 300
    nodes = 127
    seed = 53 if input_name == "train" else 59
    rng = random.Random(seed)
    # A complete binary trie stored as arrays: bit index per node, child
    # pointers (node ids; leaves point at themselves).
    bit_ix = [rng.randint(0, 15) for _ in range(nodes)]
    left = [0] * nodes
    right = [0] * nodes
    for i in range(nodes):
        left[i] = 2 * i + 1 if 2 * i + 1 < nodes else i
        right[i] = 2 * i + 2 if 2 * i + 2 < nodes else i
    keys = [rng.getrandbits(16) for _ in range(n)]

    a = Assembler("patricia")
    bit_tab = a.data_words(bit_ix, label="bits")
    left_tab = a.data_words(left, label="left")
    right_tab = a.data_words(right, label="right")
    key_tab = a.data_words(keys, label="keys")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", key_tab)
    a.li("r2", n)
    a.li("r3", bit_tab)
    a.li("r4", left_tab)
    a.li("r5", right_tab)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r6", "r1", 0)        # key
    a.li("r7", 0)              # node
    a.li("r8", 7)              # depth limit
    a.label("walk")
    a.add("r9", "r3", "r7")
    a.ld("r10", "r9", 0)       # bit index
    a.srl("r11", "r6", "r10")
    a.andi("r11", "r11", 1)
    a.beq("r11", "r0", "go_left")
    a.add("r9", "r5", "r7")
    a.jmp("step")
    a.label("go_left")
    a.add("r9", "r4", "r7")
    a.label("step")
    a.ld("r7", "r9", 0)        # next node (serial chain)
    a.addi("r8", "r8", -1)
    a.bne("r8", "r0", "walk")
    a.add("r15", "r15", "r7")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


register(Benchmark("twolf", "spec", twolf_swap,
                   description="annealing swap-delta evaluation"))
register(Benchmark("vortex", "spec", vortex_db,
                   description="keyed record store insert/lookup"))
register(Benchmark("pegwit", "media", pegwit_modmul,
                   description="square-and-multiply modexp"))
register(Benchmark("mpegidct", "media", mpeg_idct,
                   description="shift-add 1-D IDCT"))
register(Benchmark("rtr", "comm", rtr_lookup,
                   description="radix-tree route lookup"))
register(Benchmark("frag", "comm", frag_rewrite,
                   description="packet fragmentation"))
register(Benchmark("blowfish", "embedded", blowfish_rounds,
                   description="Feistel rounds with S-boxes"))
register(Benchmark("patricia", "embedded", patricia_trie,
                   description="bit-trie walk"))
