"""SPECint2000-family kernels: pointer chasing, compression, symbolic code.

Each kernel captures the dominant inner-loop idiom its namesake is known
for (mcf: pointer chasing; gzip: hash-chain match; bzip2: move-to-front;
gcc: table-driven dispatch; parser: tokenizing; crafty: bit twiddling;
vpr: conditional cost accumulation; perlbmk: hashing).
"""

from __future__ import annotations

import random

from ..isa.assembler import Assembler
from ..isa.program import Program
from .suite import Benchmark, register


def mcf_chase(input_name: str) -> Program:
    """mcf-style pointer chasing over a shuffled linked arc list."""
    # The linked structure exceeds the 32KB L1 (8K nodes x 8B links), so
    # the chase misses like the real mcf does.
    nodes = 8192 if input_name == "train" else 12288
    hops = 1000 if input_name == "train" else 1800
    seed = 7 if input_name == "train" else 13
    rng = random.Random(seed)
    order = list(range(nodes))
    rng.shuffle(order)
    next_links = [0] * nodes
    for i in range(nodes):
        next_links[order[i]] = order[(i + 1) % nodes]
    costs = [rng.randint(1, 100) for _ in range(nodes)]

    a = Assembler("mcf")
    links = a.data_words(next_links, label="links")
    cost_tab = a.data_words(costs, label="costs")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", 0)            # current node
    a.li("r3", hops)
    a.li("r4", links)
    a.li("r5", cost_tab)
    a.li("r15", 0)           # total cost
    a.label("loop")
    a.add("r6", "r5", "r1")
    a.ld("r7", "r6", 0)      # cost[node]
    a.add("r15", "r15", "r7")
    a.andi("r8", "r7", 1)
    a.beq("r8", "r0", "even")
    a.slli("r9", "r7", 1)
    a.add("r15", "r15", "r9")  # odd-cost arcs weigh triple
    a.label("even")
    a.add("r6", "r4", "r1")
    a.ld("r1", "r6", 0)      # node = links[node] (serial chain)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def gzip_match(input_name: str) -> Program:
    """gzip-style longest-match search against a hash-selected window."""
    n = 400 if input_name == "train" else 700
    seed = 19 if input_name == "train" else 37
    rng = random.Random(seed)
    # Compressible text: small alphabet with repeats.
    text = []
    while len(text) < n:
        run = [rng.randint(97, 101)] * rng.randint(1, 6)
        text.extend(run)
    text = text[:n]

    a = Assembler("gzip")
    data = a.data_words(text, label="text")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data + 8)     # cursor
    a.li("r2", n - 16)       # iterations
    a.li("r15", 0)           # match-length checksum
    a.label("loop")
    a.ld("r4", "r1", 0)
    a.ld("r5", "r1", 1)
    a.slli("r6", "r4", 3)
    a.xor("r6", "r6", "r5")
    a.andi("r6", "r6", 7)    # "hash" picks a back-distance 1..8
    a.addi("r6", "r6", 1)
    a.sub("r7", "r1", "r6")  # candidate match position
    a.li("r8", 0)            # match length
    a.label("match")
    a.add("r9", "r7", "r8")
    a.ld("r10", "r9", 0)
    a.add("r11", "r1", "r8")
    a.ld("r12", "r11", 0)
    a.bne("r10", "r12", "nomatch")
    a.addi("r8", "r8", 1)
    a.slti("r13", "r8", 8)
    a.bne("r13", "r0", "match")
    a.label("nomatch")
    a.add("r15", "r15", "r8")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def bzip2_mtf(input_name: str) -> Program:
    """bzip2-style move-to-front transform over a byte stream."""
    n = 220 if input_name == "train" else 380
    alpha = 16
    seed = 43 if input_name == "train" else 67
    rng = random.Random(seed)
    stream = [rng.choice([0, 1, 1, 2, 3, 3, 3, 5, 8, 13][:10]) % alpha
              for _ in range(n)]

    a = Assembler("bzip2")
    data = a.data_words(stream, label="stream")
    mtf = a.data_words(list(range(alpha)), label="mtf")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", n)
    a.li("r3", mtf)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)      # symbol
    # Find its rank in the MTF list.
    a.li("r5", 0)            # rank
    a.label("scan")
    a.add("r6", "r3", "r5")
    a.ld("r7", "r6", 0)
    a.beq("r7", "r4", "found")
    a.addi("r5", "r5", 1)
    a.jmp("scan")
    a.label("found")
    a.add("r15", "r15", "r5")
    # Shift list entries 0..rank-1 up by one, put symbol at front.
    a.label("shift")
    a.beq("r5", "r0", "front")
    a.addi("r8", "r5", -1)
    a.add("r9", "r3", "r8")
    a.ld("r10", "r9", 0)
    a.add("r11", "r3", "r5")
    a.st("r10", "r11", 0)
    a.mov("r5", "r8")
    a.jmp("shift")
    a.label("front")
    a.st("r4", "r3", 0)
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def gcc_dispatch(input_name: str) -> Program:
    """gcc-style table-driven opcode dispatch over an instruction stream."""
    n = 350 if input_name == "train" else 600
    seed = 71 if input_name == "train" else 73
    rng = random.Random(seed)
    ops = [rng.randint(0, 3) for _ in range(n)]
    operands = [rng.randint(0, 1000) for _ in range(n)]

    a = Assembler("gcc")
    op_tab = a.data_words(ops, label="ops")
    val_tab = a.data_words(operands, label="vals")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", op_tab)
    a.li("r2", val_tab)
    a.li("r3", n)
    a.li("r15", 0)           # accumulator
    a.label("loop")
    a.ld("r4", "r1", 0)
    a.ld("r5", "r2", 0)
    a.seqi("r6", "r4", 0)
    a.bne("r6", "r0", "op_add")
    a.seqi("r6", "r4", 1)
    a.bne("r6", "r0", "op_sub")
    a.seqi("r6", "r4", 2)
    a.bne("r6", "r0", "op_shift")
    a.xor("r15", "r15", "r5")      # default: xor
    a.jmp("next")
    a.label("op_add")
    a.add("r15", "r15", "r5")
    a.jmp("next")
    a.label("op_sub")
    a.sub("r15", "r15", "r5")
    a.jmp("next")
    a.label("op_shift")
    a.andi("r7", "r5", 7)
    a.sll("r8", "r15", "r7")
    a.srl("r9", "r15", "r7")
    a.or_("r15", "r8", "r9")
    a.label("next")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def parser_tokens(input_name: str) -> Program:
    """parser-style tokenizer: classify characters, accumulate word lengths."""
    n = 420 if input_name == "train" else 720
    seed = 79 if input_name == "train" else 83
    rng = random.Random(seed)
    text = []
    while len(text) < n:
        text.extend(rng.randint(97, 122) for _ in range(rng.randint(1, 7)))
        text.append(32)
    text = text[:n]
    text[-1] = 32

    a = Assembler("parser")
    data = a.data_words(text, label="text")
    hist = a.data_zeros(16, label="hist")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", n)
    a.li("r3", 0)            # current word length
    a.li("r4", hist)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r5", "r1", 0)
    a.seqi("r6", "r5", 32)
    a.beq("r6", "r0", "inword")
    # Word boundary: bump the length histogram.
    a.beq("r3", "r0", "next")
    a.andi("r7", "r3", 15)
    a.add("r8", "r4", "r7")
    a.ld("r9", "r8", 0)
    a.addi("r9", "r9", 1)
    a.st("r9", "r8", 0)
    a.add("r15", "r15", "r3")
    a.li("r3", 0)
    a.jmp("next")
    a.label("inword")
    a.addi("r3", "r3", 1)
    a.xor("r15", "r15", "r5")
    a.label("next")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def crafty_bits(input_name: str) -> Program:
    """crafty-style bitboard manipulation: popcounts and shifts."""
    n = 130 if input_name == "train" else 230
    seed = 89 if input_name == "train" else 97
    rng = random.Random(seed)
    boards = [rng.getrandbits(32) for _ in range(n)]

    a = Assembler("crafty")
    data = a.data_words(boards, label="boards")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", n)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)
    # Kernighan popcount (data-dependent trip count).
    a.li("r5", 0)
    a.label("pop")
    a.beq("r4", "r0", "done_pop")
    a.addi("r6", "r4", -1)
    a.and_("r4", "r4", "r6")
    a.addi("r5", "r5", 1)
    a.jmp("pop")
    a.label("done_pop")
    # Fold attack-mask style shifted planes into the checksum.
    a.ld("r4", "r1", 0)
    a.slli("r7", "r4", 8)
    a.srli("r8", "r4", 8)
    a.or_("r9", "r7", "r8")
    a.xor("r15", "r15", "r9")
    a.add("r15", "r15", "r5")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def vpr_cost(input_name: str) -> Program:
    """vpr-style placement cost: bounding-box deltas with clamping."""
    n = 300 if input_name == "train" else 520
    seed = 101 if input_name == "train" else 103
    rng = random.Random(seed)
    xs = [rng.randint(0, 63) for _ in range(n)]
    ys = [rng.randint(0, 63) for _ in range(n)]

    a = Assembler("vpr")
    x_tab = a.data_words(xs, label="xs")
    y_tab = a.data_words(ys, label="ys")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", x_tab)
    a.li("r2", y_tab)
    a.li("r3", n - 1)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)
    a.ld("r5", "r1", 1)
    a.ld("r6", "r2", 0)
    a.ld("r7", "r2", 1)
    a.sub("r8", "r4", "r5")
    a.bge("r8", "r0", "absx")
    a.sub("r8", "r0", "r8")
    a.label("absx")
    a.sub("r9", "r6", "r7")
    a.bge("r9", "r0", "absy")
    a.sub("r9", "r0", "r9")
    a.label("absy")
    a.add("r10", "r8", "r9")     # manhattan distance
    a.slti("r11", "r10", 32)
    a.bne("r11", "r0", "cheap")
    a.slli("r10", "r10", 1)      # long wires cost double
    a.label("cheap")
    a.add("r15", "r15", "r10")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def perl_hash(input_name: str) -> Program:
    """perlbmk-style string hashing into a small open-addressed table."""
    n = 240 if input_name == "train" else 420
    table_size = 64
    seed = 107 if input_name == "train" else 109
    rng = random.Random(seed)
    # Keys from a small universe: the table never fills, probes stay short.
    keys = [rng.randint(1, 44) for _ in range(n)]

    a = Assembler("perlbmk")
    key_tab = a.data_words(keys, label="keys")
    table = a.data_zeros(table_size, label="table")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", key_tab)
    a.li("r2", n)
    a.li("r3", table)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)
    # h = (k * 33 + 7) mod 64 via shift-add
    a.slli("r5", "r4", 5)
    a.add("r5", "r5", "r4")
    a.addi("r5", "r5", 7)
    a.andi("r5", "r5", 63)
    # Linear probe (bounded) until an empty or matching slot.
    a.li("r8", table_size)
    a.label("probe")
    a.add("r6", "r3", "r5")
    a.ld("r7", "r6", 0)
    a.beq("r7", "r0", "insert")
    a.beq("r7", "r4", "hit")
    a.addi("r5", "r5", 1)
    a.andi("r5", "r5", 63)
    a.addi("r8", "r8", -1)
    a.bne("r8", "r0", "probe")
    a.jmp("next")            # table full: drop the key
    a.label("insert")
    a.st("r4", "r6", 0)
    a.addi("r15", "r15", 1)
    a.jmp("next")
    a.label("hit")
    a.addi("r15", "r15", 2)
    a.label("next")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


register(Benchmark("mcf", "spec", mcf_chase,
                   description="pointer chasing over shuffled arcs"))
register(Benchmark("gzip", "spec", gzip_match,
                   description="LZ77 longest-match search"))
register(Benchmark("bzip2", "spec", bzip2_mtf,
                   description="move-to-front transform"))
register(Benchmark("gcc", "spec", gcc_dispatch,
                   description="table-driven opcode dispatch"))
register(Benchmark("parser", "spec", parser_tokens,
                   description="tokenizer with word histogram"))
register(Benchmark("crafty", "spec", crafty_bits,
                   description="bitboard popcounts and shifts"))
register(Benchmark("vpr", "spec", vpr_cost,
                   description="placement bounding-box cost"))
register(Benchmark("perlbmk", "spec", perl_hash,
                   description="open-addressed hashing"))
