"""MiBench-family kernels: embedded sort/search/crypto/math loops.

MiBench uses ``small``/``large`` input names; this module follows the
repository-wide ``train``/``ref`` convention (train ≙ small).
"""

from __future__ import annotations

import random

from ..isa.assembler import Assembler
from ..isa.instruction import REG_RA
from ..isa.program import Program
from .suite import Benchmark, register


def qsort_kernel(input_name: str) -> Program:
    """In-place insertion sort (qsort's small-partition workhorse)."""
    n = 56 if input_name == "train" else 88
    seed = 3 if input_name == "train" else 7
    rng = random.Random(seed)
    values = [rng.randint(0, 10000) for _ in range(n)]

    a = Assembler("qsort")
    data = a.data_words(values, label="data")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", 1)              # i
    a.li("r3", n)
    a.label("outer")
    a.add("r4", "r1", "r2")
    a.ld("r5", "r4", 0)        # key
    a.mov("r6", "r2")          # j
    a.label("inner")
    a.beq("r6", "r0", "place")
    a.addi("r7", "r6", -1)
    a.add("r8", "r1", "r7")
    a.ld("r9", "r8", 0)
    a.bge("r5", "r9", "place")
    a.add("r10", "r1", "r6")
    a.st("r9", "r10", 0)
    a.mov("r6", "r7")
    a.jmp("inner")
    a.label("place")
    a.add("r10", "r1", "r6")
    a.st("r5", "r10", 0)
    a.addi("r2", "r2", 1)
    a.blt("r2", "r3", "outer")
    # Checksum: weighted sum to catch misordering.
    a.li("r2", 0)
    a.li("r15", 0)
    a.label("check")
    a.add("r4", "r1", "r2")
    a.ld("r5", "r4", 0)
    a.mul("r6", "r5", "r2")
    a.add("r15", "r15", "r6")
    a.addi("r2", "r2", 1)
    a.blt("r2", "r3", "check")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def dijkstra_kernel(input_name: str) -> Program:
    """Dijkstra relaxation over a dense adjacency matrix."""
    nodes = 14 if input_name == "train" else 20
    seed = 11 if input_name == "train" else 13
    rng = random.Random(seed)
    inf = 1 << 20
    adj = []
    for i in range(nodes):
        for j in range(nodes):
            if i == j:
                adj.append(0)
            elif rng.random() < 0.4:
                adj.append(rng.randint(1, 50))
            else:
                adj.append(inf)

    a = Assembler("dijkstra")
    matrix = a.data_words(adj, label="adj")
    dist = a.data_words([0] + [inf] * (nodes - 1), label="dist")
    visited = a.data_zeros(nodes, label="visited")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", nodes)          # rounds remaining
    a.label("round")
    # Find the unvisited node with the minimum distance.
    a.li("r2", 0)              # scan index
    a.li("r3", -1)             # best node
    a.li("r4", inf + 1)        # best distance
    a.label("scan")
    a.li("r5", visited)
    a.add("r5", "r5", "r2")
    a.ld("r6", "r5", 0)
    a.bne("r6", "r0", "skip")
    a.li("r5", dist)
    a.add("r5", "r5", "r2")
    a.ld("r7", "r5", 0)
    a.bge("r7", "r4", "skip")
    a.mov("r4", "r7")
    a.mov("r3", "r2")
    a.label("skip")
    a.addi("r2", "r2", 1)
    a.slti("r8", "r2", nodes)
    a.bne("r8", "r0", "scan")
    a.blt("r3", "r0", "finish")
    # Mark visited; relax its out-edges.
    a.li("r5", visited)
    a.add("r5", "r5", "r3")
    a.li("r6", 1)
    a.st("r6", "r5", 0)
    a.li("r9", nodes)
    a.mul("r10", "r3", "r9")   # row offset
    a.li("r2", 0)
    a.label("relax")
    a.li("r5", matrix)
    a.add("r5", "r5", "r10")
    a.add("r5", "r5", "r2")
    a.ld("r11", "r5", 0)       # w(best, j)
    a.add("r12", "r4", "r11")  # candidate distance
    a.li("r5", dist)
    a.add("r5", "r5", "r2")
    a.ld("r13", "r5", 0)
    a.bge("r12", "r13", "norelax")
    a.st("r12", "r5", 0)
    a.label("norelax")
    a.addi("r2", "r2", 1)
    a.slti("r8", "r2", nodes)
    a.bne("r8", "r0", "relax")
    a.addi("r1", "r1", -1)
    a.bne("r1", "r0", "round")
    a.label("finish")
    a.li("r2", 0)
    a.li("r15", 0)
    a.label("sum")
    a.li("r5", dist)
    a.add("r5", "r5", "r2")
    a.ld("r6", "r5", 0)
    a.add("r15", "r15", "r6")
    a.addi("r2", "r2", 1)
    a.slti("r8", "r2", nodes)
    a.bne("r8", "r0", "sum")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def sha_mix(input_name: str) -> Program:
    """SHA-style message mixing rounds: rotate-xor-add dataflow."""
    blocks = 14 if input_name == "train" else 24
    seed = 17 if input_name == "train" else 19
    rng = random.Random(seed)
    words = [rng.getrandbits(32) for _ in range(blocks * 16)]

    a = Assembler("sha")
    msg = a.data_words(words, label="msg")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")
    mask = 0xFFFFFFFF

    a.li("r1", msg)
    a.li("r2", blocks)
    a.li("r4", 0x67452301)     # state a
    a.li("r5", 0xEFCDAB89)     # state b
    a.li("r6", 0x98BADCFE)     # state c
    a.label("block")
    a.li("r3", 16)
    a.label("round")
    a.ld("r7", "r1", 0)
    # rotate-left a by 5 (32-bit)
    a.slli("r8", "r4", 5)
    a.srli("r9", "r4", 27)
    a.or_("r8", "r8", "r9")
    a.li("r12", mask)
    a.and_("r8", "r8", "r12")
    # f = b xor c
    a.xor("r10", "r5", "r6")
    a.add("r11", "r8", "r10")
    a.add("r11", "r11", "r7")
    a.and_("r11", "r11", "r12")
    # shift state: c <- b rot 30, b <- a, a <- mixed
    a.slli("r13", "r5", 30)
    a.srli("r14", "r5", 2)
    a.or_("r6", "r13", "r14")
    a.and_("r6", "r6", "r12")
    a.mov("r5", "r4")
    a.mov("r4", "r11")
    a.addi("r1", "r1", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "round")
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "block")
    a.xor("r15", "r4", "r5")
    a.xor("r15", "r15", "r6")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def stringsearch(input_name: str) -> Program:
    """Brute-force substring search with first-character skip loop."""
    n = 380 if input_name == "train" else 640
    seed = 23 if input_name == "train" else 29
    rng = random.Random(seed)
    haystack = [rng.randint(97, 103) for _ in range(n)]
    needle = [98, 99, 98, 100]
    # Plant a few real matches.
    for pos in range(10, n - 8, n // 7):
        haystack[pos:pos + 4] = needle

    a = Assembler("stringsearch")
    hay = a.data_words(haystack, label="hay")
    pat = a.data_words(needle, label="pat")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")
    m = len(needle)

    a.li("r1", hay)
    a.li("r2", n - m)
    a.li("r3", pat)
    a.ld("r4", "r3", 0)        # first pattern char
    a.li("r15", 0)             # match count
    a.label("loop")
    a.ld("r5", "r1", 0)
    a.bne("r5", "r4", "next")
    # Verify the remaining characters.
    a.li("r6", 1)
    a.label("verify")
    a.add("r7", "r1", "r6")
    a.ld("r8", "r7", 0)
    a.add("r9", "r3", "r6")
    a.ld("r10", "r9", 0)
    a.bne("r8", "r10", "next")
    a.addi("r6", "r6", 1)
    a.slti("r11", "r6", m)
    a.bne("r11", "r0", "verify")
    a.addi("r15", "r15", 1)
    a.label("next")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def bitcount(input_name: str) -> Program:
    """MiBench bitcount: several counting strategies over a value stream."""
    n = 180 if input_name == "train" else 320
    seed = 31 if input_name == "train" else 37
    rng = random.Random(seed)
    values = [rng.getrandbits(32) for _ in range(n)]
    # Nibble-popcount lookup table.
    nib = [bin(i).count("1") for i in range(16)]

    a = Assembler("bitcount")
    data = a.data_words(values, label="data")
    table = a.data_words(nib, label="nib")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", n)
    a.li("r3", table)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)
    # Strategy 1: table lookup on the low byte's two nibbles.
    a.andi("r5", "r4", 15)
    a.add("r6", "r3", "r5")
    a.ld("r7", "r6", 0)
    a.srli("r5", "r4", 4)
    a.andi("r5", "r5", 15)
    a.add("r6", "r3", "r5")
    a.ld("r8", "r6", 0)
    a.add("r15", "r15", "r7")
    a.add("r15", "r15", "r8")
    # Strategy 2: shift-and-mask reduction of the high half.
    a.srli("r9", "r4", 16)
    a.srli("r10", "r9", 1)
    a.andi("r10", "r10", 0x5555)
    a.sub("r9", "r9", "r10")
    a.andi("r11", "r9", 0x3333)
    a.srli("r12", "r9", 2)
    a.andi("r12", "r12", 0x3333)
    a.add("r9", "r11", "r12")
    a.srli("r12", "r9", 4)
    a.add("r9", "r9", "r12")
    a.andi("r9", "r9", 0x0F0F)
    a.srli("r12", "r9", 8)
    a.add("r9", "r9", "r12")
    a.andi("r9", "r9", 63)
    a.add("r15", "r15", "r9")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def fft_fixed(input_name: str) -> Program:
    """Fixed-point radix-2 butterfly pass over interleaved complex data."""
    n = 128 if input_name == "train" else 256
    seed = 41 if input_name == "train" else 43
    rng = random.Random(seed)
    re = [rng.randint(-2048, 2048) for _ in range(n)]
    im = [rng.randint(-2048, 2048) for _ in range(n)]

    a = Assembler("fft")
    re_tab = a.data_words(re, label="re")
    im_tab = a.data_words(im, label="im")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", re_tab)
    a.li("r2", im_tab)
    a.li("r3", n // 2)
    a.li("r15", 0)
    a.label("bfly")
    a.ld("r4", "r1", 0)        # re[even]
    a.ld("r5", "r1", 1)        # re[odd]
    a.ld("r6", "r2", 0)        # im[even]
    a.ld("r7", "r2", 1)        # im[odd]
    # Twiddle ~ (3/4, 1/4) in shift arithmetic.
    a.srai("r8", "r5", 2)
    a.sub("r9", "r5", "r8")    # 3/4 re_odd
    a.srai("r10", "r7", 2)     # 1/4 im_odd
    a.sub("r11", "r9", "r10")  # t_re
    a.srai("r8", "r7", 2)
    a.sub("r12", "r7", "r8")   # 3/4 im_odd
    a.srai("r13", "r5", 2)
    a.add("r12", "r12", "r13")  # t_im
    a.add("r14", "r4", "r11")
    a.st("r14", "r1", 0)
    a.sub("r14", "r4", "r11")
    a.st("r14", "r1", 1)
    a.add("r14", "r6", "r12")
    a.st("r14", "r2", 0)
    a.sub("r14", "r6", "r12")
    a.st("r14", "r2", 1)
    a.xor("r15", "r15", "r14")
    a.addi("r1", "r1", 2)
    a.addi("r2", "r2", 2)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "bfly")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def basicmath(input_name: str) -> Program:
    """MiBench basicmath: Euclid GCD over number pairs (call/return)."""
    n = 90 if input_name == "train" else 160
    seed = 47 if input_name == "train" else 53
    rng = random.Random(seed)
    pairs = []
    for _ in range(n):
        pairs.append(rng.randint(1, 5000))
        pairs.append(rng.randint(1, 5000))

    a = Assembler("basicmath")
    data = a.data_words(pairs, label="pairs")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", n)
    a.li("r15", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)
    a.ld("r5", "r1", 1)
    a.jal("gcd")
    a.add("r15", "r15", "r4")
    a.addi("r1", "r1", 2)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    # gcd(r4, r5) -> r4, clobbers r6
    a.label("gcd")
    a.beq("r5", "r0", "gcd_done")
    a.rem("r6", "r4", "r5")
    a.mov("r4", "r5")
    a.mov("r5", "r6")
    a.jmp("gcd")
    a.label("gcd_done")
    a.jr(REG_RA)
    return a.build()


def susan_threshold(input_name: str) -> Program:
    """susan-style image thresholding with neighbourhood comparison."""
    width = 24
    height = 16 if input_name == "train" else 28
    seed = 59 if input_name == "train" else 61
    rng = random.Random(seed)
    image = [rng.randint(0, 255) for _ in range(width * height)]

    a = Assembler("susan")
    img = a.data_words(image, label="img")
    out = a.data_zeros(width * height, label="out")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")
    threshold = 27

    a.li("r1", 1)              # row
    a.li("r2", height - 1)
    a.li("r15", 0)
    a.label("row")
    a.li("r3", 1)              # col
    a.label("col")
    a.li("r4", width)
    a.mul("r5", "r1", "r4")
    a.add("r5", "r5", "r3")    # index
    a.li("r6", img)
    a.add("r6", "r6", "r5")
    a.ld("r7", "r6", 0)        # centre
    a.li("r8", 0)              # USAN count
    # Compare against 4 neighbours.
    for offset in (-1, 1, -width, width):
        skip = f"n{offset}"
        a.ld("r9", "r6", offset)
        a.sub("r10", "r9", "r7")
        a.bge("r10", "r0", f"abs{offset}")
        a.sub("r10", "r0", "r10")
        a.label(f"abs{offset}")
        a.slti("r11", "r10", threshold)
        a.beq("r11", "r0", skip)
        a.addi("r8", "r8", 1)
        a.label(skip)
    a.li("r12", out)
    a.add("r12", "r12", "r5")
    a.st("r8", "r12", 0)
    a.add("r15", "r15", "r8")
    a.addi("r3", "r3", 1)
    a.slti("r13", "r3", width - 1)
    a.bne("r13", "r0", "col")
    a.addi("r1", "r1", 1)
    a.blt("r1", "r2", "row")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


register(Benchmark("qsort", "embedded", qsort_kernel,
                   description="insertion sort + weighted checksum"))
register(Benchmark("dijkstra", "embedded", dijkstra_kernel,
                   description="dense-graph shortest paths"))
register(Benchmark("sha", "embedded", sha_mix,
                   description="rotate-xor-add mixing rounds"))
register(Benchmark("stringsearch", "embedded", stringsearch,
                   description="brute-force substring search"))
register(Benchmark("bitcount", "embedded", bitcount,
                   description="multi-strategy population counts"))
register(Benchmark("fft", "embedded", fft_fixed,
                   description="fixed-point radix-2 butterflies"))
register(Benchmark("basicmath", "embedded", basicmath,
                   description="Euclid GCD with call/return"))
register(Benchmark("susan", "embedded", susan_threshold,
                   description="image neighbourhood thresholding"))
