"""Seeded synthetic workload generator.

The paper's S-curves aggregate 78 programs; the hand-written kernels cover
the four suite families' idioms, and this generator pads the population
with structurally diverse programs: random (but reproducible) loop nests
whose bodies mix ALU chains of varying dependence depth, array loads and
stores, and data-dependent forward branches. The mix parameters are drawn
per program, so the population spans a wide range of ILP, branch
predictability, and memory behaviour — which is what the distributional
claims need.

Programs are guaranteed to terminate: all loops are counted, and forward
branches only skip within the loop body.
"""

from __future__ import annotations

import random
from typing import List

from ..isa.assembler import Assembler
from ..isa.program import Program
from .suite import Benchmark, register

N_SYNTHETIC = 32

# Register allocation contract for generated code:
#   r1  loop index    r2 trip count     r3 scratch for branches
#   r4-r7 array base registers
#   r8-r14 rotating temporaries
#   r15 checksum accumulator
_TEMPS = [8, 9, 10, 11, 12, 13, 14]


class _BodyGenerator:
    """Emits one loop body with a chosen instruction mix."""

    def __init__(self, a: Assembler, rng: random.Random,
                 bases: List[int], sizes: List[int], uid: str):
        self.a = a
        self.rng = rng
        self.bases = bases      # base-register numbers
        self.sizes = sizes      # matching array sizes (powers of two)
        self.uid = uid
        self._label_counter = 0
        self._ready = list(_TEMPS)  # registers holding defined values

    def _fresh_label(self) -> str:
        self._label_counter += 1
        return f"{self.uid}_l{self._label_counter}"

    def _pick_temp(self) -> str:
        return f"r{self.rng.choice(self._ready)}"

    def _dest_temp(self) -> str:
        # Rotate destinations so chains of varying depth appear.
        reg = self._ready.pop(0)
        self._ready.append(reg)
        return f"r{reg}"

    def _addr_reg(self, base_index: int) -> str:
        """Compute an in-bounds address into array ``base_index`` in r3."""
        a = self.a
        mask = self.sizes[base_index] - 1
        a.andi("r3", self._pick_temp(), mask)
        a.add("r3", "r3", f"r{self.bases[base_index]}")
        return "r3"

    def emit_alu(self) -> None:
        a = self.a
        rng = self.rng
        op = rng.choice(["add", "sub", "xor", "and_", "or_",
                         "slli", "srli", "addi", "slt"])
        dest = self._dest_temp()
        if op in ("slli", "srli"):
            getattr(a, op)(dest, self._pick_temp(), rng.randint(1, 5))
        elif op == "addi":
            a.addi(dest, self._pick_temp(), rng.randint(-64, 64))
        else:
            getattr(a, op)(dest, self._pick_temp(), self._pick_temp())

    def emit_load(self) -> None:
        base_index = self.rng.randrange(len(self.bases))
        addr = self._addr_reg(base_index)
        self.a.ld(self._dest_temp(), addr, 0)

    def emit_store(self) -> None:
        base_index = self.rng.randrange(len(self.bases))
        addr = self._addr_reg(base_index)
        self.a.st(self._pick_temp(), addr, 0)

    def emit_branchy(self) -> None:
        """A data-dependent forward branch skipping 1–3 instructions."""
        a = self.a
        skip = self._fresh_label()
        a.andi("r3", self._pick_temp(), self.rng.choice([1, 1, 3, 7]))
        if self.rng.random() < 0.5:
            a.beq("r3", "r0", skip)
        else:
            a.bne("r3", "r0", skip)
        for _ in range(self.rng.randint(1, 3)):
            self.emit_alu()
        a.label(skip)

    def emit_serial_chain(self) -> None:
        """A dependence chain: late-arriving values that stress slack."""
        a = self.a
        dest = self._dest_temp()
        a.add(dest, self._pick_temp(), self._pick_temp())
        for _ in range(self.rng.randint(2, 4)):
            a.addi(dest, dest, self.rng.randint(1, 9))

    def emit_body(self, n_ops: int, profile: str) -> None:
        weights = {
            "compute": [(self.emit_alu, 6), (self.emit_load, 2),
                        (self.emit_store, 1), (self.emit_branchy, 1),
                        (self.emit_serial_chain, 1)],
            "memory": [(self.emit_alu, 3), (self.emit_load, 4),
                       (self.emit_store, 2), (self.emit_branchy, 1),
                       (self.emit_serial_chain, 1)],
            "branchy": [(self.emit_alu, 4), (self.emit_load, 2),
                        (self.emit_store, 1), (self.emit_branchy, 4),
                        (self.emit_serial_chain, 1)],
            "serial": [(self.emit_alu, 3), (self.emit_load, 2),
                       (self.emit_store, 1), (self.emit_branchy, 1),
                       (self.emit_serial_chain, 4)],
        }[profile]
        emitters = [fn for fn, weight in weights for _ in range(weight)]
        for _ in range(n_ops):
            self.rng.choice(emitters)()
        # Fold a live temp into the checksum each iteration.
        self.a.xor("r15", "r15", self._pick_temp())


def synth_builder(seed: int):
    """A builder function for the synthetic benchmark with ``seed``."""

    def build(input_name: str) -> Program:
        # Two streams: *structure* must be identical across inputs (the
        # cross-input robustness study profiles on one input and runs on
        # another, so static code must line up PC-for-PC); *data* varies.
        rng = random.Random(seed * 7919)
        data_rng = random.Random(seed * 7919 + (0 if input_name == "train"
                                                else 104729))
        a = Assembler(f"synth{seed:02d}")
        # Arrays (power-of-two sizes so indices mask cheaply).
        n_arrays = rng.randint(2, 4)
        bases: List[int] = []
        sizes: List[int] = []
        for i in range(n_arrays):
            size = rng.choice([64, 128, 256, 512])
            addr = a.data_words(
                [data_rng.getrandbits(16) for _ in range(size)],
                label=f"arr{i}")
            bases.append(4 + i)
            sizes.append(size)
            a.li(f"r{4 + i}", addr)
        a.data_zeros(1, label="result")
        result = a.data_addr("result")

        for reg in _TEMPS:
            a.li(f"r{reg}", data_rng.getrandbits(12))
        a.li("r15", 0)

        profile = rng.choice(["compute", "memory", "branchy", "serial"])
        n_loops = rng.randint(1, 3)
        scale = 1.0 if input_name == "train" else 1.7
        for loop_index in range(n_loops):
            trips = int(rng.randint(40, 160) * scale)
            uid = f"L{loop_index}"
            a.li("r1", 0)
            a.li("r2", trips)
            a.label(f"{uid}_top")
            body = _BodyGenerator(a, rng, bases, sizes, uid)
            body.emit_body(rng.randint(5, 14), profile)
            a.addi("r1", "r1", 1)
            a.blt("r1", "r2", f"{uid}_top")
        a.st("r15", "r0", result)
        a.halt()
        return a.build()

    return build


for _seed in range(1, N_SYNTHETIC + 1):
    register(Benchmark(f"synth{_seed:02d}", "synth", synth_builder(_seed),
                       description="generated loop nest"))
