"""Seeded synthetic workload generator.

The paper's S-curves aggregate 78 programs; the hand-written kernels cover
the four suite families' idioms, and this generator pads the population
with structurally diverse programs: random (but reproducible) loop nests
whose bodies mix ALU chains of varying dependence depth, array loads and
stores, and data-dependent forward branches. The mix parameters are drawn
per program, so the population spans a wide range of ILP, branch
predictability, and memory behaviour — which is what the distributional
claims need.

Programs are guaranteed to terminate: all loops are counted, and forward
branches only skip within the loop body.

:func:`synth_program` is the parameterized entry point: every mix
parameter can be pinned explicitly (the correctness fuzzer does this to
make failing programs exactly reproducible from ``(seed, params)``), and
any parameter left ``None`` is drawn from the seeded stream at the same
point the original generator drew it — so the registered ``synthNN``
benchmarks are byte-identical to their pre-parameterization form.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..isa.assembler import Assembler
from ..isa.program import Program
from .suite import Benchmark, register

N_SYNTHETIC = 32

PROFILES = ("compute", "memory", "branchy", "serial")

# Register allocation contract for generated code:
#   r1  loop index    r2 trip count     r3 scratch for branches
#   r4-r7 array base registers
#   r8-r14 rotating temporaries
#   r15 checksum accumulator
_TEMPS = [8, 9, 10, 11, 12, 13, 14]


class _BodyGenerator:
    """Emits one loop body with a chosen instruction mix."""

    def __init__(self, a: Assembler, rng: random.Random,
                 bases: List[int], sizes: List[int], uid: str):
        self.a = a
        self.rng = rng
        self.bases = bases      # base-register numbers
        self.sizes = sizes      # matching array sizes (powers of two)
        self.uid = uid
        self._label_counter = 0
        self._ready = list(_TEMPS)  # registers holding defined values

    def _fresh_label(self) -> str:
        self._label_counter += 1
        return f"{self.uid}_l{self._label_counter}"

    def _pick_temp(self) -> str:
        return f"r{self.rng.choice(self._ready)}"

    def _dest_temp(self) -> str:
        # Rotate destinations so chains of varying depth appear.
        reg = self._ready.pop(0)
        self._ready.append(reg)
        return f"r{reg}"

    def _addr_reg(self, base_index: int) -> str:
        """Compute an in-bounds address into array ``base_index`` in r3."""
        a = self.a
        mask = self.sizes[base_index] - 1
        a.andi("r3", self._pick_temp(), mask)
        a.add("r3", "r3", f"r{self.bases[base_index]}")
        return "r3"

    def emit_alu(self) -> None:
        a = self.a
        rng = self.rng
        op = rng.choice(["add", "sub", "xor", "and_", "or_",
                         "slli", "srli", "addi", "slt"])
        dest = self._dest_temp()
        if op in ("slli", "srli"):
            getattr(a, op)(dest, self._pick_temp(), rng.randint(1, 5))
        elif op == "addi":
            a.addi(dest, self._pick_temp(), rng.randint(-64, 64))
        else:
            getattr(a, op)(dest, self._pick_temp(), self._pick_temp())

    def emit_load(self) -> None:
        base_index = self.rng.randrange(len(self.bases))
        addr = self._addr_reg(base_index)
        self.a.ld(self._dest_temp(), addr, 0)

    def emit_store(self) -> None:
        base_index = self.rng.randrange(len(self.bases))
        addr = self._addr_reg(base_index)
        self.a.st(self._pick_temp(), addr, 0)

    def emit_branchy(self) -> None:
        """A data-dependent forward branch skipping 1–3 instructions."""
        a = self.a
        skip = self._fresh_label()
        a.andi("r3", self._pick_temp(), self.rng.choice([1, 1, 3, 7]))
        if self.rng.random() < 0.5:
            a.beq("r3", "r0", skip)
        else:
            a.bne("r3", "r0", skip)
        for _ in range(self.rng.randint(1, 3)):
            self.emit_alu()
        a.label(skip)

    def emit_serial_chain(self) -> None:
        """A dependence chain: late-arriving values that stress slack."""
        a = self.a
        dest = self._dest_temp()
        a.add(dest, self._pick_temp(), self._pick_temp())
        for _ in range(self.rng.randint(2, 4)):
            a.addi(dest, dest, self.rng.randint(1, 9))

    def emit_body(self, n_ops: int, profile: str) -> None:
        weights = {
            "compute": [(self.emit_alu, 6), (self.emit_load, 2),
                        (self.emit_store, 1), (self.emit_branchy, 1),
                        (self.emit_serial_chain, 1)],
            "memory": [(self.emit_alu, 3), (self.emit_load, 4),
                       (self.emit_store, 2), (self.emit_branchy, 1),
                       (self.emit_serial_chain, 1)],
            "branchy": [(self.emit_alu, 4), (self.emit_load, 2),
                        (self.emit_store, 1), (self.emit_branchy, 4),
                        (self.emit_serial_chain, 1)],
            "serial": [(self.emit_alu, 3), (self.emit_load, 2),
                       (self.emit_store, 1), (self.emit_branchy, 1),
                       (self.emit_serial_chain, 4)],
        }[profile]
        emitters = [fn for fn, weight in weights for _ in range(weight)]
        for _ in range(n_ops):
            self.rng.choice(emitters)()
        # Fold a live temp into the checksum each iteration.
        self.a.xor("r15", "r15", self._pick_temp())


def synth_program(seed: int, input_name: str = "train", *,
                  name: Optional[str] = None,
                  profile: Optional[str] = None,
                  n_loops: Optional[int] = None,
                  trips: Optional[int] = None,
                  ops: Optional[int] = None,
                  array_sizes: Optional[Sequence[int]] = None,
                  ref_scale: float = 1.7) -> Program:
    """Build the synthetic program for ``seed``.

    Every keyword left at ``None`` is drawn from the seeded stream at the
    same point the unparameterized generator drew it, so defaults
    reproduce the registered ``synthNN`` programs exactly. Pinning a
    keyword skips only that parameter's draws; the remaining stream is
    still a pure function of ``seed``, so ``(seed, params)`` is an exact
    reproducer — this is what ``repro fuzz`` records for its shrunk
    failures, and what ``repro gen --seed`` exposes on the command line.

    ``trips``/``ops``, when pinned, apply to every loop. ``array_sizes``
    entries must be powers of two (indices are masked, not bounds-checked).
    """
    # Two streams: *structure* must be identical across inputs (the
    # cross-input robustness study profiles on one input and runs on
    # another, so static code must line up PC-for-PC); *data* varies.
    rng = random.Random(seed * 7919)
    data_rng = random.Random(seed * 7919 + (0 if input_name == "train"
                                            else 104729))
    a = Assembler(name if name is not None else f"synth{seed:02d}")
    # Arrays (power-of-two sizes so indices mask cheaply).
    if array_sizes is None:
        n_arrays = rng.randint(2, 4)
        sizes_in: List[Optional[int]] = [None] * n_arrays
    else:
        sizes_in = list(array_sizes)
    bases: List[int] = []
    sizes: List[int] = []
    for i, pinned in enumerate(sizes_in):
        size = pinned if pinned is not None \
            else rng.choice([64, 128, 256, 512])
        if size & (size - 1) or size <= 0:
            raise ValueError(f"array size {size} is not a power of two")
        addr = a.data_words(
            [data_rng.getrandbits(16) for _ in range(size)],
            label=f"arr{i}")
        bases.append(4 + i)
        sizes.append(size)
        a.li(f"r{4 + i}", addr)
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    for reg in _TEMPS:
        a.li(f"r{reg}", data_rng.getrandbits(12))
    a.li("r15", 0)

    if profile is None:
        profile = rng.choice(list(PROFILES))
    elif profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r} "
                         f"(choose from {', '.join(PROFILES)})")
    if n_loops is None:
        n_loops = rng.randint(1, 3)
    scale = 1.0 if input_name == "train" else ref_scale
    for loop_index in range(n_loops):
        loop_trips = trips if trips is not None else rng.randint(40, 160)
        loop_trips = int(loop_trips * scale)
        uid = f"L{loop_index}"
        a.li("r1", 0)
        a.li("r2", loop_trips)
        a.label(f"{uid}_top")
        body = _BodyGenerator(a, rng, bases, sizes, uid)
        loop_ops = ops if ops is not None else rng.randint(5, 14)
        body.emit_body(loop_ops, profile)
        a.addi("r1", "r1", 1)
        a.blt("r1", "r2", f"{uid}_top")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def synth_builder(seed: int):
    """A builder function for the synthetic benchmark with ``seed``."""

    def build(input_name: str) -> Program:
        return synth_program(seed, input_name)

    return build


for _seed in range(1, N_SYNTHETIC + 1):
    register(Benchmark(f"synth{_seed:02d}", "synth", synth_builder(_seed),
                       description="generated loop nest"))
