"""Benchmark registry.

The paper evaluates 78 programs from SPECint2000, MediaBench, CommBench,
and MiBench. Those suites (and an Alpha cross-compiler) are not available
here, so the reproduction substitutes a population with the same structure:

* hand-written kernels in the same four families, capturing the loop and
  dataflow idioms the original suites are known for (pointer chasing,
  compression, DSP/codec arithmetic, checksums/protocol handling,
  sort/search/crypto); and
* seeded synthetic programs (:mod:`repro.workloads.generator`) that pad the
  population to paper scale with diverse ILP/branch/memory profiles.

Every benchmark runs to completion and carries at least two input sets
(``train``/``ref``) for the cross-input robustness study (Figure 9).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..isa.program import Program

SUITES = ("spec", "media", "comm", "embedded", "synth")


class Benchmark:
    """A named, parameterized workload."""

    def __init__(self, name: str, suite: str,
                 builder: Callable[[str], Program],
                 inputs: Sequence[str] = ("train", "ref"),
                 description: str = ""):
        if suite not in SUITES:
            raise ValueError(f"unknown suite {suite!r}")
        self.name = name
        self.suite = suite
        self._builder = builder
        self.inputs = tuple(inputs)
        self.description = description
        self._cache: Dict[str, Program] = {}

    def program(self, input_name: str = "train") -> Program:
        """Build (and memoize) the program image for ``input_name``."""
        if input_name not in self.inputs:
            raise ValueError(
                f"{self.name} has inputs {self.inputs}, not {input_name!r}")
        if input_name not in self._cache:
            self._cache[input_name] = self._builder(input_name)
        return self._cache[input_name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Benchmark {self.name} ({self.suite})>"


_REGISTRY: Dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    """Add a benchmark to the global registry (duplicate names rejected)."""
    if benchmark.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {benchmark.name!r}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def benchmark(name: str) -> Benchmark:
    """Look up one benchmark by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}") from None


def all_benchmarks(suites: Optional[Sequence[str]] = None,
                   include_synthetic: bool = True) -> List[Benchmark]:
    """All registered benchmarks, optionally restricted by suite."""
    _ensure_loaded()
    names = sorted(_REGISTRY)
    result = []
    for name in names:
        bench = _REGISTRY[name]
        if suites is not None and bench.suite not in suites:
            continue
        if not include_synthetic and bench.suite == "synth":
            continue
        result.append(bench)
    return result


_LOADED = False


def _ensure_loaded() -> None:
    """Import the kernel modules, which register themselves."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from . import comm, embedded, extra, extra2, generator, media, spec  # noqa: F401
