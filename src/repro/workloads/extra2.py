"""Third kernel wave — brings the population to the paper's 78 programs."""

from __future__ import annotations

import random

from ..isa.assembler import Assembler
from ..isa.program import Program
from .suite import Benchmark, register


def eon_march(input_name: str) -> Program:
    """eon-style integer ray marching over a voxel grid."""
    rays = 60 if input_name == "train" else 110
    grid = 32
    seed = 3 if input_name == "train" else 5
    rng = random.Random(seed)
    density = [1 if rng.random() < 0.12 else 0
               for _ in range(grid * grid)]
    dirs = [(rng.choice([1, 2]), rng.choice([1, 2])) for _ in range(rays)]

    a = Assembler("eon")
    grid_tab = a.data_words(density, label="grid")
    dir_tab = a.data_words([c for pair in dirs for c in pair],
                           label="dirs")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", dir_tab)
    a.li("r2", rays)
    a.li("r3", grid_tab)
    a.li("r15", 0)             # hit accumulator
    a.label("ray")
    a.ld("r4", "r1", 0)        # dx
    a.ld("r5", "r1", 1)        # dy
    a.li("r6", 0)              # x
    a.li("r7", 0)              # y
    a.li("r8", 20)             # step budget
    a.label("march")
    a.add("r6", "r6", "r4")
    a.add("r7", "r7", "r5")
    a.andi("r6", "r6", grid - 1)
    a.andi("r7", "r7", grid - 1)
    a.slli("r9", "r7", 5)      # y * 32
    a.add("r9", "r9", "r6")
    a.add("r10", "r3", "r9")
    a.ld("r11", "r10", 0)
    a.bne("r11", "r0", "hit")
    a.addi("r8", "r8", -1)
    a.bne("r8", "r0", "march")
    a.jmp("next")
    a.label("hit")
    a.add("r15", "r15", "r8")  # remaining budget scores the hit distance
    a.label("next")
    a.addi("r1", "r1", 2)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "ray")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def gap_permute(input_name: str) -> Program:
    """gap-style group arithmetic: iterated permutation composition."""
    size = 32
    rounds = 12 if input_name == "train" else 22
    seed = 7 if input_name == "train" else 11
    rng = random.Random(seed)
    perm_a = list(range(size))
    perm_b = list(range(size))
    rng.shuffle(perm_a)
    rng.shuffle(perm_b)

    a = Assembler("gap")
    pa = a.data_words(perm_a, label="pa")
    pb = a.data_words(perm_b, label="pb")
    work = a.data_words(list(range(size)), label="work")
    scratch = a.data_zeros(size, label="scratch")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", rounds)
    a.label("round")
    # scratch[i] = pb[pa[work[i]]]
    a.li("r2", 0)
    a.label("compose")
    a.li("r3", work)
    a.add("r3", "r3", "r2")
    a.ld("r4", "r3", 0)
    a.li("r5", pa)
    a.add("r5", "r5", "r4")
    a.ld("r6", "r5", 0)
    a.li("r7", pb)
    a.add("r7", "r7", "r6")
    a.ld("r8", "r7", 0)
    a.li("r9", scratch)
    a.add("r9", "r9", "r2")
    a.st("r8", "r9", 0)
    a.addi("r2", "r2", 1)
    a.slti("r10", "r2", size)
    a.bne("r10", "r0", "compose")
    # Copy scratch back to work.
    a.li("r2", 0)
    a.label("copy")
    a.li("r9", scratch)
    a.add("r9", "r9", "r2")
    a.ld("r8", "r9", 0)
    a.li("r3", work)
    a.add("r3", "r3", "r2")
    a.st("r8", "r3", 0)
    a.addi("r2", "r2", 1)
    a.slti("r10", "r2", size)
    a.bne("r10", "r0", "copy")
    a.addi("r1", "r1", -1)
    a.bne("r1", "r0", "round")
    a.li("r9", scratch)
    a.ld("r15", "r9", 0)
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def mesa_span(input_name: str) -> Program:
    """mesa-style span rasterizer: fixed-point interpolation with z-test."""
    spans = 60 if input_name == "train" else 100
    width = 24
    seed = 13 if input_name == "train" else 17
    rng = random.Random(seed)
    starts = [rng.randint(0, 1 << 12) for _ in range(spans * 2)]

    a = Assembler("mesa")
    param_tab = a.data_words(starts, label="params")
    zbuf = a.data_words([1 << 14] * width, label="zbuf")
    cbuf = a.data_zeros(width, label="cbuf")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", param_tab)
    a.li("r2", spans)
    a.li("r15", 0)
    a.label("span")
    a.ld("r4", "r1", 0)        # z start (Q8)
    a.ld("r5", "r1", 1)        # z slope seed
    a.andi("r5", "r5", 255)
    a.addi("r5", "r5", -128)   # slope in [-128, 127]
    a.li("r6", 0)              # x
    a.label("pixel")
    a.li("r7", zbuf)
    a.add("r7", "r7", "r6")
    a.ld("r8", "r7", 0)        # depth buffer
    a.srai("r9", "r4", 2)      # interpolated z
    a.bge("r9", "r8", "occluded")
    a.st("r9", "r7", 0)        # z write
    a.li("r10", cbuf)
    a.add("r10", "r10", "r6")
    a.st("r6", "r10", 0)       # colour write (x as shade)
    a.addi("r15", "r15", 1)
    a.label("occluded")
    a.add("r4", "r4", "r5")
    a.addi("r6", "r6", 1)
    a.slti("r11", "r6", width)
    a.bne("r11", "r0", "pixel")
    a.addi("r1", "r1", 2)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "span")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def g721_predictor(input_name: str) -> Program:
    """G.721 adaptive-predictor update: sign-sign LMS over 6 taps."""
    n = 120 if input_name == "train" else 210
    taps = 6
    seed = 19 if input_name == "train" else 23
    rng = random.Random(seed)
    errors = [rng.randint(-2000, 2000) for _ in range(n)]

    a = Assembler("g721pred")
    err_tab = a.data_words(errors, label="errs")
    weights = a.data_zeros(taps, label="w")
    history = a.data_zeros(taps, label="h")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", err_tab)
    a.li("r2", n)
    a.li("r3", weights)
    a.li("r4", history)
    a.li("r15", 0)
    a.label("sample")
    a.ld("r5", "r1", 0)        # error
    # Update each tap: w += sign(err) * sign(h) (sign-sign LMS).
    a.li("r6", 0)
    a.label("tap")
    a.add("r7", "r4", "r6")
    a.ld("r8", "r7", 0)        # history value
    a.xor("r9", "r5", "r8")    # sign agreement in the top bit
    a.slt("r10", "r9", "r0")
    a.add("r11", "r3", "r6")
    a.ld("r12", "r11", 0)
    a.beq("r10", "r0", "agree")
    a.addi("r12", "r12", -1)
    a.jmp("wrote")
    a.label("agree")
    a.addi("r12", "r12", 1)
    a.label("wrote")
    a.st("r12", "r11", 0)
    a.addi("r6", "r6", 1)
    a.slti("r13", "r6", taps)
    a.bne("r13", "r0", "tap")
    # Shift history (tap 0 gets the new error).
    a.li("r6", taps - 1)
    a.label("shift")
    a.beq("r6", "r0", "store_new")
    a.addi("r7", "r6", -1)
    a.add("r8", "r4", "r7")
    a.ld("r9", "r8", 0)
    a.add("r10", "r4", "r6")
    a.st("r9", "r10", 0)
    a.mov("r6", "r7")
    a.jmp("shift")
    a.label("store_new")
    a.st("r5", "r4", 0)
    a.ld("r11", "r3", 0)
    a.xor("r15", "r15", "r11")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "sample")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def cast_rounds(input_name: str) -> Program:
    """CAST-style cipher rounds: mixed add/xor/rotate F-functions."""
    blocks = 60 if input_name == "train" else 105
    seed = 29 if input_name == "train" else 31
    rng = random.Random(seed)
    data = [rng.getrandbits(32) for _ in range(blocks)]
    keys = [rng.getrandbits(16) for _ in range(12)]

    a = Assembler("cast")
    data_tab = a.data_words(data, label="data")
    key_tab = a.data_words(keys, label="keys")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")
    mask = 0xFFFFFFFF

    a.li("r1", data_tab)
    a.li("r2", blocks)
    a.li("r3", key_tab)
    a.li("r15", 0)
    a.li("r14", mask)
    a.label("block")
    a.ld("r4", "r1", 0)
    a.li("r5", 0)              # round
    a.label("round")
    a.add("r6", "r3", "r5")
    a.ld("r7", "r6", 0)        # round key
    a.andi("r8", "r5", 3)
    a.bne("r8", "r0", "type2")
    a.add("r4", "r4", "r7")    # type 1: add then rotate-xor
    a.and_("r4", "r4", "r14")
    a.slli("r9", "r4", 3)
    a.srli("r10", "r4", 29)
    a.or_("r9", "r9", "r10")
    a.xor("r4", "r4", "r9")
    a.jmp("endr")
    a.label("type2")
    a.xor("r4", "r4", "r7")    # type 2: xor then shifted subtract
    a.srli("r9", "r4", 5)
    a.sub("r4", "r4", "r9")
    a.label("endr")
    a.and_("r4", "r4", "r14")
    a.addi("r5", "r5", 1)
    a.slti("r11", "r5", 12)
    a.bne("r11", "r0", "round")
    a.st("r4", "r1", 0)
    a.xor("r15", "r15", "r4")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "block")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def tcp_statemachine(input_name: str) -> Program:
    """TCP-style connection state machine over a segment-event stream."""
    n = 300 if input_name == "train" else 520
    seed = 37 if input_name == "train" else 41
    rng = random.Random(seed)
    # events: 0=SYN 1=ACK 2=FIN 3=RST; transition table state×event.
    # states: 0 closed, 1 syn-rcvd, 2 established, 3 fin-wait
    transitions = [
        1, 0, 0, 0,    # closed
        1, 2, 0, 0,    # syn-rcvd
        2, 2, 3, 0,    # established
        3, 0, 0, 0,    # fin-wait (ack closes)
    ]
    transitions[13] = 0  # fin-wait + ack -> closed
    events = [rng.randint(0, 3) for _ in range(n)]

    a = Assembler("tcp")
    trans_tab = a.data_words(transitions, label="trans")
    event_tab = a.data_words(events, label="events")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", event_tab)
    a.li("r2", n)
    a.li("r3", trans_tab)
    a.li("r4", 0)              # state
    a.li("r15", 0)             # established count
    a.label("loop")
    a.ld("r5", "r1", 0)        # event
    a.slli("r6", "r4", 2)
    a.add("r6", "r6", "r5")
    a.add("r7", "r3", "r6")
    a.ld("r4", "r7", 0)        # next state (serial chain)
    a.seqi("r8", "r4", 2)
    a.add("r15", "r15", "r8")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def rijndael_round(input_name: str) -> Program:
    """AES-like round function: S-box substitution + xor diffusion."""
    blocks = 40 if input_name == "train" else 72
    seed = 43 if input_name == "train" else 47
    rng = random.Random(seed)
    sbox = list(range(256))
    rng.shuffle(sbox)
    state = [rng.getrandbits(8) for _ in range(blocks * 4)]

    a = Assembler("rijndael")
    sbox_tab = a.data_words(sbox, label="sbox")
    state_tab = a.data_words(state, label="state")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", state_tab)
    a.li("r2", blocks)
    a.li("r3", sbox_tab)
    a.li("r15", 0)
    a.label("block")
    # SubBytes on 4 state bytes.
    for i in range(4):
        a.ld(f"r{4 + i}", "r1", i)
    for i in range(4):
        a.add("r8", "r3", f"r{4 + i}")
        a.ld(f"r{4 + i}", "r8", 0)
    # MixColumns-flavoured xor diffusion.
    a.xor("r9", "r4", "r5")
    a.xor("r10", "r6", "r7")
    a.xor("r11", "r9", "r10")  # column parity
    a.xor("r4", "r4", "r11")
    a.xor("r5", "r5", "r11")
    a.xor("r6", "r6", "r11")
    a.xor("r7", "r7", "r11")
    for i in range(4):
        a.andi(f"r{4 + i}", f"r{4 + i}", 255)
        a.st(f"r{4 + i}", "r1", i)
    a.xor("r15", "r15", "r4")
    a.addi("r1", "r1", 4)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "block")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def ispell_probe(input_name: str) -> Program:
    """ispell-style dictionary probing: hash, probe, fallback suffix strip."""
    n = 150 if input_name == "train" else 260
    dict_size = 256
    seed = 53 if input_name == "train" else 59
    rng = random.Random(seed)
    dictionary = [0] * dict_size
    for _ in range(dict_size // 2):
        word = rng.randint(1, 1 << 15)
        dictionary[(word * 31) % dict_size] = word
    words = [rng.randint(1, 1 << 15) for _ in range(n)]
    # Plant known words so lookups hit sometimes.
    for i in range(0, n, 5):
        slot = rng.randrange(dict_size)
        if dictionary[slot]:
            words[i] = dictionary[slot]

    a = Assembler("ispell")
    dict_tab = a.data_words(dictionary, label="dict")
    word_tab = a.data_words(words, label="words")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", word_tab)
    a.li("r2", n)
    a.li("r3", dict_tab)
    a.li("r13", 31)
    a.li("r15", 0)
    a.label("word")
    a.ld("r4", "r1", 0)
    a.mul("r5", "r4", "r13")
    a.andi("r5", "r5", dict_size - 1)
    a.add("r6", "r3", "r5")
    a.ld("r7", "r6", 0)
    a.beq("r7", "r4", "found")
    # Fallback: strip a "suffix" (shift right) and probe once more.
    a.srli("r8", "r4", 3)
    a.mul("r9", "r8", "r13")
    a.andi("r9", "r9", dict_size - 1)
    a.add("r10", "r3", "r9")
    a.ld("r11", "r10", 0)
    a.bne("r11", "r8", "next")
    a.addi("r15", "r15", 1)    # found after stripping
    a.jmp("next")
    a.label("found")
    a.addi("r15", "r15", 2)
    a.label("next")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "word")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def mad_synth(input_name: str) -> Program:
    """mad-style subband synthesis: windowed multiply-accumulate."""
    frames = 16 if input_name == "train" else 28
    window = 16
    seed = 61 if input_name == "train" else 67
    rng = random.Random(seed)
    samples = [rng.randint(-4096, 4096) for _ in range(frames * window)]
    coeffs = [rng.randint(-256, 256) for _ in range(window)]

    a = Assembler("madsynth")
    s_tab = a.data_words(samples, label="samples")
    c_tab = a.data_words(coeffs, label="coeffs")
    out = a.data_zeros(frames, label="out")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", s_tab)
    a.li("r2", frames)
    a.li("r3", c_tab)
    a.li("r4", out)
    a.li("r15", 0)
    a.label("frame")
    a.li("r5", 0)              # accumulator
    a.li("r6", window)
    a.mov("r7", "r1")
    a.mov("r8", "r3")
    a.label("mac")
    a.ld("r9", "r7", 0)
    a.ld("r10", "r8", 0)
    a.mul("r11", "r9", "r10")
    a.add("r5", "r5", "r11")
    a.addi("r7", "r7", 1)
    a.addi("r8", "r8", 1)
    a.addi("r6", "r6", -1)
    a.bne("r6", "r0", "mac")
    a.srai("r5", "r5", 8)      # descale
    a.st("r5", "r4", 0)
    a.xor("r15", "r15", "r5")
    a.addi("r1", "r1", window)
    a.addi("r4", "r4", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "frame")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


def tiff_dither(input_name: str) -> Program:
    """tiff-style error-diffusion dithering (1-D Floyd–Steinberg)."""
    n = 360 if input_name == "train" else 620
    seed = 71 if input_name == "train" else 73
    rng = random.Random(seed)
    pixels = [rng.randint(0, 255) for _ in range(n)]

    a = Assembler("tiffdither")
    p_tab = a.data_words(pixels, label="pixels")
    out = a.data_zeros(n, label="out")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", p_tab)
    a.li("r2", out)
    a.li("r3", n)
    a.li("r4", 0)              # carried error
    a.li("r7", 128)            # threshold
    a.li("r15", 0)
    a.label("pixel")
    a.ld("r5", "r1", 0)
    a.add("r5", "r5", "r4")    # add diffused error
    a.blt("r5", "r7", "dark")
    a.li("r6", 1)
    a.addi("r4", "r5", -255)   # error = value - white
    a.jmp("emit")
    a.label("dark")
    a.li("r6", 0)
    a.mov("r4", "r5")          # error = value
    a.label("emit")
    a.srai("r4", "r4", 1)      # diffuse half of the error forward
    a.st("r6", "r2", 0)
    a.add("r15", "r15", "r6")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "pixel")
    a.st("r15", "r0", result)
    a.halt()
    return a.build()


register(Benchmark("eon", "spec", eon_march,
                   description="integer voxel ray marching"))
register(Benchmark("gap", "spec", gap_permute,
                   description="permutation composition"))
register(Benchmark("mesa", "media", mesa_span,
                   description="fixed-point span rasterizer"))
register(Benchmark("g721pred", "media", g721_predictor,
                   description="sign-sign LMS predictor update"))
register(Benchmark("cast", "comm", cast_rounds,
                   description="mixed-operation cipher rounds"))
register(Benchmark("tcp", "comm", tcp_statemachine,
                   description="connection state machine"))
register(Benchmark("rijndael", "embedded", rijndael_round,
                   description="S-box round with xor diffusion"))
register(Benchmark("ispell", "embedded", ispell_probe,
                   description="dictionary hash probing"))
register(Benchmark("madsynth", "embedded", mad_synth,
                   description="windowed multiply-accumulate"))
register(Benchmark("tiffdither", "embedded", tiff_dither,
                   description="1-D error-diffusion dithering"))
