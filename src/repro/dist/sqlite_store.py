"""SQLite manifest backend for the artifact store.

The directory backend answers every maintenance query — ``repro cache
stats``, ``prune``, ``dedup`` — by walking ``<root>/??/*.json`` and
parsing each sidecar. That is fine at thousands of artifacts and O(walk)
at millions. This backend keeps the blob layout *byte-identical*
(payloads and sidecars are still written, so a store directory remains
readable by the dir backend and by older checkouts) and adds one SQLite
manifest next to the shards::

    <root>/manifest.sqlite
        artifacts(key PRIMARY KEY, kind, size, created, mtime,
                  salt, sha, last_access, params)

One row per artifact. Stats become ``GROUP BY kind``, prune becomes an
indexed range scan, dedup groups by payload digest without re-hashing a
single blob, and reads update ``last_access`` so LRU pruning has real
data to work with.

Migration is lazy: opening a populated store whose manifest is empty
reindexes from the sidecars automatically (``repro cache migrate``
forces a full rebuild). The manifest is derived state — deleting it
costs a reindex, never an artifact.

Concurrency: WAL journal mode plus a busy timeout lets scheduler worker
processes (each with its own connection) publish rows concurrently; a
process-local lock serializes the connection across threads.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exec.store import DirBackend, iter_sidecars

MANIFEST_NAME = "manifest.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifacts (
    key         TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    size        INTEGER NOT NULL,
    created     REAL NOT NULL,
    mtime       REAL NOT NULL,
    salt        TEXT NOT NULL DEFAULT '',
    sha         TEXT NOT NULL DEFAULT '',
    last_access REAL NOT NULL DEFAULT 0,
    params      TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_artifacts_kind ON artifacts (kind);
CREATE INDEX IF NOT EXISTS idx_artifacts_created ON artifacts (created);
CREATE INDEX IF NOT EXISTS idx_artifacts_sha ON artifacts (sha);
"""


class SqliteManifestBackend(DirBackend):
    """Blob layout of :class:`DirBackend` + a SQLite index of the sidecars."""

    name = "sqlite"

    def __init__(self, root):
        super().__init__(root)
        self.manifest_path = self.root / MANIFEST_NAME
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.manifest_path), timeout=30.0,
                                     check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
        # Lazy migration: blobs on disk but an empty manifest means this
        # store predates the manifest (or the manifest was deleted).
        if self._count() == 0 and next(iter_sidecars(self.root), None):
            self.reindex()

    # -- manifest upkeep ------------------------------------------------------

    def _count(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM artifacts").fetchone()
        return int(row[0])

    def _upsert(self, key: str, meta: Dict[str, Any]) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO artifacts "
                "(key, kind, size, created, mtime, salt, sha, last_access, "
                " params) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (key,
                 meta.get("kind", "?"),
                 int(meta.get("size", 0) or 0),
                 float(meta.get("created", 0.0) or 0.0),
                 time.time(),
                 meta.get("salt", ""),
                 meta.get("sha", ""),
                 float(meta.get("created", 0.0) or 0.0),
                 json.dumps(meta.get("params", {}), sort_keys=True)))

    def reindex(self, force: bool = False) -> int:
        """(Re)build the manifest from the on-disk sidecars.

        The migration path from a dir-backend store, and the repair path
        after any out-of-band mutation of the shards. Sidecars that
        predate the payload digest get one hashed in so dedup never has
        to touch blob bytes again. Returns rows indexed.
        """
        rows = []
        for key, meta in iter_sidecars(self.root):
            sha = meta.get("sha", "")
            if not sha:
                try:
                    sha = hashlib.sha256(
                        self.payload_path(key).read_bytes()).hexdigest()
                except OSError:
                    continue
            created = float(meta.get("created", 0.0) or 0.0)
            rows.append((key,
                         meta.get("kind", "?"),
                         int(meta.get("size", 0) or 0),
                         created,
                         time.time(),
                         meta.get("salt", ""),
                         sha,
                         created,
                         json.dumps(meta.get("params", {}), sort_keys=True)))
        with self._lock, self._conn:
            if force:
                self._conn.execute("DELETE FROM artifacts")
            self._conn.executemany(
                "INSERT OR REPLACE INTO artifacts "
                "(key, kind, size, created, mtime, salt, sha, last_access, "
                " params) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)", rows)
        return len(rows)

    # -- blob ops (keep the manifest in lockstep) -----------------------------

    def write(self, key: str, payload: bytes, meta: Dict[str, Any]) -> None:
        super().write(key, payload, meta)
        self._upsert(key, meta)

    def delete(self, key: str) -> None:
        super().delete(key)
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM artifacts WHERE key = ?", (key,))

    def touch(self, key: str) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE artifacts SET last_access = ? WHERE key = ?",
                (time.time(), key))

    # -- index queries (O(rows matched), no directory walk) -------------------

    def entries(self) -> Iterable[Tuple[str, Dict[str, Any]]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, kind, size, created, salt, sha, params "
                "FROM artifacts ORDER BY key").fetchall()
        for key, kind, size, created, salt, sha, params in rows:
            try:
                params_doc = json.loads(params)
            except ValueError:
                params_doc = {}
            yield key, {"kind": kind, "size": size, "created": created,
                        "salt": salt, "sha": sha, "params": params_doc}

    def summary(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT kind, COUNT(*), COALESCE(SUM(size), 0) "
                "FROM artifacts GROUP BY kind").fetchall()
        return {kind: {"count": int(count), "bytes": int(total)}
                for kind, count, total in rows}

    def prune(self, cutoff: Optional[float],
              kind_set: Optional[set]) -> List[str]:
        clauses, args = [], []
        if cutoff is not None:
            clauses.append("created <= ?")
            args.append(cutoff)
        if kind_set is not None:
            clauses.append("kind IN (%s)" % ",".join("?" * len(kind_set)))
            args.extend(sorted(kind_set))
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        with self._lock:
            keys = [row[0] for row in self._conn.execute(
                "SELECT key FROM artifacts" + where, args).fetchall()]
        for key in keys:
            self.delete(key)
        return keys

    def clear(self) -> int:
        removed = super().clear()
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM artifacts")
        return removed

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def compare_backends(root, repeat: int = 3) -> Dict[str, Any]:
    """Time the dir walk vs the manifest query answering ``cache stats``.

    Opens the same store root through both backends, runs ``summary()``
    ``repeat`` times each, and keeps the best wall time per leg (the
    comparison is I/O-bound; the minimum is the least noisy estimator).
    Verifies both backends agree on the answer before timing counts.
    """
    root = Path(root)
    dir_backend = DirBackend(root)
    sqlite_backend = SqliteManifestBackend(root)
    try:
        dir_summary = dir_backend.summary()
        sqlite_summary = sqlite_backend.summary()
        if dir_summary != sqlite_summary:
            raise RuntimeError(
                "backend disagreement on cache stats: "
                f"dir={dir_summary} sqlite={sqlite_summary} "
                "(run `repro cache migrate` to rebuild the manifest)")

        def best(fn) -> float:
            times = []
            for _ in range(max(1, repeat)):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        dir_s = best(dir_backend.summary)
        sqlite_s = best(sqlite_backend.summary)
        artifacts = sum(e["count"] for e in dir_summary.values())
        return {
            "artifacts": artifacts,
            "dir_stats_s": dir_s,
            "sqlite_stats_s": sqlite_s,
            "speedup": (dir_s / sqlite_s) if sqlite_s > 0 else 0.0,
            "summary": dir_summary,
        }
    finally:
        sqlite_backend.close()
