"""``repro worker`` — a leased-task executor joining a coordinator.

One worker process dials the coordinator address, introduces itself
with its slot count, and then executes whatever task batches it is
leased, publishing bulk results through the shared artifact store
(``--store`` overrides the store root baked into task specs, so hosts
with different mount points can share one store). The main thread owns
the socket (reads leases, sends heartbeats); ``--slots`` executor
threads run tasks.

Task callables arrive by name and are resolved strictly inside the
``repro`` package — a coordinator cannot make a worker import or run
anything else. Workers are stateless and restart-cheap: killing one
mid-task loses nothing (the coordinator re-leases, the store makes
re-execution idempotent), and a worker that loses its coordinator just
redials until a new run starts (``--once`` exits instead, for tests and
bounded CI jobs).
"""

from __future__ import annotations

import base64
import importlib
import json
import pickle
import queue
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.dist.remote import decode_args, parse_address, send_line


def resolve_task_fn(name: str):
    """``module:qualname`` → callable, restricted to the repro package."""
    module_name, _, qualname = name.partition(":")
    if not (module_name == "repro" or module_name.startswith("repro.")):
        raise ValueError(f"refusing to import task fn outside repro: {name!r}")
    if not qualname:
        raise ValueError(f"malformed task fn name: {name!r}")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValueError(f"task fn {name!r} is not callable")
    return obj


def _rewrite_store(args: Tuple, store_dir: Optional[str],
                   store_backend: Optional[str]) -> Tuple:
    """Point task specs at this host's view of the shared store."""
    if store_dir is None and store_backend is None:
        return args
    out = []
    for arg in args:
        if isinstance(arg, dict):
            arg = dict(arg)
            if store_dir is not None and "cache_dir" in arg:
                arg["cache_dir"] = store_dir
            if store_backend is not None and "store_backend" in arg:
                arg["store_backend"] = store_backend
        out.append(arg)
    return tuple(out)


class Worker:
    """One coordinator connection plus its executor threads."""

    def __init__(self, connect: str, store_dir: Optional[str] = None,
                 store_backend: Optional[str] = None, slots: int = 1,
                 name: Optional[str] = None, quiet: bool = False):
        self.connect = connect
        self.store_dir = store_dir
        self.store_backend = store_backend
        self.slots = max(1, int(slots))
        self.name = name or f"{socket.gethostname()}.{threading.get_ident()}"
        self.quiet = quiet
        self.tasks_run = 0
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._queue: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()
        self._revoked: set = set()
        self._revoked_lock = threading.Lock()
        self._stop = threading.Event()

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[worker {self.name}] {message}", flush=True)

    # -- executor threads -----------------------------------------------------

    def _execute(self, task: Dict[str, Any]) -> None:
        task_id = task["id"]
        try:
            send_line(self._sock, self._send_lock,
                      {"op": "started", "task": task_id})
            fn = resolve_task_fn(task["fn"])
            args = _rewrite_store(decode_args(task["args_b64"]),
                                  self.store_dir, self.store_backend)
            start = time.perf_counter()
            result = fn(*args)
            duration = time.perf_counter() - start
            result_b64 = base64.b64encode(pickle.dumps(
                result, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")
            send_line(self._sock, self._send_lock,
                      {"op": "done", "task": task_id,
                       "result_b64": result_b64, "duration": duration})
            self.tasks_run += 1
        except OSError:
            raise  # connection gone; the run loop redials
        except Exception as error:  # noqa: BLE001 - task boundary
            send_line(self._sock, self._send_lock,
                      {"op": "failed", "task": task_id,
                       "exc_type": type(error).__name__,
                       "error": str(error)})

    def _executor_loop(self) -> None:
        while not self._stop.is_set():
            try:
                task = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if task is None:
                return
            with self._revoked_lock:
                if task["id"] in self._revoked:
                    self._revoked.discard(task["id"])
                    continue
            try:
                self._execute(task)
            except OSError:
                return

    # -- connection loop ------------------------------------------------------

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.is_set():
            time.sleep(interval)
            try:
                send_line(self._sock, self._send_lock, {"op": "heartbeat"})
            except OSError:
                return

    def _serve_connection(self, sock: socket.socket) -> None:
        self._sock = sock
        self._stop.clear()
        with self._revoked_lock:
            self._revoked.clear()
        send_line(sock, self._send_lock,
                  {"op": "hello", "worker": self.name, "slots": self.slots})
        threads = [threading.Thread(target=self._executor_loop,
                                    name=f"worker-exec-{i}", daemon=True)
                   for i in range(self.slots)]
        for thread in threads:
            thread.start()
        heartbeat_thread: Optional[threading.Thread] = None
        try:
            reader = sock.makefile("r", encoding="utf-8")
            for line in reader:
                try:
                    msg = json.loads(line)
                except ValueError:
                    continue
                op = msg.get("op")
                if op == "welcome":
                    interval = float(msg.get("heartbeat", 2.0))
                    heartbeat_thread = threading.Thread(
                        target=self._heartbeat_loop, args=(interval,),
                        name="worker-heartbeat", daemon=True)
                    heartbeat_thread.start()
                    self._log(f"joined as {msg.get('worker')}")
                elif op == "lease":
                    for task in msg.get("tasks", []):
                        self._queue.put(task)
                elif op == "revoke":
                    with self._revoked_lock:
                        self._revoked.update(msg.get("tasks", []))
                elif op == "shutdown":
                    return
        except OSError:
            pass
        finally:
            self._stop.set()
            # Drain: executors exit on the stop flag; unstarted leased
            # tasks are simply dropped — the coordinator re-leases them.
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break
            try:
                sock.close()
            except OSError:
                pass
            self._sock = None

    def run(self, once: bool = False, dial_timeout: Optional[float] = None,
            retry_interval: float = 0.5) -> int:
        """Dial, serve, redial. Returns tasks executed (for tests)."""
        family, addr = parse_address(self.connect)
        deadline = (time.monotonic() + dial_timeout) if dial_timeout else None
        while True:
            sock = socket.socket(family, socket.SOCK_STREAM)
            try:
                sock.connect(addr)
            except OSError:
                sock.close()
                if deadline is not None and time.monotonic() > deadline:
                    self._log("coordinator never appeared; giving up")
                    return self.tasks_run
                if once and deadline is None:
                    return self.tasks_run
                time.sleep(retry_interval)
                continue
            self._log(f"connected to {self.connect}")
            self._serve_connection(sock)
            self._log("connection closed")
            if once:
                return self.tasks_run


def main(argv=None) -> int:
    """CLI entry: ``repro worker --connect ADDR [--store DIR] ...``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Join a dispatch coordinator and execute leased "
                    "DAG nodes through the shared artifact store.")
    parser.add_argument("--connect", required=True,
                        help="coordinator address: unix socket path or "
                             "host:port")
    parser.add_argument("--store", default=None,
                        help="artifact store root on this host "
                             "(overrides the root baked into task specs)")
    parser.add_argument("--store-backend", default=None,
                        choices=("dir", "sqlite"),
                        help="store backend override for this host")
    parser.add_argument("--slots", type=int, default=1,
                        help="concurrent executor threads (default 1; "
                             "run one worker process per core instead "
                             "for CPU-bound grids)")
    parser.add_argument("--name", default=None, help="worker display name")
    parser.add_argument("--once", action="store_true",
                        help="exit when the coordinator goes away "
                             "instead of redialing")
    parser.add_argument("--dial-timeout", type=float, default=None,
                        help="give up if no coordinator appears within "
                             "this many seconds")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    worker = Worker(args.connect, store_dir=args.store,
                    store_backend=args.store_backend, slots=args.slots,
                    name=args.name, quiet=args.quiet)
    try:
        worker.run(once=args.once, dial_timeout=args.dial_timeout)
    except KeyboardInterrupt:
        pass
    return 0
