"""Durable, distributed execution.

Three pluggable layers that scale the execution engine past one process
and one uninterrupted run:

- :mod:`repro.dist.sqlite_store` — a SQLite *manifest* over the
  content-addressed blob store, making maintenance queries O(rows
  matched) instead of O(directory walk) at millions of artifacts. The
  blob layout is byte-identical to the default directory backend; the
  manifest is an index, not a format change.
- :mod:`repro.dist.ledger` — a JSONL :class:`~repro.dist.ledger.RunLedger`
  journaling DAG node completion so a killed ``experiments``/
  ``limit-study`` run resumes with ``repro resume``, scheduling only
  nodes whose durable outputs are missing.
- :mod:`repro.dist.dispatch` / :mod:`repro.dist.remote` /
  :mod:`repro.dist.worker` — the scheduler's executor abstracted behind
  :class:`~repro.dist.dispatch.DispatchBackend`: a local process pool
  (today's behavior, bit for bit) or a socket coordinator that leases
  batches of ready nodes to ``repro worker`` processes sharing the
  artifact store, with heartbeats, lease expiry, and work stealing.

See ``docs/distributed.md`` for the design, the wire protocol, and the
durability invariant the resume path enforces.
"""

from repro.dist.dispatch import (DispatchBackend, DispatchStats,
                                 LocalPoolBackend, WorkerLost)
from repro.dist.ledger import LedgerError, RunLedger

__all__ = [
    "DispatchBackend",
    "DispatchStats",
    "LocalPoolBackend",
    "WorkerLost",
    "LedgerError",
    "RunLedger",
]
