"""Run ledger: a JSONL journal of DAG node completion.

A killed ``experiments``/``limit-study`` run used to leave nothing
behind but whatever artifacts happened to land in the store; restarting
meant re-planning the whole grid and trusting warm-path pruning to skip
finished work. The ledger makes the run itself durable: a header line
records everything needed to rebuild the task graph (runner parameters,
store location and backend, code-version salt, the serialized workload),
then one line per node completion as the scheduler reports it, then a
completion marker. ``repro resume <ledger>`` replays the file and
schedules only what is still missing.

Like the serve journal, the format is append-only, flushed per line,
and replay-tolerant: a torn tail line (the write the SIGKILL
interrupted) is ignored, and repeated records for the same node are
idempotent (last status wins).

The durability invariant (SNIPPETS.md, hypergraph): *if a step can be
skipped on resume, the step must have durable outputs.* The ledger's
``done`` records are therefore **advisory** — resume re-probes the
artifact store and re-runs any node whose durable outputs are missing,
and :func:`assert_skippable` refuses outright to mark a node with no
durable outputs (e.g. a ``check`` node) skippable, no matter what the
journal says.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Tuple

LEDGER_VERSION = 1

#: Node statuses worth journaling. ``submit``/``retry`` events are
#: progress noise; only terminal-per-attempt outcomes matter to resume.
_TERMINAL = ("done", "failed", "skipped")


class LedgerError(RuntimeError):
    """Unusable ledger: missing header, version skew, or an attempt to
    skip a node with no durable outputs."""


class RunLedger:
    """Append-only journal for one scheduler run."""

    def __init__(self, path: os.PathLike, header: Dict[str, Any],
                 handle: IO[str]):
        self.path = Path(path)
        self.header = header
        self._handle = handle

    # -- creation / replay ----------------------------------------------------

    @classmethod
    def create(cls, path: os.PathLike,
               workload: Dict[str, Any],
               runner_params: Dict[str, Any],
               salt: str,
               cache_dir: Optional[str],
               store_backend: str = "dir",
               extra: Optional[Dict[str, Any]] = None) -> "RunLedger":
        """Start a fresh ledger (truncating any previous file at ``path``)."""
        header = {
            "type": "run",
            "version": LEDGER_VERSION,
            "run_id": uuid.uuid4().hex[:12],
            "created": time.time(),
            "salt": salt,
            "cache_dir": cache_dir,
            "store_backend": store_backend,
            "runner": dict(runner_params),
            "workload": workload,
        }
        if extra:
            header.update(extra)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "w", encoding="utf-8")
        ledger = cls(path, header, handle)
        ledger._append(header)
        return ledger

    @classmethod
    def load(cls, path: os.PathLike) -> Tuple[Dict[str, Any],
                                              Dict[str, str], bool]:
        """Replay a ledger: ``(header, node_status, completed)``.

        ``node_status`` maps task id → last journaled status. Torn or
        garbled lines (the interrupted final write of a killed run) are
        skipped; a missing or alien header is an error.
        """
        header: Optional[Dict[str, Any]] = None
        status: Dict[str, str] = {}
        completed = False
        try:
            lines = Path(path).read_text(encoding="utf-8").splitlines()
        except OSError as error:
            raise LedgerError(f"cannot read ledger {path}: {error}") from error
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from the killed writer
            if not isinstance(record, dict):
                continue
            rtype = record.get("type")
            if rtype == "run":
                if record.get("version") != LEDGER_VERSION:
                    raise LedgerError(
                        f"ledger version {record.get('version')!r} != "
                        f"{LEDGER_VERSION} (regenerate with a fresh run)")
                header = record
            elif rtype == "node" and record.get("task"):
                if record.get("status") in _TERMINAL:
                    status[record["task"]] = record["status"]
            elif rtype == "complete":
                completed = True
        if header is None:
            raise LedgerError(f"{path} has no run header — not a ledger")
        return header, status, completed

    @classmethod
    def append_to(cls, path: os.PathLike,
                  header: Dict[str, Any]) -> "RunLedger":
        """Reopen an existing ledger for appending (the resume path)."""
        handle = open(path, "a", encoding="utf-8")
        return cls(path, header, handle)

    # -- journaling -----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def record(self, task_id: str, stage: Optional[str],
               status: str) -> None:
        self._append({"type": "node", "task": task_id, "stage": stage,
                      "status": status, "t": time.time()})

    def record_skipped_durable(self, task_ids: Iterable[str]) -> None:
        """Journal nodes resume pruned because their artifacts exist."""
        for task_id in task_ids:
            self._append({"type": "node", "task": task_id, "stage": None,
                          "status": "done", "t": time.time(),
                          "resumed": True})

    def complete(self, results: int, failures: int) -> None:
        self._append({"type": "complete", "t": time.time(),
                      "results": results, "failures": failures})

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- scheduler integration ------------------------------------------------

    def sink(self, inner: Optional[Callable[[Dict[str, Any]], None]] = None
             ) -> Callable[[Dict[str, Any]], None]:
        """An ``on_event`` callback that journals terminal node events
        and forwards everything to ``inner`` (the progress printer or a
        serve event log)."""

        def on_event(event: Dict[str, Any]) -> None:
            if event.get("kind") in _TERMINAL and event.get("task"):
                self.record(event["task"], event.get("stage"), event["kind"])
            if inner is not None:
                inner(event)

        return on_event


def assert_skippable(tasks, durable_ids: Iterable[str],
                     skip_ids: Iterable[str]) -> None:
    """The durability lint: every node being skipped must be durable.

    ``durable_ids`` is the set of task ids whose outputs live in the
    artifact store (``warm.task_artifact`` resolved an address for
    them); anything else — ``check`` nodes, unrecognized stages — has no
    durable output, so skipping it would silently drop its effect.
    Raises :class:`LedgerError` naming the offenders.
    """
    durable = set(durable_ids)
    by_id = {task.id: task for task in tasks}
    offenders = []
    for task_id in skip_ids:
        if task_id in durable:
            continue
        stage = by_id[task_id].stage if task_id in by_id else "?"
        offenders.append(f"{task_id} (stage {stage})")
    if offenders:
        raise LedgerError(
            "refusing to skip nodes with no durable outputs: "
            + ", ".join(sorted(offenders))
            + " — a step skippable on resume must have durable outputs")
