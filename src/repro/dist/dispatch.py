"""Dispatch backends: where the scheduler's ready tasks actually run.

The :class:`~repro.exec.dag.Scheduler` owns the DAG — topological order,
retry policy, deadlines, failure poisoning. A :class:`DispatchBackend`
owns only the question "run this task somewhere and tell me how it
went". The contract is deliberately shaped like
``concurrent.futures`` so the local-pool backend is a transparent
wrapper over today's ``ProcessPoolExecutor`` path:

- :meth:`~DispatchBackend.submit` returns an opaque handle;
- :meth:`~DispatchBackend.wait` blocks (bounded) until some handle
  completes;
- :meth:`~DispatchBackend.result` returns ``(result, duration)``,
  raises the task's exception, or raises :class:`WorkerLost` when the
  executor itself died — which the scheduler answers by degrading to
  serial in-process execution, exactly as it always has for
  ``BrokenProcessPool``.

:class:`LocalPoolBackend` preserves the historical behavior bit for
bit (including shared-pool mode for the serve daemon and the
terminate-stuck-workers timeout policy).
:class:`repro.dist.remote.SocketDispatchBackend` runs the same contract
over a coordinator socket with leased batches, heartbeats, and work
stealing.
"""

from __future__ import annotations

import time
from concurrent.futures import (CancelledError, FIRST_COMPLETED,
                                ProcessPoolExecutor, wait)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def _invoke(fn: Callable, args: Tuple) -> Tuple[Any, float]:
    """Worker-side wrapper: run the task and clock it."""
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


class WorkerLost(RuntimeError):
    """The executor (not the task) failed: dead worker, torn-down pool,
    or no workers left to lease to. The scheduler reacts by finishing
    the remaining graph serially in-process."""


@dataclass
class DispatchStats:
    """Counters a backend accumulates over one run (``dist.*`` metrics)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    leases: int = 0
    steals: int = 0
    expiries: int = 0
    reassigned: int = 0
    workers_joined: int = 0
    workers_lost: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        doc = {"submitted": self.submitted, "completed": self.completed,
               "failed": self.failed, "leases": self.leases,
               "steals": self.steals, "expiries": self.expiries,
               "reassigned": self.reassigned,
               "workers_joined": self.workers_joined,
               "workers_lost": self.workers_lost}
        doc.update(self.extra)
        return doc


class DispatchBackend:
    """Executor abstraction behind the scheduler's parallel path."""

    name = "?"

    def __init__(self) -> None:
        self.stats = DispatchStats()

    def open(self) -> None:
        """Acquire executor resources. Called once per scheduler run."""

    def capacity(self) -> int:
        """How many tasks may be in flight right now (≥ 1).

        Re-polled every scheduler iteration, so backends with elastic
        capacity (workers joining/leaving) take effect immediately.
        """
        raise NotImplementedError

    def submit(self, task) -> Any:
        """Start ``task`` (a :class:`repro.exec.dag.Task`); returns a
        handle usable with :meth:`wait`/:meth:`result`/:meth:`cancel`."""
        raise NotImplementedError

    def wait(self, handles: Sequence[Any], timeout: float) -> List[Any]:
        """Handles from ``handles`` that are now complete (possibly
        empty if ``timeout`` elapsed first)."""
        raise NotImplementedError

    def result(self, handle) -> Tuple[Any, float]:
        """``(result, duration)`` for a completed handle.

        Raises the task's own exception for a task failure, or
        :class:`WorkerLost` when the executor died underneath it.
        """
        raise NotImplementedError

    def cancel(self, handle) -> bool:
        """Try to prevent a submitted task from running; ``True`` only
        if it is guaranteed not to (be) run."""
        raise NotImplementedError

    def handle_timeout(self) -> None:
        """A task blew its deadline and could not be cancelled; the
        scheduler is about to degrade. Kill stragglers if this backend
        owns them."""

    def close(self, pending: Sequence[Any]) -> None:
        """Release executor resources; ``pending`` holds the handles
        still in flight (cancel or abandon them)."""


class LocalPoolBackend(DispatchBackend):
    """Today's executor: a ``ProcessPoolExecutor``, owned or shared.

    With ``pool=None`` the backend spawns a private pool of ``jobs``
    workers per run and tears it down afterwards; with an external pool
    it only submits (never shuts down, never terminates workers —
    they belong to other runs too).
    """

    name = "local"

    def __init__(self, jobs: int = 1,
                 pool: Optional[ProcessPoolExecutor] = None):
        super().__init__()
        self.jobs = max(1, int(jobs))
        self._own = pool is None
        self._pool: Optional[ProcessPoolExecutor] = pool

    def open(self) -> None:
        if self._own:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)

    def capacity(self) -> int:
        return self.jobs

    def submit(self, task) -> Any:
        self.stats.submitted += 1
        return self._pool.submit(_invoke, task.fn, task.args)

    def wait(self, handles: Sequence[Any], timeout: float) -> List[Any]:
        done, _ = wait(list(handles), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        return list(done)

    def result(self, handle) -> Tuple[Any, float]:
        try:
            result = handle.result()
        except (BrokenProcessPool, CancelledError) as error:
            # The worker died mid-task (segfault, os._exit, OOM kill) or
            # the future was torn down. The pool is unusable.
            self.stats.workers_lost += 1
            raise WorkerLost(str(error) or type(error).__name__) from error
        except Exception:
            self.stats.failed += 1
            raise
        self.stats.completed += 1
        return result

    def cancel(self, handle) -> bool:
        return handle.cancel()

    def handle_timeout(self) -> None:
        # A stuck worker would block interpreter exit (the pool joins
        # its processes at shutdown). A shared pool's workers belong to
        # other runs too and must not be terminated from here.
        if self._own and self._pool is not None:
            for proc in list(self._pool._processes.values()):
                proc.terminate()

    def close(self, pending: Sequence[Any]) -> None:
        if self._own:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
        else:
            for handle in pending:
                handle.cancel()


def make_dispatch(spec: Optional[str], jobs: int,
                  pool: Optional[ProcessPoolExecutor] = None
                  ) -> Optional[DispatchBackend]:
    """CLI resolution of ``--dispatch``: ``None``/``"local"`` → local
    pool, ``"workers:ADDR"`` → socket coordinator at ADDR (a unix socket
    path or ``host:port``)."""
    if spec is None or spec == "local":
        return None  # scheduler builds its default LocalPoolBackend
    if spec.startswith("workers:"):
        from repro.dist.remote import SocketDispatchBackend
        return SocketDispatchBackend(spec[len("workers:"):], jobs=jobs)
    raise ValueError(f"unknown dispatch backend: {spec!r} "
                     f"(expected 'local' or 'workers:ADDR')")
