"""Socket work dispatch: a coordinator leasing DAG nodes to workers.

One :class:`SocketCoordinator` listens on a unix socket (or TCP
``host:port``); any number of ``repro worker`` processes dial in, say
how many executor slots they have, and receive *leases* — batches of
ready tasks, planned deterministically by the scheduler up front
(Batch-Schedule-Execute: content-addressed keys make execution
conflict-free, so batches need no coordination beyond the lease itself).
Workers execute through the shared artifact store, so results travel as
small summaries while bulk data stays on disk.

Wire protocol — one JSON object per line, both directions:

====================  =====================================================
worker → coordinator  ``{"op": "hello", "worker": str, "slots": int}``
                      ``{"op": "started", "task": id}``
                      ``{"op": "done", "task": id, "result_b64": str,
                      "duration": float}``
                      ``{"op": "failed", "task": id, "exc_type": str,
                      "error": str}``
                      ``{"op": "heartbeat"}``
coordinator → worker  ``{"op": "welcome", "worker": str,
                      "heartbeat": float}``
                      ``{"op": "lease", "lease": int, "tasks":
                      [{"id", "fn", "args_b64"}]}``
                      ``{"op": "revoke", "tasks": [ids]}``
                      ``{"op": "shutdown"}``
====================  =====================================================

Task callables cross the wire by *name* (``module:qualname``, restricted
to the ``repro`` package on the worker side) and their arguments by
pickle — the identical serialization trust model as the local process
pool, between processes run by the same user.

Fault tolerance reuses the scheduler's machinery end to end:

- a worker that stops heartbeating past the lease timeout is declared
  dead; its incomplete leased tasks are requeued at the front
  (idempotent re-execution — the store absorbs duplicates);
- a task requeued too many times (it keeps killing workers) surfaces as
  :class:`WorkerLost`, which degrades the run to serial in-process
  execution, exactly like ``BrokenProcessPool`` always has;
- an idle worker *steals* leased-but-unstarted tasks from the most
  loaded straggler (the coordinator revokes and re-leases them);
- an empty fleet past the join grace period likewise degrades the run
  rather than hanging it.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dist.dispatch import DispatchBackend, DispatchStats, WorkerLost

#: A task that outlives this many leases is poison (it kills whatever
#: worker picks it up); surface it as WorkerLost instead of looping.
MAX_REQUEUES = 3


class RemoteTaskError(RuntimeError):
    """A task raised on a worker; carries the original exception type
    name so retry/failure reports stay readable."""

    def __init__(self, exc_type: str, message: str):
        self.exc_type = exc_type
        super().__init__(f"{exc_type}: {message}" if exc_type else message)


def parse_address(address: str) -> Tuple[int, Any]:
    """``host:port`` → TCP, anything else → unix socket path."""
    if ":" in address and not address.startswith(("/", ".")):
        host, port = address.rsplit(":", 1)
        return socket.AF_INET, (host or "127.0.0.1", int(port))
    return socket.AF_UNIX, address


def encode_args(args: Tuple) -> str:
    """Pickle a task argument tuple into a base64 wire string."""
    return base64.b64encode(
        pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_args(blob: str) -> Tuple:
    """Inverse of :func:`encode_args`."""
    return pickle.loads(base64.b64decode(blob))


def task_fn_name(fn) -> str:
    """``module:qualname`` wire name for a task callable."""
    return f"{fn.__module__}:{fn.__qualname__}"


def send_line(sock: socket.socket, lock: threading.Lock,
              doc: Dict[str, Any]) -> None:
    """Write one JSON line to ``sock`` atomically under ``lock``."""
    data = (json.dumps(doc, sort_keys=True) + "\n").encode()
    with lock:
        sock.sendall(data)


class _Worker:
    """Coordinator-side view of one connected worker."""

    def __init__(self, worker_id: str, sock: socket.socket, slots: int):
        self.id = worker_id
        self.sock = sock
        self.send_lock = threading.Lock()
        self.slots = max(1, slots)
        self.last_seen = time.monotonic()
        self.leased: set = set()     # task ids leased to this worker
        self.started: set = set()    # subset the worker reported started
        self.alive = True

    @property
    def unstarted(self) -> set:
        return self.leased - self.started


class SocketCoordinator:
    """Owns the listening socket, the worker fleet, and the ready queue.

    Shareable: several schedulers (serve jobs) can dispatch through one
    coordinator concurrently — handles are namespaced per backend, so
    two jobs scheduling the same DAG node id never collide.
    """

    def __init__(self, address: str, batch: int = 4,
                 lease_timeout: float = 10.0, grace: float = 30.0):
        self.address = address
        self.batch = max(1, batch)
        self.lease_timeout = lease_timeout
        #: How long submit-time waits for a first worker before the run
        #: is declared WorkerLost (and degrades to serial).
        self.grace = grace
        self.stats = DispatchStats()
        self._family, self._addr = parse_address(address)
        self._lock = threading.Lock()
        self._completed = threading.Condition(self._lock)
        self._workers: Dict[str, _Worker] = {}
        self._ready: deque = deque()           # task ids awaiting lease
        self._tasks: Dict[str, Dict[str, Any]] = {}
        self._results: Dict[str, Tuple] = {}
        self._lease_seq = 0
        self._started_at = time.monotonic()
        self._last_worker_seen: Optional[float] = None
        self._closing = False
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._listener is not None:
            return
        listener = socket.socket(self._family, socket.SOCK_STREAM)
        if self._family == socket.AF_UNIX:
            Path(self._addr).parent.mkdir(parents=True, exist_ok=True)
            try:
                os.unlink(self._addr)
            except OSError:
                pass
        else:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._addr)
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True)
        self._accept_thread.start()

    def stop(self) -> None:
        with self._lock:
            self._closing = True
            workers = list(self._workers.values())
        for worker in workers:
            try:
                send_line(worker.sock, worker.send_lock, {"op": "shutdown"})
            except OSError:
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._family == socket.AF_UNIX:
            try:
                os.unlink(self._addr)
            except OSError:
                pass

    # -- connection handling --------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._serve_worker, args=(sock,),
                             name="dist-worker-conn", daemon=True).start()

    def _serve_worker(self, sock: socket.socket) -> None:
        worker: Optional[_Worker] = None
        try:
            reader = sock.makefile("r", encoding="utf-8")
            for line in reader:
                try:
                    msg = json.loads(line)
                except ValueError:
                    continue
                op = msg.get("op")
                if op == "hello":
                    name = str(msg.get("worker") or "worker")
                    worker_id = f"{name}-{uuid.uuid4().hex[:6]}"
                    worker = _Worker(worker_id, sock,
                                     int(msg.get("slots", 1)))
                    with self._lock:
                        self._workers[worker_id] = worker
                        self._last_worker_seen = time.monotonic()
                        self.stats.workers_joined += 1
                    send_line(sock, worker.send_lock,
                              {"op": "welcome", "worker": worker_id,
                               "heartbeat": self.lease_timeout / 3.0})
                    self._fill()
                elif worker is None:
                    continue  # protocol violation: not introduced yet
                elif op == "heartbeat":
                    with self._lock:
                        worker.last_seen = time.monotonic()
                elif op == "started":
                    with self._lock:
                        worker.last_seen = time.monotonic()
                        if msg.get("task") in worker.leased:
                            worker.started.add(msg["task"])
                elif op in ("done", "failed"):
                    self._finish(worker, msg)
        except (OSError, ValueError):
            pass
        finally:
            if worker is not None:
                self._drop_worker(worker, "connection closed")
            try:
                sock.close()
            except OSError:
                pass

    def _finish(self, worker: _Worker, msg: Dict[str, Any]) -> None:
        task_id = msg.get("task")
        with self._lock:
            worker.last_seen = time.monotonic()
            worker.leased.discard(task_id)
            worker.started.discard(task_id)
            if task_id not in self._tasks:
                return  # stale result for a revoked/finished task
            if task_id in self._results:
                return  # a twin already answered (steal race) — first wins
            if msg["op"] == "done":
                self._results[task_id] = (
                    "ok", msg.get("result_b64", ""),
                    float(msg.get("duration", 0.0)))
                self.stats.completed += 1
            else:
                self._results[task_id] = (
                    "err", str(msg.get("exc_type", "")),
                    str(msg.get("error", "")))
                self.stats.failed += 1
            self._completed.notify_all()
        self._fill()

    def _drop_worker(self, worker: _Worker, reason: str) -> None:
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            self._workers.pop(worker.id, None)
            incomplete = [tid for tid in worker.leased
                          if tid in self._tasks
                          and tid not in self._results]
            worker.leased.clear()
            worker.started.clear()
            if not self._closing:
                self.stats.workers_lost += 1
                self._requeue(incomplete)
        if not self._closing:
            self._fill()

    def _requeue(self, task_ids: List[str]) -> None:
        """Put a dead/straggling worker's tasks back. Lock held."""
        for tid in reversed(task_ids):
            task = self._tasks.get(tid)
            if task is None:
                continue
            task["requeues"] += 1
            self.stats.reassigned += 1
            if task["requeues"] > MAX_REQUEUES:
                self._results[tid] = (
                    "lost", f"task requeued {task['requeues']} times "
                            f"(keeps losing its worker)")
                self._completed.notify_all()
            else:
                self._ready.appendleft(tid)

    # -- leasing / stealing / expiry ------------------------------------------

    def _fill(self) -> None:
        """Lease ready tasks to free slots, batch-at-a-time."""
        grants: List[Tuple[_Worker, List[Dict[str, Any]], int]] = []
        with self._lock:
            for worker in self._workers.values():
                while self._ready:
                    free = worker.slots - len(worker.unstarted)
                    if free <= 0:
                        break
                    take = min(self.batch, free, len(self._ready))
                    batch = []
                    for _ in range(take):
                        tid = self._ready.popleft()
                        worker.leased.add(tid)
                        task = self._tasks[tid]
                        batch.append({"id": tid, "fn": task["fn"],
                                      "args_b64": task["args_b64"]})
                    self._lease_seq += 1
                    self.stats.leases += 1
                    grants.append((worker, batch, self._lease_seq))
        for worker, batch, lease_id in grants:
            try:
                send_line(worker.sock, worker.send_lock,
                          {"op": "lease", "lease": lease_id, "tasks": batch})
            except OSError:
                self._drop_worker(worker, "lease send failed")

    def sweep(self) -> None:
        """Periodic maintenance: expire silent workers, steal from
        stragglers, declare the run lost if the fleet never showed up.

        Driven by the dispatch backend's ``wait()`` — no timer thread.
        """
        now = time.monotonic()
        expired: List[_Worker] = []
        steal_from: Optional[_Worker] = None
        stolen: List[str] = []
        with self._lock:
            for worker in list(self._workers.values()):
                if now - worker.last_seen > self.lease_timeout:
                    expired.append(worker)
            live = [w for w in self._workers.values() if w not in expired]
            # Steal: someone is idle, the queue is dry, and a straggler
            # sits on more unstarted work than it has started.
            if live and not self._ready:
                idle = [w for w in live if not w.leased]
                stragglers = sorted((w for w in live if len(w.unstarted) > 1),
                                    key=lambda w: -len(w.unstarted))
                if idle and stragglers:
                    straggler = stragglers[0]
                    victims = sorted(straggler.unstarted)
                    stolen = victims[:max(1, len(victims) // 2)]
                    for tid in stolen:
                        straggler.leased.discard(tid)
                    self._ready.extend(stolen)
                    self.stats.steals += len(stolen)
                    steal_from = straggler
            # Empty fleet past the grace period: every pending task is
            # going nowhere — surface them as lost so the run degrades.
            if not self._workers and not self._closing:
                anchor = self._last_worker_seen or self._started_at
                if now - anchor > self.grace:
                    pending = [tid for tid in self._tasks
                               if tid not in self._results]
                    for tid in pending:
                        self._results[tid] = (
                            "lost", "no workers joined within "
                                    f"{self.grace:.0f}s grace")
                    if pending:
                        self._completed.notify_all()
        for worker in expired:
            self.stats.expiries += 1
            try:
                worker.sock.close()
            except OSError:
                pass
            self._drop_worker(worker, "lease expired (no heartbeat)")
        if steal_from is not None and steal_from.alive:
            try:
                send_line(steal_from.sock, steal_from.send_lock,
                          {"op": "revoke", "tasks": stolen})
            except OSError:
                self._drop_worker(steal_from, "revoke send failed")
        if stolen or expired:
            self._fill()

    # -- dispatch-facing API --------------------------------------------------

    def submit(self, task_id: str, fn_name: str, args_b64: str) -> None:
        with self._lock:
            self._tasks[task_id] = {"fn": fn_name, "args_b64": args_b64,
                                    "requeues": 0}
            self._results.pop(task_id, None)
            self._ready.append(task_id)
            self.stats.submitted += 1
        self._fill()

    def wait_any(self, task_ids: Sequence[str], timeout: float) -> List[str]:
        self.sweep()
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                done = [tid for tid in task_ids if tid in self._results]
                if done:
                    return done
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._completed.wait(remaining)

    def take_result(self, task_id: str) -> Tuple:
        with self._lock:
            outcome = self._results.pop(task_id)
            self._tasks.pop(task_id, None)
        return outcome

    def cancel(self, task_id: str) -> bool:
        """True only if the task is still unleased (guaranteed unrun)."""
        with self._lock:
            if task_id in self._ready:
                self._ready.remove(task_id)
                self._tasks.pop(task_id, None)
                self._results[task_id] = ("lost", "cancelled")
                self._completed.notify_all()
                return True
        return False

    def forget(self, task_ids: Sequence[str]) -> None:
        """Abandon tasks a closing backend no longer wants."""
        with self._lock:
            for tid in task_ids:
                self._tasks.pop(tid, None)
                self._results.pop(tid, None)
                try:
                    self._ready.remove(tid)
                except ValueError:
                    pass

    def total_slots(self) -> int:
        with self._lock:
            return sum(w.slots for w in self._workers.values())

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)


class SocketDispatchBackend(DispatchBackend):
    """The scheduler-facing facade over a :class:`SocketCoordinator`.

    Constructed from an address (owns a fresh coordinator for the run)
    or an already-started coordinator (shared across runs — the serve
    daemon's mode). Handles are namespaced task ids, so sharing is safe.
    """

    name = "workers"

    def __init__(self, coordinator, jobs: int = 0, batch: int = 4,
                 lease_timeout: float = 10.0, grace: float = 30.0):
        super().__init__()
        if isinstance(coordinator, SocketCoordinator):
            self._coordinator = coordinator
            self._own = False
        else:
            self._coordinator = SocketCoordinator(
                str(coordinator), batch=batch,
                lease_timeout=lease_timeout, grace=grace)
            self._own = True
        self.jobs = int(jobs)
        self._nonce = uuid.uuid4().hex[:8]
        self.stats = self._coordinator.stats

    @property
    def coordinator(self) -> SocketCoordinator:
        return self._coordinator

    def open(self) -> None:
        self._coordinator.start()

    def capacity(self) -> int:
        # Elastic: the whole fleet's slots (tasks queue at the
        # coordinator while workers are still dialing in). ``jobs``
        # caps it when set, so one run can be throttled below fleet
        # size; floor 1 keeps the scheduler submitting pre-join.
        slots = self._coordinator.total_slots()
        if self.jobs > 0 and slots > self.jobs:
            slots = self.jobs
        return max(1, slots)

    def submit(self, task) -> str:
        handle = f"{self._nonce}/{task.id}"
        self._coordinator.submit(handle, task_fn_name(task.fn),
                                 encode_args(tuple(task.args)))
        return handle

    def wait(self, handles: Sequence[str], timeout: float) -> List[str]:
        return self._coordinator.wait_any(list(handles), timeout)

    def result(self, handle: str) -> Tuple[Any, float]:
        outcome = self._coordinator.take_result(handle)
        if outcome[0] == "ok":
            return pickle.loads(base64.b64decode(outcome[1])), outcome[2]
        if outcome[0] == "err":
            raise RemoteTaskError(outcome[1], outcome[2])
        raise WorkerLost(outcome[1])

    def cancel(self, handle: str) -> bool:
        return self._coordinator.cancel(handle)

    def close(self, pending: Sequence[str]) -> None:
        self._coordinator.forget(list(pending))
        if self._own:
            self._coordinator.stop()
