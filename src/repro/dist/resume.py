"""``repro resume`` — restart a killed run from its ledger.

The ledger header holds everything needed to rebuild the dead run's
task graph: runner parameters, store root and backend, code-version
salt, and the serialized workload. Resume rebuilds the graph, then lets
the **store** decide what is left to do: every node whose durable output
probes present is pruned (the same ``prune_cached`` pass the serve warm
path uses, so probes can never disagree with the compute paths), and
only the remainder is scheduled. The ledger's own ``done`` records are
advisory — a node journaled done whose artifact has since been pruned
re-runs; a node the journal never saw whose artifact exists (published
by a worker the coordinator lost) is skipped anyway.

The durability invariant is enforced twice: ``prune_cached`` cannot
prune a node without a store address by construction, and
:func:`~repro.dist.ledger.assert_skippable` re-checks the final skip
set and refuses the resume if anything non-durable slipped in.

A salt mismatch (the code changed since the run died) refuses by
default: every artifact would miss and "resume" would silently be a
full re-run. ``allow_stale=True`` proceeds anyway.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.dist.ledger import LedgerError, RunLedger, assert_skippable


def workload_for_points(points, check: bool = False,
                        label: str = "experiments") -> Dict[str, Any]:
    """The ledger-header workload document for an experiment point set."""
    from repro.exec.grid import point_to_doc
    return {"kind": "experiments", "label": label, "check": check,
            "points": [point_to_doc(point) for point in points]}


def workload_for_limit_study(bench: str, input_name: str, config: str,
                             n_candidates: int,
                             subset_cap: Optional[int]) -> Dict[str, Any]:
    """The ledger-header workload document for a limit study."""
    return {"kind": "limit-study", "bench": bench, "input": input_name,
            "config": config, "n_candidates": n_candidates,
            "subset_cap": subset_cap}


def open_ledger(path, runner, workload: Dict[str, Any],
                extra: Optional[Dict[str, Any]] = None) -> RunLedger:
    """Start a fresh ledger for ``runner`` executing ``workload``."""
    from repro.exec.tasks import runner_params
    return RunLedger.create(
        path, workload=workload, runner_params=runner_params(runner),
        salt=runner.store.salt,
        cache_dir=str(runner.store.root) if runner.store.persistent
        else None,
        store_backend=runner.store.backend_name, extra=extra)


def resume_run(path, jobs: Optional[int] = None,
               on_event: Optional[Callable[[Dict], None]] = None,
               dispatch=None, allow_stale: bool = False,
               retries: int = 1, timeout: Optional[float] = None
               ) -> Dict[str, Any]:
    """Replay a ledger and execute exactly the missing work.

    Returns a summary dict: ``{"kind", "total", "skipped", "scheduled",
    "completed", "failed", "report"}``. ``jobs`` overrides the dead
    run's fan-out; ``dispatch`` substitutes a dispatch backend (resume
    on a worker fleet).
    """
    from repro.harness.runner import Runner

    header, journaled, completed = RunLedger.load(path)
    runner = Runner.from_params(header["runner"])
    if header.get("salt") != runner.store.salt and not allow_stale:
        raise LedgerError(
            f"code-version salt changed since this run "
            f"({header.get('salt')} -> {runner.store.salt}): every "
            f"artifact would miss, so this would be a full re-run, not "
            f"a resume. Pass --force to do it anyway.")
    if jobs is None:
        jobs = int(header.get("jobs", 1) or 1)
    workload = header.get("workload") or {}
    kind = workload.get("kind")

    if kind == "experiments":
        return _resume_experiments(path, header, workload, runner, jobs,
                                   on_event, dispatch, retries, timeout,
                                   journaled)
    if kind == "limit-study":
        return _resume_limit_study(path, header, workload, runner, jobs,
                                   on_event)
    raise LedgerError(f"ledger workload kind {kind!r} is not resumable")


def _resume_experiments(path, header, workload, runner, jobs,
                        on_event, dispatch, retries, timeout,
                        journaled: Dict[str, str]) -> Dict[str, Any]:
    from repro.exec.grid import build_tasks, point_from_doc, run_points
    from repro.serve.warm import prune_cached, task_artifact

    points = [point_from_doc(doc) for doc in workload.get("points", [])]
    check = bool(workload.get("check", False))
    tasks = build_tasks(points, runner, check=check)
    kept, pruned = prune_cached(runner, tasks)
    # The lint: nothing in the skip set may lack a durable output. The
    # pruner already guarantees this by construction; the assertion is
    # the enforced contract (and what refuses a hand-edited ledger that
    # claims a check node is done).
    durable = [task.id for task in tasks
               if task_artifact(runner, task) is not None]
    assert_skippable(tasks, durable, pruned)

    ledger = RunLedger.append_to(path, header)
    try:
        ledger.record_skipped_durable(pruned)
        report = run_points(runner, points, jobs=jobs, retries=retries,
                            timeout=timeout, on_event=on_event,
                            raise_on_failure=False, check=check,
                            ledger=ledger, dispatch=dispatch, tasks=kept)
    finally:
        ledger.close()
    return {"kind": "experiments", "total": len(tasks),
            "skipped": len(pruned), "scheduled": len(kept),
            "journaled_done": sum(1 for s in journaled.values()
                                  if s == "done"),
            "completed": len(report.results),
            "failed": len(report.failures), "report": report,
            "runner": runner, "points": points}


def _resume_limit_study(path, header, workload, runner, jobs,
                        on_event) -> Dict[str, Any]:
    """Limit studies resume through the store rather than DAG pruning:
    every completed subset mask is a durable ``subset`` artifact, so
    re-running the sweep evaluates only the missing masks (the scheduler
    still walks all of them, but each cached mask is a store hit, not a
    timing run)."""
    from repro.analysis.limit_study import run_limit_study
    from repro.pipeline.config import config_by_name

    hits_before, misses_before = runner.store.stats.by_kind.get(
        "subset", [0, 0])
    ledger = RunLedger.append_to(path, header)
    try:
        result = run_limit_study(
            runner, bench=workload["bench"],
            input_name=workload["input"],
            config=config_by_name(workload["config"]),
            n_candidates=int(workload["n_candidates"]),
            subset_cap=workload.get("subset_cap"), jobs=jobs,
            progress=ledger.sink(on_event))
        ledger.complete(len(result.points), 0)
    finally:
        ledger.close()
    hits, misses = runner.store.stats.by_kind.get("subset", [0, 0])
    return {"kind": "limit-study", "total": len(result.points),
            "skipped": hits - hits_before,
            "scheduled": misses - misses_before,
            "completed": len(result.points), "failed": 0,
            "result": result, "runner": runner}
