"""Unified metrics registry: namespaced counters, gauges, histograms.

Every subsystem that counts something — the timing core's
:class:`~repro.pipeline.stats.RunStats` and
:class:`~repro.pipeline.activity.ActivityCounters`, the cache/TLB
hierarchy, the branch unit, store sets, the artifact store, the DAG
scheduler — can be *harvested* into one :class:`MetricsRegistry` through
the ``collect_*`` adapters below. Collection is post-hoc: the simulator
keeps its existing plain-integer counters on the hot path (so C-kernel
eligibility and the golden matrix are untouched) and the registry reads
them out after a run. See ``docs/observability.md`` for the namespace
conventions and the export schema.

Registries support snapshot/delta semantics (:meth:`MetricsRegistry.
snapshot` / :meth:`MetricsRegistry.delta`) and two exporters: a JSON
document (``{"schema": 1, "metrics": [...]}``) and the Prometheus text
exposition format. ``repro metrics`` is the CLI frontend.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence

#: Version of the ``to_json``/``validate_metrics`` document schema.
METRICS_SCHEMA = 1

#: Default histogram bucket upper bounds (powers of two, cycles/events).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

_NAME_ALLOWED = set("abcdefghijklmnopqrstuvwxyz0123456789_.")


class MetricsError(ValueError):
    """An invalid metric name, kind clash, or malformed export document."""


def _check_name(name: str) -> str:
    """Validate a dotted metric name (``namespace.metric``)."""
    if not name or name[0] == "." or name[-1] == ".":
        raise MetricsError(f"invalid metric name {name!r}")
    if not set(name) <= _NAME_ALLOWED:
        raise MetricsError(
            f"invalid metric name {name!r} "
            f"(lowercase letters, digits, '_' and '.' only)")
    return name


class Counter:
    """A monotonically increasing count of events."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise MetricsError(
                f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        """Export entry for the JSON document."""
        return {"name": self.name, "kind": self.kind, "help": self.help,
                "value": self.value}


class Gauge:
    """A point-in-time value that may go up or down."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def to_dict(self) -> Dict[str, Any]:
        """Export entry for the JSON document."""
        return {"name": self.name, "kind": self.kind, "help": self.help,
                "value": self.value}


class Histogram:
    """A distribution over fixed, cumulative-style buckets.

    ``buckets`` holds the inclusive upper bound of each bin; observations
    above the last bound land in the implicit ``+Inf`` bin. Counts are
    stored per-bin and cumulated at export time (the Prometheus
    convention).
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricsError(
                f"histogram {name}: buckets must be non-empty and sorted")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[int]:
        """Per-bucket cumulative counts, ending with the total."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Export entry for the JSON document."""
        return {"name": self.name, "kind": self.kind, "help": self.help,
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "sum": self.sum, "count": self.count}


class MetricsRegistry:
    """A namespace of metrics with snapshot/delta and export support."""

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str):
        """The registered metric object, or ``None``."""
        return self._metrics.get(name)

    def _register(self, cls, name: str, help: str, **kwargs):
        _check_name(name)
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Register (or fetch) a counter."""
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Register (or fetch) a gauge."""
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Register (or fetch) a histogram."""
        return self._register(Histogram, name, help, buckets=buckets)

    # -- snapshot / delta -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Freeze current values: ``{name: value-or-(sum, count)}``."""
        snap: Dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if metric.kind == "histogram":
                snap[name] = (metric.sum, metric.count)
            else:
                snap[name] = metric.value
        return snap

    def delta(self, since: Dict[str, Any]) -> Dict[str, Any]:
        """Change of every metric relative to a :meth:`snapshot`.

        Metrics registered after the snapshot diff against zero; gauges
        report their raw difference (which may be negative).
        """
        out: Dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if metric.kind == "histogram":
                base_sum, base_count = since.get(name, (0.0, 0))
                out[name] = (metric.sum - base_sum,
                             metric.count - base_count)
            else:
                out[name] = metric.value - since.get(name, 0)
        return out

    # -- exporters ------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The JSON export document (see ``docs/observability.md``)."""
        return {"schema": METRICS_SCHEMA,
                "metrics": [self._metrics[name].to_dict()
                            for name in sorted(self._metrics)]}

    def to_prometheus(self) -> str:
        """Prometheus text exposition (dots become underscores)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            flat = name.replace(".", "_")
            if metric.help:
                lines.append(f"# HELP {flat} {metric.help}")
            lines.append(f"# TYPE {flat} {metric.kind}")
            if metric.kind == "histogram":
                cumulative = metric.cumulative()
                for bound, count in zip(metric.buckets, cumulative):
                    le = _format_value(bound)
                    lines.append(f'{flat}_bucket{{le="{le}"}} {count}')
                lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative[-1]}')
                lines.append(f"{flat}_sum {_format_value(metric.sum)}")
                lines.append(f"{flat}_count {metric.count}")
            else:
                lines.append(f"{flat} {_format_value(metric.value)}")
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    """Integral floats render without a trailing ``.0``."""
    if isinstance(value, float) and math.isfinite(value) \
            and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def validate_metrics(doc: Any) -> int:
    """Validate a :meth:`MetricsRegistry.to_json` document.

    Returns the number of metrics; raises :class:`MetricsError` on any
    deviation from the documented schema.
    """
    if not isinstance(doc, dict):
        raise MetricsError("metrics document must be a JSON object")
    if doc.get("schema") != METRICS_SCHEMA:
        raise MetricsError(
            f"unsupported metrics schema {doc.get('schema')!r} "
            f"(expected {METRICS_SCHEMA})")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        raise MetricsError("'metrics' must be a list")
    seen = set()
    for i, entry in enumerate(metrics):
        if not isinstance(entry, dict):
            raise MetricsError(f"metrics[{i}] is not an object")
        name = entry.get("name")
        if not isinstance(name, str):
            raise MetricsError(f"metrics[{i}] has no string 'name'")
        _check_name(name)
        if name in seen:
            raise MetricsError(f"duplicate metric {name!r}")
        seen.add(name)
        kind = entry.get("kind")
        if kind not in ("counter", "gauge", "histogram"):
            raise MetricsError(f"{name}: bad kind {kind!r}")
        if not isinstance(entry.get("help", ""), str):
            raise MetricsError(f"{name}: 'help' must be a string")
        if kind == "histogram":
            buckets = entry.get("buckets")
            counts = entry.get("counts")
            if not isinstance(buckets, list) or not buckets \
                    or buckets != sorted(buckets):
                raise MetricsError(f"{name}: bad histogram buckets")
            if not isinstance(counts, list) \
                    or len(counts) != len(buckets) + 1 \
                    or any(not isinstance(c, int) or c < 0 for c in counts):
                raise MetricsError(f"{name}: bad histogram counts")
            if not isinstance(entry.get("count"), int) \
                    or entry["count"] != sum(counts):
                raise MetricsError(f"{name}: histogram count mismatch")
            if not isinstance(entry.get("sum"), (int, float)):
                raise MetricsError(f"{name}: bad histogram sum")
        else:
            if not isinstance(entry.get("value"), (int, float)):
                raise MetricsError(f"{name}: missing numeric 'value'")
            if kind == "counter" and entry["value"] < 0:
                raise MetricsError(f"{name}: counter is negative")
    return len(metrics)


# ---------------------------------------------------------------------------
# Post-hoc collection adapters (one per subsystem namespace)
# ---------------------------------------------------------------------------

def collect_run(registry: MetricsRegistry, stats,
                prefix: str = "core") -> None:
    """Harvest a :class:`~repro.pipeline.stats.RunStats` into ``core.*``."""
    fields = (
        ("cycles", "Simulated cycles"),
        ("cycles_skipped", "Cycles proven idle and skipped"),
        ("original_committed", "Committed original-program instructions"),
        ("handles_committed", "Committed mini-graph handles"),
        ("embedded_committed", "Instructions inside committed handles"),
        ("outline_jumps_committed", "Outline overhead jumps committed"),
        ("slots_committed", "Commit-stage slots consumed"),
        ("fetch_cycles_blocked", "Cycles fetch was branch-blocked"),
        ("icache_stall_cycles", "Cycles fetch stalled on the I-cache"),
        ("cond_branches", "Conditional branches predicted"),
        ("cond_mispredicts", "Conditional branch mispredictions"),
        ("indirect_branches", "Indirect branches predicted"),
        ("indirect_mispredicts", "Indirect branch mispredictions"),
        ("loads_issued", "Loads issued"),
        ("store_forwards", "Loads satisfied by store forwarding"),
        ("ordering_violations", "Memory ordering violations"),
        ("replays", "Issue replays after wrong speculative wakeup"),
        ("mg_serialized_instances", "Handles issued input-serialized"),
        ("mg_consumer_delays", "Serialization propagated to a consumer"),
        ("mg_disabled_instances", "Handles executed in outlined form"),
        ("mgt_misses", "Mini-Graph Table fills at fetch"),
    )
    for field, help_text in fields:
        counter = registry.counter(f"{prefix}.{field}", help_text)
        counter.inc(int(getattr(stats, field)))
    registry.gauge(f"{prefix}.ipc",
                   "Original instructions per cycle").set(stats.ipc)
    registry.gauge(f"{prefix}.coverage",
                   "Fraction of instructions in handles").set(stats.coverage)
    for key, value in sorted((stats.cache_stats or {}).items()):
        registry.counter(f"cache.{key}",
                         "Cache misses (from RunStats)").inc(int(value))
    if stats.activity is not None:
        collect_activity(registry, stats.activity)


def collect_activity(registry: MetricsRegistry, activity,
                     prefix: str = "activity") -> None:
    """Harvest :class:`~repro.pipeline.activity.ActivityCounters`."""
    for field in ("fetch_slots", "rename_ops", "rename_map_reads",
                  "phys_allocations", "iq_insertions", "iq_occupancy",
                  "window_occupancy", "select_slots", "regfile_reads",
                  "regfile_writes", "commit_slots", "cycles"):
        registry.counter(f"{prefix}.{field}",
                         "Structure-activity event count").inc(
            int(getattr(activity, field)))
    registry.gauge(f"{prefix}.avg_iq_occupancy",
                   "Mean issue-queue occupancy").set(
        activity.avg_iq_occupancy)
    registry.gauge(f"{prefix}.avg_window_occupancy",
                   "Mean window occupancy").set(
        activity.avg_window_occupancy)


def collect_hierarchy(registry: MetricsRegistry, hierarchy) -> None:
    """Harvest caches, TLBs and prefetchers into ``cache.*``/``tlb.*``."""
    for cache in (hierarchy.il1, hierarchy.dl1, hierarchy.l2):
        base = f"cache.{cache.name}"
        registry.counter(f"{base}.accesses",
                         f"{cache.name} accesses").inc(cache.accesses)
        registry.counter(f"{base}.misses",
                         f"{cache.name} misses").inc(cache.misses)
    for name, tlb in (("itlb", hierarchy.itlb), ("dtlb", hierarchy.dtlb)):
        registry.counter(f"tlb.{name}.accesses",
                         f"{name} accesses").inc(tlb.accesses)
        registry.counter(f"tlb.{name}.misses",
                         f"{name} misses").inc(tlb.misses)
    for name, prefetcher in (("il1", hierarchy.il1_prefetcher),
                             ("dl1", hierarchy.dl1_prefetcher)):
        if prefetcher is not None:
            registry.counter(f"prefetch.{name}.issued",
                             f"{name} prefetches issued").inc(
                prefetcher.issued)


def collect_branch(registry: MetricsRegistry, branch_unit) -> None:
    """Harvest the :class:`~repro.pipeline.branch.BranchUnit`."""
    pairs = (("cond_predictions", branch_unit.cond_predictions),
             ("cond_mispredictions", branch_unit.cond_mispredictions),
             ("indirect_predictions", branch_unit.indirect_predictions),
             ("indirect_mispredictions",
              branch_unit.indirect_mispredictions))
    for field, value in pairs:
        registry.counter(f"branch.{field}",
                         "Branch predictor event count").inc(value)


def collect_storesets(registry: MetricsRegistry, storesets) -> None:
    """Harvest the :class:`~repro.pipeline.storesets.StoreSets` table."""
    registry.counter("storesets.violations",
                     "Ordering violations trained into store sets").inc(
        storesets.violations)


def collect_core(registry: MetricsRegistry, core) -> None:
    """Harvest every counter a finished :class:`OoOCore` run exposes."""
    collect_run(registry, core.stats)
    collect_hierarchy(registry, core.hierarchy)
    collect_branch(registry, core.branch_unit)
    collect_storesets(registry, core.storesets)


def collect_ckern(registry: MetricsRegistry, counters=None) -> None:
    """Harvest the compiled kernel's process-wide dispatch counters.

    ``ckern.counters`` tracks batched native dispatch (how many
    ``repro_run_batch`` calls ran, how many points they covered, how
    many points fell back to per-point execution) and the previously
    silent event-tap overflow retries. Pass a mapping to harvest a
    snapshot; the default reads the live module counters.
    """
    if counters is None:
        from ..pipeline import ckern
        counters = ckern.counters
    registry.counter("ckern.batch_dispatches",
                     "Batched native kernel calls").inc(
        counters.get("batch_dispatches", 0))
    registry.counter("ckern.batch_points",
                     "Timing points run through batched dispatch").inc(
        counters.get("batch_points", 0))
    registry.counter("ckern.batch_fallbacks",
                     "Batched points rerun through the per-point "
                     "path").inc(counters.get("batch_fallbacks", 0))
    registry.gauge("ckern.batch_threads",
                   "C threads used by the last batched dispatch").set(
        counters.get("batch_threads_last", 0))
    registry.counter("ckern.tap_overflow_retries",
                     "Event-tap buffers regrown 4x after overflow").inc(
        counters.get("tap_overflow_retries", 0))
    registry.counter("ckern.profiles_built_native",
                     "Slack profiles built by the one-call C path").inc(
        counters.get("profiles_built_native", 0))
    registry.counter("ckern.candidates_enumerated_native",
                     "Candidates packed by the C enumerator").inc(
        counters.get("candidates_enumerated_native", 0))
    registry.counter("ckern.scoring_calls",
                     "Whole-set delay-model scoring calls").inc(
        counters.get("scoring_calls", 0))
    registry.counter("ckern.global_folds_native",
                     "Global-slack event folds run in C").inc(
        counters.get("global_folds_native", 0))
    registry.counter("ckern.plan_fallbacks",
                     "Plan-kernel calls degraded to the Python "
                     "reference").inc(counters.get("plan_fallbacks", 0))


def collect_store(registry: MetricsRegistry, store) -> None:
    """Harvest :class:`~repro.exec.store.ArtifactStore` lookup stats."""
    stats = store.stats
    registry.counter("store.memory_hits",
                     "Artifact-store memory-layer hits").inc(
        stats.memory_hits)
    registry.counter("store.disk_hits",
                     "Artifact-store disk-layer hits").inc(stats.disk_hits)
    registry.counter("store.misses",
                     "Artifact-store misses").inc(stats.misses)
    registry.counter("store.puts",
                     "Artifacts published").inc(stats.puts)
    registry.counter("store.corrupt_dropped",
                     "Corrupt disk artifacts dropped").inc(
        stats.corrupt_dropped)
    registry.gauge("store.hit_rate",
                   "Artifact-store hit rate").set(stats.hit_rate)
    for kind, (hit, miss) in sorted(stats.by_kind.items()):
        registry.counter(f"store.kind.{kind}.hits",
                         f"{kind} artifact hits").inc(hit)
        registry.counter(f"store.kind.{kind}.misses",
                         f"{kind} artifact misses").inc(miss)


def collect_server(registry: MetricsRegistry, server) -> None:
    """Harvest a running :class:`~repro.serve.server.ServeApp`.

    Duck-typed (``server.stats`` counters plus ``server.queue`` gauges)
    so this module never imports the serve package.
    """
    stats = server.stats
    registry.counter("server.jobs_submitted",
                     "Jobs admitted to the queue").inc(stats.submitted)
    registry.counter("server.jobs_completed",
                     "Jobs finished successfully").inc(stats.completed)
    registry.counter("server.jobs_failed",
                     "Jobs finished with an error").inc(stats.failed)
    registry.counter("server.jobs_cancelled",
                     "Jobs cancelled before completion").inc(stats.cancelled)
    registry.counter("server.jobs_rejected",
                     "Submissions rejected by quota").inc(stats.rejected)
    registry.counter("server.warm_hits",
                     "Jobs answered with zero scheduled nodes").inc(
        stats.warm_hits)
    registry.counter("server.nodes_scheduled",
                     "DAG nodes actually executed").inc(
        stats.nodes_scheduled)
    registry.counter("server.nodes_pruned",
                     "DAG nodes served from the store").inc(
        stats.nodes_pruned)
    registry.counter("server.store_corruptions",
                     "Corrupt artifacts recovered as misses").inc(
        stats.store_corruptions)
    registry.counter("server.results_evicted",
                     "Terminal jobs evicted from the job table").inc(
        getattr(stats, "results_evicted", 0))
    registry.counter("server.events_truncated",
                     "Job events dropped by log truncation").inc(
        getattr(stats, "events_truncated", 0))
    registry.gauge("server.queue_depth",
                   "Jobs queued, not yet dispatched").set(
        server.queue.depth)
    registry.gauge("server.active_jobs",
                   "Jobs currently running").set(server.queue.active)
    registry.gauge("server.warm_hit_ratio",
                   "Warm hits / completed jobs").set(stats.warm_hit_ratio)


def collect_dist(registry: MetricsRegistry, stats) -> None:
    """Harvest dispatch-backend counters as ``dist.*`` metrics.

    Duck-typed over :class:`~repro.dist.dispatch.DispatchStats` (or any
    mapping / ``as_dict()`` carrier) so this module never imports the
    dist package.
    """
    doc = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
    descriptions = {
        "submitted": "Tasks handed to the dispatch backend",
        "completed": "Tasks finished by workers",
        "failed": "Tasks that raised on a worker",
        "leases": "Task leases granted to workers",
        "steals": "Leases stolen from stragglers",
        "expiries": "Leases expired past their deadline",
        "reassigned": "Tasks rescheduled after a lost worker",
        "workers_joined": "Workers that joined the coordinator",
        "workers_lost": "Workers lost to heartbeat timeout",
    }
    extra = doc.pop("extra", None) or {}
    for name, value in sorted(doc.items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        registry.counter(f"dist.{name}",
                         descriptions.get(name, f"dispatch {name}")).inc(
            value)
    for name, value in sorted(extra.items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            registry.gauge(f"dist.{name}", f"dispatch {name}").set(value)


def collect_tune(registry: MetricsRegistry, stats) -> None:
    """Harvest autotuner counters as ``tune.*`` metrics.

    Duck-typed over :class:`~repro.tune.tuner.TuneStats` (or any
    mapping / ``as_dict()`` carrier) so this module never imports the
    tune package.
    """
    doc = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
    gauges = {
        "frontier_size": "Pareto-frontier size of the final rung",
        "dominated": "Dominated trials pruned from the frontier",
    }
    descriptions = {
        "space_trials": "Trials enumerated by the search space",
        "planned_trials": "Trials selected by the strategy",
        "evaluations": "(trial, rung) evaluations executed",
        "resumed": "(trial, rung) evaluations replayed from the ledger",
        "rungs": "Trace-length rungs scheduled",
        "store_hits": "Artifact-store hits during the search",
        "store_misses": "Artifact-store misses during the search",
    }
    for name, value in sorted(doc.items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if name in gauges:
            registry.gauge(f"tune.{name}", gauges[name]).set(value)
        else:
            registry.counter(f"tune.{name}",
                             descriptions.get(name, f"tune {name}")).inc(
                value)


def collect_exec_report(registry: MetricsRegistry, report) -> None:
    """Harvest a scheduler :class:`~repro.exec.dag.ExecReport`."""
    registry.counter("exec.tasks_done",
                     "Scheduler tasks completed").inc(len(report.results))
    registry.counter("exec.tasks_failed",
                     "Scheduler tasks failed").inc(len(report.failures))
    registry.counter("exec.retries",
                     "Scheduler task retries").inc(report.retries)
    registry.gauge("exec.elapsed_s",
                   "Scheduler wall-clock seconds").set(report.elapsed)
    registry.gauge("exec.degraded",
                   "1 if the run degraded to serial").set(
        1.0 if report.degraded else 0.0)
    wall = registry.histogram("exec.stage_wall_s",
                              "Per-stage wall seconds",
                              buckets=(0.1, 0.5, 1, 5, 10, 30, 60, 300))
    for stage, seconds in sorted(report.stage_wall.items()):
        wall.observe(seconds)
        registry.counter(f"exec.stage.{stage}.tasks",
                         f"{stage} tasks run").inc(
            report.stage_tasks.get(stage, 0))


def run_registry(stats=None, core=None, store=None,
                 exec_report=None) -> MetricsRegistry:
    """Convenience builder: one registry over whatever is available."""
    registry = MetricsRegistry()
    if core is not None:
        collect_core(registry, core)
    elif stats is not None:
        collect_run(registry, stats)
    if store is not None:
        collect_store(registry, store)
    if exec_report is not None:
        collect_exec_report(registry, exec_report)
    collect_ckern(registry)
    return registry
