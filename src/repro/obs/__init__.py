"""Observability subsystem: metrics, run telemetry, delay attribution.

Three post-hoc layers over the whole stack (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — a namespaced registry the simulator's
  counters (RunStats, activity, caches/TLBs, branch unit, store sets),
  the artifact store and the exec DAG are harvested into, with JSON and
  Prometheus-text exporters (``repro metrics``);
* :mod:`repro.obs.telemetry` — Chrome trace-event–compatible JSONL spans
  and instants, headed by a run manifest (git SHA, config digest, seed,
  code-version salt), behind ``--telemetry`` on ``experiments`` /
  ``limit-study`` / ``bench``;
* :mod:`repro.obs.attribution` — per-mini-graph observed serialization
  delay joined against the delay model's predictions
  (``repro attribution``).

Hard contract: with observability off, the timing core's C-kernel
eligibility and the golden matrix stay bit-identical; attaching any
observer is explicit, post-hoc, and bounded in overhead (the CI
telemetry-smoke job measures it).
"""

from .attribution import (  # noqa: F401
    ATTRIBUTION_SELECTORS, AttributionCollector, PointAttribution,
    SiteAttribution, attribute_point, render_table, run_attribution,
)
from .metrics import (  # noqa: F401
    METRICS_SCHEMA, Counter, Gauge, Histogram, MetricsError,
    MetricsRegistry, collect_activity, collect_branch, collect_ckern,
    collect_core, collect_exec_report, collect_hierarchy, collect_run,
    collect_store, collect_storesets, run_registry, validate_metrics,
)
from .telemetry import (  # noqa: F401
    TELEMETRY_SCHEMA, TelemetryError, TelemetryWriter,
    attach_store_telemetry, config_digest, git_sha, run_manifest,
    scheduler_telemetry, validate_file, validate_telemetry,
)
