"""Serialization-delay attribution: predicted vs. observed induced delay.

The Slack-Profile selector *predicts*, via delay-model rules #1–#4
(:mod:`repro.minigraph.delay_model`), how many cycles aggregation will
delay each mini-graph's outputs — but nothing in the pipeline measured
what each admitted mini-graph actually cost. This module closes that
loop. An :class:`AttributionCollector` attached to the timing core
receives one event per
issued handle with the observed external-serialization delay — the
issue-time delta between the aggregate (which waits for *all* external
inputs, rule #1) and its first constituent's singleton estimate (which
waits only for its own inputs) — plus the propagated consumer-delay
events the core already detects.

Observed delays are aggregated per site and per template and joined
against the delay model's predictions for the same sites, so ``repro
attribution`` can print a predicted-vs-observed table for every selector
(all five: struct-all, struct-none, struct-bounded, slack-profile,
slack-dynamic). A selector that admits serializing mini-graphs
(Struct-All) should show observed serialization the model predicted;
Slack-Profile, which rejects predicted-degrading candidates, should show
the residue the profile could not see.

Attaching the collector no longer forces the Python reference loop: it
advertises ``supports_ckern_tap``, so the compiled kernel records packed
HANDLE/CDELAY events and :meth:`AttributionCollector.ingest_ckern_tap`
rebuilds the same per-site tallies post-hoc, bit-identical to the
in-loop path (only a run-time policy — Slack-Dynamic — still requires
the Python loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..minigraph.delay_model import assess
from ..pipeline.ckern import TAP_CDELAY as _TAP_CDELAY, \
    TAP_HANDLE as _TAP_HANDLE

#: The five paper selectors the attribution table covers.
ATTRIBUTION_SELECTORS = ("struct-all", "struct-none", "struct-bounded",
                         "slack-profile", "slack-dynamic")


class _SiteCounts:
    """Observed per-site tallies (internal to the collector)."""

    __slots__ = ("site", "instances", "serialized", "ext_delay_cycles",
                 "consumer_delays")

    def __init__(self, site):
        self.site = site
        self.instances = 0
        self.serialized = 0
        self.ext_delay_cycles = 0
        self.consumer_delays = 0


class AttributionCollector:
    """Receives per-handle issue events from the timing core.

    Attach via ``OoOCore(config, records, attribution=collector)``. The
    collector only *reads* — it never perturbs the simulated schedule —
    and it supports the compiled kernel's event tap, so attribution runs
    stay on the fast path: the kernel logs one HANDLE event per issued
    handle (plus CDELAY events) and :meth:`ingest_ckern_tap` replays
    them into the exact tallies the in-loop callbacks would produce.
    """

    #: The compiled kernel may run with the event tap instead of this
    #: collector's in-loop callbacks (see :meth:`ingest_ckern_tap`).
    supports_ckern_tap = True

    def __init__(self):
        self.by_site: Dict[int, _SiteCounts] = {}
        self.handles_issued = 0

    def _counts(self, site) -> _SiteCounts:
        entry = self.by_site.get(site.id)
        if entry is None:
            entry = self.by_site[site.id] = _SiteCounts(site)
        return entry

    def on_handle_issue(self, site, cycle: int, first_ready: int,
                        last_arrival: int, serialized: bool,
                        sial: bool) -> None:
        """One handle issued.

        ``first_ready`` is when the first constituent's own external
        inputs were ready (its singleton issue estimate); ``last_arrival``
        is when the last external input of the whole mini-graph arrived
        (rule #1's aggregate bound). When the handle is input-bound
        (``serialized``), the difference is the observed induced delay.
        """
        entry = self._counts(site)
        entry.instances += 1
        self.handles_issued += 1
        if serialized:
            entry.serialized += 1
            entry.ext_delay_cycles += max(0, last_arrival - first_ready)

    def on_consumer_delay(self, site) -> None:
        """A serialized handle's output arrival delayed a consumer."""
        self._counts(site).consumer_delays += 1

    def ingest_ckern_tap(self, packed, events, n_words: int,
                         n_committed: int) -> None:
        """Replay HANDLE/CDELAY events from the kernel's packed log.

        The kernel emits one HANDLE event per issued handle instance
        (``a = serialized | sial << 1``, ``b = last_arrival -
        first_ready``) at the exact point ``_execute_handle`` would have
        called :meth:`on_handle_issue`, and one CDELAY event per
        detected consumer delay, carrying the serialized producer
        handle's record index. Tallies are order-independent sums, so
        the result is bit-identical to the in-loop path.
        """
        objs = packed.objs
        handle, cdelay = _TAP_HANDLE, _TAP_CDELAY
        i = 0
        while i < n_words:
            w0 = events[i]
            tag = w0 & 15
            if tag == handle:
                site = objs[w0 >> 4].site
                entry = self._counts(site)
                entry.instances += 1
                self.handles_issued += 1
                if events[i + 1] & 1:  # serialized
                    entry.serialized += 1
                    delta = events[i + 2]
                    if delta > 0:
                        entry.ext_delay_cycles += delta
            elif tag == cdelay:
                self._counts(objs[w0 >> 4].site).consumer_delays += 1
            i += 3


@dataclass
class SiteAttribution:
    """Predicted-vs-observed join for one selected mini-graph site."""

    site_id: int
    template_id: int
    size: int
    frequency: int
    predicted_delay: Optional[float]   # max output delay (rule #3), cycles
    predicted_degrades: Optional[bool]  # rule #4 verdict
    predicted_sial: Optional[bool]      # SIAL heuristic verdict
    instances: int = 0
    serialized: int = 0
    ext_delay_cycles: int = 0
    consumer_delays: int = 0

    @property
    def profiled(self) -> bool:
        """Whether the delay model could assess this site."""
        return self.predicted_delay is not None


@dataclass
class PointAttribution:
    """Attribution result for one (selector, benchmark, config) run."""

    selector: str
    bench: str
    config: str
    cycles: int
    handles_issued: int
    sites: List[SiteAttribution] = field(default_factory=list)

    # -- aggregates -----------------------------------------------------------

    @property
    def instances(self) -> int:
        return sum(s.instances for s in self.sites)

    @property
    def serialized(self) -> int:
        return sum(s.serialized for s in self.sites)

    @property
    def consumer_delays(self) -> int:
        return sum(s.consumer_delays for s in self.sites)

    @property
    def observed_serialized_rate(self) -> float:
        """Fraction of issued handles that were input-serialized."""
        n = self.instances
        return self.serialized / n if n else 0.0

    @property
    def observed_delay_per_handle(self) -> float:
        """Mean observed external-serialization cycles per handle."""
        n = self.instances
        return (sum(s.ext_delay_cycles for s in self.sites) / n
                if n else 0.0)

    @property
    def predicted_serialized_rate(self) -> float:
        """Frequency-weighted share of instances at predicted-SIAL sites."""
        total = sum(s.frequency for s in self.sites if s.profiled)
        if not total:
            return 0.0
        hit = sum(s.frequency for s in self.sites
                  if s.profiled and s.predicted_sial)
        return hit / total

    @property
    def predicted_delay_per_handle(self) -> float:
        """Frequency-weighted mean predicted output delay (cycles)."""
        total = sum(s.frequency for s in self.sites if s.profiled)
        if not total:
            return 0.0
        weighted = sum(s.predicted_delay * s.frequency
                       for s in self.sites if s.profiled)
        return weighted / total

    @property
    def unprofiled_sites(self) -> int:
        return sum(1 for s in self.sites if not s.profiled)


def _selector_instance(name: str):
    """Construct one of the five paper selectors by table name."""
    from ..minigraph.selectors import (
        SlackDynamicSelector, SlackProfileSelector, StructAll, StructBounded,
        StructNone,
    )
    table = {"struct-all": StructAll, "struct-none": StructNone,
             "struct-bounded": StructBounded,
             "slack-profile": SlackProfileSelector,
             "slack-dynamic": SlackDynamicSelector}
    try:
        return table[name]()
    except KeyError:
        raise ValueError(
            f"unknown selector {name!r} for attribution "
            f"(choose from {', '.join(ATTRIBUTION_SELECTORS)})") from None


def attribute_point(runner, bench: str, selector_name: str,
                    config) -> PointAttribution:
    """Run one attribution point and join predictions with observations.

    Uses the runner's memoized trace/profile/plan artifacts but performs
    the timing run directly (an attribution collector cannot ride a
    memoized result — the event stream is the product).
    """
    from ..minigraph.transform import fold_trace
    from ..pipeline.config import config_by_name
    from ..pipeline.core import OoOCore

    selector = _selector_instance(selector_name)
    plan = runner.plan(bench, selector)
    trace = runner.trace(bench)
    records = fold_trace(trace, plan)
    profile = runner.slack_profile(bench, config_by_name("reduced"))

    policy = None
    if selector_name == "slack-dynamic":
        from ..minigraph.dynamic import SlackDynamicPolicy
        policy = SlackDynamicPolicy()

    collector = AttributionCollector()
    core = OoOCore(config, records, policy=policy,
                   warm_caches=runner.warm_caches, attribution=collector)
    stats = core.run()

    point = PointAttribution(selector=selector_name, bench=bench,
                             config=config.name, cycles=stats.cycles,
                             handles_issued=collector.handles_issued)
    for site in plan.sites:
        verdict = assess(site.candidate, profile)
        observed = collector.by_site.get(site.id)
        point.sites.append(SiteAttribution(
            site_id=site.id,
            template_id=site.template.id,
            size=site.candidate.size,
            frequency=site.frequency,
            predicted_delay=(verdict.max_output_delay
                             if verdict is not None else None),
            predicted_degrades=(verdict.degrades
                                if verdict is not None else None),
            predicted_sial=(verdict.degrades_sial
                            if verdict is not None else None),
            instances=observed.instances if observed else 0,
            serialized=observed.serialized if observed else 0,
            ext_delay_cycles=observed.ext_delay_cycles if observed else 0,
            consumer_delays=observed.consumer_delays if observed else 0,
        ))
    return point


def run_attribution(runner, benchmarks: Sequence[str],
                    selectors: Sequence[str] = ATTRIBUTION_SELECTORS,
                    config=None, log=None) -> List[PointAttribution]:
    """Attribution matrix over ``benchmarks`` × ``selectors``."""
    from ..pipeline.config import config_by_name
    if config is None:
        config = config_by_name("reduced")
    if not benchmarks:
        raise ValueError("attribution needs at least one benchmark")
    if not selectors:
        raise ValueError("attribution needs at least one selector")
    points = []
    for selector in selectors:
        for bench in benchmarks:
            point = attribute_point(runner, bench, selector, config)
            points.append(point)
            if log is not None:
                log(f"[attr] {selector}/{bench}: "
                    f"{point.instances} handles, "
                    f"{point.observed_serialized_rate:.1%} serialized")
    return points


def render_table(points: Sequence[PointAttribution],
                 per_template: bool = False) -> str:
    """The predicted-vs-observed serialization table.

    One row per (selector, benchmark) plus a per-selector TOTAL row;
    ``per_template`` appends a detail section listing the worst templates
    by observed external-serialization delay.
    """
    header = (f"{'selector':<15s} {'bench':<10s} {'sites':>5s} "
              f"{'handles':>8s} {'pred-ser%':>9s} {'obs-ser%':>9s} "
              f"{'pred-dly':>8s} {'obs-dly':>8s} {'cons-dly':>8s}")
    lines = [header, "-" * len(header)]
    by_selector: Dict[str, List[PointAttribution]] = {}
    for point in points:
        by_selector.setdefault(point.selector, []).append(point)
    for selector, group in by_selector.items():
        for p in group:
            lines.append(
                f"{p.selector:<15s} {p.bench:<10s} {len(p.sites):>5d} "
                f"{p.instances:>8d} {p.predicted_serialized_rate:>9.1%} "
                f"{p.observed_serialized_rate:>9.1%} "
                f"{p.predicted_delay_per_handle:>8.2f} "
                f"{p.observed_delay_per_handle:>8.2f} "
                f"{p.consumer_delays:>8d}")
        instances = sum(p.instances for p in group)
        serialized = sum(p.serialized for p in group)
        ext = sum(s.ext_delay_cycles for p in group for s in p.sites)
        cons = sum(p.consumer_delays for p in group)
        lines.append(
            f"{selector:<15s} {'TOTAL':<10s} "
            f"{sum(len(p.sites) for p in group):>5d} {instances:>8d} "
            f"{'':>9s} "
            f"{serialized / instances if instances else 0.0:>9.1%} "
            f"{'':>8s} {ext / instances if instances else 0.0:>8.2f} "
            f"{cons:>8d}")
        lines.append("")
    if per_template:
        lines.append("worst templates by observed serialization delay:")
        lines.append(f"{'selector':<15s} {'bench':<10s} {'tpl':>5s} "
                     f"{'size':>4s} {'handles':>8s} {'ser':>6s} "
                     f"{'delay':>7s} {'pred':>6s}")
        rows = []
        for p in points:
            by_template: Dict[int, List[SiteAttribution]] = {}
            for s in p.sites:
                by_template.setdefault(s.template_id, []).append(s)
            for tpl_id, sites in by_template.items():
                delay = sum(s.ext_delay_cycles for s in sites)
                if not delay:
                    continue
                pred = any(s.predicted_sial for s in sites if s.profiled)
                rows.append((delay, p.selector, p.bench, tpl_id,
                             sites[0].size,
                             sum(s.instances for s in sites),
                             sum(s.serialized for s in sites), pred))
        rows.sort(reverse=True)
        for delay, selector, bench, tpl, size, inst, ser, pred in rows[:20]:
            lines.append(f"{selector:<15s} {bench:<10s} {tpl:>5d} "
                         f"{size:>4d} {inst:>8d} {ser:>6d} {delay:>7d} "
                         f"{'yes' if pred else 'no':>6s}")
    return "\n".join(lines).rstrip()
