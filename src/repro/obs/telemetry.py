"""Structured run telemetry: Chrome trace-event–compatible JSONL.

A telemetry file is newline-delimited JSON. The first line is a *run
manifest* — git SHA, config digest, seed, code-version salt, creation
time — so every trace is attributable to an exact code and configuration
state (the same manifest is embedded in ``BENCH_*.json`` reports). Every
subsequent line is one event in the Chrome trace-event format (``ph``
``X`` complete spans with ``ts``/``dur`` in microseconds, ``i`` instant
events), so a file can be converted to a ``traceEvents`` array and loaded
into ``chrome://tracing`` / Perfetto directly.

Emission is opt-in (``--telemetry PATH`` on ``experiments``,
``limit-study`` and ``bench``) and sits entirely outside the timing
core's hot loop: spans wrap artifact-store computes (the Runner phases),
instant events tee off the exec DAG's existing ``on_event`` stream, and
bench points are spanned around the stopwatch. With no writer attached
nothing is constructed — the off path stays bit-identical.

``validate_telemetry`` checks a file against the documented schema
(``docs/observability.md``); ``repro telemetry`` is the CLI frontend.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from contextlib import contextmanager
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional

#: Version of the JSONL schema (manifest line + event lines).
TELEMETRY_SCHEMA = 1

#: Chrome trace-event phases this subsystem emits/accepts.
_PHASES = ("X", "i", "B", "E")

_MANIFEST_KEYS = ("kind", "schema", "created", "git_sha", "config_digest",
                  "salt", "seed", "label")


class TelemetryError(ValueError):
    """A telemetry file that violates the documented schema."""


def git_sha() -> str:
    """The repository HEAD SHA, or ``"unknown"`` outside a git checkout."""
    root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def config_digest(config: Any) -> str:
    """Stable 16-hex digest of a machine configuration (or any mapping)."""
    if is_dataclass(config) and not isinstance(config, type):
        payload = asdict(config)
    elif isinstance(config, dict):
        payload = config
    elif config is None:
        payload = {}
    else:
        payload = {"repr": repr(config)}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def run_manifest(config: Any = None, seed: Optional[int] = None,
                 label: str = "", argv: Optional[Iterable[str]] = None,
                 ) -> Dict[str, Any]:
    """The manifest dict heading every telemetry file and BENCH report."""
    from ..exec.store import code_version
    return {
        "kind": "manifest",
        "schema": TELEMETRY_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": git_sha(),
        "config_digest": config_digest(config),
        "salt": code_version(),
        "seed": seed,
        "label": label,
        "argv": list(argv) if argv is not None else [],
    }


class TelemetryWriter:
    """Appends manifest + trace events to a JSONL file.

    The writer owns the file handle; events are flushed per line so a
    crashed run still leaves a readable prefix. All timestamps are
    microseconds from :func:`time.perf_counter` rebased to the writer's
    construction (Chrome tracing wants small monotonic ``ts`` values).
    """

    def __init__(self, path, manifest: Optional[Dict[str, Any]] = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w")
        self._epoch = time.perf_counter()
        self._pid = os.getpid()
        self.events_written = 0
        self.manifest = manifest if manifest is not None else run_manifest()
        self._write(self.manifest)

    def _write(self, obj: Dict[str, Any]) -> None:
        json.dump(obj, self._handle, sort_keys=True, default=str)
        self._handle.write("\n")
        self._handle.flush()

    def _now_us(self) -> int:
        return int((time.perf_counter() - self._epoch) * 1e6)

    def now_us(self) -> int:
        """Microseconds since the writer was opened (the ``ts`` clock)."""
        return self._now_us()

    def event(self, name: str, cat: str, ph: str, ts: Optional[int] = None,
              dur: Optional[int] = None,
              args: Optional[Dict[str, Any]] = None) -> None:
        """Emit one raw trace event (low-level; prefer span/instant)."""
        record: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": ph,
            "ts": self._now_us() if ts is None else ts,
            "pid": self._pid, "tid": 0,
        }
        if dur is not None:
            record["dur"] = dur
        if args:
            record["args"] = args
        self._write(record)
        self.events_written += 1

    def instant(self, name: str, cat: str,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Emit an instant (``ph: "i"``) event."""
        self.event(name, cat, "i", args=args)

    @contextmanager
    def span(self, name: str, cat: str,
             args: Optional[Dict[str, Any]] = None):
        """Wrap a block in a complete (``ph: "X"``) span."""
        start = self._now_us()
        try:
            yield
        finally:
            self.event(name, cat, "X", ts=start,
                       dur=max(0, self._now_us() - start), args=args)

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def scheduler_telemetry(writer: TelemetryWriter,
                        inner: Optional[Callable[[Dict[str, Any]], None]]
                        = None) -> Callable[[Dict[str, Any]], None]:
    """Adapt a :class:`~repro.exec.dag.Scheduler` ``on_event`` stream.

    Every scheduler event (submit, done, retry, failed, skipped,
    degraded) becomes an instant event in the ``exec`` category; an
    existing callback (e.g. a :class:`ProgressPrinter`) is chained via
    ``inner`` so telemetry composes with progress output.
    """
    def on_event(event: Dict[str, Any]) -> None:
        writer.instant(event.get("kind", "?"), "exec",
                       args={k: v for k, v in event.items()
                             if k != "kind" and v is not None})
        if inner is not None:
            inner(event)
    return on_event


def _sanitize_args(params: Dict[str, Any]) -> Dict[str, Any]:
    """Scalar-only projection of artifact params for span args."""
    return {k: v for k, v in params.items()
            if isinstance(v, (str, int, float, bool))}


def attach_store_telemetry(store, writer: TelemetryWriter) -> None:
    """Make an :class:`ArtifactStore` narrate its computes and hits.

    Cache misses (the Runner phases: trace, profile, candidates, plan,
    baseline, run) become ``runner`` spans; hits become ``store``
    instants. Implemented by setting the store's ``telemetry`` attribute
    — see :meth:`repro.exec.store.ArtifactStore.get_or_compute`.
    """
    store.telemetry = writer


def validate_telemetry(lines: Iterable[str]) -> Dict[str, Any]:
    """Validate telemetry JSONL content; returns a summary dict.

    Raises :class:`TelemetryError` (a ``ValueError``) on the first
    violation of the schema in ``docs/observability.md``. The summary
    holds ``events``, ``spans``, ``instants``, ``cats`` and the parsed
    manifest.
    """
    manifest = None
    events = spans = instants = 0
    cats: Dict[str, int] = {}
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw)
        except ValueError:
            raise TelemetryError(f"line {lineno}: not valid JSON") from None
        if not isinstance(record, dict):
            raise TelemetryError(f"line {lineno}: not a JSON object")
        if lineno == 1:
            if record.get("kind") != "manifest":
                raise TelemetryError(
                    "line 1: first record must be the run manifest")
            if record.get("schema") != TELEMETRY_SCHEMA:
                raise TelemetryError(
                    f"line 1: unsupported schema {record.get('schema')!r}")
            for key in _MANIFEST_KEYS:
                if key not in record:
                    raise TelemetryError(f"line 1: manifest missing {key!r}")
            manifest = record
            continue
        for key, typ in (("name", str), ("cat", str), ("ph", str)):
            if not isinstance(record.get(key), typ):
                raise TelemetryError(
                    f"line {lineno}: event missing string {key!r}")
        if record["ph"] not in _PHASES:
            raise TelemetryError(
                f"line {lineno}: bad phase {record['ph']!r}")
        ts = record.get("ts")
        if not isinstance(ts, int) or ts < 0:
            raise TelemetryError(
                f"line {lineno}: 'ts' must be a non-negative integer")
        if record["ph"] == "X":
            dur = record.get("dur")
            if not isinstance(dur, int) or dur < 0:
                raise TelemetryError(
                    f"line {lineno}: complete span needs integer 'dur'")
            spans += 1
        elif record["ph"] == "i":
            instants += 1
        if "args" in record and not isinstance(record["args"], dict):
            raise TelemetryError(f"line {lineno}: 'args' must be an object")
        events += 1
        cats[record["cat"]] = cats.get(record["cat"], 0) + 1
    if manifest is None:
        raise TelemetryError("empty telemetry file (no manifest)")
    return {"manifest": manifest, "events": events, "spans": spans,
            "instants": instants, "cats": cats}


def validate_file(path) -> Dict[str, Any]:
    """Validate a telemetry file on disk (see :func:`validate_telemetry`)."""
    path = Path(path)
    try:
        with open(path) as handle:
            return validate_telemetry(handle)
    except OSError as err:
        raise TelemetryError(f"cannot read {path}: {err}") from None
