"""Mini-graph candidate enumeration.

Candidates are contiguous instruction groups within a basic block that
satisfy the singleton interface of §2: at most four instructions, at most
three external register inputs, at most one live register output, at most
one memory operation, and at most one control transfer (which must be the
final constituent). Constituents are simple-ALU operations plus the
optional memory/branch operation; complex (multiply/divide class)
operations execute on the dedicated complex port and are not aggregated.

The contiguity requirement is a simplification relative to the original
mini-graphs work (which permitted in-block code motion); it affects
absolute coverage but not the serialization phenomena under study.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from ..isa import opcodes as oc
from ..isa.program import Program
from .dataflow import group_interface, internal_edges, liveness
from .serialization import SerializationClass, classify

MAX_MG_SIZE = 4
MAX_EXT_INPUTS = 3


class Candidate:
    """One static mini-graph candidate: instructions ``[start, end)``."""

    __slots__ = ("program", "start", "end", "ext_inputs", "output",
                 "edges", "serialization", "has_load", "has_store",
                 "has_branch", "latencies")

    def __init__(self, program: Program, start: int, end: int,
                 ext_inputs: List[Tuple[int, int, int]],
                 output: Optional[Tuple[int, int]],
                 edges: List[Tuple[int, int]],
                 serialization: SerializationClass):
        self.program = program
        self.start = start
        self.end = end
        self.ext_inputs = ext_inputs
        self.output = output  # (reg, producer_offset) or None
        self.edges = edges
        self.serialization = serialization
        insts = program.instructions[start:end]
        self.has_load = any(i.is_load for i in insts)
        self.has_store = any(i.is_store for i in insts)
        self.has_branch = any(i.is_branch for i in insts)
        self.latencies = tuple(i.latency for i in insts)

    # -- derived properties --------------------------------------------------

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    @property
    def out_reg(self) -> int:
        return self.output[0] if self.output else -1

    @property
    def out_producer_ix(self) -> int:
        return self.output[1] if self.output else -1

    @property
    def is_potentially_serializing(self) -> bool:
        return self.serialization is not SerializationClass.NONE

    @property
    def total_latency(self) -> int:
        """Nominal serial execution latency of the whole aggregate."""
        return sum(self.latencies)

    @property
    def nominal_out_latency(self) -> int:
        """Issue-to-output latency assuming L1 hits (rule #2 chain)."""
        if self.output is None:
            return self.total_latency
        producer = self.output[1]
        return sum(self.latencies[:producer + 1])

    def instructions(self):
        """The constituent instructions, in program order."""
        return self.program.instructions[self.start:self.end]

    def overlaps(self, other: "Candidate") -> bool:
        """True if the two candidates share any static instruction."""
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Candidate [{self.start},{self.end}) "
                f"{self.serialization.value} out={self.output}>")


_AGGREGABLE = (oc.OC_SIMPLE, oc.OC_LOAD, oc.OC_STORE, oc.OC_BRANCH)


def enumerate_candidates(program: Program,
                         max_size: int = MAX_MG_SIZE,
                         max_ext_inputs: int = MAX_EXT_INPUTS,
                         live_out_sets: Optional[List[FrozenSet[int]]] = None
                         ) -> List[Candidate]:
    """All legal mini-graph candidates of ``program``.

    Candidates of every legal size (2..``max_size``) and position are
    returned, including overlapping ones; the selection stage resolves
    overlap. The result is ordered by ``(start, end)``.
    """
    if live_out_sets is None:
        live_out_sets = liveness(program)
    insts = program.instructions
    candidates: List[Candidate] = []
    for block in program.basic_blocks():
        for start in range(block.start, block.end - 1):
            max_end = min(block.end, start + max_size)
            mem_ops = 0
            for end in range(start + 1, max_end + 1):
                inst = insts[end - 1]
                cls = inst.opclass
                if cls not in _AGGREGABLE:
                    break
                if cls in (oc.OC_LOAD, oc.OC_STORE):
                    mem_ops += 1
                    if mem_ops > 1:
                        break
                size = end - start
                if size >= 2:
                    ext_inputs, outputs = group_interface(
                        program, start, end, live_out_sets)
                    if len(ext_inputs) > max_ext_inputs:
                        break  # external inputs only grow with the window
                    if len(outputs) <= 1:
                        edges = internal_edges(program, start, end)
                        output = outputs[0] if outputs else None
                        serialization = classify(
                            size, ext_inputs, edges,
                            output[1] if output else None)
                        candidates.append(Candidate(
                            program, start, end, ext_inputs, output, edges,
                            serialization))
                if cls == oc.OC_BRANCH:
                    break  # a control transfer must be the last constituent
    return candidates
