"""Mini-graph candidate enumeration.

Candidates are contiguous instruction groups within a basic block that
satisfy the singleton interface of §2: at most four instructions, at most
three external register inputs, at most one live register output, at most
one memory operation, and at most one control transfer (which must be the
final constituent). Constituents are simple-ALU operations plus the
optional memory/branch operation; complex (multiply/divide class)
operations execute on the dedicated complex port and are not aggregated.

The contiguity requirement is a simplification relative to the original
mini-graphs work (which permitted in-block code motion); it affects
absolute coverage but not the serialization phenomena under study.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import FrozenSet, List, Optional, Tuple

from ..isa import opcodes as oc
from ..isa.program import Program
from ..pipeline import ckern as _ckern
from .dataflow import group_interface, internal_edges, liveness
from .serialization import SerializationClass, classify

MAX_MG_SIZE = 4
MAX_EXT_INPUTS = 3


class Candidate:
    """One static mini-graph candidate: instructions ``[start, end)``."""

    __slots__ = ("program", "start", "end", "ext_inputs", "output",
                 "edges", "serialization", "has_load", "has_store",
                 "has_branch", "latencies")

    def __init__(self, program: Program, start: int, end: int,
                 ext_inputs: List[Tuple[int, int, int]],
                 output: Optional[Tuple[int, int]],
                 edges: List[Tuple[int, int]],
                 serialization: SerializationClass):
        self.program = program
        self.start = start
        self.end = end
        self.ext_inputs = ext_inputs
        self.output = output  # (reg, producer_offset) or None
        self.edges = edges
        self.serialization = serialization
        insts = program.instructions[start:end]
        self.has_load = any(i.is_load for i in insts)
        self.has_store = any(i.is_store for i in insts)
        self.has_branch = any(i.is_branch for i in insts)
        self.latencies = tuple(i.latency for i in insts)

    # -- derived properties --------------------------------------------------

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    @property
    def out_reg(self) -> int:
        return self.output[0] if self.output else -1

    @property
    def out_producer_ix(self) -> int:
        return self.output[1] if self.output else -1

    @property
    def is_potentially_serializing(self) -> bool:
        return self.serialization is not SerializationClass.NONE

    @property
    def total_latency(self) -> int:
        """Nominal serial execution latency of the whole aggregate."""
        return sum(self.latencies)

    @property
    def nominal_out_latency(self) -> int:
        """Issue-to-output latency assuming L1 hits (rule #2 chain)."""
        if self.output is None:
            return self.total_latency
        producer = self.output[1]
        return sum(self.latencies[:producer + 1])

    def instructions(self):
        """The constituent instructions, in program order."""
        return self.program.instructions[self.start:self.end]

    def overlaps(self, other: "Candidate") -> bool:
        """True if the two candidates share any static instruction."""
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Candidate [{self.start},{self.end}) "
                f"{self.serialization.value} out={self.output}>")


_AGGREGABLE = (oc.OC_SIMPLE, oc.OC_LOAD, oc.OC_STORE, oc.OC_BRANCH)

#: Index order must match the SER_* codes emitted by
#: ``repro_enumerate_candidates`` in ``_ckern.c``.
_SER_CLASSES = (SerializationClass.NONE, SerializationClass.BOUNDED,
                SerializationClass.UNBOUNDED)


class _StaticColumns:
    """Flat int64 columns of a program's static listing (native input)."""

    __slots__ = ("opclass", "latency", "rd_eff", "srcs3", "live_mask",
                 "block_start", "block_end")


# Static columns are rebuilt per Program object; the id-keyed cache makes
# repeat enumerations (and scoring column reuse) free without attaching
# anything to Program itself, which would leak into pickled artifacts.
_STATIC_CACHE: dict = {}
_PACK_CACHE: dict = {}
_CACHE_BOUND = 8


def _static_columns(program: Program) -> _StaticColumns:
    key = id(program)
    hit = _STATIC_CACHE.get(key)
    if hit is not None and hit[0] is program:
        return hit[1]
    insts = program.instructions
    n = len(insts)
    cols = _StaticColumns()
    cols.opclass = array("q", (i.opclass for i in insts))
    cols.latency = array("q", (i.latency for i in insts))
    cols.rd_eff = array("q", (i.rd if i.writes_reg else -1 for i in insts))
    srcs3 = array("q", [-1]) * (3 * n)
    for pc, inst in enumerate(insts):
        for position, src in enumerate(inst.srcs):
            srcs3[3 * pc + position] = src
    cols.srcs3 = srcs3
    live_out_sets = liveness(program)
    cols.live_mask = array("q", (sum(1 << r for r in live)
                                 for live in live_out_sets))
    blocks = program.basic_blocks()
    cols.block_start = array("q", (b.start for b in blocks))
    cols.block_end = array("q", (b.end for b in blocks))
    if len(_STATIC_CACHE) >= _CACHE_BOUND:
        _STATIC_CACHE.clear()
    _STATIC_CACHE[key] = (program, cols)
    return cols


class PackedCandidateSet(Sequence):
    """Candidates from the native enumerator, rehydrated lazily.

    Holds the packed ``(start, end, ext, out, edges, ser)`` columns
    returned by ``repro_enumerate_candidates`` and materializes a
    :class:`Candidate` (with exactly the field values the Python loop
    would build) only when an element is actually touched. Pickles as a
    plain list so stored artifacts are byte-identical on both paths.
    """

    __slots__ = ("program", "n", "c_start", "c_end", "c_ext", "c_out",
                 "c_edges", "c_ser", "_items")

    def __init__(self, program: Program, n: int, c_start, c_end, c_ext,
                 c_out, c_edges, c_ser):
        self.program = program
        self.n = n
        self.c_start = c_start
        self.c_end = c_end
        self.c_ext = c_ext
        self.c_out = c_out
        self.c_edges = c_edges
        self.c_ser = c_ser
        self._items: List[Optional[Candidate]] = [None] * n

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.n))]
        if index < 0:
            index += self.n
        item = self._items[index]
        if item is None:
            item = self._items[index] = self._rehydrate(index)
        return item

    def _rehydrate(self, i: int) -> Candidate:
        # Bit layouts documented alongside repro_enumerate_candidates in
        # _ckern.c; they must stay in lockstep with this decode.
        ext_word = self.c_ext[i]
        ext_inputs = []
        for k in range(ext_word & 3):
            entry = (ext_word >> (2 + 9 * k)) & 0x1FF
            ext_inputs.append(
                (entry & 31, (entry >> 5) & 3, (entry >> 7) & 3))
        out_word = self.c_out[i]
        output = None if out_word < 0 else (out_word >> 2, out_word & 3)
        edge_word = self.c_edges[i]
        edges = []
        for k in range(edge_word & 7):
            packed = (edge_word >> (3 + 4 * k)) & 15
            edges.append((packed >> 2, packed & 3))
        return Candidate(self.program, self.c_start[i], self.c_end[i],
                         ext_inputs, output, edges,
                         _SER_CLASSES[self.c_ser[i]])

    def __reduce__(self):
        return (list, (list(self),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PackedCandidateSet n={self.n} of {self.program.name!r}>"


def candidate_columns(candidates) -> Optional[tuple]:
    """``(n, start, end, ext, out, ser)`` columns for native scoring.

    Free for a :class:`PackedCandidateSet` (its columns are the native
    enumerator's output); plain lists — e.g. warm loads from the
    artifact store — are packed once per list object through a bounded
    id-keyed cache. Returns None when any candidate exceeds the packed
    format (the callers then score per candidate in Python).
    """
    if isinstance(candidates, PackedCandidateSet):
        return (candidates.n, candidates.c_start, candidates.c_end,
                candidates.c_ext, candidates.c_out, candidates.c_ser)
    key = id(candidates)
    hit = _PACK_CACHE.get(key)
    if hit is not None and hit[0] is candidates:
        return hit[1]
    cols = _pack_candidate_list(candidates)
    if len(_PACK_CACHE) >= _CACHE_BOUND:
        _PACK_CACHE.clear()
    _PACK_CACHE[key] = (candidates, cols)
    return cols


def _pack_candidate_list(candidates) -> Optional[tuple]:
    n = len(candidates)
    c_start = array("q", bytes(8 * n))
    c_end = array("q", bytes(8 * n))
    c_ext = array("q", bytes(8 * n))
    c_out = array("q", bytes(8 * n))
    c_ser = array("q", bytes(8 * n))
    for i, cand in enumerate(candidates):
        size = cand.end - cand.start
        if not 2 <= size <= 4 or len(cand.ext_inputs) > 3:
            return None
        ext_word = len(cand.ext_inputs)
        for k, (reg, consumer_off, position) in enumerate(cand.ext_inputs):
            if not (0 <= reg < 32 and 0 <= consumer_off <= 3
                    and 0 <= position <= 3):
                return None
            ext_word |= (reg | (consumer_off << 5)
                         | (position << 7)) << (2 + 9 * k)
        if cand.output is None:
            out_word = -1
        else:
            reg, producer_off = cand.output
            if not (0 <= reg < 32 and 0 <= producer_off <= 3):
                return None
            out_word = (reg << 2) | producer_off
        c_start[i] = cand.start
        c_end[i] = cand.end
        c_ext[i] = ext_word
        c_out[i] = out_word
        c_ser[i] = _SER_CLASSES.index(cand.serialization)
    return (n, c_start, c_end, c_ext, c_out, c_ser)


def enumerate_candidates(program: Program,
                         max_size: int = MAX_MG_SIZE,
                         max_ext_inputs: int = MAX_EXT_INPUTS,
                         live_out_sets: Optional[List[FrozenSet[int]]] = None
                         ) -> Sequence:
    """All legal mini-graph candidates of ``program``.

    Candidates of every legal size (2..``max_size``) and position are
    returned, including overlapping ones; the selection stage resolves
    overlap. The result is ordered by ``(start, end)``.

    When the compiled kernel is available (and the bounds fit its packed
    format) the scan runs natively over flat static-listing columns and
    returns a lazily-rehydrating :class:`PackedCandidateSet`; otherwise
    this reference loop returns a plain list. Both produce identical
    candidates in identical order.
    """
    if (live_out_sets is None and _ckern.available()
            and 2 <= max_size <= 4 and 0 <= max_ext_inputs <= 3):
        cols = _static_columns(program)
        packed = _ckern.plan_enumerate(
            cols.opclass, cols.rd_eff, cols.srcs3, cols.live_mask,
            cols.block_start, cols.block_end, max_size, max_ext_inputs)
        if packed is not None:
            n_cand, c_start, c_end, c_ext, c_out, c_edges, c_ser = packed
            return PackedCandidateSet(program, n_cand, c_start, c_end,
                                      c_ext, c_out, c_edges, c_ser)
    if live_out_sets is None:
        live_out_sets = liveness(program)
    insts = program.instructions
    candidates: List[Candidate] = []
    for block in program.basic_blocks():
        for start in range(block.start, block.end - 1):
            max_end = min(block.end, start + max_size)
            mem_ops = 0
            for end in range(start + 1, max_end + 1):
                inst = insts[end - 1]
                cls = inst.opclass
                if cls not in _AGGREGABLE:
                    break
                if cls in (oc.OC_LOAD, oc.OC_STORE):
                    mem_ops += 1
                    if mem_ops > 1:
                        break
                size = end - start
                if size >= 2:
                    ext_inputs, outputs = group_interface(
                        program, start, end, live_out_sets)
                    if len(ext_inputs) > max_ext_inputs:
                        break  # external inputs only grow with the window
                    if len(outputs) <= 1:
                        edges = internal_edges(program, start, end)
                        output = outputs[0] if outputs else None
                        serialization = classify(
                            size, ext_inputs, edges,
                            output[1] if output else None)
                        candidates.append(Candidate(
                            program, start, end, ext_inputs, output, edges,
                            serialization))
                if cls == oc.OC_BRANCH:
                    break  # a control transfer must be the last constituent
    return candidates
