"""Slack-Dynamic: run-time serialization monitoring and disabling (§4.4).

The hardware monitor tracks, per static mini-graph site:

* whether an instance's *last-arriving* external operand was a serializing
  operand (input to a non-first constituent) **and** the handle issued the
  moment it arrived — actual serialization delay;
* whether that delayed output in turn delayed a consumer — propagation.

A saturating-counter hysteresis scheme disables sites whose serialization
repeatedly propagates, and resurrects them after a quiet period. Disabled
sites execute in outlined form — the two extra jumps of the encoding are
the "outlining penalty" (§5.3) unless the idealized variant is used.

The timing core calls :meth:`MiniGraphPolicy.enabled` per fetched instance,
:meth:`on_issue` per issued handle, and :meth:`on_consumer_delay` when the
propagation condition is observed.
"""

from __future__ import annotations

from typing import Dict


class MiniGraphPolicy:
    """Base policy: every mini-graph permanently enabled."""

    #: Disabled instances execute with the two outlining jumps.
    outlining_penalty = True

    def enabled(self, site) -> bool:
        """Base policy never disables a site."""
        return True

    def on_issue(self, site, serialized: bool, sial: bool) -> None:
        """Issue events are ignored by the base policy."""
        pass

    def on_consumer_delay(self, site) -> None:
        """Propagation events are ignored by the base policy."""
        pass


class _SiteState:
    __slots__ = ("counter", "disabled", "quiet")

    def __init__(self):
        self.counter = 0
        self.disabled = False
        self.quiet = 0


class SlackDynamicPolicy(MiniGraphPolicy):
    """The Slack-Dynamic monitor with its Figure 7 ablation variants.

    Parameters
    ----------
    mode:
        ``"full"`` — disable on *propagated* serialization delay (the
        complete model: delay + consumer impact);
        ``"delay"`` — disable on serialization delay alone
        (Ideal-Slack-Dynamic-Delay);
        ``"sial"`` — disable whenever a serializing operand arrives last,
        regardless of actual delay (Ideal-Slack-Dynamic-SIAL).
    outlining_penalty:
        When False, disabled instances execute inline without the two
        jumps (the Ideal-* variants of §5.3).
    threshold:
        Saturating-counter value at which a site is disabled.
    decay_interval:
        Benign issues needed to decrement the counter by one (hysteresis
        against rash disabling).
    resurrect_interval:
        Disabled instances fetched before the site is re-enabled on
        probation (counter one below threshold).
    """

    def __init__(self, mode: str = "full", outlining_penalty: bool = True,
                 threshold: int = 4, decay_interval: int = 64,
                 resurrect_interval: int = 256):
        if mode not in ("full", "delay", "sial"):
            raise ValueError(f"unknown Slack-Dynamic mode {mode!r}")
        self.mode = mode
        self.outlining_penalty = outlining_penalty
        self.threshold = threshold
        self.decay_interval = decay_interval
        self.resurrect_interval = resurrect_interval
        self._sites: Dict[int, _SiteState] = {}
        self._benign: Dict[int, int] = {}
        self.disable_events = 0
        self.resurrect_events = 0

    def _state(self, site) -> _SiteState:
        state = self._sites.get(site.id)
        if state is None:
            state = _SiteState()
            self._sites[site.id] = state
        return state

    # -- core callbacks -----------------------------------------------------

    def enabled(self, site) -> bool:
        """Fetch-time query; counts quiet instances toward resurrection."""
        state = self._state(site)
        if not state.disabled:
            return True
        state.quiet += 1
        if state.quiet >= self.resurrect_interval:
            state.disabled = False
            state.quiet = 0
            state.counter = self.threshold - 1
            self.resurrect_events += 1
            return True
        return False

    def _harmful(self, site) -> None:
        state = self._state(site)
        if state.disabled:
            return
        state.counter += 1
        if state.counter >= self.threshold:
            state.disabled = True
            state.quiet = 0
            self.disable_events += 1

    def _benign_issue(self, site) -> None:
        state = self._state(site)
        if state.disabled or state.counter == 0:
            return
        count = self._benign.get(site.id, 0) + 1
        if count >= self.decay_interval:
            state.counter -= 1
            count = 0
        self._benign[site.id] = count

    def on_issue(self, site, serialized: bool, sial: bool) -> None:
        """Classify an issued instance as harmful or benign per the mode."""
        if self.mode == "sial":
            if sial:
                self._harmful(site)
            else:
                self._benign_issue(site)
            return
        if self.mode == "delay":
            if serialized:
                self._harmful(site)
            else:
                self._benign_issue(site)
            return
        # Full mode waits for propagation (on_consumer_delay); an issue
        # without serialization is benign evidence.
        if not serialized:
            self._benign_issue(site)

    def on_consumer_delay(self, site) -> None:
        """Propagated serialization: harmful evidence in full mode."""
        if self.mode == "full":
            self._harmful(site)

    # -- reporting ------------------------------------------------------------

    def disabled_sites(self) -> int:
        """Number of sites currently disabled."""
        return sum(1 for state in self._sites.values() if state.disabled)
