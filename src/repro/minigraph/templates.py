"""Mini-graph templates and the Mini-Graph Table (MGT) budget.

Candidates from different static locations that share a canonical dataflow
shape can share one MGT template (§2 — "mini-graph candidates from multiple
static locations that can share an MGT template are grouped"). The
canonical form renames external inputs to ``I0..I2`` in first-use order,
interior values to ``T0..``, and abstracts control-transfer targets (which
live in the handle, not the template). ALU immediates and memory offsets
are part of the template, as the MGT stores complete operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .candidates import Candidate


def canonical_key(candidate: Candidate) -> Tuple:
    """Hashable canonical shape of a candidate."""
    insts = candidate.instructions()
    rename: Dict[int, str] = {}
    next_input = 0
    next_temp = 0
    rows = []
    for inst in insts:
        srcs = []
        for src in inst.srcs:
            if src == 0:
                srcs.append("Z")
                continue
            if src not in rename:
                rename[src] = f"I{next_input}"
                next_input += 1
            srcs.append(rename[src])
        imm = inst.imm if not inst.is_branch else None
        rows.append((inst.op, tuple(srcs), imm))
        if inst.writes_reg:
            rename[inst.rd] = f"T{next_temp}"
            next_temp += 1
    out = candidate.output
    out_tag = out[1] if out else -1
    return (tuple(rows), out_tag)


class MGTemplate:
    """One MGT entry: a canonical mini-graph shape shared by its sites."""

    __slots__ = ("id", "key", "size", "ops", "latencies", "has_load",
                 "has_store", "has_branch", "out_producer_ix",
                 "nominal_out_latency", "total_latency", "serialization",
                 "sites")

    def __init__(self, template_id: int, key: Tuple, exemplar: Candidate):
        self.id = template_id
        self.key = key
        self.size = exemplar.size
        self.ops = tuple(i.op for i in exemplar.instructions())
        self.latencies = exemplar.latencies
        self.has_load = exemplar.has_load
        self.has_store = exemplar.has_store
        self.has_branch = exemplar.has_branch
        self.out_producer_ix = exemplar.out_producer_ix
        self.nominal_out_latency = exemplar.nominal_out_latency
        self.total_latency = exemplar.total_latency
        self.serialization = exemplar.serialization
        self.sites: List["MGSite"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MGTemplate #{self.id} size={self.size} "
                f"{self.serialization.value} sites={len(self.sites)}>")


class MGSite:
    """One static location where a template is instantiated."""

    __slots__ = ("id", "template", "candidate", "frequency",
                 "handle_pc", "outlined_pc", "input_consumer_ix", "mem_pc")

    def __init__(self, site_id: int, template: MGTemplate,
                 candidate: Candidate, frequency: int):
        self.id = site_id
        self.template = template
        self.candidate = candidate
        self.frequency = frequency
        self.handle_pc = -1     # assigned by the transform
        self.outlined_pc = -1   # assigned by the transform
        self.input_consumer_ix = {reg: consumer for reg, consumer, _
                                  in candidate.ext_inputs}
        self.mem_pc = -1
        for offset, inst in enumerate(candidate.instructions()):
            if inst.is_memory:
                self.mem_pc = candidate.start + offset
                break

    def __getstate__(self):
        # handle_pc / outlined_pc are scratch state owned by the trace
        # fold (every fold reassigns them before they are read), so
        # pickled sites normalize them to the unassigned sentinel: a
        # plan built from hoisted, previously-folded sites serializes
        # byte-identically to one built from fresh sites.
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["handle_pc"] = -1
        state["outlined_pc"] = -1
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    @property
    def start(self) -> int:
        return self.candidate.start

    @property
    def end(self) -> int:
        return self.candidate.end

    @property
    def score_contribution(self) -> int:
        return (self.candidate.size - 1) * self.frequency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MGSite #{self.id} [{self.start},{self.end}) "
                f"freq={self.frequency}>")


def build_templates(candidates: List[Candidate],
                    dynamic_counts: List[int]) -> List[MGTemplate]:
    """Group candidates into templates, attaching execution frequencies.

    ``dynamic_counts`` gives per-static-PC dynamic execution counts from a
    profiling trace; a candidate's frequency is the count of its first
    instruction (all constituents share a basic block, hence a count).
    Candidates that never execute are kept with frequency 0 — selectors may
    still reject them, but they can never win selection.
    """
    by_key: Dict[Tuple, MGTemplate] = {}
    templates: List[MGTemplate] = []
    site_id = 0
    for candidate in candidates:
        key = canonical_key(candidate)
        template = by_key.get(key)
        if template is None:
            template = MGTemplate(len(templates), key, candidate)
            by_key[key] = template
            templates.append(template)
        frequency = dynamic_counts[candidate.start]
        template.sites.append(MGSite(site_id, template, candidate,
                                     frequency))
        site_id += 1
    return templates


class MiniGraphTable:
    """Capacity model of the on-chip MGT (template storage budget)."""

    def __init__(self, entries: int = 512):
        self.entries = entries
        self._stored: Dict[int, MGTemplate] = {}

    def install(self, template: MGTemplate) -> None:
        """Store a template, enforcing the entry budget."""
        if len(self._stored) >= self.entries \
                and template.id not in self._stored:
            raise OverflowError(
                f"MGT full ({self.entries} entries); selection must respect "
                f"the template budget")
        self._stored[template.id] = template

    def lookup(self, template_id: int) -> Optional[MGTemplate]:
        """The stored template with this id, or None."""
        return self._stored.get(template_id)

    def __len__(self) -> int:
        return len(self._stored)

    def __contains__(self, template_id: int) -> bool:
        return template_id in self._stored
